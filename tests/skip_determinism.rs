//! Determinism of the quiescence-aware cycle-skipping scheduler.
//!
//! The skip scheduler (see `DESIGN.md`, "Quiescence model") jumps the
//! clock over provably-dead spans and replays their statistics in closed
//! form. Its single correctness contract: a run with skipping enabled is
//! **bit-identical** — same [`sim_cmp::SystemReport`], same architectural
//! memory — to the same run ticked cycle by cycle. These tests enforce
//! that over every workload generator and barrier flavour, plus the
//! component-level `next_event` contract ("never under-report": a
//! component must not change observable state before the cycle its
//! `next_event` names).

use gline_core::BarrierNetwork;
use sim_base::check::forall_cases;
use sim_base::config::{CmpConfig, GlineConfig};
use sim_base::stats::MsgClass;
use sim_base::{CoreId, Cycle, Mesh2D};
use sim_cmp::runtime::BarrierKind;
use sim_cmp::SystemReport;
use sim_mem::{CoreReq, MemorySystem};
use sim_noc::{Message, Noc};
use workloads::common::Workload;
use workloads::{em3d, livermore, ocean, synthetic, unstructured};

/// Runs `w` twice — skip on and `--no-skip` — and demands bit-identical
/// reports and a strictly useful scheduler (skips must not change the
/// cycle count either, which the report comparison already covers).
fn assert_skip_invariant(w: &Workload) {
    let cfg = CmpConfig::icpp2010_with_cores(w.progs.len());
    let mut fast = w.into_system(cfg);
    let mut slow = w.into_system(cfg);
    slow.set_skip_enabled(false);
    assert!(fast.skip_enabled() && !slow.skip_enabled());
    let cf = fast.run(50_000_000).expect("fast run must complete");
    let cs = slow.run(50_000_000).expect("slow run must complete");
    assert_eq!(cf, cs, "{}: cycle counts diverge", w.name);
    let rf: SystemReport = fast.report();
    let rs: SystemReport = slow.report();
    assert_eq!(rf, rs, "{}: reports diverge with skipping on", w.name);
}

#[test]
fn synthetic_all_barrier_kinds_skip_invariant() {
    for kind in BarrierKind::ALL {
        assert_skip_invariant(&synthetic::build(8, kind, 6));
    }
}

#[test]
fn synthetic_paper_mesh_skip_invariant() {
    assert_skip_invariant(&synthetic::build(32, BarrierKind::Gl, 4));
    assert_skip_invariant(&synthetic::build(32, BarrierKind::Csw, 2));
}

#[test]
fn synthetic_imbalanced_skip_invariant() {
    // The barrier-wait-heavy shape (staggered arrival, long spins): the
    // regime where the scheduler elides most cycles, so the bit-identity
    // claim is doing the most work.
    for kind in BarrierKind::ALL {
        assert_skip_invariant(&synthetic::build_imbalanced(8, kind, 3, 300));
    }
    assert_skip_invariant(&synthetic::build_imbalanced(32, BarrierKind::Csw, 2, 500));
}

#[test]
fn ocean_skip_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_skip_invariant(&ocean::build(8, kind, ocean::OceanParams::scaled(10, 2)));
    }
}

#[test]
fn em3d_skip_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
        assert_skip_invariant(&em3d::build(8, kind, em3d::Em3dParams::scaled(24, 2)));
    }
}

#[test]
fn livermore_kernels_skip_invariant() {
    let p = livermore::KernelParams::scaled(32, 2);
    assert_skip_invariant(&livermore::kernel2(4, BarrierKind::Gl, p));
    assert_skip_invariant(&livermore::kernel3(4, BarrierKind::Csw, p));
    assert_skip_invariant(&livermore::kernel6(4, BarrierKind::Gl, p));
}

#[test]
fn unstructured_skip_invariant() {
    // Locks + barriers: exercises the lock-test spin recognizer.
    let p = unstructured::UnstructuredParams::scaled(12, 24, 2);
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_skip_invariant(&unstructured::build(4, kind, p));
    }
}

#[test]
fn architectural_memory_identical_with_skip() {
    let w = ocean::build(8, BarrierKind::Gl, ocean::OceanParams::scaled(10, 2));
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut fast = w.into_system(cfg);
    let mut slow = w.into_system(cfg);
    slow.set_skip_enabled(false);
    fast.run(50_000_000).unwrap();
    slow.run(50_000_000).unwrap();
    for (addr, _) in ocean::expected(ocean::OceanParams::scaled(10, 2), 8)
        .iter()
        .enumerate()
    {
        let a = ocean::point_addr(ocean::OceanParams::scaled(10, 2), addr / 10, addr % 10);
        assert_eq!(fast.peek_word(a), slow.peek_word(a));
    }
}

// ---------------------------------------------------------------------
// `next_event` never under-reports.
// ---------------------------------------------------------------------

/// NoC: whenever a delivery becomes receivable during the tick of cycle
/// `c`, the `next_event` reported *before* that tick must have been
/// `Some(t)` with `t <= c` — otherwise a skipping simulator could have
/// jumped past the arrival.
#[test]
fn noc_next_event_never_under_reports() {
    forall_cases("noc_next_event", 24, |rng| {
        let mesh = Mesh2D::new(4, 4);
        let mut noc: Noc<u64> = Noc::new(mesh, CmpConfig::icpp2010().noc);
        let n = mesh.num_tiles() as u64;
        let sends = 3 + rng.next_below(12);
        let mut pending: u64 = 0;
        let mut send_at: Vec<(Cycle, CoreId, CoreId)> = (0..sends)
            .map(|_| {
                (
                    rng.next_below(60),
                    CoreId::from(rng.next_below(n) as usize),
                    CoreId::from(rng.next_below(n) as usize),
                )
            })
            .collect();
        send_at.sort();
        let mut cycle: Cycle = 0;
        while !send_at.is_empty() || pending > 0 {
            while send_at.first().is_some_and(|&(t, _, _)| t == cycle) {
                let (_, src, dst) = send_at.remove(0);
                noc.send(Message {
                    src,
                    dst,
                    class: MsgClass::Request,
                    payload_bytes: if rng.chance(0.5) { 64 } else { 0 },
                    payload: cycle,
                });
                pending += 1;
            }
            let ne = noc.next_event();
            noc.tick();
            let mut arrived = 0;
            for t in mesh.tiles() {
                while noc.recv(t).is_some() {
                    arrived += 1;
                }
            }
            if arrived > 0 {
                let t = ne.expect("delivery arrived while next_event claimed quiescence");
                assert!(t <= cycle, "delivery in cycle {cycle}, next_event said {t}");
            }
            pending -= arrived;
            cycle += 1;
            assert!(cycle < 10_000, "NoC property run livelocked");
        }
        assert_eq!(noc.next_event(), None, "drained NoC must report quiescence");
    });
}

/// Memory system: a core's response must never become ready before the
/// minimum of the hierarchy's reported next events at request time.
#[test]
fn memory_next_event_never_under_reports() {
    forall_cases("mem_next_event", 16, |rng| {
        let cfg = CmpConfig::icpp2010_with_cores(4);
        let mut mem = MemorySystem::new(&cfg);
        let cores: Vec<CoreId> = (0..4).map(CoreId::from).collect();
        for round in 0..3u64 {
            for (i, &c) in cores.iter().enumerate() {
                let addr = 0x1000 * (1 + rng.next_below(4)) + 64 * i as u64;
                if rng.chance(0.5) {
                    mem.request(c, CoreReq::Load { addr });
                } else {
                    mem.request(c, CoreReq::Store { addr, value: round });
                }
            }
            let mut outstanding = cores.len();
            let mut guard = 0;
            while outstanding > 0 {
                let ne = mem.next_event();
                let before = mem.now();
                mem.tick();
                for &c in &cores {
                    if mem.poll(c).is_some() {
                        // The response became observable during the tick
                        // of cycle `before`; the hierarchy must have
                        // admitted an event no later than that.
                        let t = ne.expect("response completed while next_event claimed quiescence");
                        assert!(t <= before + 1, "resp in cycle {before}, next_event {t}");
                        outstanding -= 1;
                    }
                }
                guard += 1;
                assert!(guard < 100_000, "memory property run livelocked");
            }
        }
        // Fully drained: the hierarchy parks.
        for _ in 0..8 {
            mem.tick();
        }
        assert_eq!(mem.next_event(), None, "idle hierarchy must be quiescent");
    });
}

/// Barrier network: `bar_reg` values and completion stats must never
/// change across a tick for which `next_event` claimed quiescence.
#[test]
fn gline_next_event_never_under_reports() {
    forall_cases("gline_next_event", 24, |rng| {
        let mesh = Mesh2D::new(2 + rng.next_below(3) as u16, 2 + rng.next_below(4) as u16);
        let n = mesh.num_tiles();
        let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
        let mut arrive: Vec<Cycle> = (0..n).map(|_| rng.next_below(24)).collect();
        // Everybody eventually arrives, so the barrier completes.
        arrive[rng.next_below(n as u64) as usize] = 0;
        let mut cycle: Cycle = 0;
        let mut done = false;
        while !done {
            let external = arrive.contains(&cycle);
            for (i, &a) in arrive.iter().enumerate() {
                if a == cycle {
                    net.write_bar_reg(CoreId::from(i), 0, 1);
                }
            }
            let quiescent = net.next_event().is_none();
            let regs_before: Vec<u64> = (0..n).map(|i| net.bar_reg(CoreId::from(i), 0)).collect();
            let barriers_before = net.stats(0).barriers_completed;
            net.tick();
            if quiescent && !external {
                let regs_after: Vec<u64> =
                    (0..n).map(|i| net.bar_reg(CoreId::from(i), 0)).collect();
                assert_eq!(regs_before, regs_after, "bar_reg changed while quiescent");
                assert_eq!(
                    barriers_before,
                    net.stats(0).barriers_completed,
                    "a barrier completed while quiescent"
                );
            }
            done = net.stats(0).barriers_completed == 1 && net.all_released(0);
            cycle += 1;
            assert!(cycle < 4096, "barrier property run livelocked");
        }
    });
}
