//! Golden-trace tests: the exact cycle-by-cycle event sequence of the
//! paper's Figure 2 walkthrough, pinned to checked-in `.golden` files.
//!
//! Any change to G-line timing, the Figure-4 controller FSMs, or the
//! trace format itself shows up here as a readable diff. To refresh the
//! files after an *intentional* change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_trace
//! ```
//!
//! then review the diff like any other code change.

use gline_cmp::base::config::GlineConfig;
use gline_cmp::base::trace::{RingSink, Tracer};
use gline_cmp::base::{CoreId, Mesh2D};
use gline_cmp::gline::BarrierNetwork;
use std::path::PathBuf;

/// Renders every event of one barrier episode as `cycle event` lines.
///
/// All cores arrive before cycle 0 and the network runs a couple of
/// cycles past the release so post-release quiescence is pinned too.
fn episode_trace(rows: u16, cols: u16, cfg: GlineConfig, ticks: u64) -> String {
    let tracer = Tracer::new(RingSink::new(1 << 16));
    let mut net = BarrierNetwork::traced(Mesh2D::new(rows, cols), cfg, tracer.clone());
    for i in 0..rows * cols {
        net.write_bar_reg(CoreId(i), 0, 1);
    }
    for _ in 0..ticks {
        net.tick();
    }
    assert!(
        net.all_released(0),
        "barrier did not complete in {ticks} cycles"
    );
    tracer.with_sink(|s| {
        s.events()
            .map(|(cycle, ev)| format!("{cycle:>8} {ev}\n"))
            .collect()
    })
}

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(name)
}

/// Compares `actual` to the checked-in golden file (or rewrites it when
/// `UPDATE_GOLDEN` is set).
fn assert_matches_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("rewrote {}", path.display());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "{}: {e} (run with UPDATE_GOLDEN=1 to create)",
            path.display()
        )
    });
    if expected != actual {
        let exp: Vec<&str> = expected.lines().collect();
        let act: Vec<&str> = actual.lines().collect();
        let mut diff = String::new();
        for i in 0..exp.len().max(act.len()) {
            let (e, a) = (
                exp.get(i).copied().unwrap_or("<eof>"),
                act.get(i).copied().unwrap_or("<eof>"),
            );
            if e != a {
                diff.push_str(&format!("line {:>3}: - {e}\n          + {a}\n", i + 1));
            }
        }
        panic!(
            "trace diverged from {} ({} vs {} lines):\n{diff}\
             If the change is intentional, rerun with UPDATE_GOLDEN=1 and review the diff.",
            path.display(),
            exp.len(),
            act.len()
        );
    }
}

/// Figure 2 proper: 2×2 mesh, everyone arrives at once, barrier closes
/// in exactly 4 cycles (horizontal gather, vertical gather, vertical
/// release, horizontal release).
#[test]
fn fig2_2x2_episode_matches_golden() {
    assert_matches_golden(
        "fig2_2x2.golden",
        &episode_trace(2, 2, GlineConfig::default(), 6),
    );
}

/// The paper's Table-1 machine: the same episode on the 4×8 mesh (32
/// cores, 10 G-lines), still 4 cycles end to end.
#[test]
fn fig2_4x8_episode_matches_golden() {
    assert_matches_golden(
        "fig2_4x8.golden",
        &episode_trace(4, 8, GlineConfig::default(), 6),
    );
}

/// The harness has teeth: a 1-cycle perturbation (G-line latency 2
/// instead of 1) must NOT reproduce the pinned Figure-2 sequence.
#[test]
fn one_cycle_perturbation_breaks_the_golden_trace() {
    let cfg = GlineConfig {
        line_latency: 2,
        ..GlineConfig::default()
    };
    let perturbed = episode_trace(2, 2, cfg, 12);
    let golden =
        std::fs::read_to_string(golden_path("fig2_2x2.golden")).expect("golden file present");
    assert_ne!(
        perturbed, golden,
        "a slower G-line must change the pinned event sequence"
    );
}

/// The pinned sequence is deterministic: two fresh runs render
/// byte-identically.
#[test]
fn episode_trace_is_deterministic() {
    assert_eq!(
        episode_trace(2, 2, GlineConfig::default(), 6),
        episode_trace(2, 2, GlineConfig::default(), 6)
    );
}
