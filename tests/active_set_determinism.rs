//! Determinism of active-set micro-scheduling.
//!
//! The active-set scheduler (see `DESIGN.md` §10) visits only routers
//! with buffered flits, home banks with live transactions, and cores
//! that are not parked on a known wake cycle — instead of scanning
//! every component every cycle. Its correctness contract mirrors the
//! cycle-skipping scheduler's: a run with active sets enabled is
//! **bit-identical** — same [`sim_cmp::SystemReport`], same
//! architectural memory, same event trace — to the same run with
//! `--no-active-set`. These tests enforce that over every workload
//! generator and barrier flavour, mirroring `skip_determinism.rs`.

use sim_base::config::CmpConfig;
use sim_base::trace::{ChromeTraceSink, Tracer};
use sim_cmp::runtime::BarrierKind;
use sim_cmp::{System, SystemReport};
use workloads::common::Workload;
use workloads::{em3d, livermore, ocean, synthetic, unstructured};

/// Runs `w` twice — active sets on and `--no-active-set` — and demands
/// bit-identical reports. Cycle skipping stays enabled in both runs
/// (its own invariance is covered by `skip_determinism.rs`); here it
/// exercises the composition of parking with whole-machine
/// fast-forwarding.
fn assert_active_set_invariant(w: &Workload) {
    let cfg = CmpConfig::icpp2010_with_cores(w.progs.len());
    let mut fast = w.into_system(cfg);
    let mut slow = w.into_system(cfg);
    slow.set_active_set_enabled(false);
    assert!(fast.active_set_enabled() && !slow.active_set_enabled());
    let cf = fast.run(50_000_000).expect("fast run must complete");
    let cs = slow.run(50_000_000).expect("slow run must complete");
    assert_eq!(cf, cs, "{}: cycle counts diverge", w.name);
    let rf: SystemReport = fast.report();
    let rs: SystemReport = slow.report();
    assert_eq!(rf, rs, "{}: reports diverge with active sets on", w.name);
}

#[test]
fn synthetic_all_barrier_kinds_active_set_invariant() {
    for kind in BarrierKind::ALL {
        assert_active_set_invariant(&synthetic::build(8, kind, 6));
    }
}

#[test]
fn synthetic_paper_mesh_active_set_invariant() {
    assert_active_set_invariant(&synthetic::build(32, BarrierKind::Gl, 4));
    assert_active_set_invariant(&synthetic::build(32, BarrierKind::Csw, 2));
}

#[test]
fn synthetic_imbalanced_active_set_invariant() {
    // Staggered arrivals: cores park while waiting, homes and routers
    // drain to empty between episodes — the regime where the sets are
    // smallest and the lazy-removal bookkeeping is doing the most work.
    for kind in BarrierKind::ALL {
        assert_active_set_invariant(&synthetic::build_imbalanced(8, kind, 3, 300));
    }
    assert_active_set_invariant(&synthetic::build_imbalanced(32, BarrierKind::Csw, 2, 500));
}

#[test]
fn barrier_matrix_active_set_invariant() {
    // The exact matrix the active_set bench measures.
    for (_, w) in synthetic::barrier_matrix(8, 2, 200) {
        assert_active_set_invariant(&w);
    }
}

#[test]
fn ocean_active_set_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_active_set_invariant(&ocean::build(8, kind, ocean::OceanParams::scaled(10, 2)));
    }
}

#[test]
fn em3d_active_set_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
        assert_active_set_invariant(&em3d::build(8, kind, em3d::Em3dParams::scaled(24, 2)));
    }
}

#[test]
fn livermore_kernels_active_set_invariant() {
    let p = livermore::KernelParams::scaled(32, 2);
    assert_active_set_invariant(&livermore::kernel2(4, BarrierKind::Gl, p));
    assert_active_set_invariant(&livermore::kernel3(4, BarrierKind::Csw, p));
    assert_active_set_invariant(&livermore::kernel6(4, BarrierKind::Gl, p));
}

#[test]
fn unstructured_active_set_invariant() {
    // Locks + barriers: cores block on lock acquires and home banks
    // serialize the contended line, so the busy-home set churns.
    let p = unstructured::UnstructuredParams::scaled(12, 24, 2);
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_active_set_invariant(&unstructured::build(4, kind, p));
    }
}

#[test]
fn architectural_memory_identical_with_active_set() {
    let w = ocean::build(8, BarrierKind::Gl, ocean::OceanParams::scaled(10, 2));
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut fast = w.into_system(cfg);
    let mut slow = w.into_system(cfg);
    slow.set_active_set_enabled(false);
    fast.run(50_000_000).unwrap();
    slow.run(50_000_000).unwrap();
    for (addr, _) in ocean::expected(ocean::OceanParams::scaled(10, 2), 8)
        .iter()
        .enumerate()
    {
        let a = ocean::point_addr(ocean::OceanParams::scaled(10, 2), addr / 10, addr % 10);
        assert_eq!(fast.peek_word(a), slow.peek_word(a));
    }
}

/// Traced runs keep active sets enabled (parked cores are in known
/// wait states and emit no events, so parking is trace-transparent,
/// unlike cycle skipping which tracing disables). The full event
/// stream must still be identical to a `--no-active-set` traced run.
#[test]
fn event_trace_identical_with_active_set() {
    for (kind, n, iters) in [
        (BarrierKind::Csw, 8, 3),
        (BarrierKind::Gl, 8, 3),
        (BarrierKind::Dsw, 4, 2),
    ] {
        let w = synthetic::build_imbalanced(n, kind, iters, 200);
        let cfg = CmpConfig::icpp2010_with_cores(n);

        let run_traced = |active: bool| {
            let tracer = Tracer::new(ChromeTraceSink::new());
            let mut sys = System::traced(cfg, w.progs.clone(), tracer.clone());
            sys.set_active_set_enabled(active);
            sys.run(50_000_000).expect("traced run completes");
            let rep = sys.report();
            let events = tracer.with_sink(|s| s.events().to_vec());
            (rep, events)
        };

        let (rep_on, ev_on) = run_traced(true);
        let (rep_off, ev_off) = run_traced(false);
        assert_eq!(rep_on, rep_off, "{kind:?}: traced reports diverge");
        assert!(!ev_on.is_empty(), "{kind:?}: traced run recorded no events");
        assert_eq!(
            ev_on.len(),
            ev_off.len(),
            "{kind:?}: event counts diverge with active sets on"
        );
        assert_eq!(ev_on, ev_off, "{kind:?}: event streams diverge");
    }
}

/// Toggling the active-set scheduler mid-run must not perturb the
/// final state: parked cores are flushed on disable, so a run that
/// flips the flag every few thousand cycles still matches a dense run.
#[test]
fn mid_run_toggle_active_set_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 4, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut toggled = w.into_system(cfg);
    let mut on = true;
    let mut guard = 0u64;
    while !toggled.all_halted() {
        toggled.set_active_set_enabled(on);
        on = !on;
        for _ in 0..2_000 {
            if toggled.all_halted() {
                break;
            }
            toggled.tick();
        }
        guard += 1;
        assert!(guard < 50_000, "toggled run livelocked");
    }
    let mut baseline = w.into_system(cfg);
    baseline.set_active_set_enabled(false);
    baseline.run(50_000_000).unwrap();
    assert_eq!(
        baseline.now(),
        toggled.now(),
        "mid-run toggle changed cycles"
    );
    assert_eq!(
        baseline.report(),
        toggled.report(),
        "mid-run toggle diverges"
    );
}
