//! Tracing must be an observer, not a participant: running the same
//! machine with a recording sink and with the disabled [`NullSink`]
//! must produce bit-identical [`SystemReport`]s.
//!
//! [`NullSink`]: gline_cmp::base::trace::NullSink
//! [`SystemReport`]: gline_cmp::cmp::SystemReport

use gline_cmp::base::check::forall;
use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::trace::{ChromeTraceSink, RingSink, Tracer};
use gline_cmp::cmp::runtime::{BarrierEnv, BarrierKind};
use gline_cmp::cmp::{System, SystemReport};
use gline_cmp::isa::{ProgBuilder, Program};

/// Builds a small mixed workload: barriers + shared-memory traffic.
fn progs(kind: BarrierKind, n: usize, iters: u64) -> Vec<Program> {
    let env = BarrierEnv::new(kind, n, 0x1_0000);
    (0..n)
        .map(|c| {
            let mut b = ProgBuilder::new();
            for it in 0..iters {
                use gline_cmp::isa::Reg;
                b.li(Reg(1), 0x8000 + (it as i64 % 4) * 64)
                    .li(Reg(2), 1)
                    .amoadd(Reg(3), Reg(2), Reg(1));
                env.emit(&mut b, c, &format!("i{it}"));
            }
            b.halt();
            b.build()
        })
        .collect()
}

fn report_with_null(kind: BarrierKind, n: usize, iters: u64) -> SystemReport {
    let mut sys = System::new(CmpConfig::icpp2010_with_cores(n), progs(kind, n, iters));
    sys.run(100_000_000).unwrap();
    sys.report()
}

#[test]
fn ring_sink_never_changes_the_report() {
    forall("ring_sink_vs_null_sink", |rng| {
        let n = [2usize, 4, 8][rng.next_below(3) as usize];
        let iters = 1 + rng.next_below(6);
        let kind =
            [BarrierKind::Gl, BarrierKind::Csw, BarrierKind::Dsw][rng.next_below(3) as usize];

        let baseline = report_with_null(kind, n, iters);

        let tracer = Tracer::new(RingSink::new(512));
        let mut traced = System::traced(
            CmpConfig::icpp2010_with_cores(n),
            progs(kind, n, iters),
            tracer.clone(),
        );
        traced.run(100_000_000).unwrap();
        let traced_rep = traced.report();

        assert_eq!(
            baseline, traced_rep,
            "RingSink perturbed the simulation (kind {kind:?}, {n} cores, {iters} iters)"
        );
        assert!(
            tracer.with_sink(|s| s.total_seen()) > 0,
            "the traced run must actually have recorded events"
        );
    });
}

#[test]
fn chrome_sink_never_changes_the_report() {
    let baseline = report_with_null(BarrierKind::Gl, 4, 5);
    let tracer = Tracer::new(ChromeTraceSink::new());
    let mut traced = System::traced(
        CmpConfig::icpp2010_with_cores(4),
        progs(BarrierKind::Gl, 4, 5),
        tracer,
    );
    traced.run(100_000_000).unwrap();
    assert_eq!(baseline, traced.report());
}
