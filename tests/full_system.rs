//! Integration tests spanning the whole stack: workload generators →
//! ISA programs → cycle-level CMP (cores + MESI + NoC + G-lines), with
//! the architectural reference interpreter as the golden model.

use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::stats::TimeCat;
use gline_cmp::bench_workloads::{em3d, livermore, ocean, synthetic, unstructured};
use gline_cmp::cmp::runtime::{BarrierEnv, BarrierKind};
use gline_cmp::cmp::System;
use gline_cmp::isa::{ProgBuilder, Reg};

fn cfg(n: usize) -> CmpConfig {
    CmpConfig::icpp2010_with_cores(n)
}

/// Every barrier implementation produces architecturally identical
/// results for every workload (only the timing may differ).
#[test]
fn all_barrier_kinds_agree_on_kernel2() {
    let p = livermore::KernelParams::scaled(96, 4);
    let expect = livermore::kernel2_expected(p);
    for kind in BarrierKind::ALL {
        let w = livermore::kernel2(8, kind, p);
        let mut sys = w.into_system(cfg(8));
        sys.run(500_000_000).unwrap();
        for k in (0..96).step_by(17) {
            assert_eq!(
                sys.peek_word(livermore::kernel2_x_addr(k)),
                expect[k],
                "{kind:?} x[{k}]"
            );
        }
    }
}

#[test]
fn all_barrier_kinds_agree_on_em3d() {
    let p = em3d::Em3dParams::scaled(64, 3);
    let (e, h) = em3d::expected(p, 8);
    for kind in BarrierKind::ALL {
        let w = em3d::build(8, kind, p);
        let mut sys = w.into_system(cfg(8));
        sys.run(500_000_000).unwrap();
        for i in (0..64).step_by(13) {
            assert_eq!(sys.peek_word(em3d::e_addr(i)), e[i], "{kind:?} e[{i}]");
            assert_eq!(sys.peek_word(em3d::h_addr(p, i)), h[i], "{kind:?} h[{i}]");
        }
    }
}

#[test]
fn all_barrier_kinds_agree_on_ocean() {
    let p = ocean::OceanParams {
        fp_busy: 1,
        ..ocean::OceanParams::scaled(12, 2)
    };
    let g = ocean::expected(p, 8);
    for kind in BarrierKind::ALL {
        let w = ocean::build(8, kind, p);
        let mut sys = w.into_system(cfg(8));
        sys.run(500_000_000).unwrap();
        for (r, c) in [(1, 1), (5, 7), (10, 10)] {
            assert_eq!(
                sys.peek_word(ocean::point_addr(p, r, c)),
                g[r * p.grid + c],
                "{kind:?} ({r},{c})"
            );
        }
    }
}

#[test]
fn all_barrier_kinds_agree_on_unstructured() {
    let p = unstructured::UnstructuredParams {
        edge_busy: 1,
        ..unstructured::UnstructuredParams::scaled(16, 64, 2)
    };
    for kind in BarrierKind::ALL {
        let w = unstructured::build(8, kind, p);
        let mut sys = w.into_system(cfg(8));
        sys.run(500_000_000).unwrap();
        for i in 0..p.nodes {
            assert_eq!(
                sys.peek_word(unstructured::node_addr(i)),
                unstructured::expected_node(p, i),
                "{kind:?} node {i}"
            );
        }
    }
}

/// The paper's headline: at 32 cores the GL barrier beats both software
/// barriers on the pure-barrier synthetic benchmark, and DSW beats CSW.
#[test]
fn figure5_ordering_at_32_cores() {
    let iters = 5;
    let mut cycles = Vec::new();
    for kind in [BarrierKind::Gl, BarrierKind::Dsw, BarrierKind::Csw] {
        let w = synthetic::build(32, kind, iters);
        let mut sys = w.into_system(cfg(32));
        cycles.push(sys.run(1_000_000_000).unwrap());
    }
    let (gl, dsw, csw) = (cycles[0], cycles[1], cycles[2]);
    assert!(
        gl < dsw && dsw < csw,
        "expected GL < DSW < CSW, got {gl} / {dsw} / {csw}"
    );
    assert!(
        gl * 20 < csw,
        "GL must dominate CSW at 32 cores: {gl} vs {csw}"
    );
    assert!(
        gl * 5 < dsw,
        "GL must clearly beat DSW at 32 cores: {gl} vs {dsw}"
    );
}

/// The GL barrier's latency is flat in core count (Figure 5's flat line).
#[test]
fn gl_latency_flat_in_core_count() {
    let iters = 10;
    let mut per_barrier = Vec::new();
    for n in [2usize, 8, 32] {
        let w = synthetic::build(n, BarrierKind::Gl, iters);
        let mut sys = w.into_system(cfg(n));
        let cycles = sys.run(1_000_000_000).unwrap();
        per_barrier.push(synthetic::cycles_per_barrier(cycles, iters));
    }
    let spread = per_barrier.iter().cloned().fold(f64::MIN, f64::max)
        - per_barrier.iter().cloned().fold(f64::MAX, f64::min);
    assert!(
        spread < 3.0,
        "GL latency must be ~constant: {per_barrier:?}"
    );
}

/// GL removes all barrier traffic from the data network; the software
/// barriers inject plenty.
#[test]
fn gl_removes_barrier_traffic() {
    let make = |kind| {
        let w = synthetic::build(16, kind, 5);
        let mut sys = w.into_system(cfg(16));
        sys.run(1_000_000_000).unwrap();
        sys.report()
    };
    let gl = make(BarrierKind::Gl);
    let dsw = make(BarrierKind::Dsw);
    assert_eq!(gl.traffic.total(), 0);
    assert!(gl.gl_signals > 0);
    assert!(
        dsw.traffic.total() > 1000,
        "DSW must generate coherence traffic"
    );
    assert_eq!(dsw.gl_signals, 0);
}

/// Workload imbalance: when the barrier wait is dominated by stragglers
/// (stage S2 in the paper), GL barely helps — the paper's explanation
/// for UNSTRUCTURED/OCEAN.
#[test]
fn imbalanced_work_diminishes_gl_advantage() {
    let n = 8;
    let run = |kind: BarrierKind| {
        let env = BarrierEnv::new(kind, n, 0x1_0000);
        let progs: Vec<_> = (0..n)
            .map(|c| {
                let mut b = ProgBuilder::new();
                for it in 0..4 {
                    // Core 0 is a straggler: 4000 cycles of work; the
                    // others do 50.
                    b.busy(if c == 0 { 4000 } else { 50 });
                    env.emit(&mut b, c, &format!("i{it}"));
                }
                b.halt();
                b.build()
            })
            .collect();
        let mut sys = System::new(cfg(n), progs);
        sys.run(10_000_000).unwrap()
    };
    let gl = run(BarrierKind::Gl) as f64;
    let dsw = run(BarrierKind::Dsw) as f64;
    assert!(
        gl > 0.85 * dsw,
        "with an S2-dominated barrier GL should win little: GL {gl} vs DSW {dsw}"
    );
}

/// Per-cycle time attribution is conservative: every simulated core
/// cycle lands in exactly one Figure-6 category.
#[test]
fn time_breakdown_is_conservative() {
    let w = livermore::kernel3(8, BarrierKind::Dsw, livermore::KernelParams::scaled(64, 4));
    let mut sys = w.into_system(cfg(8));
    sys.run(100_000_000).unwrap();
    let rep = sys.report();
    let sum: u64 = TimeCat::ALL.iter().map(|&c| rep.total_time[c]).sum();
    assert_eq!(sum, rep.total_time.total());
    // Each core contributes at most `cycles` (it may halt early).
    for (i, core) in rep.per_core.iter().enumerate() {
        assert!(core.total() <= rep.cycles, "core {i} over-accounted");
        assert!(core.total() > 0, "core {i} never accounted");
    }
}

/// A heterogeneous system: half the cores run Kernel-3-style reductions,
/// half run stencil work, all meeting at the same GL barrier.
#[test]
fn heterogeneous_programs_share_one_barrier() {
    let n = 8;
    let env = BarrierEnv::new(BarrierKind::Gl, n, 0x1_0000);
    let progs: Vec<_> = (0..n)
        .map(|c| {
            let mut b = ProgBuilder::new();
            for it in 0..3 {
                if c % 2 == 0 {
                    b.busy(100 + c as u32 * 10);
                } else {
                    // Store then reload a private location.
                    b.li(Reg(1), (0x100000 + c * 64) as i64)
                        .li(Reg(2), (it * 100 + c) as i64)
                        .st(Reg(2), 0, Reg(1))
                        .ld(Reg(3), 0, Reg(1));
                }
                env.emit(&mut b, c, &format!("i{it}"));
            }
            b.halt();
            b.build()
        })
        .collect();
    let mut sys = System::new(cfg(n), progs);
    sys.run(10_000_000).unwrap();
    assert_eq!(sys.report().gl_barriers, 3);
}
