//! Hot-path allocation audit.
//!
//! The per-tick paths of the directory controllers (`sim-mem::home`) and
//! the NoC (`sim-noc::network`) reuse struct-held scratch buffers and
//! capacity-retaining maps/queues, so a steady-state tick performs no
//! heap allocation at all. This test pins that property with a counting
//! global allocator: after a warm-up pass that sizes every buffer, an
//! identical traffic pattern must run allocation-free.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use sim_base::config::CmpConfig;
use sim_base::CoreId;
use sim_mem::{CoreReq, MemorySystem};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static COUNTING: AtomicU64 = AtomicU64::new(0);

// SAFETY: pure pass-through to `System`; the counter bump allocates
// nothing and every layout contract is forwarded unchanged.
unsafe impl GlobalAlloc for CountingAlloc {
    // SAFETY: caller obligations are exactly `System.alloc`'s.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) != 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: `layout` is forwarded verbatim from our caller.
        unsafe { System.alloc(layout) }
    }
    // SAFETY: caller obligations are exactly `System.dealloc`'s.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        // SAFETY: `ptr`/`layout` are forwarded verbatim from our caller.
        unsafe { System.dealloc(ptr, layout) }
    }
    // SAFETY: caller obligations are exactly `System.realloc`'s.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if COUNTING.load(Ordering::Relaxed) != 0 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        // SAFETY: arguments are forwarded verbatim from our caller.
        unsafe { System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static A: CountingAlloc = CountingAlloc;

/// One round of cross-tile coherence traffic: every core stores to and
/// loads from a rotating set of shared lines, driving GetX/GetS,
/// invalidations and write-backs through the homes and the NoC.
fn traffic_round(mem: &mut MemorySystem, cores: &[CoreId], round: u64) {
    for (i, &c) in cores.iter().enumerate() {
        // Each core touches its neighbour's line from the previous round:
        // guaranteed remote state, guaranteed protocol traffic.
        let line = (i as u64 + round) % cores.len() as u64;
        let addr = 0x4000 + line * 64;
        if (round + i as u64).is_multiple_of(2) {
            mem.request(c, CoreReq::Store { addr, value: round });
        } else {
            mem.request(c, CoreReq::Load { addr });
        }
    }
    let mut outstanding = cores.len();
    let mut guard = 0;
    while outstanding > 0 {
        mem.tick();
        for &c in cores {
            if mem.poll(c).is_some() {
                outstanding -= 1;
            }
        }
        guard += 1;
        assert!(guard < 100_000, "traffic round livelocked");
    }
    // Drain stragglers (write-backs in flight) so the next round starts
    // from an idle network.
    while mem.next_event().is_some() {
        mem.tick();
        guard += 1;
        assert!(guard < 100_000, "drain livelocked");
    }
}

#[test]
fn steady_state_ticks_do_not_allocate() {
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut mem = MemorySystem::new(&cfg);
    let cores: Vec<CoreId> = (0..8).map(CoreId::from).collect();

    // Warm-up: size every scratch buffer, map and queue. Several passes
    // so both the store→load and load→store directions of each line's
    // coherence dance have happened at least once.
    for round in 0..6 {
        traffic_round(&mut mem, &cores, round);
    }

    // Measured phase: identical address footprint, so no backing-store
    // growth — any allocation now comes from a per-tick hot path.
    COUNTING.store(1, Ordering::SeqCst);
    for round in 6..10 {
        traffic_round(&mut mem, &cores, round);
    }
    COUNTING.store(0, Ordering::SeqCst);

    let n = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        n, 0,
        "steady-state home/NoC ticks performed {n} heap allocations"
    );
}
