//! Randomized differential testing: the cycle-accurate machine must
//! compute exactly what the idealized reference interpreter computes,
//! for generated multi-phase parallel programs.
//!
//! Program shape (determinism by construction):
//! * each phase, every core stores fresh random values into its own
//!   private slots and `amoadd`s shared counters (commutative);
//! * loads read only locations written in *earlier* phases (or its own);
//! * a GL barrier separates phases, so all read values are
//!   deterministic even though timing differs wildly between the two
//!   machines.

use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::rng::SplitMix64;
use gline_cmp::base::trace::{RingSink, Tracer};
use gline_cmp::cmp::runtime::{BarrierEnv, BarrierKind};
use gline_cmp::cmp::System;
use gline_cmp::isa::interp::RefCmp;
use gline_cmp::isa::{ProgBuilder, Program, Reg};

/// Events to keep for the post-mortem dump on a mismatch.
const TRACE_TAIL: usize = 256;

const N_CORES: usize = 4;
const PHASES: usize = 3;
const OPS_PER_PHASE: usize = 8;
const SLOTS_PER_CORE: usize = 4;
const COUNTERS: usize = 3;

const PRIV_BASE: u64 = 0x2000;
const CTR_BASE: u64 = 0x8000;
const BAR_BASE: u64 = 0x1_0000;

fn slot_addr(core: usize, slot: usize) -> u64 {
    PRIV_BASE + (core * SLOTS_PER_CORE + slot) as u64 * 64
}

fn ctr_addr(i: usize) -> u64 {
    CTR_BASE + i as u64 * 64
}

/// Generates one core's program; `rng` must be seeded per (seed, core).
fn gen_program(core: usize, rng: &mut SplitMix64, env: &BarrierEnv) -> Program {
    let mut b = ProgBuilder::new();
    let acc = Reg(9); // accumulates everything we load (checked at exit)
    for phase in 0..PHASES {
        for op in 0..OPS_PER_PHASE {
            match rng.next_below(4) {
                0 => {
                    // Store a fresh value to one of my slots.
                    let v = rng.next_below(1 << 30) as i64;
                    b.li(
                        Reg(1),
                        slot_addr(core, rng.next_below(SLOTS_PER_CORE as u64) as usize) as i64,
                    )
                    .li(Reg(2), v)
                    .st(Reg(2), 0, Reg(1));
                }
                1 => {
                    // Atomic add to a shared counter (commutative).
                    let v = 1 + rng.next_below(100) as i64;
                    b.li(
                        Reg(1),
                        ctr_addr(rng.next_below(COUNTERS as u64) as usize) as i64,
                    )
                    .li(Reg(2), v)
                    .amoadd(Reg(3), Reg(2), Reg(1));
                }
                2 if phase > 0 => {
                    // Load a slot some core wrote in an earlier phase
                    // (any slot is fine: the previous barrier ordered
                    // all earlier stores before this load; to keep the
                    // value deterministic we only read slots of cores
                    // that cannot be writing them now — i.e. our own.
                    b.li(
                        Reg(1),
                        slot_addr(core, rng.next_below(SLOTS_PER_CORE as u64) as usize) as i64,
                    )
                    .ld(Reg(2), 0, Reg(1))
                    .add(acc, acc, Reg(2));
                }
                _ => {
                    // Register work.
                    b.li(Reg(4), rng.next_below(1000) as i64)
                        .add(acc, acc, Reg(4));
                }
            }
            let _ = op;
        }
        env.emit(&mut b, core, &format!("p{phase}"));
        // After the barrier, read a *peer's* slot: deterministic because
        // the peer's phase writes are complete and it will overwrite
        // only in the next phase, which our next barrier... may overlap.
        // Reading is safe only for the FINAL phase; do it there.
        if phase == PHASES - 1 {
            for peer in 0..N_CORES {
                b.li(Reg(1), slot_addr(peer, 0) as i64)
                    .ld(Reg(2), 0, Reg(1))
                    .add(acc, acc, Reg(2));
            }
        }
    }
    // Publish the accumulator.
    b.li(Reg(1), (0x20000 + core * 64) as i64)
        .st(acc, 0, Reg(1))
        .halt();
    b.build()
}

fn run_seed(seed: u64) {
    let env = BarrierEnv::new(BarrierKind::Gl, N_CORES, BAR_BASE);
    let progs: Vec<Program> = (0..N_CORES)
        .map(|c| {
            let mut rng = SplitMix64::new(seed ^ (c as u64 * 0x9E37));
            gen_program(c, &mut rng, &env)
        })
        .collect();

    // Reference machine.
    let mut golden = RefCmp::new(N_CORES, 0x40000 / 8);
    let refs: Vec<&Program> = progs.iter().collect();
    golden
        .run(&refs, 50_000_000)
        .expect("reference run completes");

    // Cycle-accurate machine, recording the last events so a mismatch
    // comes with the end of the run attached.
    let tracer = Tracer::new(RingSink::new(TRACE_TAIL));
    let mut sys = System::traced(
        CmpConfig::icpp2010_with_cores(N_CORES),
        progs,
        tracer.clone(),
    );
    sys.run(100_000_000).expect("simulated run completes");

    // Compare: accumulators, private slots, shared counters.
    let mut mismatches = Vec::new();
    let mut check = |what: String, got: u64, want: u64| {
        if got != want {
            mismatches.push(format!("{what}: simulated {got:#x}, reference {want:#x}"));
        }
    };
    for c in 0..N_CORES {
        let a = 0x20000 + c as u64 * 64;
        check(
            format!("seed {seed}: core {c} accumulator"),
            sys.peek_word(a),
            golden.word(a),
        );
        for s in 0..SLOTS_PER_CORE {
            let a = slot_addr(c, s);
            check(
                format!("seed {seed}: slot ({c},{s})"),
                sys.peek_word(a),
                golden.word(a),
            );
        }
    }
    for i in 0..COUNTERS {
        check(
            format!("seed {seed}: counter {i}"),
            sys.peek_word(ctr_addr(i)),
            golden.word(ctr_addr(i)),
        );
    }
    if !mismatches.is_empty() {
        let tail = tracer.with_sink(|s| {
            format!(
                "--- last {} of {} events ---\n{}",
                s.len(),
                s.total_seen(),
                s.dump()
            )
        });
        panic!("{}\n{tail}", mismatches.join("\n"));
    }
}

#[test]
fn random_parallel_programs_match_reference() {
    for seed in 0..12u64 {
        run_seed(seed * 0x1234_5678 + 1);
    }
}
