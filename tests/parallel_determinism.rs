//! Determinism of the sharded-tick parallel engine.
//!
//! `System::run_with_workers` (see `DESIGN.md` §11) partitions the
//! tiles across worker threads and advances each cycle in a parallel
//! compute phase plus a serialized exchange phase. Its correctness
//! contract is the strongest in the simulator: a parallel run is
//! **bit-identical** to the serial engine — same
//! [`sim_cmp::SystemReport`], same architectural memory, same skip and
//! scheduler statistics — for *every* worker count, every workload
//! family, every barrier flavour, and every combination of the
//! cycle-skipping and active-set schedulers. Traced systems fall back
//! to the serial engine (the event stream is defined by the serial
//! interleaving), and the worker count may change between calls
//! mid-run without perturbing the machine.

use sim_base::config::CmpConfig;
use sim_base::trace::{ChromeTraceSink, Tracer};
use sim_cmp::runtime::BarrierKind;
use sim_cmp::{System, SystemReport};
use sim_trace::TraceSet;
use workloads::common::Workload;
use workloads::{em3d, livermore, ocean, synthetic, unstructured};

/// The worker counts every invariant is checked at: even and odd,
/// dividing and not dividing the core counts used below, and (for the
/// 8-core workloads) equal to the tile count.
const WORKERS: [usize; 4] = [2, 3, 4, 8];

/// Runs `w` serially and at every worker count, with `setup` applied
/// to each system first, and demands bit-identical outcomes.
fn assert_parallel_invariant_with(w: &Workload, setup: impl Fn(&mut System)) {
    let cfg = CmpConfig::icpp2010_with_cores(w.progs.len());
    let mut serial = w.into_system(cfg);
    setup(&mut serial);
    let cs = serial.run(50_000_000).expect("serial run must complete");
    let rs: SystemReport = serial.report();
    for workers in WORKERS {
        let mut par = w.into_system(cfg);
        setup(&mut par);
        let cp = par
            .run_with_workers(50_000_000, workers)
            .expect("parallel run must complete");
        assert_eq!(cs, cp, "{} @ {workers} workers: cycle counts", w.name);
        assert_eq!(rs, par.report(), "{} @ {workers} workers: reports", w.name);
        assert_eq!(
            serial.skip_stats(),
            par.skip_stats(),
            "{} @ {workers} workers: skip stats",
            w.name
        );
        assert_eq!(
            serial.core_sched_stats(),
            par.core_sched_stats(),
            "{} @ {workers} workers: core sched stats",
            w.name
        );
    }
}

fn assert_parallel_invariant(w: &Workload) {
    assert_parallel_invariant_with(w, |_| {});
}

#[test]
fn synthetic_all_barrier_kinds_parallel_invariant() {
    for kind in BarrierKind::ALL {
        assert_parallel_invariant(&synthetic::build(8, kind, 6));
    }
}

#[test]
fn synthetic_paper_mesh_parallel_invariant() {
    assert_parallel_invariant(&synthetic::build(32, BarrierKind::Gl, 4));
    assert_parallel_invariant(&synthetic::build(32, BarrierKind::Csw, 2));
}

#[test]
fn synthetic_imbalanced_parallel_invariant() {
    // Staggered arrivals: cores park, the machine goes quiescent
    // between episodes, and whole-machine skips interleave with
    // parallel ticks — the full composition with PR 2/3 machinery.
    for kind in BarrierKind::ALL {
        assert_parallel_invariant(&synthetic::build_imbalanced(8, kind, 3, 300));
    }
    assert_parallel_invariant(&synthetic::build_imbalanced(32, BarrierKind::Csw, 2, 500));
}

#[test]
fn barrier_matrix_parallel_invariant() {
    for (_, w) in synthetic::barrier_matrix(8, 2, 200) {
        assert_parallel_invariant(&w);
    }
}

#[test]
fn compute_matrix_parallel_invariant() {
    // The exact matrix the parallel_engine bench measures: cores live
    // nearly every cycle, maximal per-cycle work in the compute phase.
    for (_, w) in synthetic::compute_matrix(8, 2, 40, 200) {
        assert_parallel_invariant(&w);
    }
}

#[test]
fn ocean_parallel_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_parallel_invariant(&ocean::build(8, kind, ocean::OceanParams::scaled(10, 2)));
    }
}

#[test]
fn em3d_parallel_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
        assert_parallel_invariant(&em3d::build(8, kind, em3d::Em3dParams::scaled(24, 2)));
    }
}

#[test]
fn livermore_kernels_parallel_invariant() {
    let p = livermore::KernelParams::scaled(32, 2);
    assert_parallel_invariant(&livermore::kernel2(4, BarrierKind::Gl, p));
    assert_parallel_invariant(&livermore::kernel3(4, BarrierKind::Csw, p));
    assert_parallel_invariant(&livermore::kernel6(4, BarrierKind::Gl, p));
}

#[test]
fn unstructured_parallel_invariant() {
    // Locks + barriers: the NoC and home banks carry heavy coherence
    // traffic, so the outbox-flush ordering is doing real work here.
    let p = unstructured::UnstructuredParams::scaled(12, 24, 2);
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_parallel_invariant(&unstructured::build(4, kind, p));
    }
}

#[test]
fn parallel_invariant_composes_with_scheduler_toggles() {
    // The engine must be bit-identical with each of the PR 2/3
    // schedulers disabled too (dense per-cycle loop, no parking, no
    // whole-machine skips) — every combination drives a different
    // shard-phase branch.
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    for (skip, active) in [(false, true), (true, false), (false, false)] {
        assert_parallel_invariant_with(&w, |sys| {
            sys.set_skip_enabled(skip);
            sys.set_active_set_enabled(active);
        });
    }
}

#[test]
fn architectural_memory_identical_with_parallel_engine() {
    let p = ocean::OceanParams::scaled(10, 2);
    let w = ocean::build(8, BarrierKind::Gl, p);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut serial = w.into_system(cfg);
    serial.run(50_000_000).unwrap();
    for workers in WORKERS {
        let mut par = w.into_system(cfg);
        par.run_with_workers(50_000_000, workers).unwrap();
        for (i, _) in ocean::expected(p, 8).iter().enumerate() {
            let a = ocean::point_addr(p, i / 10, i % 10);
            assert_eq!(
                serial.peek_word(a),
                par.peek_word(a),
                "word 0x{a:x} @ {workers} workers"
            );
        }
    }
}

/// A traced system asked for workers must produce the *serial* event
/// stream: the trace is defined by the serial interleaving, so
/// `run_with_workers` falls back to the serial engine whenever the
/// sink is enabled.
#[test]
fn traced_runs_pin_the_serial_engine() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    let cfg = CmpConfig::icpp2010_with_cores(8);

    let run_traced = |workers: Option<usize>| {
        let tracer = Tracer::new(ChromeTraceSink::new());
        let mut sys = System::traced(cfg, w.progs.clone(), tracer.clone());
        match workers {
            Some(n) => sys.run_with_workers(50_000_000, n).unwrap(),
            None => sys.run(50_000_000).unwrap(),
        };
        (sys.report(), tracer.with_sink(|s| s.events().to_vec()))
    };

    let (rep_serial, ev_serial) = run_traced(None);
    assert!(!ev_serial.is_empty(), "traced run recorded no events");
    for workers in WORKERS {
        let (rep, ev) = run_traced(Some(workers));
        assert_eq!(rep_serial, rep, "{workers} workers: traced reports");
        assert_eq!(ev_serial, ev, "{workers} workers: traced event streams");
    }
}

/// The worker pool lives only for one `advance_until_with_workers`
/// call, so the worker count may change between calls — the machine
/// state cannot tell the difference. (Skip statistics are excluded:
/// segmenting the run changes the skip *horizon* structure, which
/// moves attempt counters without moving the machine.)
#[test]
fn mid_run_worker_count_switching_is_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 3, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut switched = w.into_system(cfg);
    let rotation = [2usize, 1, 3, 8, 4];
    let mut i = 0usize;
    while !switched.all_halted() {
        let until = switched.now() + 1_500;
        switched.advance_until_with_workers(until, rotation[i % rotation.len()]);
        i += 1;
        assert!(i < 50_000, "switched run livelocked");
    }
    let mut serial = w.into_system(cfg);
    serial.run(50_000_000).unwrap();
    assert_eq!(serial.now(), switched.now(), "switching changed cycles");
    assert_eq!(serial.report(), switched.report(), "switching diverges");
}

/// Records `w` on the dense serial engine and packages the traces.
fn record_set(w: &Workload) -> TraceSet {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    let (_, traces) = sys.run_recorded(50_000_000).expect("recording completes");
    TraceSet {
        cores: traces,
        pokes: w.pokes.clone(),
        workload: w.name.clone(),
    }
}

/// The parallel invariant holds for trace-driven replay too: a replay
/// at 2/4/8 workers is bit-identical to the serial replay, and both to
/// the exec-mode run the trace was recorded from.
#[test]
fn replay_parallel_invariant() {
    for kind in BarrierKind::ALL {
        let w = synthetic::build_imbalanced(8, kind, 3, 300);
        let cfg = CmpConfig::icpp2010_with_cores(8);

        let mut exec = w.into_system(cfg);
        let ce = exec.run(50_000_000).expect("exec run must complete");
        let set = record_set(&w);

        let mut serial = System::replay(cfg, &set);
        let cs = serial.run(50_000_000).expect("serial replay must complete");
        assert_eq!(ce, cs, "{}: replay changed the cycle count", w.name);
        assert_eq!(
            exec.report(),
            serial.report(),
            "{}: serial replay diverged from exec",
            w.name
        );

        for workers in [2usize, 4, 8] {
            let mut par = System::replay(cfg, &set);
            let cp = par
                .run_with_workers(50_000_000, workers)
                .expect("parallel replay must complete");
            assert_eq!(cs, cp, "{} replay @ {workers} workers: cycles", w.name);
            assert_eq!(
                serial.report(),
                par.report(),
                "{} replay @ {workers} workers: reports",
                w.name
            );
            assert_eq!(
                serial.skip_stats(),
                par.skip_stats(),
                "{} replay @ {workers} workers: skip stats",
                w.name
            );
            assert_eq!(
                serial.core_sched_stats(),
                par.core_sched_stats(),
                "{} replay @ {workers} workers: core sched stats",
                w.name
            );
        }
    }
}

/// Replay composes with the scheduler toggles under every worker count,
/// exactly like exec mode.
#[test]
fn replay_parallel_invariant_composes_with_scheduler_toggles() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let set = record_set(&w);
    for (skip, active) in [(false, true), (true, false), (false, false)] {
        let mut serial = System::replay(cfg, &set);
        serial.set_skip_enabled(skip);
        serial.set_active_set_enabled(active);
        serial.run(50_000_000).expect("serial replay must complete");
        for workers in WORKERS {
            let mut par = System::replay(cfg, &set);
            par.set_skip_enabled(skip);
            par.set_active_set_enabled(active);
            par.run_with_workers(50_000_000, workers)
                .expect("parallel replay must complete");
            assert_eq!(
                serial.report(),
                par.report(),
                "replay skip={skip} active={active} @ {workers} workers"
            );
        }
    }
}

/// Worker-count switching mid-replay is as invisible as it is mid-exec:
/// the same rotation of pool sizes lands on the exec run's exact state.
#[test]
fn replay_mid_run_worker_count_switching_is_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Gl, 3, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);

    let mut exec = w.into_system(cfg);
    exec.run(50_000_000).unwrap();
    let set = record_set(&w);

    let mut switched = System::replay(cfg, &set);
    let rotation = [2usize, 1, 3, 8, 4];
    let mut i = 0usize;
    while !switched.all_halted() {
        let until = switched.now() + 1_500;
        switched.advance_until_with_workers(until, rotation[i % rotation.len()]);
        i += 1;
        assert!(i < 50_000, "switched replay livelocked");
    }
    assert_eq!(exec.now(), switched.now(), "switched replay changed cycles");
    assert_eq!(
        exec.report(),
        switched.report(),
        "switched replay diverged from exec"
    );
}
