//! Determinism of the parallel engines.
//!
//! `System::run_with_workers` partitions the tiles across worker
//! threads and advances the machine under one of two rendezvous
//! protocols: the epoch-batched free-run engine (`DESIGN.md` §13, the
//! default) or the per-cycle sharded tick (`DESIGN.md` §11,
//! [`sim_cmp::SyncProtocol::PerCycle`]). The correctness contract is
//! the strongest in the simulator: a parallel run is **bit-identical**
//! to the serial engine — same [`sim_cmp::SystemReport`], same
//! architectural memory, same skip and scheduler statistics — for
//! *every* worker count, *both* protocols, every workload family,
//! every barrier flavour, and every combination of the cycle-skipping
//! and active-set schedulers. Traced systems fall back to the serial
//! engine (the event stream is defined by the serial interleaving),
//! and both the worker count and the protocol may change between calls
//! mid-run without perturbing the machine.

use gline_core::ClusteredBarrierNetwork;
use sim_base::config::CmpConfig;
use sim_base::trace::{ChromeTraceSink, Tracer};
use sim_cmp::runtime::BarrierKind;
use sim_cmp::{SyncProtocol, System, SystemReport};
use sim_trace::TraceSet;
use workloads::common::Workload;
use workloads::{em3d, livermore, ocean, synthetic, unstructured};

/// The worker counts every invariant is checked at: even and odd,
/// dividing and not dividing the core counts used below, and (for the
/// 8-core workloads) equal to the tile count.
const WORKERS: [usize; 4] = [2, 3, 4, 8];

/// Runs `w` serially and at every worker count, with `setup` applied
/// to each system first, and demands bit-identical outcomes.
fn assert_parallel_invariant_with(w: &Workload, setup: impl Fn(&mut System)) {
    let cfg = CmpConfig::icpp2010_with_cores(w.progs.len());
    let mut serial = w.into_system(cfg);
    setup(&mut serial);
    let cs = serial.run(50_000_000).expect("serial run must complete");
    let rs: SystemReport = serial.report();
    for workers in WORKERS {
        let mut par = w.into_system(cfg);
        setup(&mut par);
        let cp = par
            .run_with_workers(50_000_000, workers)
            .expect("parallel run must complete");
        assert_eq!(cs, cp, "{} @ {workers} workers: cycle counts", w.name);
        assert_eq!(rs, par.report(), "{} @ {workers} workers: reports", w.name);
        assert_eq!(
            serial.skip_stats(),
            par.skip_stats(),
            "{} @ {workers} workers: skip stats",
            w.name
        );
        assert_eq!(
            serial.core_sched_stats(),
            par.core_sched_stats(),
            "{} @ {workers} workers: core sched stats",
            w.name
        );
    }
}

fn assert_parallel_invariant(w: &Workload) {
    assert_parallel_invariant_with(w, |_| {});
}

#[test]
fn synthetic_all_barrier_kinds_parallel_invariant() {
    for kind in BarrierKind::ALL {
        assert_parallel_invariant(&synthetic::build(8, kind, 6));
    }
}

#[test]
fn synthetic_paper_mesh_parallel_invariant() {
    assert_parallel_invariant(&synthetic::build(32, BarrierKind::Gl, 4));
    assert_parallel_invariant(&synthetic::build(32, BarrierKind::Csw, 2));
}

#[test]
fn synthetic_imbalanced_parallel_invariant() {
    // Staggered arrivals: cores park, the machine goes quiescent
    // between episodes, and whole-machine skips interleave with
    // parallel ticks — the full composition with PR 2/3 machinery.
    for kind in BarrierKind::ALL {
        assert_parallel_invariant(&synthetic::build_imbalanced(8, kind, 3, 300));
    }
    assert_parallel_invariant(&synthetic::build_imbalanced(32, BarrierKind::Csw, 2, 500));
}

#[test]
fn barrier_matrix_parallel_invariant() {
    for (_, w) in synthetic::barrier_matrix(8, 2, 200) {
        assert_parallel_invariant(&w);
    }
}

#[test]
fn compute_matrix_parallel_invariant() {
    // The exact matrix the parallel_engine bench measures: cores live
    // nearly every cycle, maximal per-cycle work in the compute phase.
    for (_, w) in synthetic::compute_matrix(8, 2, 40, 200) {
        assert_parallel_invariant(&w);
    }
}

#[test]
fn ocean_parallel_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_parallel_invariant(&ocean::build(8, kind, ocean::OceanParams::scaled(10, 2)));
    }
}

#[test]
fn em3d_parallel_invariant() {
    for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
        assert_parallel_invariant(&em3d::build(8, kind, em3d::Em3dParams::scaled(24, 2)));
    }
}

#[test]
fn livermore_kernels_parallel_invariant() {
    let p = livermore::KernelParams::scaled(32, 2);
    assert_parallel_invariant(&livermore::kernel2(4, BarrierKind::Gl, p));
    assert_parallel_invariant(&livermore::kernel3(4, BarrierKind::Csw, p));
    assert_parallel_invariant(&livermore::kernel6(4, BarrierKind::Gl, p));
}

#[test]
fn unstructured_parallel_invariant() {
    // Locks + barriers: the NoC and home banks carry heavy coherence
    // traffic, so the outbox-flush ordering is doing real work here.
    let p = unstructured::UnstructuredParams::scaled(12, 24, 2);
    for kind in [BarrierKind::Gl, BarrierKind::Csw] {
        assert_parallel_invariant(&unstructured::build(4, kind, p));
    }
}

#[test]
fn parallel_invariant_composes_with_scheduler_toggles() {
    // The engine must be bit-identical with each of the PR 2/3
    // schedulers disabled too (dense per-cycle loop, no parking, no
    // whole-machine skips) — every combination drives a different
    // shard-phase branch.
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    for (skip, active) in [(false, true), (true, false), (false, false)] {
        assert_parallel_invariant_with(&w, |sys| {
            sys.set_skip_enabled(skip);
            sys.set_active_set_enabled(active);
        });
    }
}

#[test]
fn architectural_memory_identical_with_parallel_engine() {
    let p = ocean::OceanParams::scaled(10, 2);
    let w = ocean::build(8, BarrierKind::Gl, p);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut serial = w.into_system(cfg);
    serial.run(50_000_000).unwrap();
    for workers in WORKERS {
        let mut par = w.into_system(cfg);
        par.run_with_workers(50_000_000, workers).unwrap();
        for (i, _) in ocean::expected(p, 8).iter().enumerate() {
            let a = ocean::point_addr(p, i / 10, i % 10);
            assert_eq!(
                serial.peek_word(a),
                par.peek_word(a),
                "word 0x{a:x} @ {workers} workers"
            );
        }
    }
}

/// A traced system asked for workers must produce the *serial* event
/// stream: the trace is defined by the serial interleaving, so
/// `run_with_workers` falls back to the serial engine whenever the
/// sink is enabled.
#[test]
fn traced_runs_pin_the_serial_engine() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    let cfg = CmpConfig::icpp2010_with_cores(8);

    let run_traced = |workers: Option<usize>| {
        let tracer = Tracer::new(ChromeTraceSink::new());
        let mut sys = System::traced(cfg, w.progs.clone(), tracer.clone());
        match workers {
            Some(n) => sys.run_with_workers(50_000_000, n).unwrap(),
            None => sys.run(50_000_000).unwrap(),
        };
        (sys.report(), tracer.with_sink(|s| s.events().to_vec()))
    };

    let (rep_serial, ev_serial) = run_traced(None);
    assert!(!ev_serial.is_empty(), "traced run recorded no events");
    for workers in WORKERS {
        let (rep, ev) = run_traced(Some(workers));
        assert_eq!(rep_serial, rep, "{workers} workers: traced reports");
        assert_eq!(ev_serial, ev, "{workers} workers: traced event streams");
    }
}

/// The worker pool lives only for one `advance_until_with_workers`
/// call, so the worker count may change between calls — the machine
/// state cannot tell the difference. (Skip statistics are excluded:
/// segmenting the run changes the skip *horizon* structure, which
/// moves attempt counters without moving the machine.)
#[test]
fn mid_run_worker_count_switching_is_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 3, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut switched = w.into_system(cfg);
    let rotation = [2usize, 1, 3, 8, 4];
    let mut i = 0usize;
    while !switched.all_halted() {
        let until = switched.now() + 1_500;
        switched.advance_until_with_workers(until, rotation[i % rotation.len()]);
        i += 1;
        assert!(i < 50_000, "switched run livelocked");
    }
    let mut serial = w.into_system(cfg);
    serial.run(50_000_000).unwrap();
    assert_eq!(serial.now(), switched.now(), "switching changed cycles");
    assert_eq!(serial.report(), switched.report(), "switching diverges");
}

/// Records `w` on the dense serial engine and packages the traces.
fn record_set(w: &Workload) -> TraceSet {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    let (_, traces) = sys.run_recorded(50_000_000).expect("recording completes");
    TraceSet {
        cores: traces,
        pokes: w.pokes.clone(),
        workload: w.name.clone(),
    }
}

/// The parallel invariant holds for trace-driven replay too: a replay
/// at 2/4/8 workers is bit-identical to the serial replay, and both to
/// the exec-mode run the trace was recorded from.
#[test]
fn replay_parallel_invariant() {
    for kind in BarrierKind::ALL {
        let w = synthetic::build_imbalanced(8, kind, 3, 300);
        let cfg = CmpConfig::icpp2010_with_cores(8);

        let mut exec = w.into_system(cfg);
        let ce = exec.run(50_000_000).expect("exec run must complete");
        let set = record_set(&w);

        let mut serial = System::replay(cfg, &set);
        let cs = serial.run(50_000_000).expect("serial replay must complete");
        assert_eq!(ce, cs, "{}: replay changed the cycle count", w.name);
        assert_eq!(
            exec.report(),
            serial.report(),
            "{}: serial replay diverged from exec",
            w.name
        );

        for workers in [2usize, 4, 8] {
            let mut par = System::replay(cfg, &set);
            let cp = par
                .run_with_workers(50_000_000, workers)
                .expect("parallel replay must complete");
            assert_eq!(cs, cp, "{} replay @ {workers} workers: cycles", w.name);
            assert_eq!(
                serial.report(),
                par.report(),
                "{} replay @ {workers} workers: reports",
                w.name
            );
            assert_eq!(
                serial.skip_stats(),
                par.skip_stats(),
                "{} replay @ {workers} workers: skip stats",
                w.name
            );
            assert_eq!(
                serial.core_sched_stats(),
                par.core_sched_stats(),
                "{} replay @ {workers} workers: core sched stats",
                w.name
            );
        }
    }
}

/// Replay composes with the scheduler toggles under every worker count,
/// exactly like exec mode.
#[test]
fn replay_parallel_invariant_composes_with_scheduler_toggles() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let set = record_set(&w);
    for (skip, active) in [(false, true), (true, false), (false, false)] {
        let mut serial = System::replay(cfg, &set);
        serial.set_skip_enabled(skip);
        serial.set_active_set_enabled(active);
        serial.run(50_000_000).expect("serial replay must complete");
        for workers in WORKERS {
            let mut par = System::replay(cfg, &set);
            par.set_skip_enabled(skip);
            par.set_active_set_enabled(active);
            par.run_with_workers(50_000_000, workers)
                .expect("parallel replay must complete");
            assert_eq!(
                serial.report(),
                par.report(),
                "replay skip={skip} active={active} @ {workers} workers"
            );
        }
    }
}

/// Worker-count switching mid-replay is as invisible as it is mid-exec:
/// the same rotation of pool sizes lands on the exec run's exact state.
#[test]
fn replay_mid_run_worker_count_switching_is_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Gl, 3, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);

    let mut exec = w.into_system(cfg);
    exec.run(50_000_000).unwrap();
    let set = record_set(&w);

    let mut switched = System::replay(cfg, &set);
    let rotation = [2usize, 1, 3, 8, 4];
    let mut i = 0usize;
    while !switched.all_halted() {
        let until = switched.now() + 1_500;
        switched.advance_until_with_workers(until, rotation[i % rotation.len()]);
        i += 1;
        assert!(i < 50_000, "switched replay livelocked");
    }
    assert_eq!(exec.now(), switched.now(), "switched replay changed cycles");
    assert_eq!(
        exec.report(),
        switched.report(),
        "switched replay diverged from exec"
    );
}

/// A 256-core (16×16) machine exceeds the flat G-line transmitter
/// budget, so the two-level [`ClusteredBarrierNetwork`] carries the
/// barriers — and the parallel engine must stay bit-identical on it
/// too. This is the largest determinism case in the suite: every
/// O(active) path added for the many-core scaling work (clustered
/// episode accounting, sparse epoch pre-drain, active-tile home sync)
/// runs under both engines here.
#[test]
fn clustered_256_core_parallel_invariant() {
    let w = synthetic::build(256, BarrierKind::Gl, 2);
    let cfg = CmpConfig::icpp2010_with_cores(256);
    assert!(
        cfg.needs_clustered_gline(),
        "16x16 must exceed the flat G-line budget"
    );
    let hw = || ClusteredBarrierNetwork::new(cfg.mesh, cfg.gline);

    let mut serial = w.into_system_with_hw(cfg, hw());
    let cs = serial.run(50_000_000).expect("serial run must complete");

    let mut par = w.into_system_with_hw(cfg, hw());
    let cp = par
        .run_with_workers(50_000_000, 4)
        .expect("parallel run must complete");

    assert_eq!(cs, cp, "256-core clustered: cycle counts");
    assert_eq!(serial.report(), par.report(), "256-core clustered: reports");
    assert_eq!(
        serial.skip_stats(),
        par.skip_stats(),
        "256-core clustered: skip stats"
    );
    assert_eq!(
        serial.core_sched_stats(),
        par.core_sched_stats(),
        "256-core clustered: core sched stats"
    );
}

/// The legacy per-cycle protocol remains available behind
/// [`SyncProtocol::PerCycle`] and keeps the full invariant on every
/// barrier flavour. (All tests above exercise the epoch protocol — the
/// default — so together the two pin both rendezvous paths.)
#[test]
fn per_cycle_protocol_parallel_invariant() {
    for kind in BarrierKind::ALL {
        assert_parallel_invariant_with(&synthetic::build(8, kind, 4), |sys| {
            sys.set_sync_protocol(SyncProtocol::PerCycle)
        });
    }
    assert_parallel_invariant_with(
        &synthetic::build_imbalanced(8, BarrierKind::Csw, 3, 300),
        |sys| sys.set_sync_protocol(SyncProtocol::PerCycle),
    );
}

/// Epoch boundary stress: contended CSW keeps protocol traffic in
/// flight nearly every cycle, so almost every window is clamped by an
/// imminent cross-shard delivery maturation or by the earliest
/// possible send plus the minimum NoC latency. With skipping and the
/// active set disabled the free-run also takes its dense branch, and
/// the apply phase's debug assertions (which run in this build) verify
/// no stamped message or latch write is ever replayed outside its
/// cycle.
#[test]
fn epoch_windows_clamped_by_imminent_deliveries() {
    let w = synthetic::build(8, BarrierKind::Csw, 4);
    for (skip, active) in [(true, true), (false, true), (true, false), (false, false)] {
        assert_parallel_invariant_with(&w, |sys| {
            sys.set_skip_enabled(skip);
            sys.set_active_set_enabled(active);
        });
    }
}

/// The full protocol × cycle-skip × active-set matrix, exec mode: each
/// cell drives a different combination of window clamps, shard-phase
/// branches, and rendezvous machinery.
#[test]
fn protocol_toggle_matrix_parallel_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Gl, 2, 200);
    for proto in [SyncProtocol::Epoch, SyncProtocol::PerCycle] {
        for (skip, active) in [(false, true), (true, false), (false, false)] {
            assert_parallel_invariant_with(&w, |sys| {
                sys.set_sync_protocol(proto);
                sys.set_skip_enabled(skip);
                sys.set_active_set_enabled(active);
            });
        }
    }
}

/// Replay mode under the same protocol × scheduler matrix: the epoch
/// engine's replay halt bounds (`ops - rp_op`) and the per-cycle
/// engine must both land on the serial replay bit-for-bit.
#[test]
fn replay_protocol_toggle_matrix_parallel_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 2, 200);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let set = record_set(&w);
    for proto in [SyncProtocol::Epoch, SyncProtocol::PerCycle] {
        for active in [true, false] {
            let mut serial = System::replay(cfg, &set);
            serial.set_sync_protocol(proto);
            serial.set_active_set_enabled(active);
            serial.run(50_000_000).expect("serial replay must complete");
            for workers in [2usize, 3, 8] {
                let mut par = System::replay(cfg, &set);
                par.set_sync_protocol(proto);
                par.set_active_set_enabled(active);
                par.run_with_workers(50_000_000, workers)
                    .expect("parallel replay must complete");
                assert_eq!(
                    serial.report(),
                    par.report(),
                    "replay {proto:?} active={active} @ {workers} workers"
                );
            }
        }
    }
}

/// The protocol may change between `advance_until_with_workers` calls
/// mid-run — together with a changing worker count — without moving
/// the machine: epochs are cut at each segment horizon, so a segment
/// boundary is always an epoch boundary.
#[test]
fn mid_run_protocol_switching_is_invariant() {
    let w = synthetic::build_imbalanced(8, BarrierKind::Csw, 3, 300);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let mut switched = w.into_system(cfg);
    let rotation = [
        (SyncProtocol::Epoch, 4usize),
        (SyncProtocol::PerCycle, 3),
        (SyncProtocol::Epoch, 8),
        (SyncProtocol::PerCycle, 2),
        (SyncProtocol::Epoch, 1),
    ];
    let mut i = 0usize;
    while !switched.all_halted() {
        let (proto, workers) = rotation[i % rotation.len()];
        switched.set_sync_protocol(proto);
        let until = switched.now() + 1_100;
        switched.advance_until_with_workers(until, workers);
        i += 1;
        assert!(i < 50_000, "protocol-switched run livelocked");
    }
    let mut serial = w.into_system(cfg);
    serial.run(50_000_000).unwrap();
    assert_eq!(serial.now(), switched.now(), "switching changed cycles");
    assert_eq!(serial.report(), switched.report(), "switching diverges");
}

/// Scheduling statistics are themselves deterministic (modulo wakeups,
/// which depend on host thread timing), and the epoch protocol
/// actually batches: far fewer barrier crossings than cycles, and far
/// fewer than the per-cycle protocol on the same workload.
#[test]
fn epoch_sync_stats_deterministic_and_batched() {
    let w = synthetic::build(8, BarrierKind::Csw, 4);
    let cfg = CmpConfig::icpp2010_with_cores(8);
    let run = |proto: SyncProtocol| {
        let mut sys = w.into_system(cfg);
        sys.set_sync_protocol(proto);
        sys.run_with_workers(50_000_000, 4).unwrap();
        sys.sync_stats()
    };
    let a = run(SyncProtocol::Epoch);
    let b = run(SyncProtocol::Epoch);
    assert_eq!(a.epochs, b.epochs, "epoch count must be deterministic");
    assert_eq!(
        a.par_cycles, b.par_cycles,
        "par cycles must be deterministic"
    );
    assert_eq!(a.crossings, b.crossings, "crossings must be deterministic");
    assert_eq!(
        a.shard_epochs_skipped, b.shard_epochs_skipped,
        "skipped shard-epochs must be deterministic"
    );
    assert!(a.epochs > 0, "no epochs executed");
    assert!(
        a.crossings <= a.epochs,
        "at most one barrier crossing per epoch"
    );
    assert!(a.mean_epoch_len() >= 1.0, "epochs advance at least a cycle");

    let pc = run(SyncProtocol::PerCycle);
    assert_eq!(pc.epochs, 0, "per-cycle protocol runs no epochs");
    assert_eq!(
        a.par_cycles, pc.par_cycles,
        "both protocols tick the same cycles"
    );
    assert!(
        pc.crossings > a.crossings,
        "epoch batching must reduce barrier crossings ({} vs {})",
        a.crossings,
        pc.crossings
    );
}
