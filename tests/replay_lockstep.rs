//! Lockstep cross-engine validation: the replay engine's bit-identity
//! contract (DESIGN.md §12), driven across the full workload-family ×
//! scheduler-toggle × worker-count matrix.
//!
//! Each workload is run once in exec mode (the reference), recorded via
//! [`run_recorded`], and then replayed under every combination of
//! quiescence skipping (on/off), active-set scheduling (on/off), and
//! 1/2/4/8 shard workers. Every replay must reproduce the reference
//! [`SystemReport`] **and** the final architectural memory exactly; on
//! mismatch, [`bench::validate`] reports the first divergence as a
//! structured `(cycle, core, field)` triple.
//!
//! Event-trace lockstep runs serially: the parallel engine is compile-
//! time gated on a disabled trace sink (`!S::ENABLED`), so the traced
//! comparison pins exec vs replay on the serial engine while the
//! worker sweep holds the parallel engines to report + memory identity.
//!
//! [`run_recorded`]: gline_cmp::cmp::System::run_recorded

use bench::validate::{compare_events, compare_memory, compare_reports};
use gline_cmp::base::config::CmpConfig;
use gline_cmp::base::trace::{ChromeTraceSink, Tracer};
use gline_cmp::bench_workloads::common::{Workload, BARRIER_BASE, DATA_BASE};
use gline_cmp::bench_workloads::synthetic;
use gline_cmp::cmp::{System, SystemReport};
use gline_cmp::trace::TraceSet;

const CORES: usize = 8;
const MAX_CYCLES: u64 = 10_000_000;

/// The synthetic barrier matrix: every barrier family (GL, CSW, DSW) in
/// both contention shapes, small enough to sweep 16 engine configs per
/// entry.
fn matrix() -> Vec<(&'static str, Workload)> {
    synthetic::barrier_matrix(CORES, 2, 37)
}

fn cfg() -> CmpConfig {
    CmpConfig::icpp2010_with_cores(CORES)
}

/// Every word either side could have touched: the barrier environment
/// plus the workload data region (pokes all land in these windows; the
/// generators allocate from `DATA_BASE` upward).
fn addrs(w: &Workload) -> impl Iterator<Item = u64> + '_ {
    let barrier = (BARRIER_BASE..BARRIER_BASE + 0x1000).step_by(8);
    let data = (DATA_BASE..DATA_BASE + 0x1_0000).step_by(8);
    let pokes = w.pokes.iter().map(|&(a, _)| a);
    barrier.chain(data).chain(pokes)
}

/// Runs `w` in exec mode and returns the reference observables.
fn exec_reference(w: &Workload) -> (SystemReport, System) {
    let mut sys = w.into_system(cfg());
    sys.run(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    (sys.report(), sys)
}

/// Records `w` and returns the trace set plus the recording run's own
/// report (recording must be an observer, not a participant).
fn record(w: &Workload) -> (TraceSet, SystemReport) {
    let mut sys = w.into_system(cfg());
    let (_, traces) = sys
        .run_recorded(MAX_CYCLES)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    let set = TraceSet {
        cores: traces,
        pokes: w.pokes.clone(),
        workload: w.name.clone(),
    };
    (set, sys.report())
}

#[test]
fn replay_is_bit_identical_across_toggles_and_workers() {
    for (name, w) in &matrix() {
        let (exec_report, exec_sys) = exec_reference(w);
        let (set, rec_report) = record(w);
        compare_reports(&exec_report, &rec_report)
            .unwrap_or_else(|d| panic!("{name}: recording perturbed the run: {d}"));

        for skip in [true, false] {
            for active in [true, false] {
                for workers in [1usize, 2, 4, 8] {
                    let label = format!("{name} skip={skip} active_set={active} workers={workers}");
                    let mut sys = System::replay(cfg(), &set);
                    sys.set_skip_enabled(skip);
                    sys.set_active_set_enabled(active);
                    sys.run_with_workers(MAX_CYCLES, workers)
                        .unwrap_or_else(|e| panic!("{label}: {e}"));
                    compare_reports(&exec_report, &sys.report())
                        .unwrap_or_else(|d| panic!("{label}: {d}"));
                    compare_memory(&exec_sys, &sys, addrs(w))
                        .unwrap_or_else(|d| panic!("{label}: {d}"));
                }
            }
        }
    }
}

#[test]
fn replay_event_trace_matches_exec_serially() {
    for (name, w) in &matrix() {
        let (set, _) = record(w);

        let exec_tracer = Tracer::new(ChromeTraceSink::new());
        let mut exec_sys = System::traced(cfg(), w.progs.clone(), exec_tracer.clone());
        for &(addr, val) in &w.pokes {
            exec_sys.poke_word(addr, val);
        }
        exec_sys
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{name}: {e}"));

        let replay_tracer = Tracer::new(ChromeTraceSink::new());
        let mut replay_sys = System::replay_traced(cfg(), &set, replay_tracer.clone());
        replay_sys
            .run(MAX_CYCLES)
            .unwrap_or_else(|e| panic!("{name} (replay): {e}"));

        let exec_events = exec_tracer.with_sink(|s| s.events().to_vec());
        let replay_events = replay_tracer.with_sink(|s| s.events().to_vec());
        assert!(
            !exec_events.is_empty(),
            "{name}: traced exec run recorded no events"
        );
        compare_events(&exec_events, &replay_events)
            .unwrap_or_else(|d| panic!("{name}: event traces diverged: {d}"));
        compare_reports(&exec_sys.report(), &replay_sys.report())
            .unwrap_or_else(|d| panic!("{name} (traced): {d}"));
    }
}
