//! Failure injection and misuse: the hardware models must fail loudly
//! and diagnosably, not corrupt state.

use gline_cmp::base::config::{CmpConfig, GlineConfig, NocConfig};
use gline_cmp::base::stats::MsgClass;
use gline_cmp::base::{CoreId, Mesh2D};
use gline_cmp::cmp::System;
use gline_cmp::gline::{BarrierNetwork, ClusteredBarrierNetwork};
use gline_cmp::isa::assemble;
use gline_cmp::noc::{Message, Noc};

/// Electrical violation: a mesh wider than the transmitter budget at
/// unit line latency must be rejected at construction.
#[test]
#[should_panic(expected = "G-line budget")]
fn oversized_mesh_rejected() {
    let _ = BarrierNetwork::new(Mesh2D::new(9, 9), GlineConfig::default());
}

/// The strict published budget (6 transmitters) rejects even the paper's
/// own 4×8 machine — the inconsistency documented in DESIGN.md.
#[test]
#[should_panic(expected = "G-line budget")]
fn strict_budget_rejects_papers_own_mesh() {
    let cfg = GlineConfig {
        max_transmitters: 6,
        ..GlineConfig::default()
    };
    let _ = BarrierNetwork::new(Mesh2D::new(4, 8), cfg);
}

/// Meshes needing three G-line levels are out of scope and must say so.
#[test]
#[should_panic(expected = "more than two G-line levels")]
fn three_level_cluster_rejected() {
    let _ = ClusteredBarrierNetwork::new(Mesh2D::new(70, 70), GlineConfig::default());
}

/// Misuse: a zero arrival write is a programming error (the paper's
/// protocol encodes arrival as "nonzero").
#[test]
#[should_panic(expected = "nonzero")]
fn zero_bar_reg_write_rejected() {
    let mut net = BarrierNetwork::new(Mesh2D::new(2, 2), GlineConfig::default());
    net.write_bar_reg(CoreId(0), 0, 0);
}

/// Misuse: triggering a gated release before the barrier completed.
#[test]
#[should_panic(expected = "trigger_release")]
fn premature_gated_release_rejected() {
    let mut net = BarrierNetwork::with_gated_root(Mesh2D::new(2, 2), GlineConfig::default(), true);
    net.trigger_release(0);
}

/// A core that never reaches the barrier hangs the others; the system
/// run must time out with a diagnosable error instead of spinning
/// forever.
#[test]
fn missing_participant_reported_by_deadlock_guard() {
    let arrive = assemble("li r1, 1\nbarw r1\nw: barr r2\nbne r2, r0, w\nhalt").unwrap();
    let never = assemble("busy 100\nhalt").unwrap(); // halts without barw
    let cfg = CmpConfig::icpp2010_with_cores(4);
    let mut sys = System::new(cfg, vec![arrive.clone(), arrive.clone(), arrive, never]);
    let err = sys.run(50_000).unwrap_err();
    assert!(err.contains("did not halt"), "{err}");
    assert!(err.contains("core0"), "stuck cores must be named: {err}");
    assert!(!err.contains("core3"), "the defector halted fine: {err}");
}

/// The NoC watchdog names the stuck packet instead of hanging silently.
#[test]
#[should_panic(expected = "watchdog")]
fn noc_watchdog_fires() {
    let mut noc: Noc<u8> = Noc::new(Mesh2D::new(1, 2), NocConfig::default());
    noc.set_watchdog(0);
    for _ in 0..10_000 {
        noc.send(Message {
            src: CoreId(0),
            dst: CoreId(1),
            class: MsgClass::Request,
            payload_bytes: 64,
            payload: 0,
        });
    }
    for _ in 0..5000 {
        noc.tick();
    }
}

/// Unaligned accesses fault in the memory system rather than silently
/// truncating.
#[test]
#[should_panic(expected = "unaligned")]
fn unaligned_access_faults() {
    let prog = assemble("li r1, 4\nld r2, 0(r1)\nhalt").unwrap();
    let mut sys = System::homogeneous(CmpConfig::icpp2010_with_cores(2), prog);
    let _ = sys.run(1000);
}

/// Program bugs that jump outside the text segment are caught.
#[test]
#[should_panic(expected = "bad pc")]
fn wild_jump_caught() {
    let prog = assemble("li r1, 999\njalr r0, r1\nhalt").unwrap();
    let mut sys = System::homogeneous(CmpConfig::icpp2010_with_cores(1), prog);
    let _ = sys.run(1000);
}

/// A barrier network survives cores re-entering immediately (no settle
/// cycles between episodes).
#[test]
fn immediate_reentry_is_safe() {
    let mesh = Mesh2D::new(2, 2);
    let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
    for _ in 0..50 {
        for i in 0..4 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        // Tick only until released, then immediately re-enter.
        let mut guard = 0;
        while !net.all_released(0) {
            net.tick();
            guard += 1;
            assert!(guard < 20);
        }
    }
    assert_eq!(net.stats(0).barriers_completed, 50);
    assert_eq!(net.stats(0).mean_latency(), 4.0);
}
