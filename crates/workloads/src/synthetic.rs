//! The synthetic barrier-latency benchmark of §4.2 / Figure 5.
//!
//! Following the methodology the paper borrows from Culler, Singh &
//! Gupta: *"performance is measured as average time per barrier over a
//! loop of four consecutive barriers with no work or delays between
//! them"*. The paper executes the loop 100 000 times; tests and the
//! figure harness use fewer iterations — the per-barrier average
//! converges within a handful.

use crate::common::{barrier_env, Workload};
use sim_cmp::runtime::BarrierKind;
use sim_isa::{ProgBuilder, Reg};

/// Barriers per loop iteration (fixed by the methodology).
pub const BARRIERS_PER_ITER: u64 = 4;

/// Builds the synthetic benchmark: `iters` × 4 back-to-back barriers.
pub fn build(n_cores: usize, kind: BarrierKind, iters: u64) -> Workload {
    assert!(iters >= 1);
    let env = barrier_env(kind, n_cores);
    let progs = (0..n_cores)
        .map(|c| {
            let mut b = ProgBuilder::new();
            let iter_reg = Reg(10);
            b.li(iter_reg, iters as i64);
            b.label("loop");
            for k in 0..BARRIERS_PER_ITER {
                env.emit(&mut b, c, &format!("k{k}"));
            }
            b.addi(iter_reg, iter_reg, -1);
            b.bne(iter_reg, Reg::ZERO, "loop");
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "Synthetic".into(),
        progs,
        pokes: Vec::new(),
        barriers_per_core: iters * BARRIERS_PER_ITER,
        kind,
    }
}

/// Average cycles per barrier for a finished run of `build(...)`.
pub fn cycles_per_barrier(total_cycles: u64, iters: u64) -> f64 {
    total_cycles as f64 / (iters * BARRIERS_PER_ITER) as f64
}

/// The imbalanced variant: before each barrier, core `c` computes for
/// `c * stagger` cycles, so the cores arrive spread out in time and the
/// early arrivals sit in the barrier's wait loop. This is the shape of a
/// real barrier-period — compute with load imbalance, then
/// synchronization — and makes the run's cost be dominated by barrier
/// *waiting* rather than by arrival contention, the regime the
/// quiescence-skipping scheduler targets (and the one Figure 6's
/// application runs live in).
pub fn build_imbalanced(n_cores: usize, kind: BarrierKind, iters: u64, stagger: u32) -> Workload {
    assert!(iters >= 1);
    let env = barrier_env(kind, n_cores);
    let progs = (0..n_cores)
        .map(|c| {
            let mut b = ProgBuilder::new();
            let iter_reg = Reg(10);
            b.li(iter_reg, iters as i64);
            b.label("loop");
            for k in 0..BARRIERS_PER_ITER {
                if c > 0 {
                    b.busy(c as u32 * stagger);
                }
                env.emit(&mut b, c, &format!("k{k}"));
            }
            b.addi(iter_reg, iter_reg, -1);
            b.bne(iter_reg, Reg::ZERO, "loop");
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "Synthetic-imbalanced".into(),
        progs,
        pokes: Vec::new(),
        barriers_per_core: iters * BARRIERS_PER_ITER,
        kind,
    }
}

/// The compute-bearing variant: between barriers every core runs a
/// private read-modify-write loop (`ld; addi; st; addi; bne` over its
/// own cache line — `work` iterations, all L1 hits after the cold
/// miss). Unlike [`build`]'s empty barrier loop, the cores here are
/// *live* most of the time: the load/branch shape matches no spin
/// pattern, so no core parks and no cycle skips, which makes this the
/// workload where a parallel engine has actual per-cycle work to
/// divide (the `parallel_engine` bench's contended shape). `stagger`
/// adds `c * stagger` busy cycles before each barrier (0 = balanced).
pub fn build_compute(
    n_cores: usize,
    kind: BarrierKind,
    iters: u64,
    work: u32,
    stagger: u32,
) -> Workload {
    assert!(iters >= 1 && work >= 1);
    let env = barrier_env(kind, n_cores);
    let slot = |c: usize| 0x100000 + c as u64 * 64;
    let progs = (0..n_cores)
        .map(|c| {
            let mut b = ProgBuilder::new();
            let iter_reg = Reg(10);
            b.li(iter_reg, iters as i64);
            b.label("loop");
            for k in 0..BARRIERS_PER_ITER {
                b.li(Reg(5), work as i64).li(Reg(2), slot(c) as i64);
                let inner = format!("c{k}");
                b.label(&inner)
                    .ld(Reg(3), 0, Reg(2))
                    .addi(Reg(3), Reg(3), 1)
                    .st(Reg(3), 0, Reg(2))
                    .addi(Reg(5), Reg(5), -1)
                    .bne(Reg(5), Reg::ZERO, &inner);
                if stagger > 0 && c > 0 {
                    b.busy(c as u32 * stagger);
                }
                env.emit(&mut b, c, &format!("k{k}"));
            }
            b.addi(iter_reg, iter_reg, -1);
            b.bne(iter_reg, Reg::ZERO, "loop");
            b.halt();
            b.build()
        })
        .collect();
    Workload {
        name: "Synthetic-compute".into(),
        progs,
        pokes: Vec::new(),
        barriers_per_core: iters * BARRIERS_PER_ITER,
        kind,
    }
}

/// The parallel-engine bench matrix: for every barrier implementation,
/// the compute-bearing contended variant (balanced arrival, every core
/// live — the regime where sharding the tick pays) and the
/// compute-bearing imbalanced variant (staggered arrival — shard load
/// imbalance plus wait time). Labels follow [`barrier_matrix`]'s
/// convention and are stable and unique within this matrix.
pub fn compute_matrix(
    n_cores: usize,
    iters: u64,
    work: u32,
    stagger: u32,
) -> Vec<(&'static str, Workload)> {
    let mut out = Vec::new();
    for kind in BarrierKind::ALL {
        let (contended, imbalanced) = match kind {
            BarrierKind::Gl => ("contended GL", "imbalanced GL"),
            BarrierKind::Csw => ("contended CSW", "imbalanced CSW"),
            BarrierKind::Dsw => ("contended DSW", "imbalanced DSW"),
        };
        out.push((contended, build_compute(n_cores, kind, iters, work, 0)));
        out.push((
            imbalanced,
            build_compute(n_cores, kind, iters, work, stagger),
        ));
    }
    out
}

/// The scheduler-bench matrix: for every barrier implementation
/// (GL, CSW, DSW), the contended variant (back-to-back barriers, all
/// cores arriving together — the coherence-bound regime) and the
/// imbalanced variant (staggered arrivals — the wait-bound regime).
/// Each entry is `(label, workload)`; labels are stable and unique, so
/// benches and sweep jobs can key results by them.
pub fn barrier_matrix(n_cores: usize, iters: u64, stagger: u32) -> Vec<(&'static str, Workload)> {
    let mut out = Vec::new();
    for kind in BarrierKind::ALL {
        let (contended, imbalanced) = match kind {
            BarrierKind::Gl => ("contended GL", "imbalanced GL"),
            BarrierKind::Csw => ("contended CSW", "imbalanced CSW"),
            BarrierKind::Dsw => ("contended DSW", "imbalanced DSW"),
        };
        out.push((contended, build(n_cores, kind, iters)));
        out.push((imbalanced, build_imbalanced(n_cores, kind, iters, stagger)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::CmpConfig;

    fn run(kind: BarrierKind, n: usize, iters: u64) -> f64 {
        let w = build(n, kind, iters);
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(n));
        let cycles = sys.run(100_000_000).expect("run completes");
        if kind == BarrierKind::Gl {
            assert_eq!(sys.report().gl_barriers, iters * BARRIERS_PER_ITER);
        }
        cycles_per_barrier(cycles, iters)
    }

    #[test]
    fn barrier_matrix_covers_every_kind_and_shape() {
        let m = barrier_matrix(4, 2, 100);
        assert_eq!(m.len(), 6);
        let labels: Vec<_> = m.iter().map(|(l, _)| *l).collect();
        for l in [
            "contended GL",
            "imbalanced GL",
            "contended CSW",
            "imbalanced CSW",
            "contended DSW",
            "imbalanced DSW",
        ] {
            assert!(labels.contains(&l), "missing {l}");
        }
        for (_, w) in &m {
            assert_eq!(w.progs.len(), 4);
        }
    }

    #[test]
    fn compute_variant_counts_and_stays_live() {
        let (n, iters, work) = (4, 3u64, 25u32);
        let w = build_compute(n, BarrierKind::Gl, iters, work, 0);
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(n));
        sys.run(10_000_000).expect("run completes");
        for c in 0..n {
            assert_eq!(
                sys.peek_word(0x100000 + c as u64 * 64),
                iters * BARRIERS_PER_ITER * work as u64,
                "core {c}'s private counter"
            );
        }
        // The point of the variant: cores execute instead of parking,
        // so the mean active-core occupancy is a large fraction of n.
        let occ = sys.core_sched_stats().mean_active_cores();
        assert!(occ > n as f64 * 0.5, "cores mostly live, got {occ:.2}");
        assert_eq!(compute_matrix(4, 2, 10, 100).len(), 6);
    }

    #[test]
    fn gl_latency_is_small_and_flat() {
        let at4 = run(BarrierKind::Gl, 4, 20);
        let at16 = run(BarrierKind::Gl, 16, 20);
        // Per barrier: ~4 network cycles + the spin/exit instructions.
        assert!(at4 < 20.0, "GL at 4 cores: {at4}");
        assert!(at16 < 20.0, "GL at 16 cores: {at16}");
        assert!(
            (at16 - at4).abs() < 4.0,
            "GL must be ~flat in core count: {at4} vs {at16}"
        );
    }

    #[test]
    fn software_barriers_grow_with_cores() {
        let csw4 = run(BarrierKind::Csw, 4, 5);
        let csw16 = run(BarrierKind::Csw, 16, 5);
        assert!(
            csw16 > 2.0 * csw4,
            "CSW must blow up with cores: {csw4} → {csw16}"
        );
        let dsw4 = run(BarrierKind::Dsw, 4, 5);
        let dsw16 = run(BarrierKind::Dsw, 16, 5);
        assert!(
            dsw16 > dsw4,
            "DSW grows too (logarithmically): {dsw4} → {dsw16}"
        );
        // The Figure-5 ordering at 16 cores.
        let gl16 = run(BarrierKind::Gl, 16, 5);
        assert!(
            gl16 < dsw16 && dsw16 < csw16,
            "GL {gl16} < DSW {dsw16} < CSW {csw16}"
        );
    }
}
