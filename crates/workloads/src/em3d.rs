//! EM3D — electromagnetic wave propagation on a bipartite graph (the
//! Split-C benchmark, shared-memory version).
//!
//! E-nodes are updated from their H-node neighbours and vice versa, with
//! a barrier between the two half-steps — the most barrier-dense *application*
//! in Table 2 (period 3 673 cycles), which is why the paper's EM3D shows
//! the largest application speedup (54%).
//!
//! Nodes are partitioned contiguously across cores; each node's
//! neighbours are drawn from the owner's own partition except with
//! probability `pct_remote` (paper: 15%), mirroring the benchmark's
//! `% remote` knob. The neighbour lists are static, so the generator
//! bakes the addresses into the instruction stream.

use crate::common::{barrier_env, chunk_range, Layout, Workload, DATA_BASE};
use sim_base::rng::SplitMix64;
use sim_cmp::runtime::BarrierKind;
use sim_isa::{ProgBuilder, Reg};

/// EM3D parameters.
#[derive(Clone, Copy, Debug)]
pub struct Em3dParams {
    /// Nodes per class (E and H each; paper: 38 400 total → 19 200 each).
    pub nodes: usize,
    /// Neighbours per node (paper: 2).
    pub degree: usize,
    /// Probability a neighbour lives on another core (paper: 0.15).
    pub pct_remote: f64,
    /// Time steps (paper: 25).
    pub steps: u64,
    /// Graph seed.
    pub seed: u64,
}

impl Em3dParams {
    /// The paper's configuration (38 400 nodes, degree 2, 15%, 25 steps).
    pub fn paper() -> Em3dParams {
        Em3dParams {
            nodes: 19_200,
            degree: 2,
            pct_remote: 0.15,
            steps: 25,
            seed: 0xE3D,
        }
    }

    /// Scaled-down configuration.
    pub fn scaled(nodes: usize, steps: u64) -> Em3dParams {
        Em3dParams {
            nodes,
            degree: 2,
            pct_remote: 0.15,
            steps,
            seed: 0xE3D,
        }
    }
}

/// The generated graph: neighbour indices per node, per class.
fn graph(p: Em3dParams, n_cores: usize) -> Vec<Vec<usize>> {
    let mut r = SplitMix64::new(p.seed);
    (0..p.nodes)
        .map(|i| {
            let owner = (0..n_cores)
                .find(|&c| chunk_range(p.nodes, n_cores, c).contains(&i))
                .expect("every node has an owner");
            (0..p.degree)
                .map(|_| {
                    if r.chance(p.pct_remote) || chunk_range(p.nodes, n_cores, owner).is_empty() {
                        r.next_below(p.nodes as u64) as usize
                    } else {
                        let own = chunk_range(p.nodes, n_cores, owner);
                        own.start + r.next_below(own.len() as u64) as usize
                    }
                })
                .collect()
        })
        .collect()
}

/// Builds EM3D: `steps` × (E half-step, barrier, H half-step, barrier).
pub fn build(n_cores: usize, kind: BarrierKind, p: Em3dParams) -> Workload {
    assert!(p.nodes >= n_cores);
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    let e_vals = lay.alloc_words(p.nodes as u64);
    let h_vals = lay.alloc_words(p.nodes as u64);

    // Two independent bipartite halves: E nodes read H values and vice
    // versa. Same topology generator, different streams.
    let e_nbrs = graph(
        Em3dParams {
            seed: p.seed ^ 1,
            ..p
        },
        n_cores,
    );
    let h_nbrs = graph(
        Em3dParams {
            seed: p.seed ^ 2,
            ..p
        },
        n_cores,
    );

    let mut pokes = Vec::new();
    let mut r = SplitMix64::new(p.seed ^ 3);
    for i in 0..p.nodes as u64 {
        pokes.push((e_vals + i * 8, 1 + r.next_below(9)));
        pokes.push((h_vals + i * 8, 1 + r.next_below(9)));
    }

    let progs = (0..n_cores)
        .map(|c| {
            let mine = chunk_range(p.nodes, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, t1, t2, acc) = (Reg(10), Reg(1), Reg(2), Reg(3));
            b.li(it, p.steps as i64);
            b.label("step");
            // E half-step: e[i] = e[i] + Σ h[nbr].
            for i in mine.clone() {
                b.li(t1, (e_vals + i as u64 * 8) as i64).ld(acc, 0, t1);
                for &nb in &e_nbrs[i] {
                    b.li(t1, (h_vals + nb as u64 * 8) as i64)
                        .ld(t2, 0, t1)
                        .add(acc, acc, t2);
                }
                b.li(t1, (e_vals + i as u64 * 8) as i64).st(acc, 0, t1);
            }
            env.emit(&mut b, c, "e");
            // H half-step: h[i] = h[i] + Σ e[nbr].
            for i in mine.clone() {
                b.li(t1, (h_vals + i as u64 * 8) as i64).ld(acc, 0, t1);
                for &nb in &h_nbrs[i] {
                    b.li(t1, (e_vals + nb as u64 * 8) as i64)
                        .ld(t2, 0, t1)
                        .add(acc, acc, t2);
                }
                b.li(t1, (h_vals + i as u64 * 8) as i64).st(acc, 0, t1);
            }
            env.emit(&mut b, c, "h");
            b.addi(it, it, -1).bne(it, Reg::ZERO, "step").halt();
            b.build()
        })
        .collect();

    Workload {
        name: "EM3D".into(),
        progs,
        pokes,
        barriers_per_core: 2 * p.steps,
        kind,
    }
}

/// Host-side reference: final (e, h) values.
pub fn expected(p: Em3dParams, n_cores: usize) -> (Vec<u64>, Vec<u64>) {
    let e_nbrs = graph(
        Em3dParams {
            seed: p.seed ^ 1,
            ..p
        },
        n_cores,
    );
    let h_nbrs = graph(
        Em3dParams {
            seed: p.seed ^ 2,
            ..p
        },
        n_cores,
    );
    let mut r = SplitMix64::new(p.seed ^ 3);
    let mut e = Vec::with_capacity(p.nodes);
    let mut h = Vec::with_capacity(p.nodes);
    for _ in 0..p.nodes {
        e.push(1 + r.next_below(9));
        h.push(1 + r.next_below(9));
    }
    for _ in 0..p.steps {
        let eh = e.clone();
        for i in 0..p.nodes {
            let mut acc = eh[i];
            for &nb in &e_nbrs[i] {
                acc = acc.wrapping_add(h[nb]);
            }
            e[i] = acc;
        }
        let hh = h.clone();
        for i in 0..p.nodes {
            let mut acc = hh[i];
            for &nb in &h_nbrs[i] {
                acc = acc.wrapping_add(e[nb]);
            }
            h[i] = acc;
        }
    }
    (e, h)
}

/// Byte address of `e[i]` / `h[i]`.
pub fn e_addr(i: usize) -> u64 {
    DATA_BASE + i as u64 * 8
}

/// Byte address of `h[i]` for `nodes` total nodes.
pub fn h_addr(p: Em3dParams, i: usize) -> u64 {
    DATA_BASE + (p.nodes as u64 * 8).div_ceil(64) * 64 + i as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::CmpConfig;

    #[test]
    fn matches_reference_model() {
        let p = Em3dParams::scaled(48, 3);
        for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
            let w = build(4, kind, p);
            let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
            sys.run(50_000_000).unwrap();
            let (e, h) = expected(p, 4);
            for i in [0usize, 13, 47] {
                assert_eq!(sys.peek_word(e_addr(i)), e[i], "{kind:?} e[{i}]");
                assert_eq!(sys.peek_word(h_addr(p, i)), h[i], "{kind:?} h[{i}]");
            }
        }
    }

    #[test]
    fn e_half_step_is_ordered_by_the_barrier() {
        // Without a correct barrier the H half-step would read stale E
        // values; the reference model check above covers it, this checks
        // the barrier count instrumented by the network.
        let p = Em3dParams::scaled(32, 4);
        let w = build(4, BarrierKind::Gl, p);
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
        sys.run(50_000_000).unwrap();
        assert_eq!(sys.report().gl_barriers, 8);
    }

    #[test]
    fn remote_fraction_materializes() {
        let p = Em3dParams {
            pct_remote: 0.5,
            ..Em3dParams::scaled(400, 1)
        };
        let g = graph(p, 4);
        let mut remote = 0;
        let mut total = 0;
        for (i, nbrs) in g.iter().enumerate() {
            let own = chunk_range(p.nodes, 4, i * 4 / p.nodes);
            for &nb in nbrs {
                total += 1;
                if !own.contains(&nb) {
                    remote += 1;
                }
            }
        }
        let frac = remote as f64 / total as f64;
        // 50% forced remote plus random hits elsewhere.
        assert!(frac > 0.3 && frac < 0.8, "remote fraction {frac}");
    }
}
