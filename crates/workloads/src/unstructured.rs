//! UNSTRUCTURED — a computational fluid dynamics kernel over an
//! irregular mesh (Mukherjee et al.), modelled as its characteristic
//! loop: edge sweeps that scatter updates into the two endpoint nodes
//! under per-node locks, with barriers between phases.
//!
//! This is the paper's lock-heavy workload: Table 2 gives it only 80
//! barriers with a 67 361-cycle period, and Figure 6 shows a visible
//! `Lock` component. Its barrier-implementation sensitivity is small
//! (3%) — which the reproduction should also show.

use crate::common::{barrier_env, chunk_range, Layout, Workload, DATA_BASE};
use sim_base::rng::SplitMix64;
use sim_cmp::runtime::{emit_lock, emit_unlock, BarrierKind};
use sim_isa::{ProgBuilder, Reg};

/// UNSTRUCTURED parameters.
#[derive(Clone, Copy, Debug)]
pub struct UnstructuredParams {
    /// Mesh nodes (paper's Mesh.2K: ~2 000).
    pub nodes: usize,
    /// Mesh edges (Mesh.2K is roughly 3× the nodes).
    pub edges: usize,
    /// Edge sweeps, each ending in a barrier (paper: 80 barriers for one
    /// time step across its internal phases).
    pub sweeps: u64,
    /// Busy cycles of per-edge computation before the scatter.
    pub edge_busy: u32,
    /// Mesh seed.
    pub seed: u64,
}

impl UnstructuredParams {
    /// The paper's configuration (Mesh.2K, one time step).
    pub fn paper() -> UnstructuredParams {
        UnstructuredParams {
            nodes: 2048,
            edges: 6144,
            sweeps: 80,
            edge_busy: 24,
            seed: 0x057,
        }
    }

    /// Scaled-down configuration.
    pub fn scaled(nodes: usize, edges: usize, sweeps: u64) -> UnstructuredParams {
        UnstructuredParams {
            nodes,
            edges,
            sweeps,
            edge_busy: 24,
            seed: 0x057,
        }
    }
}

fn mesh(p: UnstructuredParams) -> Vec<(usize, usize)> {
    let mut r = SplitMix64::new(p.seed);
    (0..p.edges)
        .map(|_| {
            let a = r.next_below(p.nodes as u64) as usize;
            let mut b = r.next_below(p.nodes as u64) as usize;
            if b == a {
                b = (a + 1) % p.nodes;
            }
            (a, b)
        })
        .collect()
}

/// Builds UNSTRUCTURED: `sweeps` × (my edges: compute, lock+scatter to
/// both endpoints; barrier).
pub fn build(n_cores: usize, kind: BarrierKind, p: UnstructuredParams) -> Workload {
    assert!(p.nodes >= 2);
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    // Node values and locks each get a full line to avoid false sharing
    // between unrelated lock holders.
    let vals = lay.alloc_padded_slots(p.nodes as u64);
    let locks = lay.alloc_padded_slots(p.nodes as u64);
    let edges = mesh(p);

    let pokes = Vec::new(); // all-zero initial values

    let progs = (0..n_cores)
        .map(|c| {
            let mine = chunk_range(p.edges, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, t1, t2) = (Reg(10), Reg(1), Reg(2));
            b.li(it, p.sweeps as i64);
            b.label("sweep");
            for e in mine.clone() {
                let (na, nb) = edges[e];
                // Per-edge "flux" computation.
                if p.edge_busy > 0 {
                    b.busy(p.edge_busy);
                }
                // Scatter into both endpoints under their locks, one at a
                // time (no hold-and-wait → no deadlock).
                for (side, node) in [(0, na), (1, nb)] {
                    let lock_addr = locks + node as u64 * 64;
                    let val_addr = vals + node as u64 * 64;
                    emit_lock(&mut b, lock_addr, &format!("e{e}s{side}"));
                    b.li(t1, val_addr as i64)
                        .ld(t2, 0, t1)
                        .addi(t2, t2, 1)
                        .st(t2, 0, t1);
                    emit_unlock(&mut b, lock_addr);
                }
            }
            env.emit(&mut b, c, "s");
            b.addi(it, it, -1).bne(it, Reg::ZERO, "sweep").halt();
            b.build()
        })
        .collect();

    Workload {
        name: "UNSTRUCTURED".into(),
        progs,
        pokes,
        barriers_per_core: p.sweeps,
        kind,
    }
}

/// Host-side reference: final value of node `i` = sweeps × its degree.
pub fn expected_node(p: UnstructuredParams, i: usize) -> u64 {
    let degree = mesh(p).iter().filter(|&&(a, b)| a == i || b == i).count() as u64
        + mesh(p).iter().filter(|&&(a, b)| a == i && b == i).count() as u64;
    degree * p.sweeps
}

/// Byte address of node `i`'s value.
pub fn node_addr(i: usize) -> u64 {
    DATA_BASE + i as u64 * 64
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::CmpConfig;
    use sim_base::stats::TimeCat;

    #[test]
    fn scatter_updates_are_atomic_under_locks() {
        let p = UnstructuredParams {
            edge_busy: 2,
            ..UnstructuredParams::scaled(12, 48, 3)
        };
        for kind in [BarrierKind::Gl, BarrierKind::Csw] {
            let w = build(4, kind, p);
            let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
            sys.run(100_000_000).unwrap();
            for i in 0..p.nodes {
                assert_eq!(
                    sys.peek_word(node_addr(i)),
                    expected_node(p, i),
                    "{kind:?} node {i}"
                );
            }
        }
    }

    #[test]
    fn lock_time_is_attributed() {
        let p = UnstructuredParams {
            edge_busy: 2,
            ..UnstructuredParams::scaled(8, 32, 2)
        };
        let w = build(4, BarrierKind::Gl, p);
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
        sys.run(100_000_000).unwrap();
        let rep = sys.report();
        assert!(
            rep.total_time[TimeCat::Lock] > 0,
            "contended per-node locks must show up"
        );
    }
}
