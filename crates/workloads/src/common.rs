//! Shared plumbing for workload generators.

use gline_core::BarrierHw;
use sim_base::config::CmpConfig;
use sim_cmp::runtime::{BarrierEnv, BarrierKind};
use sim_cmp::System;
use sim_isa::Program;

/// Base address of barrier shared variables.
pub const BARRIER_BASE: u64 = 0x1_0000;

/// Base address of workload data.
pub const DATA_BASE: u64 = 0x10_0000;

/// A generated benchmark: one program per core plus its initial memory
/// image and metadata.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Benchmark name (Table 2 spelling).
    pub name: String,
    /// One program per core.
    pub progs: Vec<Program>,
    /// Initial memory image: (byte address, value) pairs.
    pub pokes: Vec<(u64, u64)>,
    /// Barrier episodes each core executes.
    pub barriers_per_core: u64,
    /// Barrier implementation baked into the programs.
    pub kind: BarrierKind,
}

impl Workload {
    /// Instantiates the workload on a machine. `cfg.num_cores()` must
    /// match the core count the workload was generated for.
    pub fn into_system(&self, cfg: CmpConfig) -> System {
        assert!(
            !cfg.needs_clustered_gline(),
            "mesh exceeds the flat G-line budget; use into_system_with_hw \
             with a ClusteredBarrierNetwork"
        );
        self.into_system_with_hw(cfg, gline_core::BarrierNetwork::new(cfg.mesh, cfg.gline))
    }

    /// Instantiates the workload on a machine with explicit barrier
    /// hardware — the clustered network for meshes beyond the flat
    /// G-line budget, or any other [`BarrierHw`] implementation.
    pub fn into_system_with_hw<B: BarrierHw>(&self, cfg: CmpConfig, hw: B) -> System<B> {
        assert_eq!(
            cfg.num_cores(),
            self.progs.len(),
            "workload built for a different core count"
        );
        let mut sys = System::with_barrier_hw(cfg, self.progs.clone(), hw);
        for &(addr, val) in &self.pokes {
            sys.poke_word(addr, val);
        }
        sys
    }

    /// Total dynamic barrier count of a full run (`#Barriers` in the
    /// paper's Table 2 counts episodes, not per-core arrivals).
    pub fn total_barriers(&self) -> u64 {
        self.barriers_per_core
    }
}

/// A cache-line-granular bump allocator for laying out workload data.
#[derive(Clone, Debug)]
pub struct Layout {
    next: u64,
}

impl Layout {
    /// Starts allocating at `base` (line aligned).
    pub fn new(base: u64) -> Layout {
        assert_eq!(base % 64, 0);
        Layout { next: base }
    }

    /// Allocates `bytes`, rounded up to whole cache lines. Returns the
    /// base address.
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        self.next += bytes.div_ceil(64) * 64;
        base
    }

    /// Allocates an array of `n` words, line-rounded.
    pub fn alloc_words(&mut self, n: u64) -> u64 {
        self.alloc(n * 8)
    }

    /// Allocates `n` slots of one full line each (padded scalars that
    /// must not falsely share).
    pub fn alloc_padded_slots(&mut self, n: u64) -> u64 {
        self.alloc(n * 64)
    }

    /// First unallocated address.
    pub fn end(&self) -> u64 {
        self.next
    }
}

/// Builds the barrier environment at the standard location.
pub fn barrier_env(kind: BarrierKind, n_cores: usize) -> BarrierEnv {
    BarrierEnv::new(kind, n_cores, BARRIER_BASE)
}

/// Splits `n` items into per-core contiguous ranges, spreading the
/// remainder over the first cores.
pub fn chunk_range(n: usize, cores: usize, core: usize) -> std::ops::Range<usize> {
    let base = n / cores;
    let rem = n % cores;
    let start = core * base + core.min(rem);
    let len = base + usize::from(core < rem);
    start..start + len
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_line_granular() {
        let mut l = Layout::new(DATA_BASE);
        let a = l.alloc_words(3); // 24 bytes → 1 line
        let b = l.alloc_words(9); // 72 bytes → 2 lines
        let c = l.alloc_padded_slots(4);
        assert_eq!(a, DATA_BASE);
        assert_eq!(b, DATA_BASE + 64);
        assert_eq!(c, DATA_BASE + 64 + 128);
        assert_eq!(l.end(), c + 4 * 64);
    }

    #[test]
    fn chunks_cover_everything_exactly_once() {
        for n in [0usize, 1, 31, 32, 33, 1024, 1000] {
            for cores in [1usize, 2, 7, 32] {
                let mut seen = vec![false; n];
                for c in 0..cores {
                    for i in chunk_range(n, cores, c) {
                        assert!(!seen[i], "item {i} assigned twice");
                        seen[i] = true;
                    }
                }
                assert!(
                    seen.iter().all(|&s| s),
                    "n={n} cores={cores} left items unassigned"
                );
            }
        }
    }

    #[test]
    fn chunks_are_balanced() {
        for c in 0..32 {
            let r = chunk_range(1000, 32, c);
            assert!(r.len() == 31 || r.len() == 32);
        }
    }
}
