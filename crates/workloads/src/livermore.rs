//! Livermore loops 2, 3 and 6 (the paper's §4.2 selection, following
//! Sampson et al.).
//!
//! * **Kernel 2** — excerpt from an incomplete Cholesky conjugate
//!   gradient: an element-wise array update, one barrier per outer
//!   iteration.
//! * **Kernel 3** — inner product: partials accumulate in registers (the
//!   loop body contains *no stores*, which the paper leans on when
//!   discussing Figure 6), one barrier per iteration.
//! * **Kernel 6** — a general linear recurrence: `w[i]` depends on all
//!   `w[k], k < i`, so there is one barrier per element per iteration —
//!   the most barrier-hungry kernel of Table 2.
//!
//! All arithmetic is integer (wrapping); the kernels' role in the paper
//! is their memory-access and barrier structure, not their numerics.

use crate::common::{barrier_env, chunk_range, Layout, Workload, DATA_BASE};
use sim_base::rng::SplitMix64;
use sim_cmp::runtime::BarrierKind;
use sim_isa::{ProgBuilder, Reg};

/// Parameters shared by the three kernels.
#[derive(Clone, Copy, Debug)]
pub struct KernelParams {
    /// Array length (paper: 1024).
    pub elements: usize,
    /// Outer iterations (paper: 1000).
    pub iters: u64,
    /// Seed for the input arrays.
    pub seed: u64,
}

impl KernelParams {
    /// The paper's full-size configuration.
    pub fn paper() -> KernelParams {
        KernelParams {
            elements: 1024,
            iters: 1000,
            seed: 0xD1CE,
        }
    }

    /// A scaled configuration for tests and quick harness runs.
    pub fn scaled(elements: usize, iters: u64) -> KernelParams {
        KernelParams {
            elements,
            iters,
            seed: 0xD1CE,
        }
    }
}

fn input(seed: u64, stream: u64, len: usize) -> Vec<u64> {
    let mut r = SplitMix64::new(seed ^ (stream << 32));
    (0..len).map(|_| 1 + r.next_below(7)).collect()
}

/// Kernel 2: `x[k] = x[k] - v[k] * y[k]` over each core's chunk, barrier
/// per iteration.
pub fn kernel2(n_cores: usize, kind: BarrierKind, p: KernelParams) -> Workload {
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    let x = lay.alloc_words(p.elements as u64);
    let v = lay.alloc_words(p.elements as u64);
    let y = lay.alloc_words(p.elements as u64);

    let mut pokes = Vec::new();
    for (i, val) in input(p.seed, 1, p.elements).into_iter().enumerate() {
        pokes.push((x + i as u64 * 8, val));
    }
    for (i, val) in input(p.seed, 2, p.elements).into_iter().enumerate() {
        pokes.push((v + i as u64 * 8, val));
    }
    for (i, val) in input(p.seed, 3, p.elements).into_iter().enumerate() {
        pokes.push((y + i as u64 * 8, val));
    }

    let progs = (0..n_cores)
        .map(|c| {
            let r = chunk_range(p.elements, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, px, pv, py, cnt, t1, t2, t3) = (
                Reg(10),
                Reg(11),
                Reg(12),
                Reg(13),
                Reg(14),
                Reg(1),
                Reg(2),
                Reg(3),
            );
            b.li(it, p.iters as i64);
            b.label("outer");
            if !r.is_empty() {
                b.li(px, (x + r.start as u64 * 8) as i64)
                    .li(pv, (v + r.start as u64 * 8) as i64)
                    .li(py, (y + r.start as u64 * 8) as i64)
                    .li(cnt, r.len() as i64)
                    .label("inner")
                    .ld(t1, 0, pv)
                    .ld(t2, 0, py)
                    .mul(t3, t1, t2)
                    .ld(t1, 0, px)
                    .alu(sim_isa::inst::AluOp::Sub, t1, t1, t3)
                    .st(t1, 0, px)
                    .addi(px, px, 8)
                    .addi(pv, pv, 8)
                    .addi(py, py, 8)
                    .addi(cnt, cnt, -1)
                    .bne(cnt, Reg::ZERO, "inner");
            }
            env.emit(&mut b, c, "k2");
            b.addi(it, it, -1).bne(it, Reg::ZERO, "outer").halt();
            b.build()
        })
        .collect();

    Workload {
        name: "Kernel 2".into(),
        progs,
        pokes,
        barriers_per_core: p.iters,
        kind,
    }
}

/// Host-side reference for Kernel 2: final `x` array.
pub fn kernel2_expected(p: KernelParams) -> Vec<u64> {
    let mut x = input(p.seed, 1, p.elements);
    let v = input(p.seed, 2, p.elements);
    let y = input(p.seed, 3, p.elements);
    for _ in 0..p.iters {
        for k in 0..p.elements {
            x[k] = x[k].wrapping_sub(v[k].wrapping_mul(y[k]));
        }
    }
    x
}

/// Byte address of `x[k]` in the Kernel 2 layout.
pub fn kernel2_x_addr(k: usize) -> u64 {
    DATA_BASE + k as u64 * 8
}

/// Kernel 3: `q += z[k] * x[k]` accumulated in a register, barrier per
/// iteration; each core stores its partial once at the very end.
pub fn kernel3(n_cores: usize, kind: BarrierKind, p: KernelParams) -> Workload {
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    let z = lay.alloc_words(p.elements as u64);
    let x = lay.alloc_words(p.elements as u64);
    let partials = lay.alloc_padded_slots(n_cores as u64);

    let mut pokes = Vec::new();
    for (i, val) in input(p.seed, 4, p.elements).into_iter().enumerate() {
        pokes.push((z + i as u64 * 8, val));
    }
    for (i, val) in input(p.seed, 5, p.elements).into_iter().enumerate() {
        pokes.push((x + i as u64 * 8, val));
    }

    let progs = (0..n_cores)
        .map(|c| {
            let r = chunk_range(p.elements, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, pz, px, cnt, acc, t1, t2, t3) = (
                Reg(10),
                Reg(11),
                Reg(12),
                Reg(13),
                Reg(14),
                Reg(1),
                Reg(2),
                Reg(3),
            );
            b.li(it, p.iters as i64);
            b.label("outer");
            b.li(acc, 0);
            if !r.is_empty() {
                b.li(pz, (z + r.start as u64 * 8) as i64)
                    .li(px, (x + r.start as u64 * 8) as i64)
                    .li(cnt, r.len() as i64)
                    .label("inner")
                    .ld(t1, 0, pz)
                    .ld(t2, 0, px)
                    .mul(t3, t1, t2)
                    .add(acc, acc, t3)
                    .addi(pz, pz, 8)
                    .addi(px, px, 8)
                    .addi(cnt, cnt, -1)
                    .bne(cnt, Reg::ZERO, "inner");
            }
            env.emit(&mut b, c, "k3");
            b.addi(it, it, -1).bne(it, Reg::ZERO, "outer");
            // Store the last iteration's partial once, after the loop.
            b.li(t1, (partials + c as u64 * 64) as i64)
                .st(acc, 0, t1)
                .halt();
            b.build()
        })
        .collect();

    Workload {
        name: "Kernel 3".into(),
        progs,
        pokes,
        barriers_per_core: p.iters,
        kind,
    }
}

/// Host-side reference for Kernel 3: the full inner product.
pub fn kernel3_expected(p: KernelParams) -> u64 {
    let z = input(p.seed, 4, p.elements);
    let x = input(p.seed, 5, p.elements);
    z.iter()
        .zip(&x)
        .fold(0u64, |acc, (a, b)| acc.wrapping_add(a.wrapping_mul(*b)))
}

/// Byte address of core `c`'s Kernel 3 partial slot.
pub fn kernel3_partial_addr(_n_cores: usize, p: KernelParams, c: usize) -> u64 {
    let words = p.elements as u64 * 8;
    let lines = |bytes: u64| bytes.div_ceil(64) * 64;
    DATA_BASE + lines(words) + lines(words) + c as u64 * 64
}

/// Kernel 6: the general linear recurrence
/// `w[i] = b[i] + Σ_{k<i} w[k]·a[k]`, one barrier per element per
/// iteration. Each core keeps a private replica of `w` (updated from the
/// shared, padded partial slots), so the only shared traffic is the
/// barrier and the partials — the structure that gives K6 its huge
/// barrier count in Table 2.
pub fn kernel6(n_cores: usize, kind: BarrierKind, p: KernelParams) -> Workload {
    assert!(p.elements >= 2);
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    let a = lay.alloc_words(p.elements as u64);
    let bvec = lay.alloc_words(p.elements as u64);
    let partials = lay.alloc_padded_slots(n_cores as u64);
    let replicas: Vec<u64> = (0..n_cores)
        .map(|_| lay.alloc_words(p.elements as u64))
        .collect();

    let mut pokes = Vec::new();
    for (i, val) in input(p.seed, 6, p.elements).into_iter().enumerate() {
        pokes.push((a + i as u64 * 8, val));
    }
    for (i, val) in input(p.seed, 7, p.elements).into_iter().enumerate() {
        pokes.push((bvec + i as u64 * 8, val));
    }

    let progs = (0..n_cores)
        .map(|c| {
            let my_w = replicas[c];
            let my_range = chunk_range(p.elements, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, part, t1, t2, t3, sum) = (Reg(10), Reg(14), Reg(1), Reg(2), Reg(3), Reg(4));
            b.li(it, p.iters as i64);
            b.label("outer");
            // w[0] = b[0] in my replica; my running partial starts at 0.
            b.li(t1, bvec as i64)
                .ld(t2, 0, t1)
                .li(t1, my_w as i64)
                .st(t2, 0, t1)
                .li(part, 0);
            for i in 1..p.elements {
                let uniq = format!("i{i}");
                // If k = i-1 is mine, fold w[i-1]·a[i-1] into my partial.
                let k = i - 1;
                if my_range.contains(&k) {
                    b.li(t1, (my_w + k as u64 * 8) as i64)
                        .ld(t2, 0, t1)
                        .li(t1, (a + k as u64 * 8) as i64)
                        .ld(t3, 0, t1)
                        .mul(t2, t2, t3)
                        .add(part, part, t2);
                }
                // Publish my partial, synchronize, reduce everyone's.
                b.li(t1, (partials + c as u64 * 64) as i64).st(part, 0, t1);
                env.emit(&mut b, c, &uniq);
                b.li(t1, (bvec + i as u64 * 8) as i64).ld(sum, 0, t1);
                for peer in 0..n_cores {
                    b.li(t1, (partials + peer as u64 * 64) as i64)
                        .ld(t2, 0, t1)
                        .add(sum, sum, t2);
                }
                b.li(t1, (my_w + i as u64 * 8) as i64).st(sum, 0, t1);
            }
            b.addi(it, it, -1).bne(it, Reg::ZERO, "outer").halt();
            b.build()
        })
        .collect();

    Workload {
        name: "Kernel 6".into(),
        progs,
        pokes,
        barriers_per_core: p.iters * (p.elements as u64 - 1),
        kind,
    }
}

/// Host-side reference for Kernel 6: the final `w` array.
pub fn kernel6_expected(p: KernelParams) -> Vec<u64> {
    let a = input(p.seed, 6, p.elements);
    let bvec = input(p.seed, 7, p.elements);
    let mut w = vec![0u64; p.elements];
    w[0] = bvec[0];
    for i in 1..p.elements {
        let mut s = bvec[i];
        for k in 0..i {
            s = s.wrapping_add(w[k].wrapping_mul(a[k]));
        }
        w[i] = s;
    }
    w
}

/// Byte address of `w[k]` in core `c`'s Kernel 6 replica.
pub fn kernel6_w_addr(n_cores: usize, p: KernelParams, c: usize, k: usize) -> u64 {
    let arr = (p.elements as u64 * 8).div_ceil(64) * 64;
    let replica0 = DATA_BASE + 2 * arr + n_cores as u64 * 64;
    replica0 + c as u64 * arr + k as u64 * 8
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::CmpConfig;

    fn run(w: &Workload, n: usize) -> sim_cmp::System {
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(n));
        sys.run(200_000_000).expect("workload completes");
        sys
    }

    #[test]
    fn kernel2_matches_reference() {
        let p = KernelParams::scaled(64, 3);
        for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
            let w = kernel2(4, kind, p);
            let sys = run(&w, 4);
            let expect = kernel2_expected(p);
            for k in [0usize, 1, 31, 32, 63] {
                assert_eq!(
                    sys.peek_word(kernel2_x_addr(k)),
                    expect[k],
                    "{kind:?} x[{k}]"
                );
            }
        }
    }

    #[test]
    fn kernel3_matches_reference() {
        let p = KernelParams::scaled(64, 3);
        let expect_total = kernel3_expected(p);
        for kind in [BarrierKind::Gl, BarrierKind::Csw] {
            let w = kernel3(4, kind, p);
            let sys = run(&w, 4);
            let total: u64 = (0..4)
                .map(|c| sys.peek_word(kernel3_partial_addr(4, p, c)))
                .fold(0, u64::wrapping_add);
            assert_eq!(total, expect_total, "{kind:?}");
        }
    }

    #[test]
    fn kernel6_matches_reference() {
        let p = KernelParams::scaled(16, 2);
        let expect = kernel6_expected(p);
        for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
            let w = kernel6(4, kind, p);
            let sys = run(&w, 4);
            for c in 0..4 {
                for k in [0usize, 7, 15] {
                    assert_eq!(
                        sys.peek_word(kernel6_w_addr(4, p, c, k)),
                        expect[k],
                        "{kind:?} core {c} w[{k}]"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel6_barrier_count() {
        let p = KernelParams::scaled(16, 2);
        let w = kernel6(4, BarrierKind::Gl, p);
        assert_eq!(w.barriers_per_core, 2 * 15);
        let sys = run(&w, 4);
        assert_eq!(sys.report().gl_barriers, 30);
    }

    #[test]
    fn odd_core_counts_still_correct() {
        let p = KernelParams::scaled(50, 2);
        let w = kernel2(6, BarrierKind::Dsw, p);
        let sys = run(&w, 6);
        let expect = kernel2_expected(p);
        assert_eq!(sys.peek_word(kernel2_x_addr(49)), expect[49]);
    }
}
