//! OCEAN — large-scale ocean-current simulation (SPLASH-2), modelled as
//! its computational core: red-black Gauss–Seidel relaxation sweeps over
//! a 2D grid, row-band partitioned, with a barrier after every
//! half-sweep.
//!
//! OCEAN is the *most barrier-heavy* SPLASH-2 application, yet its
//! barrier period is still enormous (Table 2: one barrier per ~205 000
//! cycles) — the paper uses it to show that with so much work between
//! barriers the barrier implementation hardly matters (only 5%
//! improvement). The `fp_busy` knob models the multi-cycle floating-point
//! work per grid point that produces those long periods.

use crate::common::{barrier_env, chunk_range, Layout, Workload, DATA_BASE};
use sim_base::rng::SplitMix64;
use sim_cmp::runtime::BarrierKind;
use sim_isa::{ProgBuilder, Reg};

/// OCEAN parameters.
#[derive(Clone, Copy, Debug)]
pub struct OceanParams {
    /// Grid side (paper: 258).
    pub grid: usize,
    /// Full red+black sweeps (each contributes two barriers).
    pub sweeps: u64,
    /// Extra busy cycles per point, modelling the FP pipeline.
    pub fp_busy: u32,
    /// Seed for the initial grid.
    pub seed: u64,
}

impl OceanParams {
    /// The paper's configuration (258×258; 364 barriers over the run).
    pub fn paper() -> OceanParams {
        OceanParams {
            grid: 258,
            sweeps: 182,
            fp_busy: 16,
            seed: 0x0CEA,
        }
    }

    /// Scaled-down configuration.
    pub fn scaled(grid: usize, sweeps: u64) -> OceanParams {
        OceanParams {
            grid,
            sweeps,
            fp_busy: 16,
            seed: 0x0CEA,
        }
    }
}

fn addr_of(grid: usize, row: usize, col: usize) -> u64 {
    DATA_BASE + (row * grid + col) as u64 * 8
}

/// Builds OCEAN: `sweeps` × (red half-sweep, barrier, black half-sweep,
/// barrier) of a 5-point update on interior points.
pub fn build(n_cores: usize, kind: BarrierKind, p: OceanParams) -> Workload {
    assert!(p.grid >= 4);
    let env = barrier_env(kind, n_cores);
    let mut lay = Layout::new(DATA_BASE);
    let _grid_mem = lay.alloc_words((p.grid * p.grid) as u64);

    let mut pokes = Vec::new();
    let mut r = SplitMix64::new(p.seed);
    for row in 0..p.grid {
        for col in 0..p.grid {
            pokes.push((addr_of(p.grid, row, col), r.next_below(100)));
        }
    }

    let interior = p.grid - 2; // rows 1..grid-1 are updated
    let progs = (0..n_cores)
        .map(|c| {
            let my_rows = chunk_range(interior, n_cores, c);
            let mut b = ProgBuilder::new();
            let (it, pr, cnt, t1, t2, acc) = (Reg(10), Reg(11), Reg(12), Reg(1), Reg(2), Reg(3));
            b.li(it, p.sweeps as i64);
            b.label("sweep");
            for color in 0..2usize {
                for row0 in my_rows.clone() {
                    let row = row0 + 1;
                    // Interior columns of this row with matching parity.
                    let first_col = 1 + ((row + color) % 2);
                    if first_col >= p.grid - 1 {
                        continue;
                    }
                    // Pointer-walk the row two columns at a time.
                    let npts = (p.grid - 1 - first_col).div_ceil(2);
                    let lbl = format!("row{color}_{row}");
                    b.li(pr, addr_of(p.grid, row, first_col) as i64)
                        .li(cnt, npts as i64);
                    b.label(&lbl);
                    // acc = (self + N + S + E + W) with a shift as the
                    // relaxation average; busy models the FP latency.
                    b.ld(acc, 0, pr)
                        .ld(t1, -(p.grid as i64) * 8, pr)
                        .add(acc, acc, t1)
                        .ld(t1, p.grid as i64 * 8, pr)
                        .add(acc, acc, t1)
                        .ld(t1, -8, pr)
                        .add(acc, acc, t1)
                        .ld(t1, 8, pr)
                        .add(acc, acc, t1)
                        .alui(sim_isa::inst::AluOp::Srl, t2, acc, 2);
                    if p.fp_busy > 0 {
                        b.busy(p.fp_busy);
                    }
                    b.st(t2, 0, pr)
                        .addi(pr, pr, 16)
                        .addi(cnt, cnt, -1)
                        .bne(cnt, Reg::ZERO, &lbl);
                }
                env.emit(&mut b, c, &format!("c{color}"));
            }
            b.addi(it, it, -1).bne(it, Reg::ZERO, "sweep").halt();
            b.build()
        })
        .collect();

    Workload {
        name: "OCEAN".into(),
        progs,
        pokes,
        barriers_per_core: 2 * p.sweeps,
        kind,
    }
}

/// Host-side reference: the final grid.
pub fn expected(p: OceanParams, _n_cores: usize) -> Vec<u64> {
    let mut g = {
        let mut r = SplitMix64::new(p.seed);
        (0..p.grid * p.grid)
            .map(|_| r.next_below(100))
            .collect::<Vec<u64>>()
    };
    // Core order doesn't matter: points of one color only read the other
    // color, so each half-sweep is embarrassingly parallel.
    for _ in 0..p.sweeps {
        for color in 0..2usize {
            for row in 1..p.grid - 1 {
                let first_col = 1 + ((row + color) % 2);
                let mut col = first_col;
                while col < p.grid - 1 {
                    let i = row * p.grid + col;
                    let acc = g[i]
                        .wrapping_add(g[i - p.grid])
                        .wrapping_add(g[i + p.grid])
                        .wrapping_add(g[i - 1])
                        .wrapping_add(g[i + 1]);
                    g[i] = acc >> 2;
                    col += 2;
                }
            }
        }
    }
    g
}

/// Byte address of grid point (row, col).
pub fn point_addr(p: OceanParams, row: usize, col: usize) -> u64 {
    addr_of(p.grid, row, col)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::config::CmpConfig;

    #[test]
    fn matches_reference_model() {
        let p = OceanParams {
            fp_busy: 2,
            ..OceanParams::scaled(10, 2)
        };
        for kind in [BarrierKind::Gl, BarrierKind::Dsw] {
            let w = build(4, kind, p);
            let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
            sys.run(100_000_000).unwrap();
            let g = expected(p, 4);
            for (row, col) in [(1usize, 1usize), (4, 5), (8, 8), (0, 0), (9, 9)] {
                assert_eq!(
                    sys.peek_word(point_addr(p, row, col)),
                    g[row * p.grid + col],
                    "{kind:?} point ({row},{col})"
                );
            }
        }
    }

    #[test]
    fn barrier_period_is_long() {
        // OCEAN's defining property: lots of work per barrier.
        let p = OceanParams::scaled(26, 2);
        let w = build(4, BarrierKind::Gl, p);
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(4));
        let cycles = sys.run(100_000_000).unwrap();
        let period = cycles / w.barriers_per_core;
        assert!(period > 2_000, "OCEAN period should be long, got {period}");
    }
}
