//! # workloads — the paper's benchmark programs
//!
//! Generators for the seven benchmarks of Table 2, emitted as `sim-isa`
//! programs parameterized by core count and barrier implementation:
//!
//! | Benchmark    | Paper input                  | Structure                                    |
//! |--------------|------------------------------|----------------------------------------------|
//! | Synthetic    | 100k × 4 barriers            | pure barrier loop (Figure 5)                 |
//! | Kernel 2     | 1024 elems × 1000 iters      | ICCG-style array update, barrier per iter    |
//! | Kernel 3     | 1024 elems × 1000 iters      | inner product in registers, barrier per iter |
//! | Kernel 6     | 1024 elems × 1000 iters      | linear recurrence, barrier per element       |
//! | OCEAN        | 258×258 grid                 | red/black stencil sweeps, rare barriers      |
//! | UNSTRUCTURED | Mesh.2K, 1 step              | edge sweeps with per-node locks              |
//! | EM3D         | 38.4k nodes, deg 2, 15% rem  | bipartite graph relaxation, 2 barriers/step  |
//!
//! Every generator accepts scaled-down sizes (the defaults used by tests
//! and the figure harness) because the paper's full inputs need billions
//! of simulated cycles; the *structure* — memory access pattern, barrier
//! density, lock usage — is preserved, which is what Figures 5–7 measure.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod em3d;
pub mod livermore;
pub mod ocean;
pub mod synthetic;
pub mod unstructured;

pub use common::{Workload, BARRIER_BASE, DATA_BASE};
