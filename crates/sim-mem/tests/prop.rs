//! Property tests for the memory hierarchy: the coherent system must be
//! indistinguishable from a flat memory under serialized access, atomics
//! must never lose updates under concurrency, and the directory must
//! keep single-writer/multi-reader invariants.
//!
//! Runs on the in-repo seed-sweep harness ([`sim_base::check`]) instead of
//! an external property-testing crate, so the suite builds fully offline.

#![allow(clippy::needless_range_loop)] // indexing parallel arrays

use sim_base::check::forall_cases;
use sim_base::config::CmpConfig;
use sim_base::fxmap::FxHashMap;
use sim_base::rng::SplitMix64;
use sim_base::CoreId;
use sim_isa::inst::AmoOp;
use sim_mem::{CoreReq, CoreResp, MemorySystem};

#[derive(Clone, Debug)]
enum Op {
    Load {
        core: usize,
        slot: usize,
    },
    Store {
        core: usize,
        slot: usize,
        value: u64,
    },
    Amo {
        core: usize,
        slot: usize,
        operand: u64,
        swap: bool,
    },
}

fn arb_op(rng: &mut SplitMix64, cores: usize, slots: usize) -> Op {
    let core = rng.next_below(cores as u64) as usize;
    let slot = rng.next_below(slots as u64) as usize;
    match rng.next_below(3) {
        0 => Op::Load { core, slot },
        1 => Op::Store {
            core,
            slot,
            value: rng.next_u64(),
        },
        _ => Op::Amo {
            core,
            slot,
            operand: rng.next_u64(),
            swap: rng.chance(0.5),
        },
    }
}

/// Slot → byte address. Slots are spread across lines AND packed within
/// lines, so the pattern exercises false sharing and home interleaving.
fn addr(slot: usize) -> u64 {
    (slot as u64 / 3) * 64 + (slot as u64 % 3) * 8
}

fn complete(sys: &mut MemorySystem, core: CoreId) -> CoreResp {
    let mut guard = 0;
    loop {
        if let Some(r) = sys.poll(core) {
            return r;
        }
        sys.tick();
        guard += 1;
        assert!(guard < 100_000, "request never completed");
    }
}

/// Serialized random accesses from many cores must behave exactly
/// like a flat memory (coherence is invisible to a serial observer).
#[test]
fn serialized_accesses_match_flat_memory() {
    forall_cases("serialized_accesses_match_flat_memory", 32, |rng| {
        let n_ops = 1 + rng.next_below(119) as usize;
        let ops: Vec<Op> = (0..n_ops).map(|_| arb_op(rng, 8, 24)).collect();
        let cfg = CmpConfig::icpp2010_with_cores(8);
        let mut sys = MemorySystem::new(&cfg);
        let mut flat: FxHashMap<u64, u64> = FxHashMap::default();
        for op in &ops {
            match *op {
                Op::Load { core, slot } => {
                    let a = addr(slot);
                    sys.request(CoreId::from(core), CoreReq::Load { addr: a });
                    let got = complete(&mut sys, CoreId::from(core));
                    assert_eq!(
                        got,
                        CoreResp::LoadValue(*flat.get(&a).unwrap_or(&0)),
                        "load {op:?}"
                    );
                }
                Op::Store { core, slot, value } => {
                    let a = addr(slot);
                    sys.request(CoreId::from(core), CoreReq::Store { addr: a, value });
                    assert_eq!(complete(&mut sys, CoreId::from(core)), CoreResp::StoreDone);
                    flat.insert(a, value);
                }
                Op::Amo {
                    core,
                    slot,
                    operand,
                    swap,
                } => {
                    let a = addr(slot);
                    let op = if swap { AmoOp::Swap } else { AmoOp::Add };
                    sys.request(
                        CoreId::from(core),
                        CoreReq::Amo {
                            addr: a,
                            op,
                            operand,
                        },
                    );
                    let old = *flat.get(&a).unwrap_or(&0);
                    assert_eq!(
                        complete(&mut sys, CoreId::from(core)),
                        CoreResp::AmoOld(old)
                    );
                    flat.insert(a, op.apply(old, operand));
                }
            }
        }
        // Final state agrees everywhere that was touched.
        for (&a, &v) in &flat {
            assert_eq!(sys.peek_word(a), v, "address 0x{a:x}");
        }
    });
}

/// Fully concurrent atomic increments never lose updates and return
/// distinct old values — the linearizability core of fetch&add.
#[test]
fn concurrent_amoadds_are_linearizable() {
    forall_cases("concurrent_amoadds_are_linearizable", 32, |rng| {
        let per_core = 1 + rng.next_below(11) as usize;
        let cores = 2 + rng.next_below(7) as usize;
        let cfg = CmpConfig::icpp2010_with_cores(cores);
        let mut sys = MemorySystem::new(&cfg);
        let a = 0x400u64;
        let mut remaining: Vec<usize> = vec![per_core; cores];
        let mut olds = Vec::new();
        let mut guard = 0;
        loop {
            for c in 0..cores {
                if remaining[c] > 0 && sys.ready(CoreId::from(c)) {
                    sys.request(
                        CoreId::from(c),
                        CoreReq::Amo {
                            addr: a,
                            op: AmoOp::Add,
                            operand: 1,
                        },
                    );
                }
                if let Some(CoreResp::AmoOld(v)) = sys.poll(CoreId::from(c)) {
                    olds.push(v);
                    remaining[c] -= 1;
                }
            }
            if remaining.iter().all(|&r| r == 0) {
                break;
            }
            sys.tick();
            guard += 1;
            assert!(guard < 1_000_000, "increments never finished");
        }
        let total = cores * per_core;
        assert_eq!(sys.peek_word(a), total as u64);
        olds.sort_unstable();
        assert_eq!(
            olds,
            (0..total as u64).collect::<Vec<_>>(),
            "every fetch&add must observe a distinct old value"
        );
    });
}

/// Concurrent writers to disjoint addresses never interfere.
#[test]
fn disjoint_concurrent_writes_all_land() {
    forall_cases("disjoint_concurrent_writes_all_land", 32, |rng| {
        let cores = 2 + rng.next_below(7) as usize;
        let writes_per_core = 1 + rng.next_below(9) as usize;
        let cfg = CmpConfig::icpp2010_with_cores(cores);
        let mut sys = MemorySystem::new(&cfg);
        // Each core writes its own column of addresses (may share lines
        // with other cores' columns → false sharing exercised).
        let plan: Vec<Vec<(u64, u64)>> = (0..cores)
            .map(|c| {
                (0..writes_per_core)
                    .map(|i| ((c as u64 * 8) + (i as u64) * 64 * 7, rng.next_u64()))
                    .collect()
            })
            .collect();
        let mut idx = vec![0usize; cores];
        let mut pending = vec![false; cores];
        let mut guard = 0;
        loop {
            let mut done = true;
            for c in 0..cores {
                if pending[c] && sys.poll(CoreId::from(c)).is_some() {
                    pending[c] = false;
                    idx[c] += 1;
                }
                if !pending[c] && idx[c] < writes_per_core {
                    let (a, v) = plan[c][idx[c]];
                    sys.request(CoreId::from(c), CoreReq::Store { addr: a, value: v });
                    pending[c] = true;
                }
                if pending[c] || idx[c] < writes_per_core {
                    done = false;
                }
            }
            if done {
                break;
            }
            sys.tick();
            guard += 1;
            assert!(guard < 1_000_000);
        }
        for c in 0..cores {
            for &(a, v) in &plan[c] {
                assert_eq!(sys.peek_word(a), v, "core {c} address 0x{a:x}");
            }
        }
    });
}
