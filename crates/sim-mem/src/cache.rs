//! A generic set-associative cache array with true-LRU replacement.
//!
//! Used for both the L1s (state = MESI state) and the L2 banks
//! (state = dirty bit). The array stores the line data inline.

use crate::proto::LineData;
use sim_base::config::CacheConfig;
use sim_base::ids::LineAddr;

/// One resident line.
#[derive(Clone, Debug)]
pub struct Entry<S> {
    /// The line address (full tag — the array stores whole line numbers).
    pub line: LineAddr,
    /// Caller-defined state (MESI state, dirty bit, …).
    pub state: S,
    /// Line contents.
    pub data: LineData,
}

/// Set-associative array. Each set is kept in LRU order: index 0 is the
/// most recently used way.
#[derive(Clone, Debug)]
pub struct SetAssoc<S> {
    sets: Vec<Vec<Entry<S>>>,
    ways: usize,
    set_mask: u64,
}

impl<S> SetAssoc<S> {
    /// Builds the array from a [`CacheConfig`].
    pub fn new(cfg: &CacheConfig) -> SetAssoc<S> {
        let sets = cfg.num_sets();
        SetAssoc {
            sets: (0..sets)
                .map(|_| Vec::with_capacity(cfg.ways as usize))
                .collect(),
            ways: cfg.ways as usize,
            set_mask: sets - 1,
        }
    }

    #[inline]
    fn set_of(&self, line: LineAddr) -> usize {
        (line.0 & self.set_mask) as usize
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sets.iter().all(Vec::is_empty)
    }

    /// Immutable lookup without touching LRU order.
    pub fn probe(&self, line: LineAddr) -> Option<&Entry<S>> {
        self.sets[self.set_of(line)].iter().find(|e| e.line == line)
    }

    /// Mutable lookup that also promotes the line to MRU.
    pub fn lookup(&mut self, line: LineAddr) -> Option<&mut Entry<S>> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|e| e.line == line)?;
        let e = self.sets[set].remove(pos);
        self.sets[set].insert(0, e);
        Some(&mut self.sets[set][0])
    }

    /// Removes a line, returning it if present.
    pub fn remove(&mut self, line: LineAddr) -> Option<Entry<S>> {
        let set = self.set_of(line);
        let pos = self.sets[set].iter().position(|e| e.line == line)?;
        Some(self.sets[set].remove(pos))
    }

    /// True when inserting `line` would require evicting something.
    pub fn set_full(&self, line: LineAddr) -> bool {
        self.sets[self.set_of(line)].len() >= self.ways
    }

    /// The LRU victim of `line`'s set that satisfies `evictable`, if an
    /// eviction is needed for an insert. Scans from LRU to MRU.
    pub fn pick_victim(
        &self,
        line: LineAddr,
        evictable: impl Fn(&Entry<S>) -> bool,
    ) -> Option<LineAddr> {
        let set = &self.sets[self.set_of(line)];
        if set.len() < self.ways {
            return None;
        }
        set.iter().rev().find(|e| evictable(e)).map(|e| e.line)
    }

    /// Inserts a line as MRU.
    ///
    /// # Panics
    /// Panics if the set is full (the caller must evict first) or the
    /// line is already present.
    pub fn insert(&mut self, line: LineAddr, state: S, data: LineData) {
        let set = self.set_of(line);
        assert!(
            self.sets[set].len() < self.ways,
            "insert into a full set (evict first)"
        );
        assert!(
            !self.sets[set].iter().any(|e| e.line == line),
            "line {line:?} already resident"
        );
        self.sets[set].insert(0, Entry { line, state, data });
    }

    /// Iterates over all resident entries (set by set, MRU first).
    pub fn iter(&self) -> impl Iterator<Item = &Entry<S>> {
        self.sets.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> CacheConfig {
        // 4 sets × 2 ways of 64-byte lines.
        CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            extra_data_latency: 0,
        }
    }

    fn l(n: u64) -> LineAddr {
        LineAddr(n)
    }

    #[test]
    fn insert_probe_lookup() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        c.insert(l(0), 1, [7; 8]);
        assert_eq!(c.probe(l(0)).unwrap().state, 1);
        assert_eq!(c.lookup(l(0)).unwrap().data, [7; 8]);
        assert!(c.probe(l(1)).is_none());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn lru_order_and_victim() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        // Lines 0, 4, 8 all map to set 0 (4 sets).
        c.insert(l(0), 0, [0; 8]);
        c.insert(l(4), 0, [0; 8]);
        assert!(c.set_full(l(8)));
        // LRU victim is line 0 …
        assert_eq!(c.pick_victim(l(8), |_| true), Some(l(0)));
        // … unless a touch promotes it.
        c.lookup(l(0));
        assert_eq!(c.pick_victim(l(8), |_| true), Some(l(4)));
    }

    #[test]
    fn victim_respects_evictability() {
        let mut c: SetAssoc<bool> = SetAssoc::new(&cfg());
        c.insert(l(0), false, [0; 8]); // not evictable
        c.insert(l(4), true, [0; 8]); // evictable (MRU)
        assert_eq!(c.pick_victim(l(8), |e| e.state), Some(l(4)));
        assert_eq!(c.pick_victim(l(8), |e| !e.state), Some(l(0)));
        assert_eq!(c.pick_victim(l(8), |_| false), None);
    }

    #[test]
    fn no_victim_needed_when_space() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        c.insert(l(0), 0, [0; 8]);
        assert_eq!(c.pick_victim(l(4), |_| true), None);
        assert!(!c.set_full(l(4)));
    }

    #[test]
    fn remove_frees_the_way() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        c.insert(l(0), 9, [1; 8]);
        let e = c.remove(l(0)).unwrap();
        assert_eq!(e.state, 9);
        assert!(c.is_empty());
        assert!(c.remove(l(0)).is_none());
    }

    #[test]
    #[should_panic(expected = "full set")]
    fn insert_into_full_set_panics() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        c.insert(l(0), 0, [0; 8]);
        c.insert(l(4), 0, [0; 8]);
        c.insert(l(8), 0, [0; 8]);
    }

    #[test]
    fn different_sets_do_not_conflict() {
        let mut c: SetAssoc<u8> = SetAssoc::new(&cfg());
        for i in 0..4 {
            c.insert(l(i), 0, [0; 8]);
        }
        assert_eq!(c.len(), 4);
        assert!(!c.set_full(l(4)) || c.probe(l(0)).is_some());
    }
}
