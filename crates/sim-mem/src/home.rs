//! The home controller of one tile: an L2 bank, its slice of the
//! full-map directory, and the memory port behind it.
//!
//! The directory **blocks per line**: one transaction at a time; later
//! requests queue at the home. That serializes all the racy interleavings
//! a non-blocking directory would have to disambiguate, at a small
//! concurrency cost that does not affect the traffic the paper measures.
//!
//! Data invariant: whenever the directory state of a line is *not*
//! Exclusive, the union of this bank's L2 and memory holds current data
//! (dirty L2 victims are written back to memory on eviction; dirty data
//! returning from owners is folded into the L2 or pushed to memory).

use crate::cache::SetAssoc;
use crate::l1::OutMsg;
use crate::proto::{Grant, LineData, ProtoMsg};
use sim_base::config::CacheConfig;
use sim_base::fxmap::FxHashMap;
use sim_base::ids::LineAddr;
use sim_base::trace::{Event, NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use std::collections::VecDeque;

/// Sparse line-granular memory backend (absent lines read as zero).
pub type Memory = FxHashMap<LineAddr, LineData>;

/// Capacity of the limited-pointer sharer representation.
const PTR_CAP: usize = 7;

/// A scalable sharer set.
///
/// Three representations, picked automatically:
///
/// * [`Bits`](SharerSet::Bits) — exact 64-bit full map. The **only**
///   reachable mode while every member id is `< 64`, so machines of up
///   to 64 cores behave bit-identically to the original `u64` full map.
/// * [`Ptrs`](SharerSet::Ptrs) — exact limited-pointer list of up to
///   [`PTR_CAP`] arbitrary core ids, kept sorted ascending. Entered
///   when a small set gains a member `>= 64`.
/// * [`Coarse`](SharerSet::Coarse) — coarse bit vector: bit `g` covers
///   the core-id range `[g << granule_log2, (g + 1) << granule_log2)`.
///   A **superset** of the true sharers; invalidations fanned out from
///   it may over-invalidate but never miss a sharer (DESIGN.md §15).
///
/// The exact representations are canonical (a pure function of the
/// member set), so derived equality is set equality for them. `remove`
/// on a coarse set is a no-op — the superset invariant keeps the
/// departed member covered until the whole entry is rebuilt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SharerSet {
    /// Exact full map over core ids `0..64`.
    Bits(u64),
    /// Exact sorted list of `n` arbitrary core ids.
    Ptrs {
        /// Number of live entries in `ids`.
        n: u8,
        /// Member ids, ascending; entries past `n` are zero.
        ids: [u16; PTR_CAP],
    },
    /// Coarse superset vector over id granules of `1 << granule_log2`.
    Coarse {
        /// log2 of the ids each bit covers (always `>= 1`).
        granule_log2: u8,
        /// Granule occupancy bits.
        bits: u64,
    },
}

impl Default for SharerSet {
    fn default() -> SharerSet {
        SharerSet::Bits(0)
    }
}

impl SharerSet {
    /// The empty set.
    pub fn empty() -> SharerSet {
        SharerSet::Bits(0)
    }

    /// Singleton set.
    pub fn only(c: CoreId) -> SharerSet {
        let mut s = SharerSet::empty();
        s.insert(c);
        s
    }

    /// Smallest granule that lets `max_id` index a 64-bit vector.
    fn granule_for(max_id: u16) -> u8 {
        let mut g = 1u8;
        while (max_id >> g) >= 64 {
            g += 1;
        }
        g
    }

    /// Collapses `self` into a coarse vector that also covers `extra`.
    fn coarsen_with(&mut self, extra: CoreId) {
        let max_id = self.iter().map(|c| c.0).max().unwrap_or(0).max(extra.0);
        let g = Self::granule_for(max_id);
        let mut bits = 1u64 << (extra.0 >> g);
        for c in self.iter() {
            bits |= 1u64 << (c.0 >> g);
        }
        *self = SharerSet::Coarse {
            granule_log2: g,
            bits,
        };
    }

    /// Inserts a core.
    pub fn insert(&mut self, c: CoreId) {
        let id = c.0;
        match self {
            SharerSet::Bits(b) => {
                if (id as usize) < 64 {
                    *b |= 1u64 << id;
                } else if (b.count_ones() as usize) < PTR_CAP {
                    // Spill the small map into pointers; the new id is
                    // larger than every bit index, so the list stays
                    // sorted by appending.
                    let mut ids = [0u16; PTR_CAP];
                    let mut n = 0;
                    let mut bits = *b;
                    while bits != 0 {
                        ids[n] = bits.trailing_zeros() as u16;
                        n += 1;
                        bits &= bits - 1;
                    }
                    ids[n] = id;
                    n += 1;
                    *self = SharerSet::Ptrs { n: n as u8, ids };
                } else {
                    self.coarsen_with(c);
                }
            }
            SharerSet::Ptrs { n, ids } => {
                let live = &ids[..*n as usize];
                let Err(pos) = live.binary_search(&id) else {
                    return;
                };
                if (*n as usize) < PTR_CAP {
                    ids.copy_within(pos..*n as usize, pos + 1);
                    ids[pos] = id;
                    *n += 1;
                } else {
                    self.coarsen_with(c);
                }
            }
            SharerSet::Coarse { granule_log2, bits } => {
                while (id >> *granule_log2) >= 64 {
                    // Double the granule: bit j of the new vector covers
                    // old bits 2j and 2j+1.
                    let mut folded = 0u64;
                    for j in 0..32 {
                        if *bits & (0b11 << (2 * j)) != 0 {
                            folded |= 1 << j;
                        }
                    }
                    *bits = folded;
                    *granule_log2 += 1;
                }
                *bits |= 1u64 << (id >> *granule_log2);
            }
        }
    }

    /// Removes a core. On a coarse set this is a no-op: the vector stays
    /// a superset, which is the representation's correctness contract.
    pub fn remove(&mut self, c: CoreId) {
        let id = c.0;
        match self {
            SharerSet::Bits(b) => {
                if (id as usize) < 64 {
                    *b &= !(1u64 << id);
                }
            }
            SharerSet::Ptrs { n, ids } => {
                let live = &ids[..*n as usize];
                let Ok(pos) = live.binary_search(&id) else {
                    return;
                };
                ids.copy_within(pos + 1..*n as usize, pos);
                *n -= 1;
                ids[*n as usize] = 0;
                // Canonical form: a pointer list whose ids all fit the
                // full map collapses back to it.
                if ids[..*n as usize].iter().all(|&i| (i as usize) < 64) {
                    let mut b = 0u64;
                    for &i in &ids[..*n as usize] {
                        b |= 1u64 << i;
                    }
                    *self = SharerSet::Bits(b);
                }
            }
            SharerSet::Coarse { .. } => {}
        }
    }

    /// Membership test. May report false positives on a coarse set (a
    /// granule-mate of a member is indistinguishable from the member).
    pub fn contains(&self, c: CoreId) -> bool {
        let id = c.0;
        match self {
            SharerSet::Bits(b) => (id as usize) < 64 && b & (1u64 << id) != 0,
            SharerSet::Ptrs { n, ids } => ids[..*n as usize].binary_search(&id).is_ok(),
            SharerSet::Coarse { granule_log2, bits } => {
                (id >> *granule_log2) < 64 && bits & (1u64 << (id >> *granule_log2)) != 0
            }
        }
    }

    /// True when membership is tracked exactly (no coarse overshoot) —
    /// the precondition for treating [`contains`](Self::contains) and
    /// [`len`](Self::len) as authoritative.
    pub fn is_exact(&self) -> bool {
        !matches!(self, SharerSet::Coarse { .. })
    }

    /// Number of members (an upper bound on a coarse set).
    pub fn len(&self) -> u32 {
        match self {
            SharerSet::Bits(b) => b.count_ones(),
            SharerSet::Ptrs { n, .. } => *n as u32,
            SharerSet::Coarse { granule_log2, bits } => bits.count_ones() << *granule_log2,
        }
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        match self {
            SharerSet::Bits(b) => *b == 0,
            SharerSet::Ptrs { n, .. } => *n == 0,
            SharerSet::Coarse { bits, .. } => *bits == 0,
        }
    }

    /// Iterates the member cores in ascending id order (every id a
    /// coarse set covers, member or not).
    pub fn iter(&self) -> SharerIter {
        self.iter_within(u64::MAX)
    }

    /// Like [`iter`](Self::iter), but stops at ids `>= limit` — a
    /// coarse granule may cover ids past the machine's last core.
    pub fn iter_within(&self, limit: u64) -> SharerIter {
        match *self {
            SharerSet::Bits(b) => SharerIter::Bits(b),
            SharerSet::Ptrs { n, ids } => SharerIter::Ptrs { ids, next: 0, n },
            SharerSet::Coarse { granule_log2, bits } => SharerIter::Coarse {
                bits,
                shift: granule_log2 as u32,
                cur: 0,
                end: 0,
                limit,
            },
        }
    }
}

/// Iterator over a [`SharerSet`]'s members, ascending.
#[derive(Clone, Debug)]
pub enum SharerIter {
    /// Remaining full-map bits (consumed by bit-scan).
    Bits(u64),
    /// Pointer-list cursor.
    Ptrs {
        /// The (sorted) id list.
        ids: [u16; PTR_CAP],
        /// Next index to yield.
        next: u8,
        /// Live entries.
        n: u8,
    },
    /// Coarse-granule expansion cursor.
    Coarse {
        /// Remaining granule bits.
        bits: u64,
        /// `granule_log2`.
        shift: u32,
        /// Next id within the current granule.
        cur: u64,
        /// One past the current granule's last id.
        end: u64,
        /// Ids `>= limit` are not yielded.
        limit: u64,
    },
}

impl Iterator for SharerIter {
    type Item = CoreId;

    fn next(&mut self) -> Option<CoreId> {
        match self {
            SharerIter::Bits(b) => {
                if *b == 0 {
                    return None;
                }
                let i = b.trailing_zeros();
                *b &= *b - 1;
                Some(CoreId(i as u16))
            }
            SharerIter::Ptrs { ids, next, n } => {
                if next < n {
                    let c = ids[*next as usize];
                    *next += 1;
                    Some(CoreId(c))
                } else {
                    None
                }
            }
            SharerIter::Coarse {
                bits,
                shift,
                cur,
                end,
                limit,
            } => loop {
                if cur < end {
                    let c = *cur;
                    if c >= *limit {
                        // Granules ascend, so nothing later fits either.
                        *bits = 0;
                        *cur = *end;
                        return None;
                    }
                    *cur += 1;
                    return Some(CoreId(c as u16));
                }
                if *bits == 0 {
                    return None;
                }
                let g = bits.trailing_zeros() as u64;
                *bits &= *bits - 1;
                *cur = g << *shift;
                *end = *cur + (1u64 << *shift);
            },
        }
    }
}

/// Directory state of a line at its home.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DirState {
    /// Cached read-only by these L1s.
    Shared(SharerSet),
    /// Owned (E or M) by this L1; the home's copy may be stale.
    Exclusive(CoreId),
}

/// Trace label of a directory entry ("I" = uncached).
fn dir_label(d: Option<DirState>) -> &'static str {
    match d {
        None => "I",
        Some(DirState::Shared(_)) => "S",
        Some(DirState::Exclusive(_)) => "E",
    }
}

/// What the active transaction is doing.
#[derive(Clone, Copy, Debug)]
enum TxKind {
    /// GetS in progress.
    Read { requester: CoreId },
    /// GetX (or upgraded-to-GetX Upgrade) in progress.
    Write { requester: CoreId },
    /// Upgrade in progress (requester keeps its data).
    Upgrade { requester: CoreId },
    /// PutM in progress.
    Wb { sender: CoreId },
}

/// Where the active transaction currently waits.
#[derive(Clone, Copy, Debug)]
enum TxPhase {
    /// Charging the L2 tag+data pipeline before completing.
    L2Wait { until: Cycle },
    /// Waiting for the 400-cycle memory fetch.
    MemWait { until: Cycle },
    /// Waiting for invalidation acks.
    WaitInvAcks { left: u32 },
    /// Waiting for the old owner's FwdDone.
    WaitFwdDone,
}

#[derive(Clone, Debug)]
struct HomeTx {
    kind: TxKind,
    phase: TxPhase,
}

/// Home-bank statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct HomeStats {
    /// Transactions served from the L2 array.
    pub l2_hits: u64,
    /// Transactions that went to memory.
    pub l2_misses: u64,
    /// Invalidation messages issued.
    pub invalidations_sent: u64,
    /// Forwards issued to exclusive owners.
    pub forwards_sent: u64,
    /// Writebacks accepted (non-stale PutM).
    pub writebacks: u64,
    /// Stale PutMs acknowledged and dropped.
    pub stale_writebacks: u64,
}

/// The home controller of one tile.
#[derive(Clone, Debug)]
pub struct HomeCtrl<S: TraceSink = NullSink> {
    tile: CoreId,
    /// Cores in the machine — bounds the fan-out of a coarse-granule
    /// invalidation expansion.
    num_tiles: usize,
    l2: SetAssoc<bool>, // state = dirty-vs-memory
    dir: FxHashMap<LineAddr, DirState>,
    active: FxHashMap<LineAddr, HomeTx>,
    queue: FxHashMap<LineAddr, VecDeque<(CoreId, ProtoMsg)>>,
    l2_latency: u64,
    mem_latency: u64,
    stats: HomeStats,
    /// Reused per-tick buffer of matured lines (avoids a per-cycle
    /// allocation on the tick hot path).
    ready_scratch: Vec<LineAddr>,
    tracer: Tracer<S>,
}

impl HomeCtrl {
    /// Builds the home bank of `tile` in a `num_tiles` CMP.
    pub fn new(tile: CoreId, num_tiles: usize, l2_cfg: &CacheConfig, mem_latency: u32) -> HomeCtrl {
        HomeCtrl::traced(tile, num_tiles, l2_cfg, mem_latency, Tracer::default())
    }
}

impl<S: TraceSink> HomeCtrl<S> {
    /// Builds the home bank of `tile`, emitting events into `tracer`.
    pub fn traced(
        tile: CoreId,
        num_tiles: usize,
        l2_cfg: &CacheConfig,
        mem_latency: u32,
        tracer: Tracer<S>,
    ) -> HomeCtrl<S> {
        HomeCtrl {
            tile,
            num_tiles,
            l2: SetAssoc::new(l2_cfg),
            dir: FxHashMap::default(),
            active: FxHashMap::default(),
            queue: FxHashMap::default(),
            l2_latency: l2_cfg.total_latency() as u64,
            mem_latency: mem_latency as u64,
            stats: HomeStats::default(),
            ready_scratch: Vec::new(),
            tracer,
        }
    }

    /// Replaces the directory entry of `line` (None = uncached), emitting
    /// a [`Event::DirTransition`] when the stable-state label changes.
    /// Owner/sharer churn within the same label is visible through the
    /// surrounding protocol events instead.
    fn set_dir(&mut self, line: LineAddr, new: Option<DirState>, now: Cycle) {
        if S::ENABLED {
            let from = dir_label(self.dir.get(&line).copied());
            let to = dir_label(new);
            if from != to {
                let home = self.tile;
                self.tracer.emit(now, || Event::DirTransition {
                    home,
                    line: line.0,
                    from,
                    to,
                });
            }
        }
        match new {
            Some(d) => {
                self.dir.insert(line, d);
            }
            None => {
                self.dir.remove(&line);
            }
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> HomeStats {
        self.stats
    }

    /// Directory state of a line (None = uncached).
    pub fn dir_state(&self, line: LineAddr) -> Option<DirState> {
        self.dir.get(&line).copied()
    }

    /// Debug view of the L2 copy of a line.
    pub fn peek_l2(&self, line: LineAddr) -> Option<&LineData> {
        self.l2.probe(line).map(|e| &e.data)
    }

    /// True when no transaction is active or queued.
    pub fn is_idle(&self) -> bool {
        self.active.is_empty() && self.queue.values().all(VecDeque::is_empty)
    }

    /// True while any transaction is in flight. This is the exact guard
    /// [`tick`](Self::tick) early-returns on, and queued requests imply
    /// an active transaction (a request is queued only behind one, and
    /// completion immediately starts the next), so a bank outside the
    /// memory system's busy set can make no progress on its own.
    #[inline]
    pub fn is_busy(&self) -> bool {
        !self.active.is_empty()
    }

    /// Folds dirty data into the L2 (inserting or evicting as needed) or,
    /// if the set cannot take it, directly into memory.
    fn absorb_data(&mut self, line: LineAddr, data: LineData, mem: &mut Memory) {
        if let Some(e) = self.l2.lookup(line) {
            e.data = data;
            e.state = true;
            return;
        }
        if self.l2.set_full(line) {
            let victim = self
                .l2
                .pick_victim(line, |_| true)
                .expect("LRU victim exists");
            let e = self.l2.remove(victim).expect("victim resident");
            if e.state {
                mem.insert(victim, e.data);
            }
        }
        self.l2.insert(line, true, data);
    }

    /// Reads the current data for a line that is not Exclusive: from L2
    /// if resident, else memory. Returns `(data, was_l2_hit)`.
    fn read_data(&mut self, line: LineAddr, mem: &Memory) -> (LineData, bool) {
        if let Some(e) = self.l2.lookup(line) {
            (e.data, true)
        } else {
            (mem.get(&line).copied().unwrap_or([0; 8]), false)
        }
    }

    /// Installs a clean memory copy into L2 (after a fetch).
    fn install_clean(&mut self, line: LineAddr, data: LineData, mem: &mut Memory) {
        if self.l2.probe(line).is_some() {
            return;
        }
        if self.l2.set_full(line) {
            let victim = self
                .l2
                .pick_victim(line, |_| true)
                .expect("LRU victim exists");
            let e = self.l2.remove(victim).expect("victim resident");
            if e.state {
                mem.insert(victim, e.data);
            }
        }
        self.l2.insert(line, false, data);
    }

    /// Handles a protocol message addressed to this home.
    pub fn handle(
        &mut self,
        src: CoreId,
        msg: ProtoMsg,
        now: Cycle,
        mem: &mut Memory,
        out: &mut Vec<OutMsg>,
    ) {
        let line = msg.line();
        match &msg {
            ProtoMsg::GetS(_) | ProtoMsg::GetX(_) | ProtoMsg::Upgrade(_) | ProtoMsg::PutM(..) => {
                if self.active.contains_key(&line) {
                    self.queue.entry(line).or_default().push_back((src, msg));
                } else {
                    self.start_tx(src, msg, now, mem, out);
                }
            }
            ProtoMsg::InvAck(_) => {
                let tx = self
                    .active
                    .get_mut(&line)
                    .expect("InvAck without a transaction");
                let TxPhase::WaitInvAcks { left } = &mut tx.phase else {
                    panic!("InvAck in phase {:?}", tx.phase);
                };
                *left -= 1;
                if *left == 0 {
                    let kind = tx.kind;
                    self.invalidations_done(line, kind, now, mem, out);
                }
            }
            ProtoMsg::FwdDone { data, retained, .. } => {
                let tx = self
                    .active
                    .get(&line)
                    .expect("FwdDone without a transaction");
                debug_assert!(matches!(tx.phase, TxPhase::WaitFwdDone));
                let kind = tx.kind;
                let old_owner = src;
                match kind {
                    TxKind::Read { requester } => {
                        let d = data.expect("read-forward returns data");
                        self.absorb_data(line, d, mem);
                        let mut sharers = SharerSet::only(requester);
                        if *retained {
                            sharers.insert(old_owner);
                        }
                        self.set_dir(line, Some(DirState::Shared(sharers)), now);
                    }
                    TxKind::Write { requester } => {
                        debug_assert!(data.is_none());
                        self.set_dir(line, Some(DirState::Exclusive(requester)), now);
                    }
                    k => panic!("FwdDone for {k:?}"),
                }
                self.complete(line, now, mem, out);
            }
            other => panic!(
                "home {:?} received an L1-bound message {other:?}",
                self.tile
            ),
        }
    }

    /// Begins a transaction on an idle line.
    fn start_tx(
        &mut self,
        src: CoreId,
        msg: ProtoMsg,
        now: Cycle,
        mem: &mut Memory,
        out: &mut Vec<OutMsg>,
    ) {
        let line = msg.line();
        match msg {
            ProtoMsg::GetS(_) => match self.dir.get(&line).copied() {
                Some(DirState::Exclusive(owner)) => {
                    debug_assert_ne!(owner, src, "owner re-requesting its own line");
                    self.stats.forwards_sent += 1;
                    out.push(OutMsg {
                        dst: owner,
                        msg: ProtoMsg::FwdGetS {
                            line,
                            requester: src,
                        },
                    });
                    self.active.insert(
                        line,
                        HomeTx {
                            kind: TxKind::Read { requester: src },
                            phase: TxPhase::WaitFwdDone,
                        },
                    );
                }
                _ => self.data_path(line, TxKind::Read { requester: src }, now, mem),
            },
            ProtoMsg::GetX(_) => self.write_path(line, src, now, mem, out),
            ProtoMsg::Upgrade(_) => match self.dir.get(&line).copied() {
                // A coarse entry's `contains` can false-positive on a
                // granule-mate whose copy is long gone — granting an
                // UpgradeAck then would leave the requester without
                // data. Coarse upgrades take the full write path (the
                // L1 already handles Data(M) in place of UpgradeAck).
                Some(DirState::Shared(sharers)) if sharers.is_exact() && sharers.contains(src) => {
                    let mut others = sharers;
                    others.remove(src);
                    if others.is_empty() {
                        // Only the requester shares it: grant after the
                        // directory/tag access.
                        self.active.insert(
                            line,
                            HomeTx {
                                kind: TxKind::Upgrade { requester: src },
                                phase: TxPhase::L2Wait {
                                    until: now + self.l2_latency,
                                },
                            },
                        );
                    } else {
                        for s in others.iter() {
                            self.stats.invalidations_sent += 1;
                            out.push(OutMsg {
                                dst: s,
                                msg: ProtoMsg::Inv(line),
                            });
                        }
                        self.active.insert(
                            line,
                            HomeTx {
                                kind: TxKind::Upgrade { requester: src },
                                phase: TxPhase::WaitInvAcks { left: others.len() },
                            },
                        );
                    }
                }
                // The requester lost its copy to a race: full write path.
                _ => self.write_path(line, src, now, mem, out),
            },
            ProtoMsg::PutM(_, data) => {
                match self.dir.get(&line).copied() {
                    Some(DirState::Exclusive(owner)) if owner == src => {
                        self.stats.writebacks += 1;
                        self.absorb_data(line, data, mem);
                        self.set_dir(line, None, now);
                        self.active.insert(
                            line,
                            HomeTx {
                                kind: TxKind::Wb { sender: src },
                                phase: TxPhase::L2Wait {
                                    until: now + self.l2_latency,
                                },
                            },
                        );
                    }
                    _ => {
                        // Stale: ownership already moved on. Ack and drop.
                        self.stats.stale_writebacks += 1;
                        out.push(OutMsg {
                            dst: src,
                            msg: ProtoMsg::WbAck(line),
                        });
                    }
                }
            }
            m => unreachable!("start_tx on {m:?}"),
        }
    }

    /// GetX / upgraded-Upgrade processing.
    fn write_path(
        &mut self,
        line: LineAddr,
        src: CoreId,
        now: Cycle,
        mem: &mut Memory,
        out: &mut Vec<OutMsg>,
    ) {
        match self.dir.get(&line).copied() {
            Some(DirState::Exclusive(owner)) => {
                debug_assert_ne!(owner, src, "owner issuing GetX for its own line");
                self.stats.forwards_sent += 1;
                out.push(OutMsg {
                    dst: owner,
                    msg: ProtoMsg::FwdGetX {
                        line,
                        requester: src,
                    },
                });
                self.active.insert(
                    line,
                    HomeTx {
                        kind: TxKind::Write { requester: src },
                        phase: TxPhase::WaitFwdDone,
                    },
                );
            }
            Some(DirState::Shared(sharers)) if sharers.is_exact() => {
                let mut others = sharers;
                others.remove(src); // tolerate a stale self-bit
                if others.is_empty() {
                    self.data_path(line, TxKind::Write { requester: src }, now, mem);
                } else {
                    for s in others.iter() {
                        self.stats.invalidations_sent += 1;
                        out.push(OutMsg {
                            dst: s,
                            msg: ProtoMsg::Inv(line),
                        });
                    }
                    self.active.insert(
                        line,
                        HomeTx {
                            kind: TxKind::Write { requester: src },
                            phase: TxPhase::WaitInvAcks { left: others.len() },
                        },
                    );
                }
            }
            Some(DirState::Shared(sharers)) => {
                // Coarse superset: invalidate every covered core on the
                // machine except the writer. `CoarseInv` (unlike `Inv`)
                // may land on a non-sharer, which acks it immediately —
                // every recipient answers exactly once, so counting the
                // messages sent is an exact ack count.
                let mut left = 0u32;
                for s in sharers.iter_within(self.num_tiles as u64) {
                    if s == src {
                        continue;
                    }
                    self.stats.invalidations_sent += 1;
                    left += 1;
                    out.push(OutMsg {
                        dst: s,
                        msg: ProtoMsg::CoarseInv(line),
                    });
                }
                if left == 0 {
                    self.data_path(line, TxKind::Write { requester: src }, now, mem);
                } else {
                    self.active.insert(
                        line,
                        HomeTx {
                            kind: TxKind::Write { requester: src },
                            phase: TxPhase::WaitInvAcks { left },
                        },
                    );
                }
            }
            None => self.data_path(line, TxKind::Write { requester: src }, now, mem),
        }
    }

    /// Starts the L2/memory access for a transaction that will be served
    /// with data from this bank.
    fn data_path(&mut self, line: LineAddr, kind: TxKind, now: Cycle, mem: &mut Memory) {
        let home = self.tile;
        let l2_hit = self.l2.probe(line).is_some();
        self.tracer.emit(now, || Event::L2Access {
            home,
            line: line.0,
            hit: l2_hit,
        });
        let phase = if l2_hit {
            self.stats.l2_hits += 1;
            TxPhase::L2Wait {
                until: now + self.l2_latency,
            }
        } else {
            self.stats.l2_misses += 1;
            // Fetch from memory and install now; timing is charged by the
            // wait phase.
            let data = mem.get(&line).copied().unwrap_or([0; 8]);
            self.install_clean(line, data, mem);
            TxPhase::MemWait {
                until: now + self.l2_latency + self.mem_latency,
            }
        };
        self.active.insert(line, HomeTx { kind, phase });
    }

    /// All invalidation acks arrived: finish the write/upgrade.
    fn invalidations_done(
        &mut self,
        line: LineAddr,
        kind: TxKind,
        now: Cycle,
        mem: &mut Memory,
        out: &mut Vec<OutMsg>,
    ) {
        match kind {
            TxKind::Upgrade { requester } => {
                self.set_dir(line, Some(DirState::Exclusive(requester)), now);
                out.push(OutMsg {
                    dst: requester,
                    msg: ProtoMsg::UpgradeAck(line),
                });
                self.complete(line, now, mem, out);
            }
            TxKind::Write { requester } => {
                // Sharers gone; now read the data out of L2/memory.
                self.active.remove(&line);
                self.data_path(line, TxKind::Write { requester }, now, mem);
            }
            k => panic!("invalidations for {k:?}"),
        }
    }

    /// The earliest future cycle at which a timer-driven transaction
    /// phase matures, or `None` when every active phase is
    /// message-driven (invalidation acks, forwards) — those wake-ups
    /// are carried by the network and accounted there.
    ///
    /// Used by the fast-forward scheduler: a cycle strictly before the
    /// returned value can never see this controller change state on
    /// its own.
    pub fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        self.active
            .values()
            .filter_map(|tx| match tx.phase {
                TxPhase::L2Wait { until } | TxPhase::MemWait { until } => Some(until),
                _ => None,
            })
            .min()
    }

    /// Advances timer-based phases; call once per cycle.
    pub fn tick(&mut self, now: Cycle, mem: &mut Memory, out: &mut Vec<OutMsg>) {
        if self.active.is_empty() {
            return;
        }
        // Collect matured lines into the reused scratch buffer (the
        // processing below inserts into `active`, so the two steps
        // cannot share one iteration).
        let mut ready = std::mem::take(&mut self.ready_scratch);
        ready.clear();
        ready.extend(
            self.active
                .iter()
                .filter(|(_, tx)| match tx.phase {
                    TxPhase::L2Wait { until } | TxPhase::MemWait { until } => until <= now,
                    _ => false,
                })
                .map(|(&l, _)| l),
        );
        for line in ready.drain(..) {
            let tx = self.active.get(&line).expect("collected above");
            let kind = tx.kind;
            match kind {
                TxKind::Read { requester } => {
                    let (data, _) = self.read_data(line, mem);
                    let grant = match self.dir.get(&line).copied() {
                        None => {
                            self.set_dir(line, Some(DirState::Exclusive(requester)), now);
                            Grant::E
                        }
                        Some(DirState::Shared(mut s)) => {
                            s.insert(requester);
                            self.set_dir(line, Some(DirState::Shared(s)), now);
                            Grant::S
                        }
                        Some(DirState::Exclusive(_)) => {
                            unreachable!("read served from bank while exclusive")
                        }
                    };
                    out.push(OutMsg {
                        dst: requester,
                        msg: ProtoMsg::Data { line, data, grant },
                    });
                }
                TxKind::Write { requester } => {
                    let (data, _) = self.read_data(line, mem);
                    debug_assert!(!matches!(self.dir.get(&line), Some(DirState::Exclusive(_))));
                    self.set_dir(line, Some(DirState::Exclusive(requester)), now);
                    out.push(OutMsg {
                        dst: requester,
                        msg: ProtoMsg::Data {
                            line,
                            data,
                            grant: Grant::M,
                        },
                    });
                }
                TxKind::Upgrade { requester } => {
                    self.set_dir(line, Some(DirState::Exclusive(requester)), now);
                    out.push(OutMsg {
                        dst: requester,
                        msg: ProtoMsg::UpgradeAck(line),
                    });
                }
                TxKind::Wb { sender } => {
                    out.push(OutMsg {
                        dst: sender,
                        msg: ProtoMsg::WbAck(line),
                    });
                }
            }
            self.complete(line, now, mem, out);
        }
        self.ready_scratch = ready;
    }

    /// Ends the active transaction on `line` and starts the next queued
    /// request, if any.
    fn complete(&mut self, line: LineAddr, now: Cycle, mem: &mut Memory, out: &mut Vec<OutMsg>) {
        self.active.remove(&line);
        if let Some(q) = self.queue.get_mut(&line) {
            if let Some((src, msg)) = q.pop_front() {
                if q.is_empty() {
                    self.queue.remove(&line);
                }
                self.start_tx(src, msg, now, mem, out);
            } else {
                self.queue.remove(&line);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l2_cfg() -> CacheConfig {
        CacheConfig {
            size_bytes: 1024,
            ways: 2,
            line_bytes: 64,
            hit_latency: 6,
            extra_data_latency: 2,
        }
    }

    fn home() -> (HomeCtrl, Memory, Vec<OutMsg>) {
        (
            HomeCtrl::new(CoreId(0), 4, &l2_cfg(), 400),
            Memory::default(),
            Vec::new(),
        )
    }

    fn run_until(
        h: &mut HomeCtrl,
        mem: &mut Memory,
        out: &mut Vec<OutMsg>,
        now: &mut Cycle,
        limit: u64,
    ) {
        for _ in 0..limit {
            h.tick(*now, mem, out);
            *now += 1;
            if !out.is_empty() {
                return;
            }
        }
    }

    #[test]
    fn cold_gets_fetches_memory_and_grants_e() {
        let (mut h, mut mem, mut out) = home();
        mem.insert(LineAddr(0), [42; 8]);
        let mut now = 0;
        h.handle(
            CoreId(1),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        assert!(out.is_empty(), "memory fetch takes time");
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        assert!(now > 400, "memory latency charged (completed at {now})");
        match &out[0].msg {
            ProtoMsg::Data {
                data,
                grant: Grant::E,
                ..
            } => assert_eq!(data[0], 42),
            m => panic!("{m:?}"),
        }
        assert_eq!(
            h.dir_state(LineAddr(0)),
            Some(DirState::Exclusive(CoreId(1)))
        );
        assert_eq!(h.stats().l2_misses, 1);
    }

    #[test]
    fn second_gets_is_an_l2_hit_with_forward() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        h.handle(
            CoreId(1),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        out.clear();
        // Second reader: owner must be fetched.
        h.handle(
            CoreId(2),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        assert_eq!(out[0].dst, CoreId(1));
        assert!(matches!(
            out[0].msg,
            ProtoMsg::FwdGetS {
                requester: CoreId(2),
                ..
            }
        ));
        out.clear();
        h.handle(
            CoreId(1),
            ProtoMsg::FwdDone {
                line: LineAddr(0),
                data: Some([7; 8]),
                retained: true,
            },
            now,
            &mut mem,
            &mut out,
        );
        match h.dir_state(LineAddr(0)) {
            Some(DirState::Shared(s)) => {
                assert!(s.contains(CoreId(1)) && s.contains(CoreId(2)));
                assert_eq!(s.len(), 2);
            }
            d => panic!("{d:?}"),
        }
        assert_eq!(h.peek_l2(LineAddr(0)).unwrap()[0], 7, "dirty data absorbed");
    }

    #[test]
    fn getx_invalidates_sharers_then_grants_m() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        // Two readers establish Shared{1,2} (first is E; the FwdGetS path
        // is exercised elsewhere — here, set up S directly via two reads
        // from a Shared state).
        h.handle(
            CoreId(1),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        out.clear();
        h.handle(
            CoreId(2),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        out.clear();
        h.handle(
            CoreId(1),
            ProtoMsg::FwdDone {
                line: LineAddr(0),
                data: Some([0; 8]),
                retained: true,
            },
            now,
            &mut mem,
            &mut out,
        );
        out.clear();
        // A third core writes.
        h.handle(
            CoreId(3),
            ProtoMsg::GetX(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        let invs: Vec<_> = out
            .iter()
            .filter(|m| matches!(m.msg, ProtoMsg::Inv(_)))
            .collect();
        assert_eq!(invs.len(), 2);
        out.clear();
        h.handle(
            CoreId(1),
            ProtoMsg::InvAck(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        assert!(out.is_empty(), "one ack is not enough");
        h.handle(
            CoreId(2),
            ProtoMsg::InvAck(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 100);
        assert!(matches!(
            out[0].msg,
            ProtoMsg::Data {
                grant: Grant::M,
                ..
            }
        ));
        assert_eq!(
            h.dir_state(LineAddr(0)),
            Some(DirState::Exclusive(CoreId(3)))
        );
    }

    #[test]
    fn upgrade_with_sole_sharer_acks_quickly() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        // Establish Shared{1} via E-grant then FwdGetS-style downgrade is
        // overkill; set up directly through the public API: read (E),
        // then a PutM-free downgrade isn't possible, so emulate the
        // common case: read from core 1, read from core 2, invalidate 2.
        h.handle(
            CoreId(1),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        out.clear();
        h.handle(
            CoreId(2),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        out.clear();
        h.handle(
            CoreId(1),
            ProtoMsg::FwdDone {
                line: LineAddr(0),
                data: Some([0; 8]),
                retained: false,
            },
            now,
            &mut mem,
            &mut out,
        );
        out.clear();
        // Now Shared{2} only. Core 2 upgrades: no invalidations needed.
        h.handle(
            CoreId(2),
            ProtoMsg::Upgrade(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        assert!(out.is_empty());
        run_until(&mut h, &mut mem, &mut out, &mut now, 100);
        assert_eq!(out[0].msg, ProtoMsg::UpgradeAck(LineAddr(0)));
        assert_eq!(
            h.dir_state(LineAddr(0)),
            Some(DirState::Exclusive(CoreId(2)))
        );
    }

    #[test]
    fn upgrade_after_losing_copy_becomes_getx() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        // Uncached line; an Upgrade arrives from a core that lost the
        // race. It must be treated as a full GetX.
        h.handle(
            CoreId(1),
            ProtoMsg::Upgrade(LineAddr(3)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        assert!(matches!(
            out[0].msg,
            ProtoMsg::Data {
                grant: Grant::M,
                ..
            }
        ));
    }

    #[test]
    fn putm_from_owner_accepted_and_acked() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        h.handle(
            CoreId(1),
            ProtoMsg::GetX(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        out.clear();
        h.handle(
            CoreId(1),
            ProtoMsg::PutM(LineAddr(0), [9; 8]),
            now,
            &mut mem,
            &mut out,
        );
        run_until(&mut h, &mut mem, &mut out, &mut now, 100);
        assert_eq!(out[0].msg, ProtoMsg::WbAck(LineAddr(0)));
        assert_eq!(h.dir_state(LineAddr(0)), None);
        assert_eq!(h.peek_l2(LineAddr(0)).unwrap()[0], 9);
        assert_eq!(h.stats().writebacks, 1);
    }

    #[test]
    fn stale_putm_acked_without_state_change() {
        let (mut h, mut mem, mut out) = home();
        let now = 0;
        // Nothing is exclusive; a PutM from core 5 is stale.
        h.handle(
            CoreId(5),
            ProtoMsg::PutM(LineAddr(7), [1; 8]),
            now,
            &mut mem,
            &mut out,
        );
        assert_eq!(out[0].msg, ProtoMsg::WbAck(LineAddr(7)));
        assert_eq!(h.dir_state(LineAddr(7)), None);
        assert!(
            h.peek_l2(LineAddr(7)).is_none(),
            "stale data must not be absorbed"
        );
        assert_eq!(h.stats().stale_writebacks, 1);
    }

    #[test]
    fn conflicting_requests_queue_behind_active_tx() {
        let (mut h, mut mem, mut out) = home();
        let mut now = 0;
        h.handle(
            CoreId(1),
            ProtoMsg::GetS(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        // While the memory fetch is outstanding, another request arrives.
        h.handle(
            CoreId(2),
            ProtoMsg::GetX(LineAddr(0)),
            now,
            &mut mem,
            &mut out,
        );
        assert!(out.is_empty());
        // First completes: Data(E) to core 1; queued GetX then forwards.
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        let data_then_fwd: Vec<_> = out.iter().map(|m| m.dst).collect();
        assert_eq!(data_then_fwd, vec![CoreId(1), CoreId(1)]);
        assert!(matches!(
            out[0].msg,
            ProtoMsg::Data {
                grant: Grant::E,
                ..
            }
        ));
        assert!(matches!(
            out[1].msg,
            ProtoMsg::FwdGetX {
                requester: CoreId(2),
                ..
            }
        ));
    }

    #[test]
    fn dirty_l2_victim_goes_to_memory() {
        let (mut h, mut mem, mut out) = home();
        // Absorb dirty lines into one set until eviction; the victim's
        // data must land in memory. Lines 0, 8, 16 share set 0 (8 sets).
        h.absorb_data(LineAddr(0), [1; 8], &mut mem);
        h.absorb_data(LineAddr(8), [2; 8], &mut mem);
        h.absorb_data(LineAddr(16), [3; 8], &mut mem);
        assert_eq!(
            mem.get(&LineAddr(0)).unwrap()[0],
            1,
            "LRU dirty victim written back"
        );
        assert!(h.peek_l2(LineAddr(8)).is_some());
        assert!(h.peek_l2(LineAddr(16)).is_some());
        let _ = out.pop();
    }

    #[test]
    fn sharer_set_operations() {
        let mut s = SharerSet::empty();
        assert!(s.is_empty());
        s.insert(CoreId(3));
        s.insert(CoreId(31));
        assert!(s.contains(CoreId(3)));
        assert!(!s.contains(CoreId(4)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId(3), CoreId(31)]);
        s.remove(CoreId(3));
        assert_eq!(s, SharerSet::only(CoreId(31)));
        assert!(s.is_exact());
    }

    #[test]
    fn sharer_set_small_ids_never_leave_the_bit_map() {
        // The ≤64-core bit-identity guarantee: any operation sequence
        // over ids < 64 stays in (canonical) Bits mode.
        let mut s = SharerSet::empty();
        for i in (0..64).step_by(3) {
            s.insert(CoreId(i));
        }
        for i in (0..64).step_by(6) {
            s.remove(CoreId(i));
        }
        assert!(matches!(s, SharerSet::Bits(_)));
        assert!(s.is_exact());
    }

    #[test]
    fn sharer_set_spills_to_pointers_then_coarse() {
        // A small set gaining a large id becomes an exact pointer list.
        let mut s = SharerSet::only(CoreId(2));
        s.insert(CoreId(100));
        assert!(s.is_exact());
        assert!(s.contains(CoreId(100)) && s.contains(CoreId(2)));
        assert!(!s.contains(CoreId(101)));
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![CoreId(2), CoreId(100)]);
        // Dropping the large id collapses back to the canonical bit map.
        s.remove(CoreId(100));
        assert_eq!(s, SharerSet::only(CoreId(2)));
        // Overflowing the pointer capacity enters coarse mode.
        let mut s = SharerSet::empty();
        for i in 0..8u16 {
            s.insert(CoreId(64 + 8 * i));
        }
        assert!(!s.is_exact());
        for i in 0..8u16 {
            assert!(s.contains(CoreId(64 + 8 * i)), "member {i} lost");
        }
        assert!(s.len() >= 8, "coarse len is an upper bound");
    }

    #[test]
    fn sharer_set_coarse_iteration_respects_limit() {
        let mut s = SharerSet::empty();
        for i in 0..PTR_CAP as u16 {
            s.insert(CoreId(i));
        }
        s.insert(CoreId(1000)); // Bits is full past PTR_CAP → coarse
        s.insert(CoreId(1023));
        assert!(!s.is_exact());
        let ids: Vec<u64> = s.iter_within(1024).map(|c| c.0 as u64).collect();
        assert!(ids.windows(2).all(|w| w[0] < w[1]), "ascending");
        assert!(ids.iter().all(|&i| i < 1024));
        for i in 0..PTR_CAP as u16 {
            assert!(s.contains(CoreId(i)));
        }
        assert!(s.contains(CoreId(1000)) && s.contains(CoreId(1023)));
        // The covered expansion includes every member.
        for m in [1000u64, 1023] {
            assert!(ids.contains(&m), "member {m} missing from expansion");
        }
    }

    /// Deterministic xorshift for the property tests (no external dep).
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn sharer_set_matches_reference_model_up_to_1024() {
        use sim_base::fxmap::FxHashSet;
        // Random insert/remove interleavings over id ranges spanning the
        // Bits / Ptrs / Coarse regimes. Exact modes must match the
        // reference set exactly; coarse mode must stay a superset.
        for (seed, max_id) in [
            (1u64, 8u16),
            (2, 63),
            (3, 64),
            (4, 200),
            (5, 1024),
            (6, 1024),
        ] {
            let mut rng = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
            let mut s = SharerSet::empty();
            let mut model: FxHashSet<u16> = FxHashSet::default();
            for step in 0..600 {
                let id = (xorshift(&mut rng) % max_id as u64) as u16;
                if !xorshift(&mut rng).is_multiple_of(3) {
                    s.insert(CoreId(id));
                    model.insert(id);
                } else {
                    s.remove(CoreId(id));
                    model.remove(&id);
                }
                // Superset invariant holds unconditionally.
                for &m in &model {
                    assert!(
                        s.contains(CoreId(m)),
                        "seed {seed} step {step}: member {m} lost"
                    );
                }
                assert!(s.len() as usize >= model.len());
                if s.is_exact() {
                    let got: Vec<u16> = s.iter().map(|c| c.0).collect();
                    let mut want: Vec<u16> = model.iter().copied().collect();
                    want.sort_unstable();
                    assert_eq!(got, want, "seed {seed} step {step}: exact-mode drift");
                } else {
                    // Every covered id is within one granule of a member
                    // past or present; here just check the expansion is
                    // a superset within the machine.
                    let got: FxHashSet<u16> = s.iter_within(max_id as u64).map(|c| c.0).collect();
                    assert!(
                        model.iter().all(|m| got.contains(m)),
                        "seed {seed} step {step}: coarse expansion misses a member"
                    );
                }
            }
        }
    }

    #[test]
    fn coarse_write_invalidates_superset_and_completes() {
        // A >64-core home: build a coarse sharer set, then write. Every
        // covered core (except the writer) must get a CoarseInv, and the
        // write must complete once they all ack.
        let n = 256usize;
        let mut h = HomeCtrl::new(CoreId(0), n, &l2_cfg(), 400);
        let mut mem = Memory::default();
        let mut out = Vec::new();
        let mut now = 0;
        let line = LineAddr(0);
        // Seed a coarse directory entry directly (reaching it through
        // the protocol needs dozens of round trips).
        let mut sharers = SharerSet::empty();
        for i in 0..10u16 {
            sharers.insert(CoreId(i * 24 + 1));
        }
        assert!(!sharers.is_exact(), "construction must overflow to coarse");
        h.set_dir(line, Some(DirState::Shared(sharers)), now);
        h.handle(CoreId(1), ProtoMsg::GetX(line), now, &mut mem, &mut out);
        let invs: Vec<CoreId> = out
            .iter()
            .filter(|m| matches!(m.msg, ProtoMsg::CoarseInv(_)))
            .map(|m| m.dst)
            .collect();
        assert_eq!(invs.len(), out.len(), "only CoarseInv fan-out expected");
        assert!(
            !invs.contains(&CoreId(1)),
            "writer must not invalidate itself"
        );
        assert!(invs.iter().all(|c| c.index() < n));
        for i in 0..10u16 {
            let c = CoreId(i * 24 + 1);
            if c != CoreId(1) {
                assert!(invs.contains(&c), "true sharer {c:?} missed");
            }
        }
        out.clear();
        // Ack them all; the write then proceeds to the data path.
        for c in invs {
            h.handle(c, ProtoMsg::InvAck(line), now, &mut mem, &mut out);
        }
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        assert!(matches!(
            out[0].msg,
            ProtoMsg::Data {
                grant: Grant::M,
                ..
            }
        ));
        assert_eq!(h.dir_state(line), Some(DirState::Exclusive(CoreId(1))));
    }

    #[test]
    fn coarse_upgrade_takes_full_write_path() {
        // An Upgrade against a coarse entry must NOT be acked in place —
        // `contains` may false-positive, so the home replies with full
        // data via the write path instead.
        let n = 256usize;
        let mut h = HomeCtrl::new(CoreId(0), n, &l2_cfg(), 400);
        let mut mem = Memory::default();
        let mut out = Vec::new();
        let mut now = 0;
        let line = LineAddr(0);
        let mut sharers = SharerSet::empty();
        for i in 0..9u16 {
            sharers.insert(CoreId(i * 28 + 3));
        }
        assert!(!sharers.is_exact());
        h.set_dir(line, Some(DirState::Shared(sharers)), now);
        h.handle(CoreId(3), ProtoMsg::Upgrade(line), now, &mut mem, &mut out);
        assert!(
            out.iter().all(|m| matches!(m.msg, ProtoMsg::CoarseInv(_))),
            "coarse upgrade must fan out CoarseInv, not UpgradeAck"
        );
        let acks: Vec<CoreId> = out.iter().map(|m| m.dst).collect();
        out.clear();
        for c in acks {
            h.handle(c, ProtoMsg::InvAck(line), now, &mut mem, &mut out);
        }
        run_until(&mut h, &mut mem, &mut out, &mut now, 1000);
        assert!(matches!(
            out[0].msg,
            ProtoMsg::Data {
                grant: Grant::M,
                ..
            }
        ));
    }
}
