//! Per-tile buffers and views for the epoch-batched parallel engine
//! (`DESIGN.md` §13).
//!
//! During an epoch the workers free-run whole *tiles* — core-facing L1,
//! home bank, and memory bank together — for a multi-cycle window,
//! entirely out of contact with the NoC. Two buffers per tile make that
//! sound:
//!
//! * an **inbox** of cycle-stamped messages destined for this tile:
//!   pre-drained NoC deliveries (stamped with the cycle they would be
//!   handled serially, minus one) plus same-tile protocol messages the
//!   free-run itself produces (serially these cross the NoC's local
//!   bypass and are handled one cycle after the send). An entry stamped
//!   `c` is handled at cycle `c + 1`, exactly when the serial engine
//!   would hand it over.
//! * an **outbox** of cycle-and-phase-stamped *remote* sends. These are
//!   injected into the real NoC during the serialized apply phase, in
//!   the exact global order the serial engine's immediate flushes
//!   produce: ascending cycle, then phase (core requests, home-timer
//!   sends, delivery-handling sends), then tile. Packet ids — and hence
//!   all downstream NoC state — match the serial engine bit for bit.
//!
//! The window is sized by the coordinator so that no NoC delivery can
//! mature mid-window and no in-window remote send can be handled before
//! the window ends (see `sim-cmp`'s epoch driver); the buffers here are
//! pure bookkeeping and contain no safety logic of their own.

use crate::home::{HomeCtrl, Memory};
use crate::l1::{L1Ctrl, OutMsg};
use crate::lane::LaneMem;
use crate::proto::ProtoMsg;
use sim_base::trace::TraceSink;
use sim_base::{CoreId, Cycle};
use sim_noc::Message;
use std::collections::VecDeque;

/// Send-phase stamp: the serial core loop's immediate request flushes.
pub const PHASE_CORE: u8 = 0;
/// Send-phase stamp: home-bank timer ticks inside `mem.tick`.
pub const PHASE_HOME: u8 = 1;
/// Send-phase stamp: delivery handling inside `mem.tick`.
pub const PHASE_DELIVER: u8 = 2;

/// One tile's epoch buffers (see the module docs). Owned by the
/// [`MemorySystem`](crate::MemorySystem); empty between epochs except
/// for the fleeting moment between pre-drain and apply.
#[derive(Debug, Default)]
pub(crate) struct EpochTileBufs {
    /// Stamped messages to be handled by this tile at `stamp + 1`.
    pub(crate) inbox: VecDeque<(Cycle, Message<ProtoMsg>)>,
    /// Stamped remote sends: `(cycle, phase, msg)`, ascending.
    pub(crate) outbox: Vec<(Cycle, u8, OutMsg)>,
    /// Same-tile sends consumed through the inbox this epoch — credited
    /// to the NoC's `local_bypass` statistic at apply time.
    pub(crate) locals: u64,
}

/// Raw access to every tile's epoch view, handed to the epoch engine
/// once per epoch (see
/// [`MemorySystem::epoch_tiles`](crate::MemorySystem::epoch_tiles)).
///
/// This is the aliasing seam of the epoch engine, the multi-cycle
/// analogue of [`TileLanes`](crate::TileLanes).
///
/// # Safety contract
///
/// * Must not outlive the `&mut MemorySystem` borrow it was created
///   from, and the memory system must not be used through any other
///   path while tile views are live.
/// * [`tile`](Self::tile)`(i)` may be called for each `i` **at most
///   once per epoch**, from any thread, with distinct `i` handed to
///   concurrent callers — the engine's shard partition (disjoint
///   contiguous tile ranges) guarantees this.
#[derive(Clone, Copy, Debug)]
pub struct EpochTiles<S: TraceSink> {
    l1s: *mut L1Ctrl<S>,
    homes: *mut HomeCtrl<S>,
    mems: *mut Memory,
    scratch: *mut Vec<OutMsg>,
    bufs: *mut EpochTileBufs,
    n: usize,
}

// SAFETY: the pointers target `Vec` storage owned by `MemorySystem`,
// which outlives the epoch (the engine joins every rung worker before
// the owner moves); sending the handle moves only the pointers, never
// the storage.
unsafe impl<S: TraceSink> Send for EpochTiles<S> {}
// SAFETY: the contract above restricts every dereference to disjoint
// indices synchronized by the engine's epoch gate (which provides the
// happens-before edges between epochs), so shared references never
// race.
unsafe impl<S: TraceSink> Sync for EpochTiles<S> {}

impl<S: TraceSink> EpochTiles<S> {
    pub(crate) fn new(
        l1s: *mut L1Ctrl<S>,
        homes: *mut HomeCtrl<S>,
        mems: *mut Memory,
        scratch: *mut Vec<OutMsg>,
        bufs: *mut EpochTileBufs,
        n: usize,
    ) -> EpochTiles<S> {
        EpochTiles {
            l1s,
            homes,
            mems,
            scratch,
            bufs,
            n,
        }
    }

    /// Number of tiles.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the machine has no tiles (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Materializes tile `i`'s epoch view.
    ///
    /// # Safety
    ///
    /// Caller must uphold the struct-level contract: views of the same
    /// `i` must never coexist, and the backing `MemorySystem` must be
    /// otherwise unborrowed for the view's lifetime.
    pub unsafe fn tile(&self, i: usize) -> EpochTile<'_, S> {
        assert!(i < self.n, "tile index out of range");
        EpochTile {
            l1: &mut *self.l1s.add(i),
            home: &mut *self.homes.add(i),
            mem: &mut *self.mems.add(i),
            scratch: &mut *self.scratch.add(i),
            bufs: &mut *self.bufs.add(i),
            tile: CoreId::from(i),
        }
    }
}

/// One tile's whole-tile view for an epoch free-run: its L1, home bank,
/// memory bank, and epoch buffers. All methods take the *current
/// free-run cycle* explicitly — the view spans many cycles and holds no
/// clock of its own.
#[derive(Debug)]
pub struct EpochTile<'a, S: TraceSink> {
    l1: &'a mut L1Ctrl<S>,
    home: &'a mut HomeCtrl<S>,
    mem: &'a mut Memory,
    scratch: &'a mut Vec<OutMsg>,
    bufs: &'a mut EpochTileBufs,
    tile: CoreId,
}

impl<S: TraceSink> EpochTile<'_, S> {
    /// The core-facing lane for cycle `now`. Route the lane's sends
    /// with [`route`](Self::route)`(now, PHASE_CORE)` after the core
    /// steps.
    pub fn lane(&mut self, now: Cycle) -> LaneMem<'_, S> {
        LaneMem::new(self.l1, self.scratch, self.tile, now)
    }

    /// Files every send the tile just produced: same-tile messages go
    /// to the inbox stamped `now` (handled at `now + 1`, like the
    /// serial local bypass), remote messages to the outbox stamped
    /// `(now, phase)` for ordered injection at apply time.
    pub fn route(&mut self, now: Cycle, phase: u8) {
        for OutMsg { dst, msg } in self.scratch.drain(..) {
            if dst == self.tile {
                self.bufs.locals += 1;
                self.bufs.inbox.push_back((
                    now,
                    Message {
                        src: self.tile,
                        dst,
                        class: msg.class(),
                        payload_bytes: msg.payload_bytes(),
                        payload: msg,
                    },
                ));
            } else {
                self.bufs.outbox.push((now, phase, OutMsg { dst, msg }));
            }
        }
    }

    /// True when this tile's home bank has a transaction in flight —
    /// the same predicate the serial tick's busy-homes work list
    /// answers at the top of a cycle (core activity cannot change it
    /// mid-cycle; banks only interact through the NoC, a cycle later).
    pub fn home_busy(&self) -> bool {
        self.home.is_busy()
    }

    /// Ticks the home bank's timers for cycle `now` and routes its
    /// sends (phase [`PHASE_HOME`]).
    pub fn tick_home(&mut self, now: Cycle) {
        self.home.tick(now, self.mem, self.scratch);
        self.route(now, PHASE_HOME);
    }

    /// True when the inbox holds a message to be handled at cycle
    /// `now` — the epoch analogue of the per-cycle engine's frozen
    /// delivery flag.
    pub fn has_delivery(&self, now: Cycle) -> bool {
        self.bufs
            .inbox
            .front()
            .is_some_and(|&(stamp, _)| stamp + 1 == now)
    }

    /// Handles every inbox message due at cycle `now`, routing the
    /// sends each one produces (phase [`PHASE_DELIVER`]). Returns true
    /// when at least one message was handled — the serial
    /// `delivery_visits` increment condition.
    pub fn deliver(&mut self, now: Cycle) -> bool {
        let mut any = false;
        while let Some(&(stamp, _)) = self.bufs.inbox.front() {
            debug_assert!(stamp + 1 >= now, "missed an inbox delivery");
            if stamp + 1 != now {
                break;
            }
            let (_, m) = self.bufs.inbox.pop_front().expect("checked non-empty");
            any = true;
            if m.payload.for_home() {
                self.home
                    .handle(m.src, m.payload, now, self.mem, self.scratch);
            } else {
                self.l1.handle(m.payload, now, self.scratch);
            }
            self.route(now, PHASE_DELIVER);
        }
        any
    }

    /// True when the tile has no tile-local work of its own: an empty
    /// inbox and an idle home bank. A passive tile whose core is also
    /// parked or halted does nothing for a whole window (nothing can
    /// reach it mid-window), which is what lets its shard skip the
    /// epoch.
    pub fn is_passive(&self) -> bool {
        self.bufs.inbox.is_empty() && !self.home.is_busy()
    }
}
