//! The private L1 data-cache controller.
//!
//! One outstanding core miss (the cores are in-order and blocking), any
//! number of in-flight writebacks. Spin loops on cached shared variables
//! hit here and generate **no** network traffic until an invalidation
//! arrives — exactly the behaviour the paper's software-barrier analysis
//! (busy-wait stage S2) relies on.

use crate::cache::SetAssoc;
use crate::proto::{CoreReq, CoreResp, Grant, LineData, ProtoMsg};
use sim_base::config::CacheConfig;
use sim_base::fxmap::FxHashMap;
use sim_base::ids::LineAddr;
use sim_base::trace::{Event, NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};

/// MESI states of a resident L1 line (Invalid = not resident).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum L1State {
    /// Modified: exclusive and dirty.
    M,
    /// Exclusive clean: silently upgradable to M.
    E,
    /// Shared read-only.
    S,
}

impl L1State {
    /// Trace label ("I" is the label of a non-resident line).
    pub fn label(self) -> &'static str {
        match self {
            L1State::M => "M",
            L1State::E => "E",
            L1State::S => "S",
        }
    }
}

/// An outbound protocol message (the system layer stamps the source).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OutMsg {
    /// Destination tile.
    pub dst: CoreId,
    /// The message.
    pub msg: ProtoMsg,
}

/// Kind of the outstanding miss.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum MissKind {
    /// Needs data with read permission (`GetS`).
    Read,
    /// Needs data with write permission (`GetX`).
    Write,
    /// Has the data in S; needs write permission (`Upgrade`).
    Upgrade,
}

/// The single miss-status holding register.
#[derive(Clone, Debug)]
struct Mshr {
    req: CoreReq,
    line: LineAddr,
    kind: MissKind,
    issued: bool,
}

/// L1 statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct L1Stats {
    /// Requests served without leaving the tile.
    pub hits: u64,
    /// Requests that needed the protocol.
    pub misses: u64,
    /// Dirty/exclusive lines written back.
    pub writebacks: u64,
    /// Invalidations received.
    pub invalidations: u64,
    /// Forwards serviced (FwdGetS/FwdGetX).
    pub forwards: u64,
}

/// The L1 controller of one tile.
#[derive(Clone, Debug)]
pub struct L1Ctrl<S: TraceSink = NullSink> {
    tile: CoreId,
    num_tiles: usize,
    line_bytes: u64,
    hit_latency: u32,
    cache: SetAssoc<L1State>,
    mshr: Option<Mshr>,
    /// Evicted M/E lines awaiting `WbAck`.
    wb_buf: FxHashMap<LineAddr, LineData>,
    /// A coherence message (Inv/FwdGetS/FwdGetX) for the line our miss is
    /// outstanding on, arrived before its Data (the Reply and Coherence
    /// virtual networks are unordered relative to each other). Serviced
    /// right after the fill installs — the hardware transient state
    /// IM_AD/IS_AD with a pending forward.
    deferred: Option<ProtoMsg>,
    /// A `CoarseInv` hit our issued-but-unfilled miss. `CoarseInv` is
    /// acked immediately (deferring would deadlock the write waiting on
    /// the ack), so this poison bit records that a `Data(S)` fill racing
    /// behind it is already invalidated: the response still completes
    /// (its value is from before the write's serialization point) but
    /// the line is not installed. Cleared by the fill.
    pending_inv: bool,
    /// Completed response with its ready cycle.
    resp: Option<(Cycle, CoreResp)>,
    stats: L1Stats,
    tracer: Tracer<S>,
}

impl L1Ctrl {
    /// Builds the controller for `tile` in a `num_tiles` CMP.
    pub fn new(tile: CoreId, num_tiles: usize, cfg: &CacheConfig) -> L1Ctrl {
        L1Ctrl::traced(tile, num_tiles, cfg, Tracer::default())
    }
}

impl<S: TraceSink> L1Ctrl<S> {
    /// Builds the controller for `tile`, emitting events into `tracer`.
    pub fn traced(
        tile: CoreId,
        num_tiles: usize,
        cfg: &CacheConfig,
        tracer: Tracer<S>,
    ) -> L1Ctrl<S> {
        L1Ctrl {
            tile,
            num_tiles,
            line_bytes: cfg.line_bytes,
            hit_latency: cfg.total_latency(),
            cache: SetAssoc::new(cfg),
            mshr: None,
            wb_buf: FxHashMap::default(),
            deferred: None,
            pending_inv: false,
            resp: None,
            stats: L1Stats::default(),
            tracer,
        }
    }

    /// Statistics so far.
    pub fn stats(&self) -> L1Stats {
        self.stats
    }

    /// True when the controller can accept a new core request.
    pub fn ready(&self) -> bool {
        self.mshr.is_none() && self.resp.is_none()
    }

    /// Home tile of a line (address-interleaved).
    fn home(&self, line: LineAddr) -> CoreId {
        CoreId::from((line.0 % self.num_tiles as u64) as usize)
    }

    fn word_index(&self, addr: u64) -> usize {
        ((addr % self.line_bytes) / 8) as usize
    }

    /// Debug/verification view: the line's data if resident (cache or
    /// writeback buffer) with its state.
    pub fn peek_line(&self, line: LineAddr) -> Option<(L1State, &LineData)> {
        if let Some(e) = self.cache.probe(line) {
            return Some((e.state, &e.data));
        }
        self.wb_buf.get(&line).map(|d| (L1State::M, d))
    }

    /// Debug view of the cache array only (no writeback buffer).
    pub fn peek_cache_line(&self, line: LineAddr) -> Option<(L1State, &LineData)> {
        self.cache.probe(line).map(|e| (e.state, &e.data))
    }

    /// Debug view of the writeback buffer only.
    pub fn peek_wb_line(&self, line: LineAddr) -> Option<&LineData> {
        self.wb_buf.get(&line)
    }

    /// Accepts a core request. Hits complete after the L1 latency;
    /// misses allocate the MSHR and engage the protocol.
    ///
    /// # Panics
    /// Panics if the controller is not [`ready`](Self::ready) or the
    /// address is unaligned.
    pub fn request(&mut self, req: CoreReq, now: Cycle, out: &mut Vec<OutMsg>) {
        assert!(self.ready(), "L1 of {:?} already busy", self.tile);
        let addr = req.addr();
        assert_eq!(addr % 8, 0, "unaligned data access at 0x{addr:x}");
        let line = LineAddr(addr / self.line_bytes);
        let w = self.word_index(addr);
        let tile = self.tile;
        let is_write = !matches!(req, CoreReq::Load { .. });
        let prev_state = if S::ENABLED {
            self.cache.probe(line).map(|e| e.state)
        } else {
            None
        };

        let hit = if let Some(e) = self.cache.lookup(line) {
            match (&req, e.state) {
                (CoreReq::Load { .. }, _) => Some(CoreResp::LoadValue(e.data[w])),
                (CoreReq::Store { value, .. }, L1State::M | L1State::E) => {
                    e.state = L1State::M;
                    e.data[w] = *value;
                    Some(CoreResp::StoreDone)
                }
                (CoreReq::Amo { op, operand, .. }, L1State::M | L1State::E) => {
                    e.state = L1State::M;
                    let old = e.data[w];
                    e.data[w] = op.apply(old, *operand);
                    Some(CoreResp::AmoOld(old))
                }
                // Write permission missing: upgrade miss.
                (CoreReq::Store { .. } | CoreReq::Amo { .. }, L1State::S) => None,
            }
        } else {
            None
        };

        self.tracer.emit(now, || Event::L1Access {
            core: tile,
            addr,
            write: is_write,
            hit: hit.is_some(),
        });
        if let Some(r) = hit {
            // A write hit on an E line silently took it to M.
            if S::ENABLED && is_write && prev_state == Some(L1State::E) {
                self.tracer.emit(now, || Event::L1Transition {
                    core: tile,
                    line: line.0,
                    from: "E",
                    to: "M",
                });
            }
            self.stats.hits += 1;
            self.resp = Some((now + self.hit_latency as u64, r));
            return;
        }
        self.stats.misses += 1;
        let kind = match req {
            CoreReq::Load { .. } => MissKind::Read,
            _ if self.cache.probe(line).is_some() => MissKind::Upgrade,
            _ => MissKind::Write,
        };
        self.mshr = Some(Mshr {
            req,
            line,
            kind,
            issued: false,
        });
        self.try_issue(now, out);
    }

    /// Issues the outstanding miss if it is not blocked behind a
    /// writeback of the same line.
    fn try_issue(&mut self, now: Cycle, out: &mut Vec<OutMsg>) {
        let Some(m) = &self.mshr else { return };
        if m.issued || self.wb_buf.contains_key(&m.line) {
            return;
        }
        let (line, kind) = (m.line, m.kind);
        // Make room for the fill (upgrades keep their resident line).
        if kind != MissKind::Upgrade && self.cache.set_full(line) {
            let victim = self
                .cache
                .pick_victim(line, |_| true)
                .expect("every L1 line is evictable");
            let e = self.cache.remove(victim).expect("victim resident");
            let tile = self.tile;
            self.tracer.emit(now, || Event::L1Transition {
                core: tile,
                line: victim.0,
                from: e.state.label(),
                to: "I",
            });
            if matches!(e.state, L1State::M | L1State::E) {
                self.stats.writebacks += 1;
                self.wb_buf.insert(victim, e.data);
                out.push(OutMsg {
                    dst: self.home(victim),
                    msg: ProtoMsg::PutM(victim, e.data),
                });
            }
            // S victims are dropped silently; the directory tolerates the
            // stale sharer bit.
        }
        let msg = match kind {
            MissKind::Read => ProtoMsg::GetS(line),
            MissKind::Write => ProtoMsg::GetX(line),
            MissKind::Upgrade => ProtoMsg::Upgrade(line),
        };
        out.push(OutMsg {
            dst: self.home(line),
            msg,
        });
        self.mshr.as_mut().expect("mshr checked above").issued = true;
    }

    /// Completes the outstanding miss with `data` in hand.
    fn finish_miss(&mut self, data: &mut LineData, state: L1State, now: Cycle) {
        let m = self.mshr.take().expect("miss outstanding");
        let w = self.word_index(m.req.addr());
        let resp = match m.req {
            CoreReq::Load { .. } => CoreResp::LoadValue(data[w]),
            CoreReq::Store { value, .. } => {
                debug_assert_eq!(state, L1State::M);
                data[w] = value;
                CoreResp::StoreDone
            }
            CoreReq::Amo { op, operand, .. } => {
                debug_assert_eq!(state, L1State::M);
                let old = data[w];
                data[w] = op.apply(old, operand);
                CoreResp::AmoOld(old)
            }
        };
        // One cycle to write the fill into the array / forward to the core.
        self.resp = Some((now + 1, resp));
    }

    /// True when `msg` races ahead of the Data/Ack of our own outstanding
    /// miss on the same line and must wait for the fill.
    fn must_defer(&self, msg: &ProtoMsg) -> bool {
        let line = msg.line();
        let ours = self
            .mshr
            .as_ref()
            .is_some_and(|m| m.issued && m.line == line);
        if !ours {
            return false;
        }
        match msg {
            // A forward targets the *owner*: if the home believes we own
            // the line but we are still waiting for its Data (or for an
            // UpgradeAck racing ahead of the forward, leaving us in S),
            // defer until the grant lands.
            ProtoMsg::FwdGetS { .. } | ProtoMsg::FwdGetX { .. } => match self.cache.probe(line) {
                Some(e) => e.state == L1State::S,
                None => !self.wb_buf.contains_key(&line),
            },
            // An invalidation for the line our *read* miss is fetching:
            // the home granted us S and a later writer invalidated it;
            // the Inv must apply after the fill, not bounce as stale.
            ProtoMsg::Inv(_) => self.cache.probe(line).is_none(),
            _ => false,
        }
    }

    /// Handles a protocol message addressed to this L1.
    pub fn handle(&mut self, msg: ProtoMsg, now: Cycle, out: &mut Vec<OutMsg>) {
        if self.must_defer(&msg) {
            assert!(
                self.deferred.is_none(),
                "home sent two racing coherence messages for one line"
            );
            self.deferred = Some(msg);
            return;
        }
        match msg {
            ProtoMsg::Data {
                line,
                mut data,
                grant,
            } => {
                let m = self
                    .mshr
                    .as_ref()
                    .expect("Data without an outstanding miss");
                assert_eq!(m.line, line, "Data for the wrong line");
                // An upgrade that lost its S copy to a racing writer comes
                // back as full data; drop the stale resident copy first.
                let from = if self.cache.probe(line).is_some() {
                    let e = self.cache.remove(line).expect("resident");
                    debug_assert_eq!(e.state, L1State::S, "data reply over a non-S copy");
                    "S"
                } else {
                    "I"
                };
                let state = match grant {
                    Grant::S => L1State::S,
                    Grant::E => {
                        // A write miss granted E takes it straight to M.
                        if m.kind == MissKind::Read {
                            L1State::E
                        } else {
                            L1State::M
                        }
                    }
                    Grant::M => L1State::M,
                };
                let tile = self.tile;
                // A CoarseInv overtook this fill: the grant is already
                // revoked if it was shared. The response still completes
                // (the data is valid at its serialization point), but an
                // S copy must not stay resident — dropping a clean S
                // line is always legal (the directory tolerates silent
                // S evictions). E/M grants are serialized *after* the
                // poisoning write's completion and are kept.
                let drop_fill =
                    std::mem::replace(&mut self.pending_inv, false) && grant == Grant::S;
                self.tracer.emit(now, || Event::L1Transition {
                    core: tile,
                    line: line.0,
                    from,
                    to: if drop_fill { "I" } else { state.label() },
                });
                self.finish_miss(&mut data, state, now);
                if !drop_fill {
                    self.cache.insert(line, state, data);
                }
                self.service_deferred(now, out);
            }
            ProtoMsg::UpgradeAck(line) => {
                let m = self
                    .mshr
                    .as_ref()
                    .expect("UpgradeAck without an outstanding miss");
                assert_eq!(m.line, line);
                assert_eq!(m.kind, MissKind::Upgrade);
                // A home only acks an upgrade against an *exact* Shared
                // entry containing us, which a CoarseInv can never have
                // raced (coarse entries take the full-data write path).
                debug_assert!(!self.pending_inv, "UpgradeAck over a poisoned fill");
                let e = self.cache.remove(line).expect("upgrade keeps its S copy");
                debug_assert_eq!(e.state, L1State::S);
                let tile = self.tile;
                self.tracer.emit(now, || Event::L1Transition {
                    core: tile,
                    line: line.0,
                    from: "S",
                    to: "M",
                });
                let mut data = e.data;
                self.finish_miss(&mut data, L1State::M, now);
                self.cache.insert(line, L1State::M, data);
                self.service_deferred(now, out);
            }
            ProtoMsg::Inv(line) => {
                self.stats.invalidations += 1;
                if let Some(e) = self.cache.remove(line) {
                    debug_assert_eq!(e.state, L1State::S, "Inv of a non-shared line");
                    let tile = self.tile;
                    self.tracer.emit(now, || Event::L1Transition {
                        core: tile,
                        line: line.0,
                        from: "S",
                        to: "I",
                    });
                }
                debug_assert!(
                    !self.wb_buf.contains_key(&line),
                    "Inv races only with S copies"
                );
                out.push(OutMsg {
                    dst: self.home(line),
                    msg: ProtoMsg::InvAck(line),
                });
            }
            ProtoMsg::CoarseInv(line) => {
                // Imprecise invalidation from a coarse directory entry:
                // we may or may not hold the line. Always ack right away
                // — the write transaction is counting on exactly one
                // InvAck from us, and deferring behind our own fill (as
                // a precise Inv would) deadlocks: the fill is queued at
                // the home behind the very write waiting for this ack.
                self.stats.invalidations += 1;
                if let Some(e) = self.cache.remove(line) {
                    debug_assert_eq!(e.state, L1State::S, "CoarseInv of a non-shared line");
                    let tile = self.tile;
                    self.tracer.emit(now, || Event::L1Transition {
                        core: tile,
                        line: line.0,
                        from: "S",
                        to: "I",
                    });
                } else if self
                    .mshr
                    .as_ref()
                    .is_some_and(|m| m.issued && m.line == line)
                {
                    // Our fill may race behind this invalidation: poison
                    // it so a Data(S) is not installed stale.
                    self.pending_inv = true;
                }
                out.push(OutMsg {
                    dst: self.home(line),
                    msg: ProtoMsg::InvAck(line),
                });
            }
            ProtoMsg::FwdGetS { line, requester } => {
                self.stats.forwards += 1;
                if let Some(e) = self.cache.lookup(line) {
                    debug_assert!(matches!(e.state, L1State::M | L1State::E));
                    let from = e.state.label();
                    e.state = L1State::S;
                    let data = e.data;
                    let tile = self.tile;
                    self.tracer.emit(now, || Event::L1Transition {
                        core: tile,
                        line: line.0,
                        from,
                        to: "S",
                    });
                    out.push(OutMsg {
                        dst: requester,
                        msg: ProtoMsg::Data {
                            line,
                            data,
                            grant: Grant::S,
                        },
                    });
                    out.push(OutMsg {
                        dst: self.home(line),
                        msg: ProtoMsg::FwdDone {
                            line,
                            data: Some(data),
                            retained: true,
                        },
                    });
                } else {
                    // The line is on its way out; service from the buffer.
                    let data = *self.wb_buf.get(&line).expect("owner must hold the line");
                    out.push(OutMsg {
                        dst: requester,
                        msg: ProtoMsg::Data {
                            line,
                            data,
                            grant: Grant::S,
                        },
                    });
                    out.push(OutMsg {
                        dst: self.home(line),
                        msg: ProtoMsg::FwdDone {
                            line,
                            data: Some(data),
                            retained: false,
                        },
                    });
                }
            }
            ProtoMsg::FwdGetX { line, requester } => {
                self.stats.forwards += 1;
                let data = if let Some(e) = self.cache.remove(line) {
                    debug_assert!(matches!(e.state, L1State::M | L1State::E));
                    let tile = self.tile;
                    self.tracer.emit(now, || Event::L1Transition {
                        core: tile,
                        line: line.0,
                        from: e.state.label(),
                        to: "I",
                    });
                    e.data
                } else {
                    *self.wb_buf.get(&line).expect("owner must hold the line")
                };
                out.push(OutMsg {
                    dst: requester,
                    msg: ProtoMsg::Data {
                        line,
                        data,
                        grant: Grant::M,
                    },
                });
                out.push(OutMsg {
                    dst: self.home(line),
                    msg: ProtoMsg::FwdDone {
                        line,
                        data: None,
                        retained: false,
                    },
                });
            }
            ProtoMsg::WbAck(line) => {
                let present = self.wb_buf.remove(&line).is_some();
                debug_assert!(present, "WbAck without a writeback in flight");
                self.try_issue(now, out);
            }
            other => panic!(
                "L1 of {:?} received a home-bound message {other:?}",
                self.tile
            ),
        }
    }

    /// Services a coherence message that was deferred behind our fill.
    fn service_deferred(&mut self, now: Cycle, out: &mut Vec<OutMsg>) {
        if let Some(msg) = self.deferred.take() {
            self.handle(msg, now, out);
        }
    }

    /// Returns the completed response once its ready cycle has passed.
    pub fn poll(&mut self, now: Cycle) -> Option<CoreResp> {
        if let Some((ready, _)) = self.resp {
            if ready <= now {
                return self.resp.take().map(|(_, r)| r);
            }
        }
        None
    }

    // --- fast-forward support -------------------------------------------
    //
    // The scheduler in sim-cmp skips over stretches where every core is
    // spinning on an L1-resident line. The hooks below let it (a) decide
    // whether a spin load would be a pure hit and (b) replay the batched
    // effect of many such hits in one step, preserving stats and the
    // LRU/response state the per-cycle path would have produced.

    /// True when a coherence message sits parked behind our own fill.
    pub fn has_deferred(&self) -> bool {
        self.deferred.is_some()
    }

    /// True when a miss is outstanding (MSHR allocated).
    pub fn miss_outstanding(&self) -> bool {
        self.mshr.is_some()
    }

    /// The ready cycle of the pending core response, if any.
    pub fn resp_ready_at(&self) -> Option<Cycle> {
        self.resp.map(|(r, _)| r)
    }

    /// The pending response if it is a load: `(ready_cycle, value)`.
    pub fn peek_resp_load(&self) -> Option<(Cycle, u64)> {
        match self.resp {
            Some((r, CoreResp::LoadValue(v))) => Some((r, v)),
            _ => None,
        }
    }

    /// The value a `Load { addr }` would return as a pure hit right now,
    /// without performing the access. `None` when the controller is busy
    /// (miss outstanding / deferred coherence message / pending response)
    /// or the line is not resident in the cache array — in either case
    /// the access would not be a hit-and-nothing-else, so the caller
    /// must not fast-forward through it.
    pub fn spin_probe_load(&self, addr: u64) -> Option<u64> {
        if self.mshr.is_some() || self.deferred.is_some() || self.resp.is_some() {
            return None;
        }
        self.line_value(addr)
    }

    /// The resident copy of the word at `addr`, ignoring controller
    /// state. Used when a spin is captured mid-iteration: the pending
    /// response makes [`spin_probe_load`](Self::spin_probe_load) bail,
    /// but the next iteration's value is still the resident line's word.
    pub fn line_value(&self, addr: u64) -> Option<u64> {
        let line = LineAddr(addr / self.line_bytes);
        let w = self.word_index(addr);
        self.cache.probe(line).map(|e| e.data[w])
    }

    /// Replays `hits` spin-loop load hits of `addr` in one step: charges
    /// the hit counter, performs one LRU touch (repeated touches of the
    /// same line are idempotent), and — when the replayed window ends
    /// between the access and its response — leaves the final response
    /// pending at `final_ready`.
    ///
    /// Only legal while the controller holds the line and has nothing
    /// else in flight; only used on untraced runs (the per-cycle path
    /// emits `L1Access` events this replay does not).
    pub fn spin_replay(&mut self, addr: u64, hits: u64, final_ready: Option<Cycle>) {
        debug_assert!(!S::ENABLED, "spin replay is only legal untraced");
        debug_assert!(self.mshr.is_none() && self.deferred.is_none());
        if hits == 0 {
            debug_assert!(final_ready.is_none());
            return;
        }
        let line = LineAddr(addr / self.line_bytes);
        let w = self.word_index(addr);
        self.stats.hits += hits;
        let e = self.cache.lookup(line).expect("spin line resident");
        if let Some(r) = final_ready {
            debug_assert!(self.resp.is_none());
            self.resp = Some((r, CoreResp::LoadValue(e.data[w])));
        }
    }

    /// Takes the pending response regardless of its ready cycle (the
    /// fast-forward replay consumes it as part of a skipped iteration).
    pub fn take_resp_for_replay(&mut self) -> Option<CoreResp> {
        self.resp.take().map(|(_, r)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l1() -> L1Ctrl {
        let cfg = CacheConfig {
            size_bytes: 512, // 4 sets × 2 ways, tiny on purpose
            ways: 2,
            line_bytes: 64,
            hit_latency: 1,
            extra_data_latency: 0,
        };
        L1Ctrl::new(CoreId(0), 4, &cfg)
    }

    fn drain(out: &mut Vec<OutMsg>) -> Vec<OutMsg> {
        std::mem::take(out)
    }

    #[test]
    fn cold_load_sends_gets_to_home() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0x140 }, 0, &mut out); // line 5 → home 1
        let msgs = drain(&mut out);
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].dst, CoreId(1));
        assert_eq!(msgs[0].msg, ProtoMsg::GetS(LineAddr(5)));
        assert!(c.poll(10).is_none(), "no response before the fill");
    }

    #[test]
    fn fill_completes_load_and_hits_after() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0x8 }, 0, &mut out);
        out.clear(); // drop the GetS
        let mut data = [0u64; 8];
        data[1] = 77;
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data,
                grant: Grant::S,
            },
            5,
            &mut out,
        );
        assert_eq!(c.poll(6), Some(CoreResp::LoadValue(77)));
        // Second load to the same line: pure hit, no messages.
        c.request(CoreReq::Load { addr: 0x0 }, 7, &mut out);
        assert!(drain(&mut out).is_empty());
        assert_eq!(c.poll(8), Some(CoreResp::LoadValue(0)));
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn store_to_shared_line_upgrades() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [0; 8],
                grant: Grant::S,
            },
            2,
            &mut out,
        );
        assert!(c.poll(3).is_some());
        out.clear();
        c.request(CoreReq::Store { addr: 0, value: 9 }, 4, &mut out);
        let msgs = drain(&mut out);
        assert_eq!(msgs[0].msg, ProtoMsg::Upgrade(LineAddr(0)));
        c.handle(ProtoMsg::UpgradeAck(LineAddr(0)), 9, &mut out);
        assert_eq!(c.poll(10), Some(CoreResp::StoreDone));
        assert_eq!(c.peek_line(LineAddr(0)).unwrap().0, L1State::M);
        assert_eq!(c.peek_line(LineAddr(0)).unwrap().1[0], 9);
    }

    #[test]
    fn exclusive_grant_upgrades_silently() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [0; 8],
                grant: Grant::E,
            },
            2,
            &mut out,
        );
        assert!(c.poll(3).is_some());
        out.clear();
        c.request(CoreReq::Store { addr: 8, value: 1 }, 4, &mut out);
        assert!(drain(&mut out).is_empty(), "E→M needs no traffic");
        assert_eq!(c.poll(5), Some(CoreResp::StoreDone));
        assert_eq!(c.peek_line(LineAddr(0)).unwrap().0, L1State::M);
    }

    #[test]
    fn amo_hit_in_exclusive_applies_locally() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        let mut data = [0u64; 8];
        data[0] = 10;
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data,
                grant: Grant::E,
            },
            2,
            &mut out,
        );
        assert!(c.poll(3).is_some());
        out.clear();
        c.request(
            CoreReq::Amo {
                addr: 0,
                op: sim_isa::inst::AmoOp::Add,
                operand: 5,
            },
            4,
            &mut out,
        );
        assert_eq!(c.poll(5), Some(CoreResp::AmoOld(10)));
        assert_eq!(c.peek_line(LineAddr(0)).unwrap().1[0], 15);
    }

    #[test]
    fn eviction_of_dirty_line_writes_back() {
        let mut c = l1();
        let mut out = Vec::new();
        // Fill two ways of set 0 with M lines (lines 0 and 4), then miss
        // on line 8 (same set): the LRU (line 0) must be written back.
        for line in [0u64, 4] {
            c.request(
                CoreReq::Store {
                    addr: line * 64,
                    value: line,
                },
                0,
                &mut out,
            );
            c.handle(
                ProtoMsg::Data {
                    line: LineAddr(line),
                    data: [0; 8],
                    grant: Grant::M,
                },
                1,
                &mut out,
            );
            assert!(c.poll(2).is_some());
        }
        out.clear();
        c.request(CoreReq::Load { addr: 8 * 64 }, 3, &mut out);
        let msgs = drain(&mut out);
        assert_eq!(msgs.len(), 2);
        assert!(matches!(msgs[0].msg, ProtoMsg::PutM(LineAddr(0), _)));
        assert_eq!(msgs[1].msg, ProtoMsg::GetS(LineAddr(8)));
        assert_eq!(c.stats().writebacks, 1);
        // The line is still visible in the writeback buffer.
        assert!(c.peek_line(LineAddr(0)).is_some());
        c.handle(ProtoMsg::WbAck(LineAddr(0)), 10, &mut out);
        assert!(c.peek_line(LineAddr(0)).is_none());
    }

    #[test]
    fn miss_on_wb_pending_line_waits_for_ack() {
        let mut c = l1();
        let mut out = Vec::new();
        for line in [0u64, 4] {
            c.request(
                CoreReq::Store {
                    addr: line * 64,
                    value: 1,
                },
                0,
                &mut out,
            );
            c.handle(
                ProtoMsg::Data {
                    line: LineAddr(line),
                    data: [0; 8],
                    grant: Grant::M,
                },
                1,
                &mut out,
            );
            assert!(c.poll(2).is_some());
        }
        out.clear();
        // Evict line 0 (PutM)…
        c.request(CoreReq::Load { addr: 8 * 64 }, 3, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(8),
                data: [0; 8],
                grant: Grant::E,
            },
            6,
            &mut out,
        );
        assert!(c.poll(7).is_some());
        out.clear();
        // …then immediately miss on line 0 again: the GetS must wait for
        // the WbAck (else the Request/Coherence VNs could reorder them).
        c.request(CoreReq::Load { addr: 0 }, 8, &mut out);
        let msgs = drain(&mut out);
        // Only the eviction of the set-conflicting victim may appear; no
        // GetS for line 0 yet.
        assert!(
            msgs.iter().all(|m| m.msg.line() != LineAddr(0)),
            "GetS leaked before WbAck: {msgs:?}"
        );
        c.handle(ProtoMsg::WbAck(LineAddr(0)), 9, &mut out);
        let msgs = drain(&mut out);
        assert!(msgs.iter().any(|m| m.msg == ProtoMsg::GetS(LineAddr(0))));
    }

    #[test]
    fn inv_of_shared_line_acks_and_drops() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [3; 8],
                grant: Grant::S,
            },
            2,
            &mut out,
        );
        assert!(c.poll(3).is_some());
        out.clear();
        c.handle(ProtoMsg::Inv(LineAddr(0)), 4, &mut out);
        let msgs = drain(&mut out);
        assert_eq!(msgs[0].msg, ProtoMsg::InvAck(LineAddr(0)));
        assert!(c.peek_line(LineAddr(0)).is_none());
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn stale_inv_still_acks() {
        let mut c = l1();
        let mut out = Vec::new();
        c.handle(ProtoMsg::Inv(LineAddr(9)), 0, &mut out);
        assert_eq!(out[0].msg, ProtoMsg::InvAck(LineAddr(9)));
    }

    #[test]
    fn fwd_gets_downgrades_and_forwards() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Store { addr: 0, value: 42 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [0; 8],
                grant: Grant::M,
            },
            1,
            &mut out,
        );
        assert!(c.poll(2).is_some());
        out.clear();
        c.handle(
            ProtoMsg::FwdGetS {
                line: LineAddr(0),
                requester: CoreId(2),
            },
            3,
            &mut out,
        );
        let msgs = drain(&mut out);
        assert_eq!(msgs.len(), 2);
        match &msgs[0].msg {
            ProtoMsg::Data {
                data,
                grant: Grant::S,
                ..
            } => {
                assert_eq!(msgs[0].dst, CoreId(2));
                assert_eq!(data[0], 42, "forwarded data carries the dirty value");
            }
            m => panic!("expected Data to requester, got {m:?}"),
        }
        assert!(matches!(
            msgs[1].msg,
            ProtoMsg::FwdDone {
                data: Some(_),
                retained: true,
                ..
            }
        ));
        assert_eq!(c.peek_line(LineAddr(0)).unwrap().0, L1State::S);
    }

    #[test]
    fn fwd_getx_invalidates_and_forwards() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Store { addr: 0, value: 42 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [0; 8],
                grant: Grant::M,
            },
            1,
            &mut out,
        );
        assert!(c.poll(2).is_some());
        out.clear();
        c.handle(
            ProtoMsg::FwdGetX {
                line: LineAddr(0),
                requester: CoreId(3),
            },
            3,
            &mut out,
        );
        let msgs = drain(&mut out);
        assert!(matches!(
            msgs[0].msg,
            ProtoMsg::Data {
                grant: Grant::M,
                ..
            }
        ));
        assert!(matches!(
            msgs[1].msg,
            ProtoMsg::FwdDone {
                data: None,
                retained: false,
                ..
            }
        ));
        assert!(c.peek_line(LineAddr(0)).is_none());
    }

    #[test]
    fn fwd_serviced_from_writeback_buffer() {
        let mut c = l1();
        let mut out = Vec::new();
        for line in [0u64, 4] {
            c.request(
                CoreReq::Store {
                    addr: line * 64,
                    value: 5,
                },
                0,
                &mut out,
            );
            c.handle(
                ProtoMsg::Data {
                    line: LineAddr(line),
                    data: [0; 8],
                    grant: Grant::M,
                },
                1,
                &mut out,
            );
            assert!(c.poll(2).is_some());
        }
        out.clear();
        c.request(CoreReq::Load { addr: 8 * 64 }, 3, &mut out); // evicts line 0 → wb_buf
        out.clear();
        // A forward racing with the PutM finds the line in the buffer.
        c.handle(
            ProtoMsg::FwdGetS {
                line: LineAddr(0),
                requester: CoreId(2),
            },
            4,
            &mut out,
        );
        let msgs = drain(&mut out);
        match &msgs[1].msg {
            ProtoMsg::FwdDone { retained, .. } => {
                assert!(!retained, "a buffered line is not retained as a sharer")
            }
            m => panic!("expected FwdDone, got {m:?}"),
        }
    }

    #[test]
    fn upgrade_race_resolved_by_full_data() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [1; 8],
                grant: Grant::S,
            },
            1,
            &mut out,
        );
        assert!(c.poll(2).is_some());
        out.clear();
        c.request(CoreReq::Store { addr: 0, value: 2 }, 3, &mut out);
        assert_eq!(out[0].msg, ProtoMsg::Upgrade(LineAddr(0)));
        out.clear();
        // Home answers with full data (our S copy was invalidated by a
        // racing writer between our Upgrade and its processing).
        c.handle(ProtoMsg::Inv(LineAddr(0)), 4, &mut out);
        out.clear();
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [9; 8],
                grant: Grant::M,
            },
            6,
            &mut out,
        );
        assert_eq!(c.poll(7), Some(CoreResp::StoreDone));
        let (st, data) = c.peek_line(LineAddr(0)).unwrap();
        assert_eq!(st, L1State::M);
        assert_eq!(data[0], 2, "store applied over the fresh copy");
        assert_eq!(data[1], 9, "rest of the line from the racing writer");
    }

    #[test]
    fn coarse_inv_acks_immediately_and_poisons_shared_fill() {
        let mut c = l1();
        let mut out = Vec::new();
        // A read miss is outstanding; a CoarseInv for the same line must
        // ack at once (no deferral) and keep the racing Data(S) fill
        // from installing, while the load still completes.
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        out.clear();
        c.handle(ProtoMsg::CoarseInv(LineAddr(0)), 1, &mut out);
        let msgs = drain(&mut out);
        assert_eq!(msgs.len(), 1, "CoarseInv must not defer");
        assert_eq!(msgs[0].msg, ProtoMsg::InvAck(LineAddr(0)));
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [5; 8],
                grant: Grant::S,
            },
            3,
            &mut out,
        );
        assert_eq!(c.poll(4), Some(CoreResp::LoadValue(5)));
        assert!(
            c.peek_line(LineAddr(0)).is_none(),
            "poisoned shared fill must not stay resident"
        );
        assert_eq!(c.stats().invalidations, 1);
    }

    #[test]
    fn coarse_inv_spurious_and_resident_cases() {
        let mut c = l1();
        let mut out = Vec::new();
        // Spurious (nothing resident, nothing outstanding): just an ack.
        c.handle(ProtoMsg::CoarseInv(LineAddr(9)), 0, &mut out);
        assert_eq!(drain(&mut out)[0].msg, ProtoMsg::InvAck(LineAddr(9)));
        // Resident S copy: behaves exactly like a precise Inv.
        c.request(CoreReq::Load { addr: 0 }, 1, &mut out);
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(0),
                data: [3; 8],
                grant: Grant::S,
            },
            2,
            &mut out,
        );
        assert!(c.poll(3).is_some());
        out.clear();
        c.handle(ProtoMsg::CoarseInv(LineAddr(0)), 4, &mut out);
        assert_eq!(drain(&mut out)[0].msg, ProtoMsg::InvAck(LineAddr(0)));
        assert!(c.peek_line(LineAddr(0)).is_none());
        // A poisoned fill granted M is kept (serialized after the write).
        c.request(CoreReq::Store { addr: 64, value: 7 }, 5, &mut out);
        out.clear();
        c.handle(ProtoMsg::CoarseInv(LineAddr(1)), 6, &mut out);
        assert_eq!(drain(&mut out)[0].msg, ProtoMsg::InvAck(LineAddr(1)));
        c.handle(
            ProtoMsg::Data {
                line: LineAddr(1),
                data: [0; 8],
                grant: Grant::M,
            },
            7,
            &mut out,
        );
        assert_eq!(c.poll(8), Some(CoreResp::StoreDone));
        assert_eq!(c.peek_line(LineAddr(1)).unwrap().0, L1State::M);
    }

    #[test]
    #[should_panic(expected = "already busy")]
    fn second_outstanding_request_rejected() {
        let mut c = l1();
        let mut out = Vec::new();
        c.request(CoreReq::Load { addr: 0 }, 0, &mut out);
        c.request(CoreReq::Load { addr: 64 }, 0, &mut out);
    }
}
