//! # sim-mem — the memory hierarchy of the simulated CMP
//!
//! Private L1 data caches, a shared distributed L2 (one bank per tile,
//! lines interleaved across banks by line address) with a full-map
//! directory MESI protocol, and a flat 400-cycle memory backend — the
//! Table 1 hierarchy of the paper.
//!
//! ## Protocol
//!
//! A **blocking home directory**: each L2 home bank serializes the
//! transactions on a line (later requests queue behind the active one).
//! The protocol is a 3-hop MESI:
//!
//! * `GetS` — load miss. Home replies `Data(S)` (or `Data(E)` when the
//!   line is uncached) from L2/memory, or forwards `FwdGetS` to the
//!   exclusive owner, which sends the data directly to the requester and
//!   a `FwdDone` copy to the home.
//! * `GetX` / `Upgrade` — store/atomic miss. Home invalidates sharers
//!   (collecting `InvAck`s), or forwards `FwdGetX` to the owner.
//! * `PutM` — dirty/exclusive eviction; acknowledged with `WbAck`.
//!   Evicting L1s park the line in a writeback buffer until the ack, so
//!   forwarded fetches racing with the writeback are answered from the
//!   buffer (stale `PutM`s are acknowledged and dropped by the home).
//! * Clean-shared evictions are silent; the directory tolerates stale
//!   sharers (they simply `InvAck` without having the line).
//!
//! Traffic classes map to the paper's Figure 7: `GetS/GetX/Upgrade` are
//! *Request*, data and acks to the requester are *Reply*, and all
//! protocol-generated messages (`Inv`, `InvAck`, `FwdGetS`, `FwdGetX`,
//! `FwdDone`, `PutM`) are *Coherence* — each on its own virtual network.
//!
//! ## Simplifications (documented in DESIGN.md)
//!
//! * The directory is perfect (no capacity evictions of tracked lines):
//!   L2 victims are chosen among lines with no cached copies. This keeps
//!   the recall machinery out while preserving the traffic the paper
//!   measures.
//! * Each L1 has one outstanding core miss (the cores are in-order and
//!   blocking), plus any number of in-flight writebacks.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod epoch;
pub mod home;
pub mod l1;
pub mod lane;
pub mod proto;
pub mod system;

pub use epoch::{EpochTile, EpochTiles, PHASE_CORE, PHASE_DELIVER, PHASE_HOME};
pub use lane::{CoreMem, LaneMem, TileLanes};
pub use proto::{CoreReq, CoreResp, ProtoMsg};
pub use system::{MemSchedStats, MemorySystem};
