//! The assembled memory system: per-tile L1s and home banks glued by the
//! NoC, plus the flat memory backend.

use crate::epoch::{EpochTileBufs, EpochTiles};
use crate::home::{DirState, HomeCtrl, HomeStats, Memory};
use crate::l1::{L1Ctrl, L1Stats, OutMsg};
use crate::lane::{CoreMem, TileLanes};
use crate::proto::{CoreReq, CoreResp, ProtoMsg};
use sim_base::active::ActiveSet;
use sim_base::config::CmpConfig;
use sim_base::ids::LineAddr;
use sim_base::trace::{NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle};
use sim_noc::{Message, Noc, NocSchedStats, NocStats};

/// Active-set occupancy counters for the memory hierarchy (diagnostics
/// only — never part of a report, so sparse and dense runs stay
/// bit-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemSchedStats {
    /// Ticks performed.
    pub ticks: u64,
    /// Home banks visited with a transaction in flight.
    pub home_visits: u64,
    /// Tiles visited that had at least one delivered message.
    pub delivery_visits: u64,
}

impl MemSchedStats {
    /// Mean number of busy home banks per tick.
    pub fn mean_busy_homes(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.home_visits as f64 / self.ticks as f64
        }
    }
}

/// The full memory hierarchy of the CMP.
///
/// Driving contract: during a cycle, cores may call
/// [`request`](Self::request) (when [`ready`](Self::ready)) and
/// [`poll`](Self::poll); the simulator calls [`tick`](Self::tick) once
/// per cycle.
#[derive(Debug)]
pub struct MemorySystem<S: TraceSink = NullSink> {
    cfg: CmpConfig,
    l1s: Vec<L1Ctrl<S>>,
    homes: Vec<HomeCtrl<S>>,
    noc: Noc<ProtoMsg, S>,
    /// Backing memory, banked per home: `mems[i]` holds exactly the
    /// lines homed at tile `i` (the per-shard home partition of the
    /// parallel engine — a bank is only ever touched together with its
    /// home controller, or via `poke_word`/`peek_word` which route by
    /// home).
    mems: Vec<Memory>,
    now: Cycle,
    out_scratch: Vec<OutMsg>,
    /// Per-tile deferred outboxes for the parallel compute phase: lane
    /// `i` buffers its outbound protocol messages here;
    /// [`flush_shard_outboxes`](Self::flush_shard_outboxes) injects
    /// them in ascending tile order at the exchange barrier. Always
    /// empty outside a parallel cycle.
    pending: Vec<Vec<OutMsg>>,
    /// Home banks with a transaction in flight — the per-tick work
    /// list. Maintained on every state edge (message handled, bank
    /// ticked) in both scheduling modes, so it is always exact.
    busy_homes: ActiveSet,
    /// Scratch for snapshotting a work list during a tick.
    sched_scratch: Vec<u32>,
    /// Gate for the sparse tick path (`--no-active-set` escape hatch).
    active_set_enabled: bool,
    sched: MemSchedStats,
    /// Per-tile inbox/outbox buffers for the epoch engine (`DESIGN.md`
    /// §13). Empty between epochs.
    epoch_bufs: Vec<EpochTileBufs>,
    /// Merged, ordered remote sends awaiting injection during an epoch
    /// apply phase, *reversed* so the next send is at the back.
    inject_scratch: Vec<(Cycle, u8, CoreId, OutMsg)>,
}

impl MemorySystem {
    /// Builds the hierarchy from a [`CmpConfig`].
    pub fn new(cfg: &CmpConfig) -> MemorySystem {
        MemorySystem::traced(cfg, Tracer::default())
    }
}

impl<S: TraceSink> MemorySystem<S> {
    /// Builds the hierarchy, with every controller and the NoC emitting
    /// events into (clones of) `tracer`.
    pub fn traced(cfg: &CmpConfig, tracer: Tracer<S>) -> MemorySystem<S> {
        let n = cfg.num_cores();
        MemorySystem {
            cfg: *cfg,
            l1s: (0..n)
                .map(|i| L1Ctrl::traced(CoreId::from(i), n, &cfg.l1, tracer.clone()))
                .collect(),
            homes: (0..n)
                .map(|i| {
                    HomeCtrl::traced(CoreId::from(i), n, &cfg.l2, cfg.mem.latency, tracer.clone())
                })
                .collect(),
            noc: Noc::traced(cfg.mesh, cfg.noc, tracer),
            mems: (0..n).map(|_| Memory::default()).collect(),
            now: 0,
            out_scratch: Vec::new(),
            pending: (0..n).map(|_| Vec::new()).collect(),
            busy_homes: ActiveSet::new(n),
            sched_scratch: Vec::new(),
            active_set_enabled: true,
            sched: MemSchedStats::default(),
            epoch_bufs: (0..n).map(|_| EpochTileBufs::default()).collect(),
            inject_scratch: Vec::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &CmpConfig {
        &self.cfg
    }

    /// Current cycle.
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Network statistics (the paper's Figure-7 counters).
    pub fn noc_stats(&self) -> &NocStats {
        self.noc.stats()
    }

    /// L1 statistics of one core.
    pub fn l1_stats(&self, core: CoreId) -> L1Stats {
        self.l1s[core.index()].stats()
    }

    /// Aggregated home-bank statistics.
    pub fn home_stats(&self) -> HomeStats {
        let mut acc = HomeStats::default();
        for h in &self.homes {
            let s = h.stats();
            acc.l2_hits += s.l2_hits;
            acc.l2_misses += s.l2_misses;
            acc.invalidations_sent += s.invalidations_sent;
            acc.forwards_sent += s.forwards_sent;
            acc.writebacks += s.writebacks;
            acc.stale_writebacks += s.stale_writebacks;
        }
        acc
    }

    /// True when core `core` can issue a new request.
    pub fn ready(&self, core: CoreId) -> bool {
        self.l1s[core.index()].ready()
    }

    /// Issues a data access for `core` (one outstanding each).
    pub fn request(&mut self, core: CoreId, req: CoreReq) {
        let now = self.now;
        self.l1s[core.index()].request(req, now, &mut self.out_scratch);
        self.flush_out(core);
    }

    /// Returns `core`'s completed response, if ready.
    pub fn poll(&mut self, core: CoreId) -> Option<CoreResp> {
        self.l1s[core.index()].poll(self.now)
    }

    /// Advances the memory system one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.sched.ticks += 1;
        if self.active_set_enabled {
            // Home timers: only banks with a transaction in flight (an
            // idle bank's tick early-returns on exactly this guard).
            // Bank-to-bank interaction only happens through the NoC, a
            // cycle later, so visiting the busy subset in ascending
            // order is bit-identical to the dense scan.
            if !self.busy_homes.is_empty() {
                let mut homes = std::mem::take(&mut self.sched_scratch);
                self.busy_homes.collect_sorted(&mut homes);
                for &i in &homes {
                    let i = i as usize;
                    self.sched.home_visits += 1;
                    self.homes[i].tick(now, &mut self.mems[i], &mut self.out_scratch);
                    self.flush_out(CoreId::from(i));
                    self.sync_home(i);
                }
                self.sched_scratch = homes;
            }
            // Deliveries: only tiles the NoC holds messages for.
            // Handling a message can send new ones, but they mature in
            // a later NoC tick, so the snapshot is exact.
            if self.noc.has_deliveries() {
                let mut tiles = std::mem::take(&mut self.sched_scratch);
                self.noc.collect_delivery_tiles(&mut tiles);
                for &i in &tiles {
                    if self.deliver_tile(i as usize, now) {
                        self.sched.delivery_visits += 1;
                    }
                }
                self.sched_scratch = tiles;
            }
        } else {
            // Dense reference path (`--no-active-set`): every bank and
            // tile, every cycle. Work-list membership is still
            // maintained so the sparse path can be re-enabled mid-run.
            for i in 0..self.homes.len() {
                if self.homes[i].is_busy() {
                    self.sched.home_visits += 1;
                }
                self.homes[i].tick(now, &mut self.mems[i], &mut self.out_scratch);
                self.flush_out(CoreId::from(i));
                self.sync_home(i);
            }
            for i in 0..self.l1s.len() {
                if self.deliver_tile(i, now) {
                    self.sched.delivery_visits += 1;
                }
            }
        }
        self.noc.tick();
        self.now += 1;
    }

    /// Drains and handles every delivered message for tile `i`.
    /// Returns true when at least one message was handled.
    fn deliver_tile(&mut self, i: usize, now: Cycle) -> bool {
        let tile = CoreId::from(i);
        let mut any = false;
        while let Some(m) = self.noc.recv(tile) {
            any = true;
            if m.payload.for_home() {
                self.homes[i].handle(
                    m.src,
                    m.payload,
                    now,
                    &mut self.mems[i],
                    &mut self.out_scratch,
                );
                self.sync_home(i);
            } else {
                self.l1s[i].handle(m.payload, now, &mut self.out_scratch);
            }
            self.flush_out(tile);
        }
        any
    }

    /// Re-derives home `i`'s busy-set membership from its state.
    #[inline]
    fn sync_home(&mut self, i: usize) {
        if self.homes[i].is_busy() {
            self.busy_homes.insert(i);
        } else {
            self.busy_homes.remove(i);
        }
    }

    /// The earliest cycle at which the memory system can change state
    /// on its own, or `None` when it is fully message/request driven
    /// and idle. `Some(now)` means the very next tick has work.
    ///
    /// Used by the fast-forward scheduler: every tick strictly before
    /// the returned cycle is a provable no-op (no home timer matures,
    /// no message is delivered, no flit arrives anywhere). Only busy
    /// banks are consulted — an idle bank owns no timer — which keeps
    /// the cost of a *failed* skip attempt proportional to the number
    /// of in-flight transactions, not the machine size.
    pub fn next_event(&self) -> Option<Cycle> {
        let mut next = self.noc.next_event();
        self.busy_homes.for_each_live(|i| {
            next = match (next, self.homes[i].next_event(self.now)) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
        });
        next
    }

    /// Enables or disables active-set micro-scheduling here and in the
    /// NoC (on by default; `--no-active-set` escape hatch). Reports and
    /// traces are bit-identical either way.
    pub fn set_active_set_enabled(&mut self, on: bool) {
        self.active_set_enabled = on;
        self.noc.set_active_set_enabled(on);
    }

    /// Whether active-set micro-scheduling is enabled.
    pub fn active_set_enabled(&self) -> bool {
        self.active_set_enabled
    }

    /// Active-set occupancy counters for the memory hierarchy.
    pub fn sched_stats(&self) -> MemSchedStats {
        self.sched
    }

    /// Active-set occupancy counters for the underlying NoC.
    pub fn noc_sched_stats(&self) -> NocSchedStats {
        self.noc.sched_stats()
    }

    /// Jumps the memory-system clock (and the NoC's) to `t` without
    /// ticking the cycles in between. Only legal when
    /// [`next_event`](Self::next_event) reports nothing strictly
    /// before `t`.
    pub fn skip_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now);
        debug_assert!(
            self.next_event().is_none_or(|e| e >= t),
            "memory-system skip over a live event"
        );
        self.noc.skip_to(t);
        self.now = t;
    }

    /// True when a protocol message is already queued for delivery to
    /// `tile` — it will be handled by this cycle's [`tick`](Self::tick),
    /// mutating the tile's L1 or home bank. The per-core spin-parking
    /// scheduler uses this as its (exact) wake trigger: a parked core's
    /// probed line cannot change until this returns true.
    pub fn has_delivery_for(&self, tile: CoreId) -> bool {
        self.noc.has_delivery_for(tile)
    }

    // --- fast-forward support: per-core L1 spin hooks -------------------

    /// True when `core`'s L1 has protocol work in flight (outstanding
    /// miss or a deferred coherence message).
    pub fn l1_busy(&self, core: CoreId) -> bool {
        let l1 = &self.l1s[core.index()];
        l1.miss_outstanding() || l1.has_deferred()
    }

    /// The ready cycle of `core`'s pending response, if any.
    pub fn resp_ready_at(&self, core: CoreId) -> Option<Cycle> {
        self.l1s[core.index()].resp_ready_at()
    }

    /// `core`'s pending response if it is a load: `(ready, value)`.
    pub fn peek_resp_load(&self, core: CoreId) -> Option<(Cycle, u64)> {
        self.l1s[core.index()].peek_resp_load()
    }

    /// See [`L1Ctrl::spin_probe_load`].
    pub fn spin_probe_load(&self, core: CoreId, addr: u64) -> Option<u64> {
        self.l1s[core.index()].spin_probe_load(addr)
    }

    /// See [`L1Ctrl::line_value`].
    pub fn spin_line_value(&self, core: CoreId, addr: u64) -> Option<u64> {
        self.l1s[core.index()].line_value(addr)
    }

    /// See [`L1Ctrl::spin_replay`].
    pub fn spin_replay(&mut self, core: CoreId, addr: u64, hits: u64, final_ready: Option<Cycle>) {
        self.l1s[core.index()].spin_replay(addr, hits, final_ready);
    }

    /// See [`L1Ctrl::take_resp_for_replay`].
    pub fn take_resp_for_replay(&mut self, core: CoreId) -> Option<CoreResp> {
        self.l1s[core.index()].take_resp_for_replay()
    }

    /// Sends the scratch buffer's messages from `src`.
    fn flush_out(&mut self, src: CoreId) {
        for OutMsg { dst, msg } in self.out_scratch.drain(..) {
            self.noc.send(Message {
                src,
                dst,
                class: msg.class(),
                payload_bytes: msg.payload_bytes(),
                payload: msg,
            });
        }
    }

    // --- parallel-engine support (sharded-tick, DESIGN.md §11) ----------

    /// Raw per-tile lane access for one parallel compute phase. See
    /// [`TileLanes`] for the safety contract the caller must uphold.
    pub fn tile_lanes(&mut self) -> TileLanes<S> {
        TileLanes::new(
            self.l1s.as_mut_ptr(),
            self.pending.as_mut_ptr(),
            self.l1s.len(),
            self.now,
        )
    }

    /// Injects every lane outbox into the NoC, in ascending tile order —
    /// the order the serial core loop's immediate flushes produce, so
    /// packet ids (and all downstream NoC state) match the serial
    /// engine bit for bit. Called once per parallel cycle, at the
    /// exchange barrier, before [`tick`](Self::tick).
    pub fn flush_shard_outboxes(&mut self) {
        for i in 0..self.pending.len() {
            if self.pending[i].is_empty() {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.pending[i]);
            let src = CoreId::from(i);
            for OutMsg { dst, msg } in outbox.drain(..) {
                self.noc.send(Message {
                    src,
                    dst,
                    class: msg.class(),
                    payload_bytes: msg.payload_bytes(),
                    payload: msg,
                });
            }
            self.pending[i] = outbox; // keep the allocation
        }
    }

    /// Snapshots [`has_delivery_for`](Self::has_delivery_for) for every
    /// tile into `flags` (reused across cycles). The parallel compute
    /// phase reads these frozen flags instead of the live NoC — exact,
    /// because deliveries only mutate in `noc.tick()` and messages sent
    /// during the compute phase cannot mature until a later tick.
    pub fn delivery_flags(&self, flags: &mut Vec<bool>) {
        flags.clear();
        if !self.noc.has_deliveries() {
            // Common case on spin-heavy cycles: one memset, no per-tile
            // queue probes.
            flags.resize(self.l1s.len(), false);
            return;
        }
        flags.extend((0..self.l1s.len()).map(|i| self.noc.has_delivery_for(CoreId::from(i))));
    }

    // --- epoch-engine support (DESIGN.md §13) ---------------------------

    /// Raw per-tile whole-tile access for one epoch free-run. See
    /// [`EpochTiles`] for the safety contract the caller must uphold.
    pub fn epoch_tiles(&mut self) -> EpochTiles<S> {
        EpochTiles::new(
            self.l1s.as_mut_ptr(),
            self.homes.as_mut_ptr(),
            self.mems.as_mut_ptr(),
            self.pending.as_mut_ptr(),
            self.epoch_bufs.as_mut_ptr(),
            self.l1s.len(),
        )
    }

    /// Moves every already-delivered NoC message into its tile's epoch
    /// inbox, stamped so it is handled on the upcoming cycle — exactly
    /// when the serial tick's delivery scan would hand it over. Called
    /// once at the top of each epoch, before the window is computed.
    pub fn epoch_predrain(&mut self) {
        if !self.noc.has_deliveries() {
            return;
        }
        let stamp = self.now.saturating_sub(1);
        // Only the tiles the NoC actually holds messages for — O(active),
        // not O(cores). Per-tile drain order is unchanged, so the inbox
        // contents are bit-identical to the dense scan.
        let mut tiles = std::mem::take(&mut self.sched_scratch);
        self.noc.collect_delivery_tiles(&mut tiles);
        for &i in &tiles {
            let i = i as usize;
            let tile = CoreId::from(i);
            while let Some(m) = self.noc.recv(tile) {
                self.epoch_bufs[i].inbox.push_back((stamp, m));
            }
        }
        self.sched_scratch = tiles;
    }

    /// True when tile `i` has tile-local memory work pending: a stamped
    /// inbox message or a busy home bank. The epoch driver's window and
    /// idle-shard logic consult this after
    /// [`epoch_predrain`](Self::epoch_predrain).
    pub fn epoch_tile_has_work(&self, i: usize) -> bool {
        !self.epoch_bufs[i].inbox.is_empty() || self.homes[i].is_busy()
    }

    /// See [`sim_noc::Noc::earliest_delivery_maturation`]. Legal only
    /// after [`epoch_predrain`](Self::epoch_predrain) (deliveries and
    /// the local bypass must be drained).
    pub fn earliest_delivery_maturation(&self) -> Option<Cycle> {
        self.noc.earliest_delivery_maturation()
    }

    /// See [`sim_noc::Noc::min_remote_delivery_latency`].
    pub fn min_remote_delivery_latency(&self) -> u64 {
        self.noc.min_remote_delivery_latency()
    }

    /// Merges every tile's epoch outbox into the apply-phase injection
    /// queue, ordered exactly as the serial engine's immediate flushes
    /// would have sent them: ascending cycle, then send phase (core
    /// requests, home-timer sends, delivery-handling sends), then tile.
    /// Also credits the epoch's same-tile messages to the NoC's
    /// `local_bypass` statistic. Called once per epoch, after the
    /// free-run, before the first [`epoch_apply_tick`](Self::epoch_apply_tick).
    pub fn epoch_collect_injections(&mut self) {
        debug_assert!(self.inject_scratch.is_empty(), "stale epoch injections");
        let mut locals = 0;
        for (i, bufs) in self.epoch_bufs.iter_mut().enumerate() {
            locals += std::mem::take(&mut bufs.locals);
            let src = CoreId::from(i);
            self.inject_scratch
                .extend(bufs.outbox.drain(..).map(|(c, p, m)| (c, p, src, m)));
        }
        if locals > 0 {
            self.noc.add_local_bypass(locals);
        }
        // Stable sort: ties (same cycle and phase) keep the ascending
        // tile append order, and each tile's own sends keep program
        // order. Reversed so apply ticks pop the next send off the back.
        self.inject_scratch.sort_by_key(|&(c, p, _, _)| (c, p));
        self.inject_scratch.reverse();
    }

    /// One serialized cycle of an epoch's apply phase: injects the
    /// free-run's remote sends stamped for the current cycle (the NoC
    /// clock agrees, so packet ids match serial), re-materializes
    /// final-cycle inbox leftovers as NoC deliveries (`is_final` —
    /// this restores the canonical serial state, where such messages
    /// sit delivered and are handled next cycle), and ticks the NoC.
    ///
    /// The controllers themselves already ran in the free-run; this is
    /// the `noc.tick(); now += 1` tail of the serial
    /// [`tick`](Self::tick), plus the tick-count bookkeeping.
    pub fn epoch_apply_tick(&mut self, is_final: bool) {
        let now = self.now;
        self.sched.ticks += 1;
        while self
            .inject_scratch
            .last()
            .is_some_and(|&(c, _, _, _)| c == now)
        {
            let (_, _, src, OutMsg { dst, msg }) =
                self.inject_scratch.pop().expect("checked non-empty");
            self.noc.send(Message {
                src,
                dst,
                class: msg.class(),
                payload_bytes: msg.payload_bytes(),
                payload: msg,
            });
        }
        debug_assert!(
            self.inject_scratch
                .last()
                .is_none_or(|&(c, _, _, _)| c > now),
            "injection stamped before its apply cycle"
        );
        if is_final {
            debug_assert!(self.inject_scratch.is_empty(), "sends beyond the window");
            for i in 0..self.epoch_bufs.len() {
                while let Some((stamp, m)) = self.epoch_bufs[i].inbox.pop_front() {
                    debug_assert_eq!(stamp, now, "inbox leftover not from the final cycle");
                    self.noc.redeliver(CoreId::from(i), m);
                }
            }
        }
        self.noc.tick();
        self.now += 1;
        debug_assert!(
            is_final || !self.noc.has_deliveries(),
            "epoch window admitted a mid-window delivery"
        );
    }

    /// Re-derives home busy-set membership after an epoch's free-run
    /// mutated the banks outside the serial tick path. Membership is a
    /// pure function of bank state, so the rebuild is order-independent.
    ///
    /// `active[i]` is the epoch's per-tile activity flag: a parked tile's
    /// bank was untouched by the free-run (a busy bank forces its tile
    /// active via [`epoch_tile_has_work`](Self::epoch_tile_has_work)), so
    /// only active tiles need re-deriving.
    pub fn epoch_sync_homes(&mut self, active: &[bool]) {
        debug_assert_eq!(active.len(), self.homes.len(), "one flag per tile");
        for (i, &a) in active.iter().enumerate() {
            if a {
                self.sync_home(i);
            }
        }
    }

    /// Folds the free-run's per-worker scheduler counters (which the
    /// serial tick increments inline) into this system's stats.
    pub fn add_epoch_sched_visits(&mut self, home_visits: u64, delivery_visits: u64) {
        self.sched.home_visits += home_visits;
        self.sched.delivery_visits += delivery_visits;
    }

    /// True when no request, transaction or message is in flight.
    pub fn is_idle(&self) -> bool {
        self.noc.is_idle() && self.homes.iter().all(|h| h.is_idle())
    }

    fn home_of(&self, line: LineAddr) -> usize {
        (line.0 % self.l1s.len() as u64) as usize
    }

    /// Functional pre-load of a word into memory. Only valid before any
    /// core has touched the line (cold caches).
    pub fn poke_word(&mut self, addr: u64, value: u64) {
        assert_eq!(addr % 8, 0, "unaligned poke");
        let line = LineAddr(addr / self.cfg.l1.line_bytes);
        let home = self.home_of(line);
        assert!(
            self.homes[home].dir_state(line).is_none() && self.homes[home].peek_l2(line).is_none(),
            "poke_word on a warm line {line:?}"
        );
        let entry = self.mems[home].entry(line).or_insert([0; 8]);
        entry[((addr % self.cfg.l1.line_bytes) / 8) as usize] = value;
    }

    /// Architectural value of the word at `addr`, wherever its current
    /// copy lives (owner L1, writeback buffer, L2 or memory).
    ///
    /// Exact on a quiescent machine; while a line-ownership handoff is in
    /// flight it prefers, in order: the directory's owner, any L1 holding
    /// the line in M/E, any writeback buffer, the home L2, memory.
    pub fn peek_word(&self, addr: u64) -> u64 {
        assert_eq!(addr % 8, 0, "unaligned peek");
        let line = LineAddr(addr / self.cfg.l1.line_bytes);
        let w = ((addr % self.cfg.l1.line_bytes) / 8) as usize;
        let home = self.home_of(line);
        if let Some(DirState::Exclusive(owner)) = self.homes[home].dir_state(line) {
            if let Some((_, data)) = self.l1s[owner.index()].peek_line(line) {
                return data[w];
            }
            // Owner's copy is in flight (forward/writeback race); fall
            // through to the freshest copy we can find.
        }
        // A modified/exclusive cache copy anywhere is authoritative (a
        // just-completed write whose FwdDone has not reached the home).
        for l1 in &self.l1s {
            if let Some((state, data)) = l1.peek_cache_line(line) {
                if state != crate::l1::L1State::S {
                    return data[w];
                }
            }
        }
        // An eviction in flight is fresher than the home's copy.
        for l1 in &self.l1s {
            if let Some(data) = l1.peek_wb_line(line) {
                return data[w];
            }
        }
        if let Some(data) = self.homes[home].peek_l2(line) {
            return data[w];
        }
        self.mems[home].get(&line).map_or(0, |d| d[w])
    }
}

/// The serial engine drives cores straight against the whole memory
/// system; every operation forwards to the inherent method of the same
/// name (requests flush to the NoC immediately).
impl<S: TraceSink> CoreMem for MemorySystem<S> {
    fn request(&mut self, core: CoreId, req: CoreReq) {
        MemorySystem::request(self, core, req);
    }
    fn poll(&mut self, core: CoreId) -> Option<CoreResp> {
        MemorySystem::poll(self, core)
    }
    fn resp_ready_at(&self, core: CoreId) -> Option<Cycle> {
        MemorySystem::resp_ready_at(self, core)
    }
    fn l1_busy(&self, core: CoreId) -> bool {
        MemorySystem::l1_busy(self, core)
    }
    fn peek_resp_load(&self, core: CoreId) -> Option<(Cycle, u64)> {
        MemorySystem::peek_resp_load(self, core)
    }
    fn spin_probe_load(&self, core: CoreId, addr: u64) -> Option<u64> {
        MemorySystem::spin_probe_load(self, core, addr)
    }
    fn spin_line_value(&self, core: CoreId, addr: u64) -> Option<u64> {
        MemorySystem::spin_line_value(self, core, addr)
    }
    fn spin_replay(&mut self, core: CoreId, addr: u64, hits: u64, final_ready: Option<Cycle>) {
        MemorySystem::spin_replay(self, core, addr, hits, final_ready);
    }
    fn take_resp_for_replay(&mut self, core: CoreId) -> Option<CoreResp> {
        MemorySystem::take_resp_for_replay(self, core)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_isa::inst::AmoOp;

    fn sys(cores: usize) -> MemorySystem {
        MemorySystem::new(&CmpConfig::icpp2010_with_cores(cores))
    }

    /// Issues a request for `core` and ticks until the response arrives.
    fn do_req(s: &mut MemorySystem, core: usize, req: CoreReq) -> (CoreResp, u64) {
        let core = CoreId::from(core);
        assert!(s.ready(core));
        let start = s.now();
        s.request(core, req);
        loop {
            if let Some(r) = s.poll(core) {
                return (r, s.now() - start);
            }
            s.tick();
            assert!(s.now() - start < 100_000, "request never completed");
        }
    }

    #[test]
    fn cold_load_returns_poked_value_with_memory_latency() {
        let mut s = sys(4);
        s.poke_word(0x1000, 777);
        let (r, lat) = do_req(&mut s, 0, CoreReq::Load { addr: 0x1000 });
        assert_eq!(r, CoreResp::LoadValue(777));
        assert!(lat > 400, "cold miss must pay the 400-cycle memory ({lat})");
    }

    #[test]
    fn warm_load_hits_in_l1() {
        let mut s = sys(4);
        s.poke_word(0x40, 5);
        do_req(&mut s, 0, CoreReq::Load { addr: 0x40 });
        let (r, lat) = do_req(&mut s, 0, CoreReq::Load { addr: 0x40 });
        assert_eq!(r, CoreResp::LoadValue(5));
        assert_eq!(lat, 1, "L1 hit is one cycle");
    }

    #[test]
    fn second_core_load_is_l2_hit_via_forward() {
        let mut s = sys(4);
        s.poke_word(0x40, 9);
        do_req(&mut s, 0, CoreReq::Load { addr: 0x40 });
        let (r, lat) = do_req(&mut s, 1, CoreReq::Load { addr: 0x40 });
        assert_eq!(r, CoreResp::LoadValue(9));
        assert!(lat < 400, "second reader must not go to memory ({lat})");
    }

    #[test]
    fn store_then_remote_load_sees_value() {
        let mut s = sys(4);
        let (_, _) = do_req(
            &mut s,
            0,
            CoreReq::Store {
                addr: 0x80,
                value: 1234,
            },
        );
        let (r, _) = do_req(&mut s, 3, CoreReq::Load { addr: 0x80 });
        assert_eq!(r, CoreResp::LoadValue(1234));
        assert_eq!(s.peek_word(0x80), 1234);
    }

    #[test]
    fn write_invalidation_round_trip() {
        let mut s = sys(4);
        // All cores read the line (Shared everywhere).
        for c in 0..4 {
            do_req(&mut s, c, CoreReq::Load { addr: 0x100 });
        }
        // One core writes: invalidations fly, then the write wins.
        do_req(
            &mut s,
            2,
            CoreReq::Store {
                addr: 0x100,
                value: 42,
            },
        );
        // Everyone re-reads the new value.
        for c in 0..4 {
            let (r, _) = do_req(&mut s, c, CoreReq::Load { addr: 0x100 });
            assert_eq!(r, CoreResp::LoadValue(42), "core {c}");
        }
    }

    #[test]
    fn amo_is_atomic_increment() {
        let mut s = sys(4);
        let mut old_sum = 0;
        for c in 0..4 {
            for _ in 0..5 {
                let (r, _) = do_req(
                    &mut s,
                    c,
                    CoreReq::Amo {
                        addr: 0x200,
                        op: AmoOp::Add,
                        operand: 1,
                    },
                );
                let CoreResp::AmoOld(v) = r else {
                    panic!("{r:?}")
                };
                old_sum += v;
            }
        }
        let (r, _) = do_req(&mut s, 0, CoreReq::Load { addr: 0x200 });
        assert_eq!(r, CoreResp::LoadValue(20));
        // Sum of old values of x++ from 0..20 = 0+1+…+19.
        assert_eq!(old_sum, (0..20).sum::<u64>());
    }

    #[test]
    fn amoswap_testandset_semantics() {
        let mut s = sys(2);
        let (r, _) = do_req(
            &mut s,
            0,
            CoreReq::Amo {
                addr: 0,
                op: AmoOp::Swap,
                operand: 1,
            },
        );
        assert_eq!(r, CoreResp::AmoOld(0), "lock acquired");
        let (r, _) = do_req(
            &mut s,
            1,
            CoreReq::Amo {
                addr: 0,
                op: AmoOp::Swap,
                operand: 1,
            },
        );
        assert_eq!(r, CoreResp::AmoOld(1), "lock already held");
        do_req(&mut s, 0, CoreReq::Store { addr: 0, value: 0 }); // release
        let (r, _) = do_req(
            &mut s,
            1,
            CoreReq::Amo {
                addr: 0,
                op: AmoOp::Swap,
                operand: 1,
            },
        );
        assert_eq!(r, CoreResp::AmoOld(0), "lock re-acquired after release");
    }

    #[test]
    fn spin_reads_hit_locally_until_invalidated() {
        let mut s = sys(4);
        do_req(&mut s, 1, CoreReq::Load { addr: 0x300 });
        let before = s.noc_stats().total_messages();
        // 100 spin reads: all L1 hits, zero traffic.
        for _ in 0..100 {
            let (_, lat) = do_req(&mut s, 1, CoreReq::Load { addr: 0x300 });
            assert_eq!(lat, 1);
        }
        assert_eq!(
            s.noc_stats().total_messages(),
            before,
            "spinning must be local"
        );
        // A remote store invalidates; the next spin read misses.
        do_req(
            &mut s,
            2,
            CoreReq::Store {
                addr: 0x300,
                value: 1,
            },
        );
        let (r, lat) = do_req(&mut s, 1, CoreReq::Load { addr: 0x300 });
        assert_eq!(r, CoreResp::LoadValue(1));
        assert!(lat > 1, "post-invalidation read must miss");
    }

    #[test]
    fn capacity_eviction_and_refill() {
        let mut s = sys(4);
        // L1: 32KB 4-way 64B lines → 128 sets. Writing 5 lines of the
        // same set evicts the LRU dirty line; it must come back intact.
        let set_stride = 128 * 64; // one L1 set apart
        for i in 0..5u64 {
            do_req(
                &mut s,
                0,
                CoreReq::Store {
                    addr: i * set_stride,
                    value: 100 + i,
                },
            );
        }
        for i in 0..5u64 {
            let (r, _) = do_req(
                &mut s,
                0,
                CoreReq::Load {
                    addr: i * set_stride,
                },
            );
            assert_eq!(r, CoreResp::LoadValue(100 + i), "line {i} lost in eviction");
        }
    }

    #[test]
    fn interleaving_spreads_homes() {
        let s = sys(4);
        // Lines 0..4 map to homes 0..3 (modulo interleaving).
        assert_eq!(s.home_of(LineAddr(0)), 0);
        assert_eq!(s.home_of(LineAddr(1)), 1);
        assert_eq!(s.home_of(LineAddr(5)), 1);
    }

    #[test]
    fn system_drains_to_idle() {
        let mut s = sys(4);
        do_req(&mut s, 0, CoreReq::Store { addr: 0, value: 1 });
        do_req(&mut s, 1, CoreReq::Load { addr: 0 });
        for _ in 0..100 {
            s.tick();
        }
        assert!(s.is_idle());
    }

    #[test]
    fn traced_system_reports_cache_and_directory_story() {
        use sim_base::trace::{Event, RingSink, Tracer};
        let tracer = Tracer::new(RingSink::new(4096));
        let cfg = CmpConfig::icpp2010_with_cores(4);
        let mut s = MemorySystem::traced(&cfg, tracer.clone());
        // Core 0 writes a line; core 1 then reads it (forward + downgrade).
        let c0 = CoreId(0);
        let c1 = CoreId(1);
        s.request(
            c0,
            CoreReq::Store {
                addr: 0x80,
                value: 7,
            },
        );
        let mut guard = 0;
        while s.poll(c0).is_none() {
            s.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        s.request(c1, CoreReq::Load { addr: 0x80 });
        while s.poll(c1).is_none() {
            s.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        let recs: Vec<(u64, Event)> = tracer.with_sink(|s| s.events().cloned().collect());
        let events: Vec<Event> = recs.iter().map(|(_, e)| e.clone()).collect();
        // The write: an L1 miss, a directory I→E claim, an L2 access, and
        // a fill installing the line in M.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::L1Access { core, addr: 0x80, write: true, hit: false } if *core == c0)));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::DirTransition {
                line: 2,
                from: "I",
                to: "E",
                ..
            }
        )));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::L2Access {
                line: 2,
                hit: false,
                ..
            }
        )));
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::L1Transition { core, line: 2, from: "I", to: "M" } if *core == c0)));
        // The read: a forward downgrades the owner M→S and the directory
        // ends Shared.
        assert!(events
            .iter()
            .any(|e| matches!(e, Event::L1Transition { core, line: 2, from: "M", to: "S" } if *core == c0)));
        assert!(events.iter().any(|e| matches!(
            e,
            Event::DirTransition {
                line: 2,
                from: "E",
                to: "S",
                ..
            }
        )));
        // And the NoC carried protocol traffic for all of it.
        assert!(events.iter().any(|e| matches!(e, Event::NocSend { .. })));
        // Cycles are monotone within the ring.
        assert!(recs.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn false_sharing_ping_pong() {
        let mut s = sys(2);
        // Two cores write different words of the same line; each write
        // must steal the line from the other (forward traffic) but both
        // values must survive.
        for i in 0..4 {
            do_req(
                &mut s,
                0,
                CoreReq::Store {
                    addr: 0x400,
                    value: i,
                },
            );
            do_req(
                &mut s,
                1,
                CoreReq::Store {
                    addr: 0x408,
                    value: 100 + i,
                },
            );
        }
        assert_eq!(s.peek_word(0x400), 3);
        assert_eq!(s.peek_word(0x408), 103);
        assert!(s.home_stats().forwards_sent > 0, "ping-pong must forward");
    }
}
