//! Protocol message and core-interface types.

use sim_base::ids::LineAddr;
use sim_base::stats::MsgClass;
use sim_base::CoreId;
use sim_isa::inst::AmoOp;

/// Words per 64-byte cache line.
pub const WORDS_PER_LINE: usize = 8;

/// A cache line's data.
pub type LineData = [u64; WORDS_PER_LINE];

/// Access permission granted by a data reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Grant {
    /// Shared, read-only.
    S,
    /// Exclusive clean (MESI E): read now, silently upgradable to M.
    E,
    /// Modified / writable.
    M,
}

/// A coherence-protocol message. The [`MsgClass`] (= virtual network)
/// of each variant is fixed by [`ProtoMsg::class`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ProtoMsg {
    /// L1 → home: read miss.
    GetS(LineAddr),
    /// L1 → home: write/atomic miss from Invalid.
    GetX(LineAddr),
    /// L1 → home: write/atomic miss from Shared (has data, needs
    /// permission). The home may answer with `Data(M)` instead of
    /// `UpgradeAck` if the requester lost the line to a race.
    Upgrade(LineAddr),
    /// L1 → home: eviction of an E/M line, carrying the data.
    PutM(LineAddr, LineData),
    /// home/owner → L1: data grant.
    Data {
        /// The line.
        line: LineAddr,
        /// Line contents.
        data: LineData,
        /// Permission granted.
        grant: Grant,
    },
    /// home → L1: upgrade permission granted (no data needed).
    UpgradeAck(LineAddr),
    /// home → L1: writeback acknowledged (possibly stale; either way the
    /// writeback buffer entry can be dropped).
    WbAck(LineAddr),
    /// home → sharer L1: invalidate.
    Inv(LineAddr),
    /// home → *possibly sharing* L1: invalidate-if-present, fanned out
    /// from a coarse (superset) directory entry on machines past 64
    /// cores. Unlike [`Inv`](ProtoMsg::Inv) the recipient may not hold
    /// the line at all; it answers [`InvAck`](ProtoMsg::InvAck)
    /// immediately in every case (never deferring behind its own fill,
    /// which would deadlock against the write transaction waiting for
    /// this ack) and instead poisons an in-flight shared fill so a
    /// racing `Data(S)` is not installed stale.
    CoarseInv(LineAddr),
    /// sharer L1 → home: invalidation done.
    InvAck(LineAddr),
    /// home → owner L1: another core wants to read; downgrade to S and
    /// forward the data.
    FwdGetS {
        /// The line.
        line: LineAddr,
        /// Core to send the data to.
        requester: CoreId,
    },
    /// home → owner L1: another core wants to write; invalidate and
    /// forward the data.
    FwdGetX {
        /// The line.
        line: LineAddr,
        /// Core to send the data to.
        requester: CoreId,
    },
    /// owner L1 → home: a forward was serviced. `data` carries the dirty
    /// line back on a `FwdGetS`; `retained` tells the home whether the
    /// old owner kept a shared copy (false when it serviced the forward
    /// out of its writeback buffer).
    FwdDone {
        /// The line.
        line: LineAddr,
        /// Dirty data for the home's L2 (on read-forwards).
        data: Option<LineData>,
        /// Old owner still holds the line in S.
        retained: bool,
    },
}

impl ProtoMsg {
    /// The line this message concerns.
    pub fn line(&self) -> LineAddr {
        match *self {
            ProtoMsg::GetS(l)
            | ProtoMsg::GetX(l)
            | ProtoMsg::Upgrade(l)
            | ProtoMsg::PutM(l, _)
            | ProtoMsg::UpgradeAck(l)
            | ProtoMsg::WbAck(l)
            | ProtoMsg::Inv(l)
            | ProtoMsg::CoarseInv(l)
            | ProtoMsg::InvAck(l) => l,
            ProtoMsg::Data { line, .. }
            | ProtoMsg::FwdGetS { line, .. }
            | ProtoMsg::FwdGetX { line, .. }
            | ProtoMsg::FwdDone { line, .. } => line,
        }
    }

    /// Figure-7 traffic class (also the virtual network).
    pub fn class(&self) -> MsgClass {
        match self {
            ProtoMsg::GetS(_) | ProtoMsg::GetX(_) | ProtoMsg::Upgrade(_) => MsgClass::Request,
            ProtoMsg::Data { .. } | ProtoMsg::UpgradeAck(_) | ProtoMsg::WbAck(_) => MsgClass::Reply,
            ProtoMsg::PutM(..)
            | ProtoMsg::Inv(_)
            | ProtoMsg::CoarseInv(_)
            | ProtoMsg::InvAck(_)
            | ProtoMsg::FwdGetS { .. }
            | ProtoMsg::FwdGetX { .. }
            | ProtoMsg::FwdDone { .. } => MsgClass::Coherence,
        }
    }

    /// Payload bytes beyond the header: 64 for line-carrying messages.
    pub fn payload_bytes(&self) -> u32 {
        match self {
            ProtoMsg::PutM(..) | ProtoMsg::Data { .. } => 64,
            ProtoMsg::FwdDone { data: Some(_), .. } => 64,
            _ => 0,
        }
    }

    /// True for messages handled by a home bank (vs an L1).
    pub fn for_home(&self) -> bool {
        matches!(
            self,
            ProtoMsg::GetS(_)
                | ProtoMsg::GetX(_)
                | ProtoMsg::Upgrade(_)
                | ProtoMsg::PutM(..)
                | ProtoMsg::InvAck(_)
                | ProtoMsg::FwdDone { .. }
        )
    }
}

/// A request from a core to its L1 (one outstanding per core).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreReq {
    /// Read the word at `addr`.
    Load {
        /// Byte address (8-byte aligned).
        addr: u64,
    },
    /// Write `value` to the word at `addr`.
    Store {
        /// Byte address (8-byte aligned).
        addr: u64,
        /// Value to store.
        value: u64,
    },
    /// Atomic read-modify-write on the word at `addr`.
    Amo {
        /// Byte address (8-byte aligned).
        addr: u64,
        /// Operation.
        op: AmoOp,
        /// Operand.
        operand: u64,
    },
}

impl CoreReq {
    /// The byte address accessed.
    pub fn addr(&self) -> u64 {
        match *self {
            CoreReq::Load { addr } | CoreReq::Store { addr, .. } | CoreReq::Amo { addr, .. } => {
                addr
            }
        }
    }
}

/// The L1's answer to a [`CoreReq`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CoreResp {
    /// Loaded value.
    LoadValue(u64),
    /// Store committed.
    StoreDone,
    /// Old memory value of an atomic.
    AmoOld(u64),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_mapping_matches_figure_7() {
        let l = LineAddr(3);
        assert_eq!(ProtoMsg::GetS(l).class(), MsgClass::Request);
        assert_eq!(ProtoMsg::GetX(l).class(), MsgClass::Request);
        assert_eq!(ProtoMsg::Upgrade(l).class(), MsgClass::Request);
        assert_eq!(
            ProtoMsg::Data {
                line: l,
                data: [0; 8],
                grant: Grant::S
            }
            .class(),
            MsgClass::Reply
        );
        assert_eq!(ProtoMsg::UpgradeAck(l).class(), MsgClass::Reply);
        assert_eq!(ProtoMsg::WbAck(l).class(), MsgClass::Reply);
        assert_eq!(ProtoMsg::Inv(l).class(), MsgClass::Coherence);
        assert_eq!(ProtoMsg::CoarseInv(l).class(), MsgClass::Coherence);
        assert_eq!(ProtoMsg::InvAck(l).class(), MsgClass::Coherence);
        assert_eq!(ProtoMsg::PutM(l, [0; 8]).class(), MsgClass::Coherence);
        assert_eq!(
            ProtoMsg::FwdGetS {
                line: l,
                requester: CoreId(1)
            }
            .class(),
            MsgClass::Coherence
        );
    }

    #[test]
    fn payload_sizes() {
        let l = LineAddr(0);
        assert_eq!(ProtoMsg::GetS(l).payload_bytes(), 0);
        assert_eq!(ProtoMsg::CoarseInv(l).payload_bytes(), 0);
        assert_eq!(
            ProtoMsg::Data {
                line: l,
                data: [0; 8],
                grant: Grant::M
            }
            .payload_bytes(),
            64
        );
        assert_eq!(ProtoMsg::PutM(l, [0; 8]).payload_bytes(), 64);
        assert_eq!(
            ProtoMsg::FwdDone {
                line: l,
                data: None,
                retained: false
            }
            .payload_bytes(),
            0
        );
        assert_eq!(
            ProtoMsg::FwdDone {
                line: l,
                data: Some([1; 8]),
                retained: true
            }
            .payload_bytes(),
            64
        );
    }

    #[test]
    fn home_routing_flags() {
        let l = LineAddr(0);
        assert!(ProtoMsg::GetS(l).for_home());
        assert!(ProtoMsg::InvAck(l).for_home());
        assert!(!ProtoMsg::Inv(l).for_home());
        assert!(!ProtoMsg::CoarseInv(l).for_home());
        assert!(!ProtoMsg::Data {
            line: l,
            data: [0; 8],
            grant: Grant::S
        }
        .for_home());
    }
}
