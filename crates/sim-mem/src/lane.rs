//! The core-facing memory interface, and its shard-local implementation
//! for the parallel tick engine.
//!
//! A core pipeline only ever touches its *own* tile's L1: issuing
//! requests, polling responses, and probing the spin-classification
//! hooks. [`CoreMem`] captures exactly that surface, so the core model
//! can run against either
//!
//! * the whole [`MemorySystem`](crate::MemorySystem) (the serial
//!   engine — requests flush to the NoC immediately), or
//! * a [`LaneMem`] — one tile's L1 plus a private outbox, carved out of
//!   the memory system by [`TileLanes`] for the duration of a parallel
//!   compute phase (see `DESIGN.md` §11). Outbound protocol messages
//!   buffer in the outbox and are injected into the NoC by
//!   [`MemorySystem::flush_shard_outboxes`] during the serialized
//!   exchange phase, in ascending tile order — the same order the
//!   serial core loop produces, which is what keeps packet ids and
//!   hence the whole NoC bit-identical.

use crate::l1::{L1Ctrl, OutMsg};
use crate::proto::{CoreReq, CoreResp};
use sim_base::trace::TraceSink;
use sim_base::{CoreId, Cycle};

/// What a core pipeline needs from the memory hierarchy. Implemented by
/// [`MemorySystem`](crate::MemorySystem) (serial engine) and [`LaneMem`]
/// (one shard's view during a parallel compute phase).
///
/// The `core` argument always names the calling core; `LaneMem` asserts
/// it matches the lane's tile (a core never reaches across tiles).
pub trait CoreMem {
    /// Issues a data access for `core` (one outstanding each).
    fn request(&mut self, core: CoreId, req: CoreReq);
    /// Returns `core`'s completed response, if ready.
    fn poll(&mut self, core: CoreId) -> Option<CoreResp>;
    /// The ready cycle of `core`'s pending response, if any.
    fn resp_ready_at(&self, core: CoreId) -> Option<Cycle>;
    /// True when `core`'s L1 has protocol work in flight (outstanding
    /// miss or a deferred coherence message).
    fn l1_busy(&self, core: CoreId) -> bool;
    /// `core`'s pending response if it is a load: `(ready, value)`.
    fn peek_resp_load(&self, core: CoreId) -> Option<(Cycle, u64)>;
    /// See [`L1Ctrl::spin_probe_load`].
    fn spin_probe_load(&self, core: CoreId, addr: u64) -> Option<u64>;
    /// See [`L1Ctrl::line_value`].
    fn spin_line_value(&self, core: CoreId, addr: u64) -> Option<u64>;
    /// See [`L1Ctrl::spin_replay`].
    fn spin_replay(&mut self, core: CoreId, addr: u64, hits: u64, final_ready: Option<Cycle>);
    /// See [`L1Ctrl::take_resp_for_replay`].
    fn take_resp_for_replay(&mut self, core: CoreId) -> Option<CoreResp>;
}

/// One tile's shard-local view of the memory system: its L1 and a
/// private outbox, valid for a single parallel compute phase.
///
/// Every [`CoreMem`] operation is tile-local; the one side effect that
/// would escape the tile — injecting protocol messages into the NoC —
/// is deferred into `out`, to be flushed deterministically at the
/// exchange barrier.
#[derive(Debug)]
pub struct LaneMem<'a, S: TraceSink> {
    l1: &'a mut L1Ctrl<S>,
    out: &'a mut Vec<OutMsg>,
    tile: CoreId,
    now: Cycle,
}

impl<'a, S: TraceSink> LaneMem<'a, S> {
    /// Assembles a lane from its parts (shared with the epoch engine's
    /// per-tile views, which construct a fresh lane per free-run cycle).
    pub(crate) fn new(
        l1: &'a mut L1Ctrl<S>,
        out: &'a mut Vec<OutMsg>,
        tile: CoreId,
        now: Cycle,
    ) -> LaneMem<'a, S> {
        LaneMem { l1, out, tile, now }
    }
}

impl<S: TraceSink> CoreMem for LaneMem<'_, S> {
    fn request(&mut self, core: CoreId, req: CoreReq) {
        debug_assert_eq!(core, self.tile, "cross-tile request through a lane");
        self.l1.request(req, self.now, self.out);
    }

    fn poll(&mut self, core: CoreId) -> Option<CoreResp> {
        debug_assert_eq!(core, self.tile);
        self.l1.poll(self.now)
    }

    fn resp_ready_at(&self, core: CoreId) -> Option<Cycle> {
        debug_assert_eq!(core, self.tile);
        self.l1.resp_ready_at()
    }

    fn l1_busy(&self, core: CoreId) -> bool {
        debug_assert_eq!(core, self.tile);
        self.l1.miss_outstanding() || self.l1.has_deferred()
    }

    fn peek_resp_load(&self, core: CoreId) -> Option<(Cycle, u64)> {
        debug_assert_eq!(core, self.tile);
        self.l1.peek_resp_load()
    }

    fn spin_probe_load(&self, core: CoreId, addr: u64) -> Option<u64> {
        debug_assert_eq!(core, self.tile);
        self.l1.spin_probe_load(addr)
    }

    fn spin_line_value(&self, core: CoreId, addr: u64) -> Option<u64> {
        debug_assert_eq!(core, self.tile);
        self.l1.line_value(addr)
    }

    fn spin_replay(&mut self, core: CoreId, addr: u64, hits: u64, final_ready: Option<Cycle>) {
        debug_assert_eq!(core, self.tile);
        self.l1.spin_replay(addr, hits, final_ready);
    }

    fn take_resp_for_replay(&mut self, core: CoreId) -> Option<CoreResp> {
        debug_assert_eq!(core, self.tile);
        self.l1.take_resp_for_replay()
    }
}

/// Raw access to every tile's lane, handed to the parallel engine once
/// per cycle (see [`MemorySystem::tile_lanes`](crate::MemorySystem::tile_lanes)).
///
/// This is the aliasing seam of the sharded-tick engine: the pointers
/// alias the memory system's L1 array and per-tile outboxes, and
/// [`lane`](Self::lane) conjures disjoint `&mut` views from them.
///
/// # Safety contract
///
/// * The `TileLanes` must not outlive the `&mut MemorySystem` borrow it
///   was created from, and the memory system must not be used through
///   any other path while lanes are live.
/// * [`lane`](Self::lane)`(i, …)` may be called for each `i` **at most
///   once per compute phase**, from any thread, with distinct `i`
///   handed to concurrent callers — the engine's shard partition
///   (disjoint contiguous tile ranges) guarantees this.
#[derive(Clone, Copy, Debug)]
pub struct TileLanes<S: TraceSink> {
    l1s: *mut L1Ctrl<S>,
    pending: *mut Vec<OutMsg>,
    n: usize,
    now: Cycle,
}

// SAFETY: the pointers target `Vec` storage owned by `MemorySystem`,
// which outlives the phase (the engine joins every worker before the
// owner moves); sending the handle moves only the pointers, never the
// storage.
unsafe impl<S: TraceSink> Send for TileLanes<S> {}
// SAFETY: the contract above restricts every dereference to disjoint
// indices synchronized by the engine's phase barrier (which provides
// the happens-before edges between phases), so shared references never
// race.
unsafe impl<S: TraceSink> Sync for TileLanes<S> {}

impl<S: TraceSink> TileLanes<S> {
    pub(crate) fn new(
        l1s: *mut L1Ctrl<S>,
        pending: *mut Vec<OutMsg>,
        n: usize,
        now: Cycle,
    ) -> TileLanes<S> {
        TileLanes {
            l1s,
            pending,
            n,
            now,
        }
    }

    /// Number of tiles (= lanes).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the machine has no tiles (never, in practice).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Materializes tile `i`'s lane.
    ///
    /// # Safety
    ///
    /// Caller must uphold the struct-level contract: lanes for the same
    /// `i` must never coexist, and the backing `MemorySystem` must be
    /// otherwise unborrowed for the lane's lifetime.
    pub unsafe fn lane(&self, i: usize) -> LaneMem<'_, S> {
        assert!(i < self.n, "lane index out of range");
        LaneMem {
            l1: &mut *self.l1s.add(i),
            out: &mut *self.pending.add(i),
            tile: CoreId::from(i),
            now: self.now,
        }
    }
}
