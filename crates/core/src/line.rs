//! The G-line wire model with S-CSMA sensing.
//!
//! Electrically, a G-line is a differential low-swing global wire that
//! crosses one chip dimension in a single clock. Krishna et al. (HOTI'08)
//! showed that the receiver can recover not just the wired-OR value but the
//! *number* of simultaneous transmitters (S-CSMA), for up to six
//! transmitters per line. This module models exactly that contract:
//!
//! * transmitters call [`GLine::assert_tx`] during a cycle;
//! * at the end of the cycle the simulator calls [`GLine::propagate`];
//! * the (single) receiver then reads [`GLine::sensed`], observing the OR
//!   value and the transmitter count — in the same cycle for the paper's
//!   1-cycle lines, or `latency - 1` cycles later for the slow-line
//!   variant of the paper's future work.

use std::collections::VecDeque;

/// What the receiver of a G-line observes at the end of a cycle.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Sensed {
    /// Wired-OR of all transmitter signals.
    pub value: bool,
    /// S-CSMA transmitter count (how many asserted this observation).
    pub count: u32,
}

/// One G-line: a 1-bit broadcast wire with a transmitter budget and a
/// propagation latency in cycles.
#[derive(Clone, Debug)]
pub struct GLine {
    /// Electrical transmitter budget (the paper assumes 6).
    max_transmitters: u32,
    /// Propagation latency in cycles; 1 means assertions are sensed at the
    /// end of the same cycle.
    latency: u32,
    /// Transmitters asserted during the current (not yet propagated) cycle.
    pending: u32,
    /// In-flight values for latency > 1: front is the oldest.
    pipeline: VecDeque<Sensed>,
    /// What the receiver currently senses.
    sensed: Sensed,
    /// Total signal-cycles ever transmitted (energy proxy).
    energy_signals: u64,
}

impl GLine {
    /// Creates a line. `latency` must be at least 1.
    ///
    /// # Panics
    /// Panics if `latency == 0` or `max_transmitters == 0`.
    pub fn new(max_transmitters: u32, latency: u32) -> GLine {
        assert!(latency >= 1, "a G-line needs at least one cycle of latency");
        assert!(
            max_transmitters >= 1,
            "a G-line needs at least one transmitter"
        );
        GLine {
            max_transmitters,
            latency,
            pending: 0,
            pipeline: VecDeque::with_capacity(latency as usize),
            sensed: Sensed::default(),
            energy_signals: 0,
        }
    }

    /// Asserts the line for the current cycle (one transmitter) and returns
    /// the number of transmitters asserted so far this cycle — handy for
    /// event tracing without a second query.
    ///
    /// # Panics
    /// Panics if more than `max_transmitters` assert within one cycle —
    /// that is an electrical violation the network wiring must prevent.
    pub fn assert_tx(&mut self) -> u32 {
        self.pending += 1;
        assert!(
            self.pending <= self.max_transmitters,
            "G-line transmitter budget exceeded: {} > {}",
            self.pending,
            self.max_transmitters
        );
        self.energy_signals += 1;
        self.pending
    }

    /// Ends the cycle: pushes the pending assertions through the latency
    /// pipeline and updates the sensed value.
    pub fn propagate(&mut self) {
        let s = Sensed {
            value: self.pending > 0,
            count: self.pending,
        };
        self.pending = 0;
        self.pipeline.push_back(s);
        // After `latency` stages the value is observable; keep exactly
        // latency-1 in-flight entries after popping.
        self.sensed = if self.pipeline.len() >= self.latency as usize {
            self.pipeline.pop_front().unwrap()
        } else {
            Sensed::default()
        };
    }

    /// What the single receiver observes for the cycle just ended.
    #[inline]
    pub fn sensed(&self) -> Sensed {
        self.sensed
    }

    /// Transmitter budget of this line.
    pub fn max_transmitters(&self) -> u32 {
        self.max_transmitters
    }

    /// Propagation latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Total number of signal-cycles transmitted on this line — the energy
    /// proxy used by the evaluation harness.
    pub fn energy_signals(&self) -> u64 {
        self.energy_signals
    }

    /// True when the line is electrically quiet: no pending assertion,
    /// nothing sensed, and the latency pipeline is at its steady-state
    /// depth holding only idle entries. Propagating such a line is a
    /// state no-op (it pushes a default entry and pops a default entry),
    /// so idle lines can be skipped over. During the initial pipeline
    /// fill (`latency > 1` only) propagates still change the pipeline
    /// depth, so the line reports busy.
    pub fn is_idle(&self) -> bool {
        self.pending == 0
            && self.sensed == Sensed::default()
            && self.pipeline.len() == (self.latency - 1) as usize
            && self.pipeline.iter().all(|s| *s == Sensed::default())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_cycle_latency_senses_same_cycle() {
        let mut l = GLine::new(6, 1);
        l.assert_tx();
        l.assert_tx();
        l.propagate();
        assert_eq!(
            l.sensed(),
            Sensed {
                value: true,
                count: 2
            }
        );
        // Next cycle with no transmitters: line idle.
        l.propagate();
        assert_eq!(
            l.sensed(),
            Sensed {
                value: false,
                count: 0
            }
        );
    }

    #[test]
    fn scsma_counts_up_to_budget() {
        let mut l = GLine::new(6, 1);
        for i in 1..=6 {
            assert_eq!(l.assert_tx(), i, "assert_tx returns the running count");
        }
        l.propagate();
        assert_eq!(l.sensed().count, 6);
    }

    #[test]
    #[should_panic(expected = "transmitter budget exceeded")]
    fn budget_violation_panics() {
        let mut l = GLine::new(2, 1);
        l.assert_tx();
        l.assert_tx();
        l.assert_tx();
    }

    #[test]
    fn slow_line_delays_observation() {
        let mut l = GLine::new(6, 3);
        l.assert_tx();
        l.propagate(); // cycle 0: in flight
        assert_eq!(l.sensed(), Sensed::default());
        l.propagate(); // cycle 1: still in flight
        assert_eq!(l.sensed(), Sensed::default());
        l.propagate(); // cycle 2: arrives
        assert_eq!(
            l.sensed(),
            Sensed {
                value: true,
                count: 1
            }
        );
        l.propagate(); // cycle 3: idle again
        assert_eq!(l.sensed(), Sensed::default());
    }

    #[test]
    fn slow_line_pipelines_back_to_back_signals() {
        let mut l = GLine::new(6, 2);
        l.assert_tx();
        l.propagate(); // signal A in flight
        l.assert_tx();
        l.assert_tx();
        l.propagate(); // A sensed, B in flight
        assert_eq!(l.sensed().count, 1);
        l.propagate(); // B sensed
        assert_eq!(l.sensed().count, 2);
    }

    #[test]
    fn energy_counts_every_assertion() {
        let mut l = GLine::new(6, 1);
        for _ in 0..5 {
            l.assert_tx();
            l.propagate();
        }
        assert_eq!(l.energy_signals(), 5);
    }

    #[test]
    #[should_panic(expected = "latency")]
    fn zero_latency_rejected() {
        let _ = GLine::new(6, 0);
    }
}
