//! The four G-line controller automata of Figure 4.
//!
//! Each controller is a small Moore/Mealy machine driven by the network in
//! three phases per cycle:
//!
//! 1. **latch** — registers written by *other* controllers during the
//!    previous cycle become visible (`release_next` → `release_pending`;
//!    flags are snapshotted by the network);
//! 2. **transmit** — based on current state and latched inputs, the
//!    controller may assert its transmission G-line;
//! 3. **receive** — the controller senses its reception G-line, updates
//!    its counters and state, and writes registers for the next cycle.
//!
//! This two-edge register discipline is what real hardware does and it
//! reproduces the paper's Figure 2 timing exactly: with every core arrived
//! before cycle 0, the release completes at the end of cycle 3.

use crate::line::Sensed;

/// States of a horizontal slave controller (tiles outside column 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlaveHState {
    /// Waiting for the local core to arrive at the barrier; pulses the
    /// gather line on arrival.
    Signaling,
    /// Arrival signalled; waiting for the row release line.
    Waiting,
}

impl SlaveHState {
    /// Stable state name used by the trace subsystem.
    pub fn label(self) -> &'static str {
        match self {
            SlaveHState::Signaling => "Signaling",
            SlaveHState::Waiting => "Waiting",
        }
    }
}

/// Horizontal slave controller (`Sh` in the paper).
#[derive(Clone, Debug)]
pub struct SlaveH {
    state: SlaveHState,
}

impl SlaveH {
    /// A slave in its initial `Signaling` state.
    pub fn new() -> SlaveH {
        SlaveH {
            state: SlaveHState::Signaling,
        }
    }

    /// Current FSM state (for inspection/tests).
    pub fn state(&self) -> SlaveHState {
        self.state
    }

    /// Transmit phase: returns `true` iff the gather line (SglineH) must
    /// be asserted this cycle. `core_arrived` is `bar_reg != 0`.
    pub fn transmit(&mut self, core_arrived: bool) -> bool {
        if self.state == SlaveHState::Signaling && core_arrived {
            self.state = SlaveHState::Waiting;
            true
        } else {
            false
        }
    }

    /// Receive phase: senses the row release line (MglineH). Returns
    /// `true` iff the local core's `bar_reg` must be cleared (barrier
    /// complete for this core).
    pub fn receive(&mut self, release: Sensed) -> bool {
        if self.state == SlaveHState::Waiting && release.value {
            self.state = SlaveHState::Signaling;
            true
        } else {
            false
        }
    }

    /// True when, with both G-lines idle and `core_arrived` held at its
    /// current value, a full latch/transmit/receive cycle is a no-op.
    pub fn is_stable(&self, core_arrived: bool) -> bool {
        !(self.state == SlaveHState::Signaling && core_arrived)
    }
}

impl Default for SlaveH {
    fn default() -> Self {
        SlaveH::new()
    }
}

/// States of a horizontal master controller (column-0 tile of each row).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterHState {
    /// Counting arrival pulses from the row's slaves (S-CSMA) and waiting
    /// for the local core.
    Accounting,
    /// Whole row arrived (`flag` raised); waiting for the release command
    /// from the vertical network.
    Waiting,
}

impl MasterHState {
    /// Stable state name used by the trace subsystem.
    pub fn label(self) -> &'static str {
        match self {
            MasterHState::Accounting => "Accounting",
            MasterHState::Waiting => "Waiting",
        }
    }
}

/// Horizontal master controller (`Mh` in the paper).
#[derive(Clone, Debug)]
pub struct MasterH {
    state: MasterHState,
    /// Arrival pulses counted so far (ScntH).
    scnt: u32,
    /// Pulses expected: number of slaves in the row (cols - 1).
    scnt_max: u32,
    /// Local core arrived (Mcnt).
    mcnt: bool,
    /// Whether the local core participates (false in masked contexts
    /// where the column-0 core of this row is not a member).
    mcnt_needed: bool,
    /// Row-complete flag read by the co-located vertical controller.
    flag: bool,
    /// Release command latched for this cycle's transmit.
    release_pending: bool,
    /// Release command arriving during this cycle (visible next cycle).
    release_next: bool,
}

impl MasterH {
    /// A master expecting `scnt_max` slave pulses (the member slaves in
    /// the row). `mcnt_needed` is false when the master's own core is
    /// not a barrier member.
    pub fn new(scnt_max: u32, mcnt_needed: bool) -> MasterH {
        MasterH {
            state: MasterHState::Accounting,
            scnt: 0,
            scnt_max,
            mcnt: !mcnt_needed,
            mcnt_needed,
            flag: false,
            release_pending: false,
            release_next: false,
        }
    }

    /// Current FSM state (for inspection/tests).
    pub fn state(&self) -> MasterHState {
        self.state
    }

    /// The row-complete flag, as visible *this* cycle (the network
    /// snapshots it at latch time for co-located controllers).
    pub fn flag(&self) -> bool {
        self.flag
    }

    /// Arrival count so far (ScntH), for inspection/tests.
    pub fn scnt(&self) -> u32 {
        self.scnt
    }

    /// Whether the local core has been counted (Mcnt).
    pub fn mcnt(&self) -> bool {
        self.mcnt
    }

    /// Latch phase: promote the cross-controller release command.
    pub fn latch(&mut self) {
        self.release_pending = self.release_next;
        self.release_next = false;
    }

    /// Command this master to run the row release next cycle (written by
    /// the co-located SlaveV / MasterV during their receive phase).
    pub fn command_release(&mut self) {
        self.release_next = true;
    }

    /// Transmit phase: returns `true` iff the row release line (MglineH)
    /// must be asserted. Asserting also resets the controller for the next
    /// barrier episode; the caller clears the local core's `bar_reg`.
    pub fn transmit(&mut self) -> bool {
        if self.release_pending {
            debug_assert_eq!(
                self.state,
                MasterHState::Waiting,
                "release commanded before row completed"
            );
            self.release_pending = false;
            self.state = MasterHState::Accounting;
            self.scnt = 0;
            self.mcnt = !self.mcnt_needed;
            self.flag = false;
            true
        } else {
            false
        }
    }

    /// Receive phase: accumulates S-CSMA pulses from the gather line and
    /// the local core's arrival; raises `flag` when the row is complete.
    pub fn receive(&mut self, gather: Sensed, core_arrived: bool) {
        if self.state != MasterHState::Accounting {
            debug_assert_eq!(gather.count, 0, "slave pulsed while row already complete");
            return;
        }
        self.scnt += gather.count;
        debug_assert!(
            self.scnt <= self.scnt_max,
            "more pulses than slaves in the row"
        );
        debug_assert!(
            self.scnt_max > 0 || self.mcnt_needed,
            "a row with no members must not have an active MasterH"
        );
        if core_arrived {
            self.mcnt = true;
        }
        if self.scnt == self.scnt_max && self.mcnt {
            self.flag = true;
            self.state = MasterHState::Waiting;
        }
    }

    /// True when, with both G-lines idle and `core_arrived` held at its
    /// current value, a full latch/transmit/receive cycle is a no-op.
    /// Mid-count `Accounting` (waiting for more pulses) *is* stable —
    /// only a pending release or an uncounted local arrival wakes the
    /// controller without line activity.
    pub fn is_stable(&self, core_arrived: bool) -> bool {
        let uncounted_arrival =
            self.state == MasterHState::Accounting && !self.mcnt && core_arrived;
        !(self.release_pending || self.release_next || uncounted_arrival)
    }
}

/// States of a vertical slave controller (column-0 tiles of rows ≥ 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SlaveVState {
    /// Waiting for the co-located MasterH to flag row completion.
    Signaling,
    /// Row completion forwarded; waiting for the column release line.
    Waiting,
    /// Release observed; waiting for the co-located MasterH's flag to
    /// drop back to 0 before re-arming (the `[flag=0]` guard of Figure 4 —
    /// without it the stale flag would immediately re-fire the barrier).
    Draining,
}

impl SlaveVState {
    /// Stable state name used by the trace subsystem.
    pub fn label(self) -> &'static str {
        match self {
            SlaveVState::Signaling => "Signaling",
            SlaveVState::Waiting => "Waiting",
            SlaveVState::Draining => "Draining",
        }
    }
}

/// Vertical slave controller (`Sv` in the paper).
#[derive(Clone, Debug)]
pub struct SlaveV {
    state: SlaveVState,
}

impl SlaveV {
    /// A slave in its initial `Signaling` state.
    pub fn new() -> SlaveV {
        SlaveV {
            state: SlaveVState::Signaling,
        }
    }

    /// Current FSM state (for inspection/tests).
    pub fn state(&self) -> SlaveVState {
        self.state
    }

    /// Transmit phase: `mh_flag` is the co-located MasterH's flag as
    /// snapshotted at latch time. Returns `true` iff the column gather
    /// line (SglineV) must be asserted.
    pub fn transmit(&mut self, mh_flag: bool) -> bool {
        match self.state {
            SlaveVState::Signaling if mh_flag => {
                self.state = SlaveVState::Waiting;
                true
            }
            SlaveVState::Draining if !mh_flag => {
                self.state = SlaveVState::Signaling;
                false
            }
            _ => false,
        }
    }

    /// Receive phase: senses the column release line (MglineV). Returns
    /// `true` iff the co-located MasterH must be commanded to release its
    /// row next cycle.
    pub fn receive(&mut self, release: Sensed) -> bool {
        if self.state == SlaveVState::Waiting && release.value {
            self.state = SlaveVState::Draining;
            true
        } else {
            false
        }
    }

    /// True when, with both G-lines idle and the co-located MasterH flag
    /// held at `mh_flag`, a full cycle is a no-op.
    pub fn is_stable(&self, mh_flag: bool) -> bool {
        match self.state {
            SlaveVState::Signaling => !mh_flag,
            SlaveVState::Waiting => true,
            SlaveVState::Draining => mh_flag,
        }
    }
}

impl Default for SlaveV {
    fn default() -> Self {
        SlaveV::new()
    }
}

/// States of the vertical master controller (tile (0,0)).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MasterVState {
    /// Counting row-completion pulses on the column gather line.
    Accounting,
    /// Barrier globally complete but the release is gated (clustered
    /// operation): waiting for [`MasterV::trigger_release`].
    GatedReady,
    /// Release scheduled for the next transmit.
    Releasing,
    /// Release done; waiting for the co-located MasterH's flag to drop
    /// before counting again (Figure 4's `MasterH(flag=0)` guard on the
    /// return transition).
    Draining,
}

impl MasterVState {
    /// Stable state name used by the trace subsystem.
    pub fn label(self) -> &'static str {
        match self {
            MasterVState::Accounting => "Accounting",
            MasterVState::GatedReady => "GatedReady",
            MasterVState::Releasing => "Releasing",
            MasterVState::Draining => "Draining",
        }
    }
}

/// Vertical master controller (`Mv` in the paper).
///
/// With `root_gated = true` the controller stops in [`MasterVState::GatedReady`]
/// once the barrier is globally complete instead of releasing — the hook the
/// two-level [`crate::cluster::ClusteredBarrierNetwork`] uses.
#[derive(Clone, Debug)]
pub struct MasterV {
    state: MasterVState,
    /// Row-completion pulses counted so far (ScntV).
    scnt: u32,
    /// Pulses expected: rows - 1.
    scnt_max: u32,
    /// Row 0 complete (its MasterH flagged) — the paper's Mcnt.
    mcnt: bool,
    /// Whether row 0 participates (false in masked contexts with no
    /// members in row 0).
    mcnt_needed: bool,
    /// Gate the release for hierarchical composition.
    root_gated: bool,
    release_pending: bool,
    release_next: bool,
}

impl MasterV {
    /// A vertical master expecting `scnt_max` pulses (the member rows
    /// other than row 0). `mcnt_needed` is false when row 0 has no
    /// barrier members.
    pub fn new(scnt_max: u32, root_gated: bool, mcnt_needed: bool) -> MasterV {
        MasterV {
            state: MasterVState::Accounting,
            scnt: 0,
            scnt_max,
            mcnt: !mcnt_needed,
            mcnt_needed,
            root_gated,
            release_pending: false,
            release_next: false,
        }
    }

    /// Current FSM state (for inspection/tests).
    pub fn state(&self) -> MasterVState {
        self.state
    }

    /// Row-completion count so far (ScntV), for inspection/tests.
    pub fn scnt(&self) -> u32 {
        self.scnt
    }

    /// True while the gated root is waiting for an external release.
    pub fn root_ready(&self) -> bool {
        self.state == MasterVState::GatedReady
    }

    /// Latch phase: promote the externally-written release trigger.
    pub fn latch(&mut self) {
        if self.release_next {
            self.release_pending = true;
            self.release_next = false;
        }
    }

    /// External release trigger for a gated root (level-2 network
    /// completion in clustered operation). Takes effect next cycle.
    ///
    /// # Panics
    /// Panics if the root is not gated-ready — triggering a release before
    /// the barrier completed would violate barrier semantics.
    pub fn trigger_release(&mut self) {
        assert!(
            self.state == MasterVState::GatedReady,
            "trigger_release on a root that is not gated-ready (state {:?})",
            self.state
        );
        self.state = MasterVState::Releasing;
        self.release_next = true;
    }

    /// Transmit phase: returns `true` iff the column release line
    /// (MglineV) must be asserted. The caller must then command the
    /// co-located MasterH to release (register write, visible next cycle).
    pub fn transmit(&mut self) -> bool {
        if self.release_pending {
            self.release_pending = false;
            self.state = MasterVState::Draining;
            self.scnt = 0;
            self.mcnt = !self.mcnt_needed;
            true
        } else {
            false
        }
    }

    /// Receive phase: accumulates row-completion pulses; `mh0_flag` is the
    /// snapshot of the co-located MasterH's flag. Returns `true` iff the
    /// barrier just completed globally this cycle.
    pub fn receive(&mut self, gather: Sensed, mh0_flag: bool) -> bool {
        if self.state == MasterVState::Draining {
            debug_assert_eq!(gather.count, 0, "vertical pulse while draining");
            if !mh0_flag {
                self.state = MasterVState::Accounting;
            }
            return false;
        }
        if self.state != MasterVState::Accounting {
            debug_assert_eq!(gather.count, 0, "vertical pulse while not accounting");
            return false;
        }
        self.scnt += gather.count;
        debug_assert!(
            self.scnt <= self.scnt_max,
            "more pulses than vertical slaves"
        );
        if mh0_flag {
            self.mcnt = true;
        }
        if self.scnt == self.scnt_max && self.mcnt {
            if self.root_gated {
                self.state = MasterVState::GatedReady;
            } else {
                self.state = MasterVState::Releasing;
                self.release_pending = true;
            }
            true
        } else {
            false
        }
    }

    /// True when, with both G-lines idle and the row-0 MasterH flag held
    /// at `mh0_flag`, a full cycle is a no-op. A gated-ready root is
    /// stable (it only moves on an external [`MasterV::trigger_release`]).
    pub fn is_stable(&self, mh0_flag: bool) -> bool {
        !self.release_pending
            && !self.release_next
            && match self.state {
                MasterVState::Accounting => self.mcnt || !mh0_flag,
                MasterVState::GatedReady => true,
                MasterVState::Releasing => false,
                MasterVState::Draining => mh0_flag,
            }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on(count: u32) -> Sensed {
        Sensed {
            value: count > 0,
            count,
        }
    }

    fn off() -> Sensed {
        Sensed::default()
    }

    #[test]
    fn slave_h_pulses_once_then_waits() {
        let mut s = SlaveH::new();
        assert!(!s.transmit(false), "must not signal before arrival");
        assert!(s.transmit(true), "signals on arrival");
        assert_eq!(s.state(), SlaveHState::Waiting);
        assert!(!s.transmit(true), "signal is a single pulse");
        assert!(!s.receive(off()));
        assert!(s.receive(on(1)), "release clears bar_reg");
        assert_eq!(s.state(), SlaveHState::Signaling);
    }

    #[test]
    fn master_h_counts_scsma_and_own_core() {
        let mut m = MasterH::new(3, true);
        m.receive(on(2), false); // two slaves pulse together (S-CSMA)
        assert_eq!(m.scnt(), 2);
        assert!(!m.flag());
        m.receive(on(1), false); // last slave
        assert_eq!(m.scnt(), 3);
        assert!(!m.flag(), "own core still missing");
        m.receive(off(), true); // own core arrives
        assert!(m.flag());
        assert_eq!(m.state(), MasterHState::Waiting);
    }

    #[test]
    fn master_h_own_core_first() {
        let mut m = MasterH::new(1, true);
        m.receive(off(), true);
        assert!(m.mcnt());
        assert!(!m.flag());
        m.receive(on(1), true);
        assert!(m.flag());
    }

    #[test]
    fn master_h_release_cycle() {
        let mut m = MasterH::new(0, true);
        m.receive(off(), true); // single-column row: flag immediately
        assert!(m.flag());
        m.command_release();
        assert!(
            !m.transmit(),
            "release command is registered, not combinational"
        );
        m.latch();
        assert!(m.transmit(), "release fires after latch");
        assert_eq!(m.state(), MasterHState::Accounting);
        assert_eq!(m.scnt(), 0);
        assert!(!m.flag());
    }

    #[test]
    fn slave_v_forwards_row_completion() {
        let mut s = SlaveV::new();
        assert!(!s.transmit(false));
        assert!(s.transmit(true));
        assert!(!s.transmit(true), "single pulse");
        assert!(!s.receive(off()));
        assert!(s.receive(on(1)), "column release commands the row master");
        assert_eq!(s.state(), SlaveVState::Draining);
        assert!(
            !s.transmit(true),
            "stale flag must not re-fire (Fig. 4 [flag=0] guard)"
        );
        assert_eq!(s.state(), SlaveVState::Draining);
        assert!(!s.transmit(false), "flag low re-arms without a pulse");
        assert_eq!(s.state(), SlaveVState::Signaling);
    }

    #[test]
    fn master_v_completes_and_releases() {
        let mut m = MasterV::new(2, false, true);
        assert!(!m.receive(on(1), false));
        assert!(!m.receive(off(), true), "row 0 flag alone is not enough");
        assert!(m.receive(on(1), true), "all rows in → complete");
        assert_eq!(m.state(), MasterVState::Releasing);
        assert!(m.transmit(), "asserts the column release line");
        assert_eq!(m.state(), MasterVState::Draining);
        assert_eq!(m.scnt(), 0);
        // While the co-located MasterH flag is still high, stay drained.
        assert!(!m.receive(off(), true));
        assert_eq!(m.state(), MasterVState::Draining);
        assert!(!m.receive(off(), false), "flag low re-arms the accountant");
        assert_eq!(m.state(), MasterVState::Accounting);
    }

    #[test]
    fn master_v_gated_waits_for_trigger() {
        let mut m = MasterV::new(0, true, true);
        assert!(m.receive(off(), true));
        assert!(m.root_ready());
        assert!(!m.transmit(), "gated root must not release on its own");
        m.trigger_release();
        assert!(!m.transmit(), "trigger is registered");
        m.latch();
        assert!(m.transmit());
        assert_eq!(m.state(), MasterVState::Draining);
    }

    #[test]
    #[should_panic(expected = "trigger_release")]
    fn premature_trigger_panics() {
        let mut m = MasterV::new(1, true, true);
        m.trigger_release();
    }

    #[test]
    fn master_h_without_local_member() {
        // A masked row whose column-0 core does not participate: the row
        // completes on the slaves alone.
        let mut m = MasterH::new(2, false);
        assert!(m.mcnt(), "mcnt auto-satisfied");
        m.receive(on(2), false);
        assert!(m.flag());
        // And the reset keeps the auto-mcnt.
        m.command_release();
        m.latch();
        assert!(m.transmit());
        assert!(m.mcnt());
    }

    #[test]
    fn master_v_without_row0_member() {
        let mut m = MasterV::new(2, false, false);
        assert!(!m.receive(on(1), false));
        assert!(m.receive(on(1), false), "completes without row 0");
        assert_eq!(m.state(), MasterVState::Releasing);
    }

    #[test]
    fn master_v_simultaneous_rows() {
        // All three vertical slaves pulse in the same cycle: S-CSMA counts 3.
        let mut m = MasterV::new(3, false, true);
        assert!(m.receive(on(3), true));
        assert_eq!(m.state(), MasterVState::Releasing);
    }
}
