//! # gline-core — a G-line-based barrier network for many-core CMPs
//!
//! Cycle-accurate model of the hardware barrier proposed in
//! *"A G-line-based Network for Fast and Efficient Barrier Synchronization
//! in Many-Core CMPs"* (Abellán, Fernández, Acacio — ICPP 2010).
//!
//! ## The hardware
//!
//! A **G-line** is a global wire that broadcasts one bit across a full
//! dimension of the chip in a single clock cycle. **S-CSMA**
//! (sense-carrier multiple access) lets the single receiver on a line
//! *count* how many transmitters asserted it during the same cycle, so
//! several cores can "signal" simultaneously without arbitration.
//!
//! The barrier network for an `R × C` mesh uses `2 × (R + 1)` G-lines:
//! two per row (gather + release) and two for the first column. Four kinds
//! of controllers implement the synchronization (Figure 4 of the paper):
//!
//! * [`SlaveH`](controller::SlaveHState) — one per tile outside column 0.
//!   Pulses the row's *gather* line when its core writes `bar_reg`, then
//!   waits for the row's *release* line.
//! * [`MasterH`](controller::MasterHState) — one per row, in column 0.
//!   Counts gather pulses with S-CSMA; when the whole row (including its
//!   own core) has arrived it raises its `flag`.
//! * [`SlaveV`](controller::SlaveVState) — column-0 tiles of rows ≥ 1.
//!   Pulses the column *gather* line when the co-located `MasterH` flags.
//! * [`MasterV`](controller::MasterVState) — tile (0,0). Counts column
//!   pulses; when all rows have flagged, starts the release wave: column
//!   release line, then every row's release line, which clears every
//!   core's `bar_reg`.
//!
//! Once the last core arrives, the barrier completes in **4 cycles**
//! (gather row → gather column → release column → release row) regardless
//! of core count — the property the paper's Figure 5 demonstrates.
//!
//! ## What this crate provides
//!
//! * [`line::GLine`] — the wire itself, with transmitter budget checking
//!   and the S-CSMA count, plus a configurable propagation latency (the
//!   paper's "longer latency G-lines" extension).
//! * [`controller`] — the four finite state automata as pure transition
//!   functions, unit-tested against Figure 4.
//! * [`network::BarrierNetwork`] — a complete barrier network for any
//!   `R × C` mesh with any number of independent barrier *contexts* (the
//!   paper's future-work space multiplexing).
//! * [`cluster::ClusteredBarrierNetwork`] — two-level composition of
//!   G-line networks for meshes beyond the 7×7 electrical limit (the
//!   paper's future-work scaling scheme).
//! * [`tdm::TdmBarrierNetwork`] — several logical barriers time-sharing
//!   one physical G-line set (the paper's future-work time
//!   multiplexing), trading latency for wires.
//!
//! ## Quick example
//!
//! ```
//! use gline_core::BarrierNetwork;
//! use sim_base::{config::GlineConfig, CoreId, Mesh2D};
//!
//! let mesh = Mesh2D::new(4, 8); // the paper's 32-core CMP
//! let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
//!
//! // All 32 cores arrive at cycle 0 (write bar_reg = 1)…
//! for core in mesh.tiles() {
//!     net.write_bar_reg(core, 0, 1);
//! }
//! // …and the network releases them 4 cycles later.
//! let mut cycles = 0;
//! while (0..32).any(|c| net.bar_reg(CoreId(c), 0) != 0) {
//!     net.tick();
//!     cycles += 1;
//! }
//! assert_eq!(cycles, 4);
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cluster;
pub mod controller;
pub mod line;
pub mod network;
pub mod shadow;
pub mod stats;
pub mod tdm;

pub use cluster::ClusteredBarrierNetwork;
pub use line::{GLine, Sensed};
pub use network::{BarrierHw, BarrierNetwork, CtxId};
pub use shadow::GlineShadow;
pub use stats::GlineStats;
pub use tdm::TdmBarrierNetwork;
