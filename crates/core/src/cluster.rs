//! Two-level G-line barrier network for meshes beyond the electrical
//! limit of a single G-line (the paper's §5 future work: *"design
//! efficient and scalable schemes to interconnect G-line-based networks,
//! in order to overcome the limitation in the number of cores supported by
//! this technology (a many-core CMP with more than 7×7 2D-mesh)"*).
//!
//! The global mesh is partitioned into clusters of at most
//! `cluster_dim × cluster_dim` tiles (8×8 with the default 7-transmitter
//! budget; 7×7 under the paper's strict 6-transmitter reading). Every cluster runs its own flat [`BarrierNetwork`] whose root
//! release is **gated**: once a cluster has gathered all its cores, its
//! root (the cluster's tile (0,0)) announces completion on a second-level
//! G-line network spanning the cluster heads. When the second level
//! completes, the release cascades back down and every cluster releases
//! its cores.
//!
//! Latency: gather-to-root takes 2 cycles in each cluster, the
//! second-level barrier takes 4 (its first cycle overlaps the root
//! announcement), and the gated in-cluster release takes 2 more
//! (release-column + release-row) — 7 cycles total once the last core
//! arrives, constant in core count up to 64 clusters of 64 cores = 4096
//! cores at the default budget.

use crate::network::{BarrierHw, BarrierNetwork, CtxId};
use crate::stats::GlineStats;
use sim_base::config::GlineConfig;
use sim_base::{Coord, CoreId, Cycle, Mesh2D};

/// A cluster's place in the picture: its sub-network and its geometry.
#[derive(Clone, Debug)]
struct Cluster {
    net: BarrierNetwork,
    /// Per-context: has this cluster's completion been forwarded to the
    /// second level (and not yet released)?
    forwarded: Vec<bool>,
}

/// Two-level composition of G-line barrier networks.
///
/// Implements the same [`BarrierHw`] interface as the flat network, so it
/// is a drop-in replacement for meshes the flat network cannot span.
#[derive(Clone, Debug)]
pub struct ClusteredBarrierNetwork {
    mesh: Mesh2D,
    grid: Mesh2D,
    cluster_dim: u16,
    clusters: Vec<Cluster>,
    level2: BarrierNetwork,
    num_contexts: usize,
    now: Cycle,
    // Episode bookkeeping per context.
    arrived: Vec<u32>,
    outstanding: Vec<u32>,
    first_arrival: Vec<Cycle>,
    last_arrival: Vec<Cycle>,
    stats: Vec<GlineStats>,
}

impl ClusteredBarrierNetwork {
    /// Builds a clustered network over `mesh`, with clusters of at most
    /// `(max_transmitters + 1)²` tiles each.
    ///
    /// # Panics
    /// Panics if the *grid of clusters* itself exceeds the budget (that
    /// would need a third level; at the default budget this allows up to
    /// 4096 cores).
    pub fn new(mesh: Mesh2D, cfg: GlineConfig) -> ClusteredBarrierNetwork {
        let dim = (cfg.max_transmitters + 1) as u16;
        assert!(dim >= 1);
        let grid = Mesh2D::new(mesh.rows.div_ceil(dim), mesh.cols.div_ceil(dim));
        assert!(
            grid.rows <= dim && grid.cols <= dim,
            "{}×{} mesh needs more than two G-line levels",
            mesh.rows,
            mesh.cols
        );
        let clusters = grid
            .coords()
            .map(|g| {
                let rows = (mesh.rows - g.row * dim).min(dim);
                let cols = (mesh.cols - g.col * dim).min(dim);
                Cluster {
                    net: BarrierNetwork::with_gated_root(Mesh2D::new(rows, cols), cfg, true),
                    forwarded: vec![false; cfg.contexts as usize],
                }
            })
            .collect();
        let n_ctx = cfg.contexts as usize;
        ClusteredBarrierNetwork {
            mesh,
            grid,
            cluster_dim: dim,
            clusters,
            level2: BarrierNetwork::new(grid, cfg),
            num_contexts: n_ctx,
            now: 0,
            arrived: vec![0; n_ctx],
            outstanding: vec![0; n_ctx],
            first_arrival: vec![0; n_ctx],
            last_arrival: vec![0; n_ctx],
            stats: vec![GlineStats::default(); n_ctx],
        }
    }

    /// The global mesh this network spans.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// The mesh of clusters (each entry is one flat sub-network).
    pub fn cluster_grid(&self) -> Mesh2D {
        self.grid
    }

    /// Total number of G-lines across both levels.
    pub fn num_glines(&self) -> u32 {
        self.clusters
            .iter()
            .map(|c| c.net.num_glines())
            .sum::<u32>()
            + self.level2.num_glines()
    }

    /// Statistics for context `ctx`, with the energy proxy aggregated
    /// across both levels.
    pub fn stats(&self, ctx: CtxId) -> GlineStats {
        let mut s = self.stats[ctx].clone();
        s.signals = self
            .clusters
            .iter()
            .map(|c| c.net.stats(ctx).signals)
            .sum::<u64>()
            + self.level2.stats(ctx).signals;
        s
    }

    /// Maps a global core id to (cluster index, local core id).
    fn locate(&self, core: CoreId) -> (usize, CoreId) {
        let Coord { row, col } = self.mesh.coord_of(core);
        let g = Coord::new(row / self.cluster_dim, col / self.cluster_dim);
        let cluster = self.grid.id_of(g).index();
        let local = Coord::new(row % self.cluster_dim, col % self.cluster_dim);
        let local_id = self.clusters[cluster].net.mesh().id_of(local);
        (cluster, local_id)
    }
}

impl BarrierHw for ClusteredBarrierNetwork {
    fn num_cores(&self) -> usize {
        self.mesh.num_tiles()
    }

    fn num_contexts(&self) -> usize {
        self.num_contexts
    }

    fn stats(&self, ctx: CtxId) -> GlineStats {
        ClusteredBarrierNetwork::stats(self, ctx)
    }

    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        let (cluster, local) = self.locate(core);
        let was_zero = self.clusters[cluster].net.bar_reg(local, ctx) == 0;
        self.clusters[cluster].net.write_bar_reg(local, ctx, value);
        if was_zero {
            if self.arrived[ctx] == 0 {
                self.first_arrival[ctx] = self.now;
            }
            self.arrived[ctx] += 1;
            self.outstanding[ctx] += 1;
            self.last_arrival[ctx] = self.now;
        }
    }

    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        let (cluster, local) = self.locate(core);
        self.clusters[cluster].net.bar_reg(local, ctx)
    }

    fn all_released(&self, ctx: CtxId) -> bool {
        // `outstanding` mirrors the sum of the sub-networks' counters
        // (incremented together in `write_bar_reg`, decremented by the
        // released delta each tick), so this is O(1).
        self.outstanding[ctx] == 0
    }

    fn tick(&mut self) {
        // Snapshot per-context outstanding before the tick to detect the
        // cores released during this cycle. O(clusters × contexts), not
        // O(cores): each flat sub-network tracks its own counter.
        let before: Vec<u32> = (0..self.num_contexts)
            .map(|ctx| self.clusters.iter().map(|c| c.net.outstanding(ctx)).sum())
            .collect();

        // Level-1 networks advance first.
        for c in &mut self.clusters {
            c.net.tick();
        }
        // Cluster roots that completed announce on the second level (a
        // register wire between the cluster root and its level-2 slave
        // controller, so it lands in the same cycle's level-2 tick).
        for (i, c) in self.clusters.iter_mut().enumerate() {
            for ctx in 0..self.num_contexts {
                if !c.forwarded[ctx] && c.net.root_ready(ctx) {
                    c.forwarded[ctx] = true;
                    self.level2.write_bar_reg(CoreId::from(i), ctx, 1);
                }
            }
        }
        self.level2.tick();
        // Second-level release fans the release back into the clusters.
        for (i, c) in self.clusters.iter_mut().enumerate() {
            for ctx in 0..self.num_contexts {
                if c.forwarded[ctx] && self.level2.bar_reg(CoreId::from(i), ctx) == 0 {
                    c.forwarded[ctx] = false;
                    c.net.trigger_release(ctx);
                }
            }
        }

        // Episode accounting.
        #[allow(clippy::needless_range_loop)] // ctx indexes several parallel arrays
        for ctx in 0..self.num_contexts {
            let after: u32 = self.clusters.iter().map(|c| c.net.outstanding(ctx)).sum();
            let released = before[ctx].saturating_sub(after);
            self.outstanding[ctx] = self.outstanding[ctx].saturating_sub(released);
            if self.arrived[ctx] as usize == self.mesh.num_tiles() && self.outstanding[ctx] == 0 {
                self.stats[ctx].record(self.first_arrival[ctx], self.last_arrival[ctx], self.now);
                self.arrived[ctx] = 0;
            }
        }
        self.now += 1;
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn next_event(&self) -> Option<Cycle> {
        // The composition can change state on its own while either level
        // is non-quiescent, or while an inter-level handshake is pending:
        // a root-ready cluster not yet announced on level 2 (the forward
        // happens in the next tick), or — defensively — a forwarded
        // cluster whose level-2 register has already cleared (the release
        // trigger lands in the next tick; in practice the same tick that
        // clears the register also triggers).
        let handshake_pending = self.clusters.iter().enumerate().any(|(i, c)| {
            (0..self.num_contexts).any(|ctx| {
                (!c.forwarded[ctx] && c.net.root_ready(ctx))
                    || (c.forwarded[ctx] && self.level2.bar_reg(CoreId::from(i), ctx) == 0)
            })
        });
        if handshake_pending
            || self.level2.next_event().is_some()
            || self.clusters.iter().any(|c| c.net.next_event().is_some())
        {
            Some(self.now + 1)
        } else {
            None
        }
    }

    fn skip_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now, "cannot skip backwards");
        debug_assert!(
            self.next_event().is_none(),
            "clustered-network skip while an episode is in flight"
        );
        for c in &mut self.clusters {
            c.net.skip_to(t);
        }
        self.level2.skip_to(t);
        self.now = t;
    }

    fn min_notify_latency(&self) -> u64 {
        // 2 cycles in-cluster gather to the root, the 4-cycle level-2
        // floor with its first cycle overlapping the root announcement,
        // and 2 more for the gated release cascade (release-column +
        // release-row): the module-level 7-cycle constant. No core can
        // observe any effect of an arrival sooner.
        7
    }

    fn release_bound(&self) -> u64 {
        // Same shape as the flat network's bound: while a context still
        // misses arrivals, even an immediate last arrival needs the full
        // two-level propagation floor before any `bar_reg` can clear;
        // once every core has arrived the cascade may be in flight.
        (0..self.num_contexts)
            .map(|ctx| {
                if self.arrived[ctx] as usize >= self.mesh.num_tiles() {
                    1
                } else {
                    BarrierHw::min_notify_latency(self)
                }
            })
            .min()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GlineConfig {
        GlineConfig::default()
    }

    #[test]
    fn sixteen_by_sixteen_synchronizes_constant_latency() {
        let mesh = Mesh2D::new(16, 16);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        assert_eq!(net.cluster_grid(), Mesh2D::new(2, 2));
        let lat = net.run_single_barrier(&vec![0; 256]);
        // 2 (cluster gather) + 3 (level-2, overlapping 1) + 2 (release) = 7.
        assert_eq!(lat, 7);
    }

    #[test]
    fn single_cluster_degenerate_grid() {
        // An 8×8 mesh fits in one cluster; the level-2 network is 1×1.
        let mesh = Mesh2D::new(8, 8);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        assert_eq!(net.cluster_grid(), Mesh2D::new(1, 1));
        assert_eq!(net.run_single_barrier(&vec![0; 64]), 7);
    }

    #[test]
    fn latency_constant_across_large_meshes() {
        let mut lats = Vec::new();
        for (r, c) in [
            (9u16, 9u16),
            (10, 10),
            (14, 14),
            (16, 16),
            (21, 21),
            (24, 24),
        ] {
            let mesh = Mesh2D::new(r, c);
            let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
            lats.push(net.run_single_barrier(&vec![0; mesh.num_tiles()]));
        }
        assert!(
            lats.windows(2).all(|w| w[0] == w[1]),
            "latency not constant: {lats:?}"
        );
    }

    #[test]
    fn ragged_mesh_clusters() {
        // 9×13 with 8×8 clusters → ragged 2×2 grid of clusters.
        let mesh = Mesh2D::new(9, 13);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        assert_eq!(net.cluster_grid(), Mesh2D::new(2, 2));
        let lat = net.run_single_barrier(&vec![0; mesh.num_tiles()]);
        assert_eq!(lat, 7);
        assert_eq!(net.stats(0).barriers_completed, 1);
    }

    #[test]
    fn no_early_release_across_clusters() {
        let mesh = Mesh2D::new(9, 9);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        // Every core except the last one arrives.
        for i in 0..80 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        for _ in 0..100 {
            net.tick();
            assert!(!net.all_released(0));
            for i in 0..80 {
                assert_ne!(net.bar_reg(CoreId(i), 0), 0, "core {i} escaped");
            }
        }
        net.write_bar_reg(CoreId(80), 0, 1);
        for _ in 0..7 {
            net.tick();
        }
        assert!(net.all_released(0));
    }

    #[test]
    fn back_to_back_clustered_barriers() {
        let mesh = Mesh2D::new(16, 16);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        for _ in 0..5 {
            assert_eq!(net.run_single_barrier(&vec![0; 256]), 7);
        }
        assert_eq!(net.stats(0).barriers_completed, 5);
        assert_eq!(net.stats(0).mean_latency(), 7.0);
    }

    #[test]
    fn staggered_arrivals_stats() {
        let mesh = Mesh2D::new(9, 9);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        let mut arr = vec![0u64; 81];
        arr[17] = 50;
        let lat = net.run_single_barrier(&arr);
        assert_eq!(lat, 7);
        assert_eq!(net.stats(0).episode.max(), Some(57));
    }

    #[test]
    fn multi_context_clustered() {
        let mesh = Mesh2D::new(9, 9);
        let mut c = cfg();
        c.contexts = 2;
        let mut net = ClusteredBarrierNetwork::new(mesh, c);
        for i in 0..81 {
            net.write_bar_reg(CoreId(i), 1, 1);
        }
        for _ in 0..7 {
            net.tick();
        }
        assert!(net.all_released(1));
        // Context 0 was never used and must be untouched.
        assert!(net.all_released(0));
        assert_eq!(net.stats(0).barriers_completed, 0);
        assert_eq!(net.stats(1).barriers_completed, 1);
    }

    #[test]
    #[should_panic(expected = "more than two G-line levels")]
    fn three_level_meshes_rejected() {
        let _ = ClusteredBarrierNetwork::new(Mesh2D::new(70, 70), cfg());
    }

    #[test]
    fn quiescent_network_skips_and_wakes() {
        let mesh = Mesh2D::new(9, 9);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        assert_eq!(net.next_event(), None, "fresh network is quiescent");
        assert_eq!(BarrierHw::release_bound(&net), 7);
        net.skip_to(1000);
        assert_eq!(net.now(), 1000);

        // A skipped network behaves identically to a ticked one.
        let lat = net.run_single_barrier(&vec![0; 81]);
        assert_eq!(lat, 7);
        // The controllers drain for a few cycles after the release; the
        // network must then report quiescence again.
        let mut settle = 0;
        while net.next_event().is_some() {
            net.tick();
            settle += 1;
            assert!(settle < 16, "network never settled after release");
        }
        net.skip_to(5000);
        assert_eq!(net.run_single_barrier(&vec![0; 81]), 7);
        assert_eq!(net.stats(0).barriers_completed, 2);
    }

    #[test]
    fn release_bound_collapses_once_all_arrived() {
        let mesh = Mesh2D::new(9, 9);
        let mut net = ClusteredBarrierNetwork::new(mesh, cfg());
        for i in 0..80 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        for _ in 0..20 {
            net.tick();
        }
        // One arrival missing: no clear can land within the 7-cycle floor.
        assert_eq!(BarrierHw::release_bound(&net), 7);
        assert!(
            net.next_event().is_some() || !net.all_released(0),
            "registers still held"
        );
        net.write_bar_reg(CoreId(80), 0, 1);
        assert_eq!(
            BarrierHw::release_bound(&net),
            1,
            "release may be in flight"
        );
        for _ in 0..7 {
            assert!(net.next_event().is_some(), "episode in flight every cycle");
            net.tick();
        }
        assert!(net.all_released(0));
    }

    #[test]
    fn gline_budget_counts() {
        let net = ClusteredBarrierNetwork::new(Mesh2D::new(16, 16), cfg());
        // Four 8×8 clusters: 2×(8+1)=18 lines each; level-2 2×2: 2×(2+1)=6.
        assert_eq!(net.num_glines(), 4 * 18 + 6);
    }
}
