//! Statistics collected by the barrier network.

use sim_base::stats::Histogram;
use sim_base::Cycle;

/// Per-context statistics of a [`crate::BarrierNetwork`].
#[derive(Clone, Debug, Default)]
pub struct GlineStats {
    /// Barrier episodes completed (every core released).
    pub barriers_completed: u64,
    /// Distribution of barrier latency: cycles from the *last* arrival
    /// (`bar_reg` write) to the release, inclusive of the release cycle.
    /// The paper's ideal value is 4.
    pub latency: Histogram,
    /// Distribution of the whole episode: cycles from the *first* arrival
    /// to the release (includes the S2 busy-wait skew).
    pub episode: Histogram,
    /// Total 1-bit signals driven onto G-lines (energy proxy).
    pub signals: u64,
}

impl GlineStats {
    /// Records a completed barrier episode.
    ///
    /// Cycle arithmetic saturates: an arrival stamp at or past the release
    /// (possible only through a mis-wired caller, never the shipped
    /// networks) records as a degenerate 1-cycle episode instead of
    /// wrapping around `u64`.
    pub(crate) fn record(&mut self, first_arrival: Cycle, last_arrival: Cycle, release: Cycle) {
        self.barriers_completed += 1;
        // +1: release happens at the *end* of the release cycle, so a
        // last-arrival at cycle t with release during cycle t+3 is the
        // paper's "4 cycles".
        self.latency
            .record(release.saturating_sub(last_arrival).saturating_add(1));
        self.episode
            .record(release.saturating_sub(first_arrival).saturating_add(1));
    }

    /// Mean barrier latency in cycles (0 when no barrier completed).
    pub fn mean_latency(&self) -> f64 {
        self.latency.mean()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates() {
        let mut s = GlineStats::default();
        s.record(0, 0, 3);
        s.record(10, 12, 15);
        assert_eq!(s.barriers_completed, 2);
        assert_eq!(s.latency.min(), Some(4));
        assert_eq!(s.latency.max(), Some(4));
        assert_eq!(s.episode.max(), Some(6));
        assert_eq!(s.mean_latency(), 4.0);
    }

    #[test]
    fn mean_latency_is_zero_with_no_episodes() {
        let s = GlineStats::default();
        assert_eq!(s.barriers_completed, 0);
        assert_eq!(s.mean_latency(), 0.0);
        assert_eq!(s.latency.min(), None);
        assert_eq!(s.latency.max(), None);
    }

    #[test]
    fn single_arrival_episode_equals_latency() {
        // One core arriving alone: first and last arrival coincide, so the
        // episode distribution must match the latency distribution exactly.
        let mut s = GlineStats::default();
        s.record(7, 7, 10);
        assert_eq!(s.latency.min(), Some(4));
        assert_eq!(s.episode.min(), Some(4));
        assert_eq!(s.latency.sum(), s.episode.sum());
    }

    #[test]
    fn record_saturates_instead_of_wrapping() {
        // A release stamp before the arrival stamps (caller bug) must not
        // wrap around u64; it degenerates to the 1-cycle floor.
        let mut s = GlineStats::default();
        s.record(10, 10, 5);
        assert_eq!(s.latency.max(), Some(1));
        assert_eq!(s.episode.max(), Some(1));
        // And the +1 itself saturates at u64::MAX.
        s.record(0, 0, u64::MAX);
        assert_eq!(s.latency.max(), Some(u64::MAX));
    }
}
