//! The complete G-line barrier network for an `R × C` mesh.
//!
//! Wiring (Figure 1 of the paper), per barrier context:
//!
//! * each row has a **gather** G-line (slaves → row master) and a
//!   **release** G-line (row master → slaves);
//! * the first column has a **gather** G-line (row masters of rows ≥ 1,
//!   through their vertical-slave controllers → the vertical master at
//!   tile (0,0)) and a **release** G-line (vertical master → vertical
//!   slaves);
//! * total: `2 × (rows + 1)` G-lines per context.
//!
//! Cores interact with the network only through their `bar_reg` register:
//! writing a nonzero value announces arrival, and the register reads 0
//! once every core has arrived (the release resets it in hardware). This
//! matches the paper's programming idiom:
//!
//! ```text
//! mov 1, bar_reg        # arrival
//! loop: bnz bar_reg, loop   # wait
//! ```
//!
//! # Tracing
//!
//! The network is generic over a [`TraceSink`]; the default [`NullSink`]
//! monomorphizes every trace site away, so untraced simulation pays
//! nothing. A traced network (see [`BarrierNetwork::traced`]) emits the
//! full cycle-level story of Figure 2: G-line asserts and senses,
//! Figure-4 controller transitions, per-core arrivals/releases and the
//! episode-completion event.

use crate::controller::{MasterH, MasterV, SlaveH, SlaveV};
use crate::line::GLine;
use crate::stats::GlineStats;
use sim_base::config::GlineConfig;
use sim_base::trace::{CtrlKind, Event, GlineKind, NullSink, TraceSink, Tracer};
use sim_base::{Coord, CoreId, Cycle, Mesh2D};

/// Identifier of a barrier context (0-based). The baseline design of the
/// paper has a single context; the future-work extension multiplexes
/// several in space.
pub type CtxId = usize;

/// The pair of G-lines serving one row.
#[derive(Clone, Debug)]
struct RowNet {
    gather: GLine,
    release: GLine,
}

/// One independent barrier context: its own G-lines, controllers and
/// `bar_reg` bank.
#[derive(Clone, Debug)]
struct Context<S: TraceSink> {
    /// Index of this context within the network (for trace events).
    ctx_id: u32,
    /// Participation mask (the §5 "several barrier executions coexist"
    /// extension: a context may synchronize only a subset of cores).
    members: Vec<bool>,
    /// Rows containing at least one member (only their controllers run).
    row_active: Vec<bool>,
    num_members: u32,
    bar_reg: Vec<u64>,
    /// Horizontal slaves, indexed by core; `None` in column 0.
    slave_h: Vec<Option<SlaveH>>,
    /// One horizontal master per row.
    master_h: Vec<MasterH>,
    /// Vertical slaves for rows `1..R` (index `row - 1`).
    slave_v: Vec<SlaveV>,
    master_v: MasterV,
    rows: Vec<RowNet>,
    v_gather: GLine,
    v_release: GLine,
    // Episode bookkeeping for statistics.
    arrived: u32,
    outstanding: u32,
    first_arrival: Cycle,
    last_arrival: Cycle,
    stats: GlineStats,
    tracer: Tracer<S>,
    /// Memoized [`is_quiescent`](Self::is_quiescent), recomputed at
    /// every mutation point (end of tick, arrival, gated release) so it
    /// is always *exact* — `next_event` through the memo answers
    /// identically to the direct computation, and a quiescent tick can
    /// early-return (a provable state- and trace-no-op).
    quiescent: bool,
}

impl<S: TraceSink> Context<S> {
    fn new(
        mesh: Mesh2D,
        cfg: GlineConfig,
        root_gated: bool,
        members: Vec<bool>,
        ctx_id: u32,
        tracer: Tracer<S>,
    ) -> Context<S> {
        assert_eq!(
            members.len(),
            mesh.num_tiles(),
            "one membership bit per core"
        );
        let num_members = members.iter().filter(|&&m| m).count() as u32;
        assert!(
            num_members >= 1,
            "a barrier context needs at least one member"
        );
        let row_active: Vec<bool> = (0..mesh.rows)
            .map(|r| (0..mesh.cols).any(|c| members[mesh.id_of(Coord::new(r, c)).index()]))
            .collect();
        let member_slaves_in_row = |r: u16| -> u32 {
            (1..mesh.cols)
                .filter(|&c| members[mesh.id_of(Coord::new(r, c)).index()])
                .count() as u32
        };
        let (rows, cols) = (mesh.rows as u32, mesh.cols as u32);
        let budget = |transmitters: u32| -> u32 {
            if transmitters <= cfg.max_transmitters {
                cfg.max_transmitters.max(1)
            } else {
                assert!(
                    cfg.line_latency > 1,
                    "{}×{} mesh exceeds the {}-transmitter G-line budget; use \
                     ClusteredBarrierNetwork or line_latency > 1 (repeatered lines)",
                    mesh.rows,
                    mesh.cols,
                    cfg.max_transmitters
                );
                transmitters
            }
        };
        let row_nets = (0..rows)
            .map(|_| RowNet {
                gather: GLine::new(budget(cols.saturating_sub(1)), cfg.line_latency),
                release: GLine::new(budget(1), cfg.line_latency),
            })
            .collect();
        let num_cores = mesh.num_tiles();
        let active_upper_rows = (1..mesh.rows).filter(|&r| row_active[r as usize]).count() as u32;
        let mut ctx = Context {
            ctx_id,
            bar_reg: vec![0; num_cores],
            slave_h: mesh
                .coords()
                .map(|c| (c.col > 0 && members[mesh.id_of(c).index()]).then(SlaveH::new))
                .collect(),
            master_h: (0..mesh.rows)
                .map(|r| {
                    MasterH::new(
                        member_slaves_in_row(r),
                        members[mesh.id_of(Coord::new(r, 0)).index()],
                    )
                })
                .collect(),
            slave_v: (1..rows).map(|_| SlaveV::new()).collect(),
            master_v: MasterV::new(active_upper_rows, root_gated, row_active[0]),
            rows: row_nets,
            members,
            row_active,
            num_members,
            v_gather: GLine::new(budget(rows.saturating_sub(1)), cfg.line_latency),
            v_release: GLine::new(budget(1), cfg.line_latency),
            arrived: 0,
            outstanding: 0,
            first_arrival: 0,
            last_arrival: 0,
            stats: GlineStats::default(),
            tracer,
            quiescent: false,
        };
        ctx.quiescent = ctx.is_quiescent(mesh);
        ctx
    }

    fn write_bar_reg(&mut self, core: CoreId, value: u64, now: Cycle) {
        assert!(
            value != 0,
            "bar_reg arrival writes must be nonzero (paper §3.3)"
        );
        assert!(
            self.members[core.index()],
            "{core:?} is not a member of this barrier context"
        );
        let ctx = self.ctx_id;
        let slot = &mut self.bar_reg[core.index()];
        if *slot == 0 {
            if self.arrived == 0 {
                self.first_arrival = now;
            }
            self.arrived += 1;
            self.outstanding += 1;
            self.last_arrival = now;
            self.tracer.emit(now, || Event::BarrierArrive { ctx, core });
        }
        *slot = value;
    }

    fn tick(&mut self, mesh: Mesh2D, now: Cycle) {
        if self.quiescent {
            // A quiescent tick is a provable no-op: every G-line is
            // idle, every controller is stable under held inputs (so
            // latch/transmit/receive change nothing and emit nothing)
            // and the episode guard below cannot fire. The memo is
            // exact, so skipping the scan is bit- and trace-identical.
            debug_assert!(self.is_quiescent(mesh));
            return;
        }
        let nrows = mesh.rows as usize;
        let ctx = self.ctx_id;

        // --- latch: registered cross-controller commands become visible.
        for mh in &mut self.master_h {
            mh.latch();
        }
        self.master_v.latch();
        // Snapshot MasterH flags: values produced up to the end of the
        // previous cycle, as seen by co-located vertical controllers.
        let mh_flags: Vec<bool> = self.master_h.iter().map(MasterH::flag).collect();

        // --- transmit.
        for core in mesh.tiles() {
            let Coord { row, col } = mesh.coord_of(core);
            if col > 0 {
                if let Some(sh) = self.slave_h[core.index()].as_mut() {
                    let arrived = self.bar_reg[core.index()] != 0;
                    let before = sh.state();
                    if sh.transmit(arrived) {
                        let count = self.rows[row as usize].gather.assert_tx();
                        self.tracer.emit(now, || Event::GlineAssert {
                            ctx,
                            kind: GlineKind::RowGather,
                            row,
                            count,
                        });
                    }
                    let after = sh.state();
                    if S::ENABLED && after != before {
                        self.tracer.emit(now, || Event::CtrlTransition {
                            ctx,
                            core,
                            ctrl: CtrlKind::SlaveH,
                            from: before.label(),
                            to: after.label(),
                        });
                    }
                }
            }
        }
        for r in 0..nrows {
            if !self.row_active[r] {
                continue;
            }
            let before = self.master_h[r].state();
            if self.master_h[r].transmit() {
                let count = self.rows[r].release.assert_tx();
                self.tracer.emit(now, || Event::GlineAssert {
                    ctx,
                    kind: GlineKind::RowRelease,
                    row: r as u16,
                    count,
                });
                // The row master's own core is released by the master itself
                // (if it participates).
                let own = mesh.id_of(Coord::new(r as u16, 0));
                if self.members[own.index()] {
                    self.clear_bar_reg(own, now);
                }
            }
            let after = self.master_h[r].state();
            if S::ENABLED && after != before {
                let core = mesh.id_of(Coord::new(r as u16, 0));
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core,
                    ctrl: CtrlKind::MasterH,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }
        for (r, &mh_flag) in mh_flags.iter().enumerate().skip(1) {
            if !self.row_active[r] {
                continue;
            }
            let before = self.slave_v[r - 1].state();
            if self.slave_v[r - 1].transmit(mh_flag) {
                let count = self.v_gather.assert_tx();
                self.tracer.emit(now, || Event::GlineAssert {
                    ctx,
                    kind: GlineKind::ColGather,
                    row: 0,
                    count,
                });
            }
            let after = self.slave_v[r - 1].state();
            if S::ENABLED && after != before {
                let core = mesh.id_of(Coord::new(r as u16, 0));
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core,
                    ctrl: CtrlKind::SlaveV,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }
        {
            let before = self.master_v.state();
            if self.master_v.transmit() {
                let count = self.v_release.assert_tx();
                self.tracer.emit(now, || Event::GlineAssert {
                    ctx,
                    kind: GlineKind::ColRelease,
                    row: 0,
                    count,
                });
                // Row 0's master is co-located with the vertical master: it is
                // commanded through a register, not through a G-line.
                if self.row_active[0] {
                    self.master_h[0].command_release();
                }
            }
            let after = self.master_v.state();
            if S::ENABLED && after != before {
                let core = mesh.id_of(Coord::new(0, 0));
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core,
                    ctrl: CtrlKind::MasterV,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }

        // --- propagate.
        for rn in &mut self.rows {
            rn.gather.propagate();
            rn.release.propagate();
        }
        self.v_gather.propagate();
        self.v_release.propagate();

        // What each receiver observes this cycle, before the controllers
        // consume it.
        if S::ENABLED {
            for (r, rn) in self.rows.iter().enumerate() {
                let g = rn.gather.sensed();
                if g.value {
                    self.tracer.emit(now, || Event::GlineSense {
                        ctx,
                        kind: GlineKind::RowGather,
                        row: r as u16,
                        count: g.count,
                    });
                }
                let rel = rn.release.sensed();
                if rel.value {
                    self.tracer.emit(now, || Event::GlineSense {
                        ctx,
                        kind: GlineKind::RowRelease,
                        row: r as u16,
                        count: rel.count,
                    });
                }
            }
            let vg = self.v_gather.sensed();
            if vg.value {
                self.tracer.emit(now, || Event::GlineSense {
                    ctx,
                    kind: GlineKind::ColGather,
                    row: 0,
                    count: vg.count,
                });
            }
            let vr = self.v_release.sensed();
            if vr.value {
                self.tracer.emit(now, || Event::GlineSense {
                    ctx,
                    kind: GlineKind::ColRelease,
                    row: 0,
                    count: vr.count,
                });
            }
        }

        // --- receive.
        for core in mesh.tiles() {
            let Coord { row, col } = mesh.coord_of(core);
            if col > 0 {
                let sensed = self.rows[row as usize].release.sensed();
                if let Some(sh) = self.slave_h[core.index()].as_mut() {
                    let before = sh.state();
                    let clear = sh.receive(sensed);
                    let after = sh.state();
                    if clear {
                        self.clear_bar_reg(core, now);
                    }
                    if S::ENABLED && after != before {
                        self.tracer.emit(now, || Event::CtrlTransition {
                            ctx,
                            core,
                            ctrl: CtrlKind::SlaveH,
                            from: before.label(),
                            to: after.label(),
                        });
                    }
                }
            }
        }
        for r in 0..nrows {
            if !self.row_active[r] {
                continue;
            }
            let own = mesh.id_of(Coord::new(r as u16, 0));
            let arrived = self.members[own.index()] && self.bar_reg[own.index()] != 0;
            let sensed = self.rows[r].gather.sensed();
            let before = self.master_h[r].state();
            self.master_h[r].receive(sensed, arrived);
            let after = self.master_h[r].state();
            if S::ENABLED && after != before {
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core: own,
                    ctrl: CtrlKind::MasterH,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }
        for r in 1..nrows {
            if !self.row_active[r] {
                continue;
            }
            let before = self.slave_v[r - 1].state();
            let fire = self.slave_v[r - 1].receive(self.v_release.sensed());
            let after = self.slave_v[r - 1].state();
            if fire {
                self.master_h[r].command_release();
            }
            if S::ENABLED && after != before {
                let core = mesh.id_of(Coord::new(r as u16, 0));
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core,
                    ctrl: CtrlKind::SlaveV,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }
        {
            let before = self.master_v.state();
            self.master_v.receive(self.v_gather.sensed(), mh_flags[0]);
            let after = self.master_v.state();
            if S::ENABLED && after != before {
                let core = mesh.id_of(Coord::new(0, 0));
                self.tracer.emit(now, || Event::CtrlTransition {
                    ctx,
                    core,
                    ctrl: CtrlKind::MasterV,
                    from: before.label(),
                    to: after.label(),
                });
            }
        }

        // --- episode accounting.
        if self.arrived == self.num_members && self.outstanding == 0 {
            let latency = now.saturating_sub(self.last_arrival).saturating_add(1);
            self.tracer
                .emit(now, || Event::BarrierComplete { ctx, latency });
            self.stats
                .record(self.first_arrival, self.last_arrival, now);
            self.arrived = 0;
        }

        self.quiescent = self.is_quiescent(mesh);
    }

    /// True when a tick of this context is a provable no-op: every
    /// G-line is electrically quiet and every controller is stable
    /// under its current (held) inputs. This is exactly the state of a
    /// partially-arrived barrier between events — waiters parked in
    /// `Waiting`, masters mid-count — where nothing moves until another
    /// core writes its `bar_reg` (or a gated root is triggered).
    fn is_quiescent(&self, mesh: Mesh2D) -> bool {
        let lines_idle = self
            .rows
            .iter()
            .all(|rn| rn.gather.is_idle() && rn.release.is_idle())
            && self.v_gather.is_idle()
            && self.v_release.is_idle();
        if !lines_idle {
            return false;
        }
        // Episode accounting resets in the same tick it fires, so it can
        // never be pending between ticks; keep the guard anyway.
        if self.arrived == self.num_members && self.outstanding == 0 {
            return false;
        }
        for core in mesh.tiles() {
            if let Some(sh) = &self.slave_h[core.index()] {
                if !sh.is_stable(self.bar_reg[core.index()] != 0) {
                    return false;
                }
            }
        }
        for r in 0..mesh.rows as usize {
            if !self.row_active[r] {
                continue;
            }
            let own = mesh.id_of(Coord::new(r as u16, 0));
            let arrived = self.members[own.index()] && self.bar_reg[own.index()] != 0;
            if !self.master_h[r].is_stable(arrived) {
                return false;
            }
            if r >= 1 && !self.slave_v[r - 1].is_stable(self.master_h[r].flag()) {
                return false;
            }
        }
        self.master_v.is_stable(self.master_h[0].flag())
    }

    fn clear_bar_reg(&mut self, core: CoreId, now: Cycle) {
        if self.bar_reg[core.index()] != 0 {
            self.bar_reg[core.index()] = 0;
            debug_assert!(self.outstanding > 0);
            self.outstanding -= 1;
            let ctx = self.ctx_id;
            self.tracer
                .emit(now, || Event::BarrierRelease { ctx, core });
        }
    }

    fn energy(&self) -> u64 {
        self.rows
            .iter()
            .map(|r| r.gather.energy_signals() + r.release.energy_signals())
            .sum::<u64>()
            + self.v_gather.energy_signals()
            + self.v_release.energy_signals()
    }
}

/// A G-line barrier network for a mesh of cores, with one or more
/// independent barrier contexts.
///
/// Integration contract with a cycle-level simulator:
///
/// 1. during a cycle, cores may call [`write_bar_reg`](Self::write_bar_reg)
///    (arrival) and read [`bar_reg`](Self::bar_reg) (spin);
/// 2. at the end of every cycle the simulator calls [`tick`](Self::tick)
///    exactly once.
///
/// The `S` parameter selects the trace sink; the default [`NullSink`]
/// compiles all tracing away.
#[derive(Clone, Debug)]
pub struct BarrierNetwork<S: TraceSink = NullSink> {
    mesh: Mesh2D,
    cfg: GlineConfig,
    contexts: Vec<Context<S>>,
    now: Cycle,
    tracer: Tracer<S>,
}

impl BarrierNetwork {
    /// Builds the network. Panics if the mesh exceeds the G-line
    /// transmitter budget at 1-cycle latency (8×8 at the default budget) — use
    /// [`crate::ClusteredBarrierNetwork`] or a higher `line_latency`.
    pub fn new(mesh: Mesh2D, cfg: GlineConfig) -> BarrierNetwork {
        BarrierNetwork::with_gated_root(mesh, cfg, false)
    }

    /// Like [`BarrierNetwork::new`], but the release is gated at the root:
    /// once all cores arrive the network parks in *root-ready* and waits
    /// for [`trigger_release`](Self::trigger_release). Building block for
    /// hierarchical composition.
    pub fn with_gated_root(mesh: Mesh2D, cfg: GlineConfig, gated: bool) -> BarrierNetwork {
        BarrierNetwork::traced_with_gated_root(mesh, cfg, gated, Tracer::default())
    }

    /// Builds the network with an explicit participation mask per
    /// context (the paper's §5 coexisting-barriers extension: each
    /// context synchronizes only its member cores). `masks.len()` must
    /// equal `cfg.contexts`; every mask needs at least one member.
    pub fn with_members(mesh: Mesh2D, cfg: GlineConfig, masks: Vec<Vec<bool>>) -> BarrierNetwork {
        BarrierNetwork::traced_with_members(mesh, cfg, masks, Tracer::default())
    }
}

impl<S: TraceSink> BarrierNetwork<S> {
    /// Builds a traced network: every G-line assert/sense, controller
    /// transition and barrier event is emitted into `tracer`.
    pub fn traced(mesh: Mesh2D, cfg: GlineConfig, tracer: Tracer<S>) -> BarrierNetwork<S> {
        BarrierNetwork::traced_with_gated_root(mesh, cfg, false, tracer)
    }

    /// [`BarrierNetwork::with_gated_root`] with an explicit tracer.
    pub fn traced_with_gated_root(
        mesh: Mesh2D,
        cfg: GlineConfig,
        gated: bool,
        tracer: Tracer<S>,
    ) -> BarrierNetwork<S> {
        assert!(cfg.contexts >= 1, "at least one barrier context");
        let contexts = (0..cfg.contexts)
            .map(|i| {
                Context::new(
                    mesh,
                    cfg,
                    gated,
                    vec![true; mesh.num_tiles()],
                    i,
                    tracer.clone(),
                )
            })
            .collect();
        BarrierNetwork {
            mesh,
            cfg,
            contexts,
            now: 0,
            tracer,
        }
    }

    /// [`BarrierNetwork::with_members`] with an explicit tracer.
    pub fn traced_with_members(
        mesh: Mesh2D,
        cfg: GlineConfig,
        masks: Vec<Vec<bool>>,
        tracer: Tracer<S>,
    ) -> BarrierNetwork<S> {
        assert_eq!(masks.len(), cfg.contexts as usize, "one mask per context");
        let contexts = masks
            .into_iter()
            .enumerate()
            .map(|(i, m)| Context::new(mesh, cfg, false, m, i as u32, tracer.clone()))
            .collect();
        BarrierNetwork {
            mesh,
            cfg,
            contexts,
            now: 0,
            tracer,
        }
    }

    /// The tracer shared by every context of this network.
    pub fn tracer(&self) -> &Tracer<S> {
        &self.tracer
    }

    /// The participation mask of a context.
    pub fn members(&self, ctx: CtxId) -> &[bool] {
        &self.contexts[ctx].members
    }

    /// Mesh this network spans.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Configuration used to build the network.
    pub fn config(&self) -> GlineConfig {
        self.cfg
    }

    /// Number of independent barrier contexts.
    pub fn num_contexts(&self) -> usize {
        self.contexts.len()
    }

    /// Total G-lines in the network: `2 × (rows + 1)` per context.
    pub fn num_glines(&self) -> u32 {
        self.contexts.len() as u32 * 2 * (self.mesh.rows as u32 + 1)
    }

    /// The current cycle (number of [`tick`](Self::tick)s performed).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Core `core` announces arrival at barrier context `ctx` by writing a
    /// nonzero value into its `bar_reg`.
    pub fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        let now = self.now;
        let c = &mut self.contexts[ctx];
        c.write_bar_reg(core, value, now);
        c.quiescent = c.is_quiescent(self.mesh);
    }

    /// Reads core `core`'s `bar_reg` for context `ctx`. Cores spin on this
    /// until it returns 0.
    pub fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        self.contexts[ctx].bar_reg[core.index()]
    }

    /// True iff every core has a cleared `bar_reg` in context `ctx`.
    /// O(1): the episode accounting counts set registers exactly (a
    /// register is set only through [`write_bar_reg`](Self::write_bar_reg)
    /// and cleared only through the release wave, both of which maintain
    /// the counter).
    pub fn all_released(&self, ctx: CtxId) -> bool {
        self.contexts[ctx].outstanding == 0
    }

    /// Number of currently set `bar_reg`s in context `ctx` (cores that
    /// arrived and are not yet released).
    pub fn outstanding(&self, ctx: CtxId) -> u32 {
        self.contexts[ctx].outstanding
    }

    /// True iff a gated-root context has gathered every core and is
    /// waiting for [`trigger_release`](Self::trigger_release).
    pub fn root_ready(&self, ctx: CtxId) -> bool {
        self.contexts[ctx].master_v.root_ready()
    }

    /// Starts the release wave of a gated-root context (effective next
    /// cycle). Panics if the context is not root-ready.
    pub fn trigger_release(&mut self, ctx: CtxId) {
        let now = self.now;
        let root = self.mesh.id_of(Coord::new(0, 0));
        let c = &mut self.contexts[ctx];
        let before = c.master_v.state();
        c.master_v.trigger_release();
        let after = c.master_v.state();
        if S::ENABLED && after != before {
            let ctx_id = c.ctx_id;
            c.tracer.emit(now, || Event::CtrlTransition {
                ctx: ctx_id,
                core: root,
                ctrl: CtrlKind::MasterV,
                from: before.label(),
                to: after.label(),
            });
        }
        c.quiescent = c.is_quiescent(self.mesh);
    }

    /// Advances the network by one clock cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        for ctx in &mut self.contexts {
            ctx.tick(self.mesh, now);
        }
        self.now += 1;
    }

    /// Statistics of context `ctx` (energy refreshed on read).
    pub fn stats(&self, ctx: CtxId) -> GlineStats {
        let c = &self.contexts[ctx];
        let mut s = c.stats.clone();
        s.signals = c.energy();
        s
    }

    /// Earliest cycle at which the network can change state on its own.
    ///
    /// `None` means every context is quiescent: all G-lines are idle and
    /// every controller is stable under its held inputs, so ticking is a
    /// no-op until some core writes a `bar_reg` (or triggers a gated
    /// release). Otherwise a barrier episode is in flight and every cycle
    /// matters, so the answer is the very next one.
    pub fn next_event(&self) -> Option<Cycle> {
        if self.contexts.iter().all(|c| c.quiescent) {
            None
        } else {
            Some(self.now + 1)
        }
    }

    /// Jumps the clock to cycle `t` without ticking. Only legal while
    /// [`next_event`](Self::next_event) is `None` — every skipped tick is
    /// then provably a state no-op, so all observable state (controller
    /// states, `bar_reg`s, stats, energy) is bit-identical to having
    /// ticked `t - now` times.
    pub fn skip_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now, "cannot skip backwards");
        debug_assert!(
            self.next_event().is_none(),
            "barrier-network skip while an episode is in flight"
        );
        self.now = t;
    }
}

/// Common interface of barrier hardware: the flat [`BarrierNetwork`] and
/// the two-level [`crate::ClusteredBarrierNetwork`] both implement it, so
/// simulators and benchmarks can swap one for the other.
pub trait BarrierHw {
    /// Number of cores the hardware synchronizes.
    fn num_cores(&self) -> usize;
    /// Core announces arrival at context `ctx` (nonzero `value`).
    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64);
    /// Reads a core's `bar_reg` for context `ctx` (0 = released).
    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64;
    /// True iff every core's `bar_reg` is clear in context `ctx`.
    fn all_released(&self, ctx: CtxId) -> bool;
    /// Advances one clock cycle.
    fn tick(&mut self);
    /// Cycles ticked so far.
    fn now(&self) -> Cycle;
    /// Number of independent barrier contexts this hardware offers.
    fn num_contexts(&self) -> usize;
    /// Statistics of one context.
    fn stats(&self, ctx: CtxId) -> GlineStats;

    /// Earliest future cycle at which this hardware can change state
    /// without further external input, or `None` if it is quiescent and
    /// will stay frozen until a `write_bar_reg`. The conservative default
    /// — "something may happen next cycle" — is always correct; it simply
    /// never lets a simulator skip over this hardware.
    fn next_event(&self) -> Option<Cycle> {
        Some(self.now() + 1)
    }

    /// Advances the clock to cycle `t`. Implementations whose
    /// [`next_event`](Self::next_event) reports quiescence may jump
    /// directly; the default just ticks, which is always equivalent.
    fn skip_to(&mut self, t: Cycle) {
        while self.now() < t {
            self.tick();
        }
    }

    /// Minimum number of cycles between a `write_bar_reg` on quiescent
    /// hardware and the earliest cycle at which *another* core can
    /// observe any effect of it (a changed `bar_reg` read, or a
    /// release). An epoch-batched simulator uses this as a safe
    /// free-run bound while the hardware is quiescent: a window of at
    /// most this many cycles cannot let one shard's arrival become
    /// visible to another shard mid-window. The conservative default is
    /// 1 (visible next cycle); implementations with a provable
    /// propagation floor override it.
    fn min_notify_latency(&self) -> u64 {
        1
    }

    /// Lower bound on the number of cycles before *any* core's set
    /// `bar_reg` can clear, as of now. An epoch-batched simulator uses
    /// this to size its gather window: arrivals *within* the window are
    /// fine (they only set registers), but a clear must not land
    /// mid-window. While a context still misses arrivals, a release is
    /// at least the hardware's propagation floor away even if the last
    /// arrival happens immediately; once every member has arrived the
    /// release wave may already be in flight, so the bound collapses to
    /// 1. The conservative default is 1.
    fn release_bound(&self) -> u64 {
        1
    }

    /// Convenience driver for tests and benchmarks: runs one complete
    /// barrier on context 0 where core `i` arrives at `arrivals[i]`
    /// (relative to the current cycle), and returns the cycle count from
    /// the last arrival to the release (inclusive) — the paper's barrier
    /// latency, ideally 4 for the flat network.
    ///
    /// Panics if the barrier does not complete within a generous deadline
    /// (wiring-bug guard).
    fn run_single_barrier(&mut self, arrivals: &[Cycle]) -> u64 {
        assert_eq!(
            arrivals.len(),
            self.num_cores(),
            "one arrival time per core"
        );
        let last = *arrivals.iter().max().expect("at least one core");
        let base = self.now();
        let deadline = base + last + 1024;
        loop {
            for (i, &a) in arrivals.iter().enumerate() {
                if base + a == self.now() && self.bar_reg(CoreId::from(i), 0) == 0 {
                    self.write_bar_reg(CoreId::from(i), 0, 1);
                }
            }
            self.tick();
            if self.now() > base + last && self.all_released(0) {
                return self.now() - (base + last);
            }
            assert!(
                self.now() < deadline,
                "barrier did not complete before the deadline"
            );
        }
    }
}

impl<S: TraceSink> BarrierHw for BarrierNetwork<S> {
    fn num_cores(&self) -> usize {
        self.mesh.num_tiles()
    }
    fn num_contexts(&self) -> usize {
        BarrierNetwork::num_contexts(self)
    }
    fn stats(&self, ctx: CtxId) -> GlineStats {
        BarrierNetwork::stats(self, ctx)
    }
    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        BarrierNetwork::write_bar_reg(self, core, ctx, value);
    }
    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        BarrierNetwork::bar_reg(self, core, ctx)
    }
    fn all_released(&self, ctx: CtxId) -> bool {
        BarrierNetwork::all_released(self, ctx)
    }
    fn tick(&mut self) {
        BarrierNetwork::tick(self);
    }
    fn now(&self) -> Cycle {
        BarrierNetwork::now(self)
    }
    fn next_event(&self) -> Option<Cycle> {
        BarrierNetwork::next_event(self)
    }
    fn skip_to(&mut self, t: Cycle) {
        BarrierNetwork::skip_to(self, t);
    }
    fn min_notify_latency(&self) -> u64 {
        // An arrival on the flat network takes one cycle on the column
        // G-line, one in the row controller, one on the row G-line and
        // one in the global controller before the release can even
        // begin to propagate back — the paper's 4-cycle barrier floor
        // (`four_cycles_on_every_mesh_up_to_8x8`). No other core can
        // observe a state change sooner.
        4
    }
    fn release_bound(&self) -> u64 {
        // Per context: once every member has arrived the release wave
        // may complete on any cycle (1); before that, the wave cannot
        // even start until the last arrival, and then needs the full
        // 4-cycle propagation floor.
        self.contexts
            .iter()
            .map(|c| {
                if c.arrived >= c.num_members {
                    1
                } else {
                    BarrierHw::min_notify_latency(self)
                }
            })
            .min()
            .unwrap_or(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::trace::RingSink;

    fn cfg() -> GlineConfig {
        GlineConfig::default()
    }

    fn all_zero(n: usize) -> Vec<Cycle> {
        vec![0; n]
    }

    #[test]
    fn four_cycles_on_2x2_matches_figure_2() {
        let mut net = BarrierNetwork::new(Mesh2D::new(2, 2), cfg());
        assert_eq!(net.run_single_barrier(&all_zero(4)), 4);
    }

    #[test]
    fn fresh_network_is_quiescent_and_skippable() {
        let mut net = BarrierNetwork::new(Mesh2D::new(4, 8), cfg());
        assert_eq!(net.next_event(), None);
        net.skip_to(10_000);
        assert_eq!(net.now(), 10_000);
        // A barrier run after the jump behaves exactly like one from cold.
        assert_eq!(net.run_single_barrier(&all_zero(32)), 4);
        // The release wave leaves the controllers draining for a few
        // cycles; once that settles the network parks again.
        for _ in 0..16 {
            net.tick();
        }
        assert_eq!(net.next_event(), None, "released network parks again");
    }

    #[test]
    fn partial_arrival_settles_back_to_quiescence() {
        let mut net = BarrierNetwork::new(Mesh2D::new(2, 2), cfg());
        net.write_bar_reg(CoreId::from(1usize), 0, 1);
        assert_eq!(
            net.next_event(),
            Some(net.now() + 1),
            "an arrival puts the network in motion"
        );
        for _ in 0..16 {
            net.tick();
        }
        assert_eq!(net.next_event(), None, "partially-arrived barrier parks");
        // Skipping while parked must not perturb the eventual barrier.
        net.skip_to(net.now() + 1_000_000);
        for i in [0usize, 2, 3] {
            net.write_bar_reg(CoreId::from(i), 0, 1);
        }
        let start = net.now();
        while !net.all_released(0) {
            net.tick();
            assert!(net.now() - start < 64, "barrier must still complete");
        }
        assert_eq!(net.stats(0).barriers_completed, 1);
    }

    #[test]
    fn four_cycles_on_paper_32_core_mesh() {
        let mut net = BarrierNetwork::new(Mesh2D::new(4, 8), cfg());
        assert_eq!(net.run_single_barrier(&all_zero(32)), 4);
    }

    #[test]
    fn four_cycles_on_every_mesh_up_to_8x8() {
        for r in 1..=8u16 {
            for c in 1..=8u16 {
                let mesh = Mesh2D::new(r, c);
                let mut net = BarrierNetwork::new(mesh, cfg());
                assert_eq!(
                    net.run_single_barrier(&all_zero(mesh.num_tiles())),
                    4,
                    "latency wrong on {r}×{c}"
                );
            }
        }
    }

    #[test]
    fn staggered_arrivals_release_after_last() {
        let mesh = Mesh2D::new(2, 2);
        let mut net = BarrierNetwork::new(mesh, cfg());
        // Core 3 is 100 cycles late.
        let lat = net.run_single_barrier(&[0, 5, 2, 100]);
        assert_eq!(lat, 4);
        let s = net.stats(0);
        assert_eq!(s.barriers_completed, 1);
        assert_eq!(s.episode.max(), Some(104)); // first at 0, release at 103
    }

    #[test]
    fn no_core_released_before_all_arrive() {
        let mesh = Mesh2D::new(2, 2);
        let mut net = BarrierNetwork::new(mesh, cfg());
        for i in 0..3 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        for _ in 0..50 {
            net.tick();
            for i in 0..3 {
                assert_ne!(net.bar_reg(CoreId(i), 0), 0, "core {i} escaped early");
            }
        }
        net.write_bar_reg(CoreId(3), 0, 1);
        for _ in 0..4 {
            net.tick();
        }
        assert!(net.all_released(0));
    }

    #[test]
    fn back_to_back_barriers() {
        let mesh = Mesh2D::new(2, 4);
        let n = mesh.num_tiles();
        let mut net = BarrierNetwork::new(mesh, cfg());
        for episode in 0..10 {
            assert_eq!(net.run_single_barrier(&all_zero(n)), 4, "episode {episode}");
        }
        assert_eq!(net.stats(0).barriers_completed, 10);
        assert_eq!(net.stats(0).mean_latency(), 4.0);
    }

    #[test]
    fn contexts_are_independent() {
        let mesh = Mesh2D::new(2, 2);
        let mut gcfg = cfg();
        gcfg.contexts = 2;
        let mut net = BarrierNetwork::new(mesh, gcfg);
        // All cores arrive in ctx 0; only some in ctx 1.
        for i in 0..4 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        net.write_bar_reg(CoreId(0), 1, 1);
        for _ in 0..8 {
            net.tick();
        }
        assert!(net.all_released(0), "ctx 0 must complete");
        assert_ne!(net.bar_reg(CoreId(0), 1), 0, "ctx 1 must still hold core 0");
        // Finish ctx 1.
        for i in 1..4 {
            net.write_bar_reg(CoreId(i), 1, 1);
        }
        for _ in 0..4 {
            net.tick();
        }
        assert!(net.all_released(1));
    }

    #[test]
    fn masked_context_synchronizes_only_members() {
        // 2×4 mesh: context 0 = left half, context 1 = right half.
        let mesh = Mesh2D::new(2, 4);
        let gcfg = GlineConfig {
            contexts: 2,
            ..cfg()
        };
        let left: Vec<bool> = mesh.coords().map(|c| c.col < 2).collect();
        let right: Vec<bool> = mesh.coords().map(|c| c.col >= 2).collect();
        let mut net = BarrierNetwork::with_members(mesh, gcfg, vec![left.clone(), right]);
        // All left members arrive in ctx 0; ctx 1 untouched.
        for (i, &m) in left.iter().enumerate() {
            if m {
                net.write_bar_reg(CoreId::from(i), 0, 1);
            }
        }
        for _ in 0..4 {
            net.tick();
        }
        assert!(
            net.all_released(0),
            "left-half barrier must complete in 4 cycles"
        );
        assert_eq!(net.stats(0).barriers_completed, 1);
        assert_eq!(net.stats(0).latency.max(), Some(4));
        assert_eq!(net.stats(1).barriers_completed, 0);
    }

    #[test]
    fn masked_context_with_empty_rows() {
        // Members only in the bottom row: row 0 is inactive, the
        // vertical master must complete without it.
        let mesh = Mesh2D::new(3, 3);
        let gcfg = GlineConfig {
            contexts: 1,
            ..cfg()
        };
        let mask: Vec<bool> = mesh.coords().map(|c| c.row == 2).collect();
        let mut net = BarrierNetwork::with_members(mesh, gcfg, vec![mask.clone()]);
        for (i, &m) in mask.iter().enumerate() {
            if m {
                net.write_bar_reg(CoreId::from(i), 0, 1);
            }
        }
        for _ in 0..4 {
            net.tick();
        }
        assert!(net.all_released(0));
        assert_eq!(net.stats(0).barriers_completed, 1);
    }

    #[test]
    fn masked_single_member_context() {
        let mesh = Mesh2D::new(2, 2);
        let mut mask = vec![false; 4];
        mask[3] = true;
        let mut net = BarrierNetwork::with_members(mesh, cfg(), vec![mask]);
        net.write_bar_reg(CoreId(3), 0, 1);
        for _ in 0..4 {
            net.tick();
        }
        assert!(net.all_released(0));
    }

    #[test]
    #[should_panic(expected = "not a member")]
    fn non_member_arrival_rejected() {
        let mesh = Mesh2D::new(2, 2);
        let mut mask = vec![true; 4];
        mask[2] = false;
        let mut net = BarrierNetwork::with_members(mesh, cfg(), vec![mask]);
        net.write_bar_reg(CoreId(2), 0, 1);
    }

    #[test]
    fn masked_back_to_back_episodes() {
        let mesh = Mesh2D::new(2, 4);
        let mask: Vec<bool> = mesh.coords().map(|c| (c.row + c.col) % 2 == 0).collect();
        let mut net = BarrierNetwork::with_members(mesh, cfg(), vec![mask.clone()]);
        for _ in 0..5 {
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    net.write_bar_reg(CoreId::from(i), 0, 1);
                }
            }
            let mut guard = 0;
            while !net.all_released(0) {
                net.tick();
                guard += 1;
                assert!(guard < 10);
            }
        }
        assert_eq!(net.stats(0).barriers_completed, 5);
        assert_eq!(net.stats(0).mean_latency(), 4.0);
    }

    #[test]
    fn gline_count_formula() {
        let net = BarrierNetwork::new(Mesh2D::new(4, 4), cfg());
        assert_eq!(net.num_glines(), 10); // paper: 10 for a 16-core CMP
        let net = BarrierNetwork::new(Mesh2D::new(4, 8), cfg());
        assert_eq!(net.num_glines(), 10);
    }

    #[test]
    #[should_panic(expected = "G-line budget")]
    fn oversized_mesh_rejected_at_unit_latency() {
        let _ = BarrierNetwork::new(Mesh2D::new(9, 9), cfg());
    }

    #[test]
    #[should_panic(expected = "G-line budget")]
    fn strict_paper_budget_rejects_4x8() {
        // With the paper's literal 6-transmitter budget, its own 32-core
        // 4×8 evaluation mesh does not fit (see GlineConfig docs).
        let gcfg = GlineConfig {
            max_transmitters: 6,
            ..cfg()
        };
        let _ = BarrierNetwork::new(Mesh2D::new(4, 8), gcfg);
    }

    #[test]
    fn oversized_mesh_allowed_with_slow_lines() {
        let mesh = Mesh2D::new(10, 10);
        let gcfg = GlineConfig {
            line_latency: 2,
            ..cfg()
        };
        let mut net = BarrierNetwork::new(mesh, gcfg);
        let lat = net.run_single_barrier(&all_zero(100));
        // Two-cycle lines double each of the 4 line traversals.
        assert_eq!(lat, 8);
    }

    #[test]
    fn gated_root_holds_until_triggered() {
        let mesh = Mesh2D::new(2, 2);
        let mut net = BarrierNetwork::with_gated_root(mesh, cfg(), true);
        for i in 0..4 {
            net.write_bar_reg(CoreId(i), 0, 1);
        }
        for _ in 0..20 {
            net.tick();
        }
        assert!(net.root_ready(0));
        assert!(!net.all_released(0), "gated root must hold the release");
        net.trigger_release(0);
        for _ in 0..3 {
            net.tick();
        }
        assert!(net.all_released(0));
    }

    #[test]
    fn energy_counts_signals() {
        let mesh = Mesh2D::new(2, 2);
        let mut net = BarrierNetwork::new(mesh, cfg());
        net.run_single_barrier(&all_zero(4));
        // 2 SlaveH pulses + 1 SlaveV pulse + 1 MglineV + 2 MglineH = 6.
        assert_eq!(net.stats(0).signals, 6);
    }

    #[test]
    fn single_core_mesh_still_synchronizes() {
        let mut net = BarrierNetwork::new(Mesh2D::new(1, 1), cfg());
        assert_eq!(net.run_single_barrier(&[0]), 4);
    }

    #[test]
    fn traced_network_reports_figure_2_story() {
        // All four cores of a 2×2 arrive at cycle 0; the trace must tell
        // the complete Figure-2 story: 4 arrivals, the gather and release
        // waves on the G-lines, 4 releases, completion at latency 4.
        let tracer = Tracer::new(RingSink::new(256));
        let mut net = BarrierNetwork::traced(Mesh2D::new(2, 2), cfg(), tracer.clone());
        assert_eq!(net.run_single_barrier(&all_zero(4)), 4);
        let events: Vec<(Cycle, Event)> = tracer.with_sink(|s| s.events().cloned().collect());
        let count = |pred: &dyn Fn(&Event) -> bool| events.iter().filter(|(_, e)| pred(e)).count();
        assert_eq!(count(&|e| matches!(e, Event::BarrierArrive { .. })), 4);
        assert_eq!(count(&|e| matches!(e, Event::BarrierRelease { .. })), 4);
        assert_eq!(
            count(&|e| matches!(
                e,
                Event::GlineAssert {
                    kind: GlineKind::RowGather,
                    ..
                }
            )),
            2,
            "one slave per row pulses the gather line"
        );
        assert_eq!(
            count(&|e| matches!(
                e,
                Event::GlineAssert {
                    kind: GlineKind::ColRelease,
                    ..
                }
            )),
            1
        );
        let complete: Vec<&(Cycle, Event)> = events
            .iter()
            .filter(|(_, e)| matches!(e, Event::BarrierComplete { .. }))
            .collect();
        assert_eq!(complete.len(), 1);
        assert!(matches!(
            complete[0].1,
            Event::BarrierComplete { latency: 4, .. }
        ));
        // Cycle stamps are monotonic.
        assert!(events.windows(2).all(|w| w[0].0 <= w[1].0));
    }

    #[test]
    fn traced_and_untraced_networks_agree() {
        // The tracer must be observation-only: identical latency, stats
        // and energy with and without it.
        let mesh = Mesh2D::new(2, 4);
        let arrivals: Vec<Cycle> = (0..mesh.num_tiles() as u64).map(|i| i * 3 % 7).collect();
        let mut plain = BarrierNetwork::new(mesh, cfg());
        let mut traced = BarrierNetwork::traced(mesh, cfg(), Tracer::new(RingSink::new(64)));
        assert_eq!(
            plain.run_single_barrier(&arrivals),
            traced.run_single_barrier(&arrivals)
        );
        let (ps, ts) = (plain.stats(0), traced.stats(0));
        assert_eq!(ps.barriers_completed, ts.barriers_completed);
        assert_eq!(ps.latency.sum(), ts.latency.sum());
        assert_eq!(ps.signals, ts.signals);
    }
}
