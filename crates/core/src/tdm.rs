//! Time-multiplexed barrier contexts over a *single* physical G-line set
//! — the other half of the paper's §5 future work ("extend the use of
//! our approach … by multiplexing in space and time, in which several
//! barrier executions can coexist").
//!
//! Space multiplexing ([`crate::BarrierNetwork`] with `contexts > 1`)
//! replicates the wires per context: `V` barriers cost
//! `V × 2 × (rows + 1)` G-lines but each keeps the 4-cycle latency.
//! **Time multiplexing** keeps one physical set of wires and gives each
//! logical barrier every `V`-th cycle: `2 × (rows + 1)` G-lines total,
//! at the price of a worst-case latency of about `4 × V` cycles (each of
//! the four wave steps must wait for its slot).
//!
//! The model freezes a logical barrier's controllers outside its slot
//! (their state is registered; the wires simply aren't theirs to drive),
//! which is exactly how a TDM arbiter would behave in hardware.

use crate::network::{BarrierHw, BarrierNetwork, CtxId};
use crate::stats::GlineStats;
use sim_base::config::GlineConfig;
use sim_base::{CoreId, Cycle, Mesh2D};

/// `V` logical barriers sharing one physical G-line network by TDM.
#[derive(Clone, Debug)]
pub struct TdmBarrierNetwork {
    mesh: Mesh2D,
    /// One *logical* network per slot. Each is built with a single
    /// context and is only ticked during its slot, which freezes its
    /// controllers in between — wire occupancy is therefore exclusive.
    slots: Vec<BarrierNetwork>,
    now: Cycle,
    // Episode bookkeeping per logical barrier, in *real* cycles (the
    // inner networks count slot-cycles).
    arrived: Vec<u32>,
    outstanding: Vec<u32>,
    first_arrival: Vec<Cycle>,
    last_arrival: Vec<Cycle>,
    stats: Vec<GlineStats>,
}

impl TdmBarrierNetwork {
    /// Builds a TDM network with `logical` barrier contexts (≥ 1) over
    /// the physical wires described by `cfg` (its `contexts` field is
    /// ignored — that is the space-multiplexing knob).
    pub fn new(mesh: Mesh2D, cfg: GlineConfig, logical: usize) -> TdmBarrierNetwork {
        assert!(logical >= 1, "at least one logical barrier");
        let single = GlineConfig { contexts: 1, ..cfg };
        TdmBarrierNetwork {
            mesh,
            slots: (0..logical)
                .map(|_| BarrierNetwork::new(mesh, single))
                .collect(),
            now: 0,
            arrived: vec![0; logical],
            outstanding: vec![0; logical],
            first_arrival: vec![0; logical],
            last_arrival: vec![0; logical],
            stats: vec![GlineStats::default(); logical],
        }
    }

    /// Number of logical barriers sharing the wires.
    pub fn logical_barriers(&self) -> usize {
        self.slots.len()
    }

    /// Physical G-lines used — independent of the logical count (the
    /// whole point of TDM).
    pub fn num_glines(&self) -> u32 {
        2 * (self.mesh.rows as u32 + 1)
    }

    /// Statistics of logical barrier `ctx` (latencies in real cycles).
    pub fn stats(&self, ctx: CtxId) -> GlineStats {
        let mut s = self.stats[ctx].clone();
        s.signals = self.slots[ctx].stats(0).signals;
        s
    }

    fn outstanding_now(&self, ctx: CtxId) -> u32 {
        self.mesh
            .tiles()
            .filter(|&t| self.slots[ctx].bar_reg(t, 0) != 0)
            .count() as u32
    }
}

impl BarrierHw for TdmBarrierNetwork {
    fn num_cores(&self) -> usize {
        self.mesh.num_tiles()
    }

    fn num_contexts(&self) -> usize {
        self.slots.len()
    }

    fn stats(&self, ctx: CtxId) -> GlineStats {
        TdmBarrierNetwork::stats(self, ctx)
    }

    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        let was_zero = self.slots[ctx].bar_reg(core, 0) == 0;
        self.slots[ctx].write_bar_reg(core, 0, value);
        if was_zero {
            if self.arrived[ctx] == 0 {
                self.first_arrival[ctx] = self.now;
            }
            self.arrived[ctx] += 1;
            self.outstanding[ctx] += 1;
            self.last_arrival[ctx] = self.now;
        }
    }

    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        self.slots[ctx].bar_reg(core, 0)
    }

    fn all_released(&self, ctx: CtxId) -> bool {
        self.slots[ctx].all_released(0)
    }

    fn tick(&mut self) {
        // Only the slot owner may drive (and sense) the wires this cycle.
        let ctx = (self.now % self.slots.len() as u64) as usize;
        let before = self.outstanding_now(ctx);
        self.slots[ctx].tick();
        let after = self.outstanding_now(ctx);
        let released = before.saturating_sub(after);
        self.outstanding[ctx] = self.outstanding[ctx].saturating_sub(released);
        if self.arrived[ctx] as usize == self.mesh.num_tiles() && self.outstanding[ctx] == 0 {
            self.stats[ctx].record(self.first_arrival[ctx], self.last_arrival[ctx], self.now);
            self.arrived[ctx] = 0;
        }
        self.now += 1;
    }

    fn now(&self) -> Cycle {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GlineConfig {
        GlineConfig::default()
    }

    #[test]
    fn single_slot_degenerates_to_flat_network() {
        let mesh = Mesh2D::new(4, 8);
        let mut net = TdmBarrierNetwork::new(mesh, cfg(), 1);
        assert_eq!(net.run_single_barrier(&vec![0; 32]), 4);
        assert_eq!(net.num_glines(), 10);
    }

    #[test]
    fn latency_scales_with_slot_count() {
        let mesh = Mesh2D::new(4, 4);
        for v in [2usize, 3, 4] {
            let mut net = TdmBarrierNetwork::new(mesh, cfg(), v);
            let lat = net.run_single_barrier(&[0; 16]);
            // Four wave steps, each waiting ≤ v cycles for its slot.
            assert!(
                lat >= 4 && lat <= 4 * v as u64 + v as u64,
                "v={v}: latency {lat} outside [4, {}]",
                5 * v
            );
            assert!(
                lat > 4,
                "v={v}: TDM must cost something over the flat network"
            );
        }
    }

    #[test]
    fn wires_are_constant_in_logical_count() {
        let mesh = Mesh2D::new(4, 8);
        for v in [1usize, 2, 8] {
            let net = TdmBarrierNetwork::new(mesh, cfg(), v);
            assert_eq!(net.num_glines(), 10, "TDM must not replicate wires");
        }
        // Contrast: space multiplexing replicates per context.
        let spatial = BarrierNetwork::new(
            mesh,
            GlineConfig {
                contexts: 8,
                ..cfg()
            },
        );
        assert_eq!(spatial.num_glines(), 80);
    }

    #[test]
    fn concurrent_logical_barriers_complete_independently() {
        let mesh = Mesh2D::new(2, 4);
        let n = mesh.num_tiles();
        let mut net = TdmBarrierNetwork::new(mesh, cfg(), 3);
        // Barrier 0: everyone arrives now. Barrier 1: half arrive.
        for i in 0..n {
            net.write_bar_reg(CoreId::from(i), 0, 1);
        }
        for i in 0..n / 2 {
            net.write_bar_reg(CoreId::from(i), 1, 1);
        }
        for _ in 0..40 {
            net.tick();
        }
        assert!(net.all_released(0), "logical barrier 0 must complete");
        assert!(!net.all_released(1), "logical barrier 1 must still hold");
        // Complete barrier 1.
        for i in n / 2..n {
            net.write_bar_reg(CoreId::from(i), 1, 1);
        }
        for _ in 0..40 {
            net.tick();
        }
        assert!(net.all_released(1));
        assert_eq!(net.stats(0).barriers_completed, 1);
        assert_eq!(net.stats(1).barriers_completed, 1);
        assert_eq!(net.stats(2).barriers_completed, 0);
    }

    #[test]
    fn back_to_back_episodes_per_logical_barrier() {
        let mesh = Mesh2D::new(2, 2);
        let mut net = TdmBarrierNetwork::new(mesh, cfg(), 2);
        for _ in 0..5 {
            let lat = net.run_single_barrier(&[0; 4]);
            assert!(lat <= 12, "episode latency {lat}");
        }
        assert_eq!(net.stats(0).barriers_completed, 5);
    }

    #[test]
    fn staggered_arrivals_tdm() {
        let mesh = Mesh2D::new(3, 3);
        let mut net = TdmBarrierNetwork::new(mesh, cfg(), 4);
        let arrivals: Vec<u64> = (0..9).map(|i| i * 3).collect();
        let lat = net.run_single_barrier(&arrivals);
        assert!(lat <= 20, "latency {lat}");
        assert_eq!(net.stats(0).barriers_completed, 1);
    }
}
