//! A write-latching shadow of a barrier network, for the parallel
//! compute phases of the sharded-tick and epoch engines (`DESIGN.md`
//! §11/§13).
//!
//! During a parallel compute phase every worker drives its shard of
//! cores against a [`GlineShadow`] instead of the real network: reads
//! pass through to the (frozen) network, and `bar_reg` arrival writes
//! latch into a per-worker buffer, stamped with the simulated cycle
//! they occurred on. At the exchange barrier the coordinator replays
//! every worker's latched writes into the real network **in ascending
//! (cycle, core) order** — the order the serial core loop produces —
//! interleaved with the network's own ticks, so the network's episode
//! accounting (`first_arrival`, arrival counts, trace ordering) is
//! bit-identical to the serial engine. The per-cycle engine is the
//! special case where every stamp in a buffer is the same cycle.
//!
//! This is how the wired-AND/S-CSMA gather "splits" across shards: each
//! worker accumulates its partial set of arrivals independently, and
//! the deterministic replay is the reduction.
//!
//! The one read a core performs on the network — its **own** `bar_reg`
//! slot — consults the latch first, so a core that arrives and spins in
//! the same (or a later in-window) cycle observes its own write exactly
//! as it would serially. Cross-shard reads are impossible by
//! construction (core `k` is the only writer and the only reader of
//! slot `k` during a compute phase), and the epoch window is clamped so
//! the frozen network cannot release mid-window (`DESIGN.md` §13).

use crate::network::{BarrierHw, CtxId};
use crate::stats::GlineStats;
use sim_base::{CoreId, Cycle};

/// One worker's shadow view of the barrier hardware for a single
/// compute phase (one cycle for the per-cycle engine, a whole window
/// for the epoch engine). See the module docs for the protocol.
#[derive(Debug)]
pub struct GlineShadow<'a, B: BarrierHw + ?Sized> {
    inner: &'a B,
    /// The simulated cycle writes are currently stamped with. Starts at
    /// the frozen network's `now` and is advanced by the epoch engine
    /// via [`set_now`](Self::set_now) as the free-run progresses.
    now: Cycle,
    /// Latched `(cycle, core, ctx, value)` arrival writes, in program
    /// order (which, per worker, is ascending cycle then ascending core
    /// within each cycle).
    writes: Vec<(Cycle, CoreId, CtxId, u64)>,
}

impl<'a, B: BarrierHw + ?Sized> GlineShadow<'a, B> {
    /// Wraps `inner`, latching writes into `writes` (passed in so the
    /// engine can reuse the allocation across phases; it need not be
    /// empty-capacity but must be empty). Stamps start at `inner.now()`.
    pub fn new(inner: &'a B, writes: Vec<(Cycle, CoreId, CtxId, u64)>) -> GlineShadow<'a, B> {
        debug_assert!(writes.is_empty(), "stale latched writes");
        GlineShadow {
            now: inner.now(),
            inner,
            writes,
        }
    }

    /// Advances the cycle subsequent writes are stamped with (the epoch
    /// engine calls this once per free-run cycle; monotone).
    pub fn set_now(&mut self, now: Cycle) {
        debug_assert!(now >= self.now, "shadow clock cannot run backwards");
        self.now = now;
    }

    /// Consumes the shadow, returning the latched writes for replay.
    pub fn into_writes(self) -> Vec<(Cycle, CoreId, CtxId, u64)> {
        self.writes
    }
}

impl<B: BarrierHw + ?Sized> BarrierHw for GlineShadow<'_, B> {
    fn num_cores(&self) -> usize {
        self.inner.num_cores()
    }

    fn write_bar_reg(&mut self, core: CoreId, ctx: CtxId, value: u64) {
        self.writes.push((self.now, core, ctx, value));
    }

    fn bar_reg(&self, core: CoreId, ctx: CtxId) -> u64 {
        // Latest latched write wins — a core reading its own slot after
        // arriving in the same or an earlier in-window cycle must see
        // the arrival, exactly as the serial engine's immediate write
        // provides. Every latched write for `core` is its own and is
        // stamped at or before the current cycle (tiles run forward in
        // time), so the scan never sees the future.
        for &(_, c, x, v) in self.writes.iter().rev() {
            if c == core && x == ctx {
                return v;
            }
        }
        self.inner.bar_reg(core, ctx)
    }

    fn all_released(&self, ctx: CtxId) -> bool {
        // A latched (nonzero) arrival means this context cannot be
        // all-released once the writes land.
        self.inner.all_released(ctx) && !self.writes.iter().any(|&(_, _, x, _)| x == ctx)
    }

    fn tick(&mut self) {
        unreachable!("the barrier network ticks only in the exchange phase");
    }

    fn now(&self) -> Cycle {
        self.now
    }

    fn num_contexts(&self) -> usize {
        self.inner.num_contexts()
    }

    fn stats(&self, ctx: CtxId) -> GlineStats {
        self.inner.stats(ctx)
    }

    fn next_event(&self) -> Option<Cycle> {
        self.inner.next_event()
    }

    fn skip_to(&mut self, _t: Cycle) {
        unreachable!("the barrier network skips only in the exchange phase");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::BarrierNetwork;
    use sim_base::config::GlineConfig;
    use sim_base::Mesh2D;

    #[test]
    fn shadow_latches_writes_and_reads_back_own_slot() {
        let net = BarrierNetwork::new(Mesh2D::new(2, 2), GlineConfig::default());
        let mut sh = GlineShadow::new(&net, Vec::new());
        assert_eq!(sh.bar_reg(CoreId(1), 0), 0, "passthrough before write");
        sh.write_bar_reg(CoreId(1), 0, 7);
        assert_eq!(sh.bar_reg(CoreId(1), 0), 7, "own write visible");
        assert_eq!(sh.bar_reg(CoreId(0), 0), 0, "other slots untouched");
        assert!(!sh.all_released(0), "latched arrival blocks all_released");
        assert_eq!(sh.into_writes(), vec![(0, CoreId(1), 0, 7)]);
    }

    #[test]
    fn shadow_stamps_writes_with_the_free_run_cycle() {
        let net = BarrierNetwork::new(Mesh2D::new(2, 2), GlineConfig::default());
        let mut sh = GlineShadow::new(&net, Vec::new());
        sh.write_bar_reg(CoreId(0), 0, 1);
        sh.set_now(3);
        sh.write_bar_reg(CoreId(2), 0, 1);
        assert_eq!(sh.now(), 3);
        assert_eq!(
            sh.into_writes(),
            vec![(0, CoreId(0), 0, 1), (3, CoreId(2), 0, 1)]
        );
    }

    #[test]
    fn replaying_latched_writes_matches_direct_writes() {
        let mesh = Mesh2D::new(2, 2);
        let mut direct = BarrierNetwork::new(mesh, GlineConfig::default());
        let mut latched = BarrierNetwork::new(mesh, GlineConfig::default());

        let mut sh = GlineShadow::new(&latched, Vec::new());
        for i in 0..4usize {
            sh.write_bar_reg(CoreId::from(i), 0, 1);
        }
        let writes = sh.into_writes();
        for (_, core, ctx, v) in writes {
            latched.write_bar_reg(core, ctx, v);
        }
        for i in 0..4usize {
            direct.write_bar_reg(CoreId::from(i), 0, 1);
        }
        for _ in 0..4 {
            direct.tick();
            latched.tick();
        }
        assert!(direct.all_released(0) && latched.all_released(0));
        let (ds, ls) = (direct.stats(0), latched.stats(0));
        assert_eq!(ds.barriers_completed, ls.barriers_completed);
        assert_eq!(ds.latency.sum(), ls.latency.sum());
        assert_eq!(ds.signals, ls.signals);
    }
}
