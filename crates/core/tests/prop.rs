//! Property tests for the G-line barrier network: for *any* mesh shape
//! and *any* arrival schedule, the barrier must be correct (nobody
//! escapes early, everybody is released) and the latency from the last
//! arrival must be the constant the hardware promises.
//!
//! Runs on the in-repo seed-sweep harness ([`sim_base::check`]) instead of
//! an external property-testing crate, so the suite builds fully offline.

#![allow(clippy::needless_range_loop)] // indexing parallel arrays

use gline_core::{BarrierHw, BarrierNetwork, ClusteredBarrierNetwork};
use sim_base::check::forall;
use sim_base::config::GlineConfig;
use sim_base::{CoreId, Mesh2D};

/// Drives `net` through one barrier with the given arrival schedule and
/// checks the fundamental properties along the way. Returns the latency
/// from last arrival to release.
fn drive<H: BarrierHw>(net: &mut H, arrivals: &[u64]) -> u64 {
    let n = arrivals.len();
    let last = *arrivals.iter().max().unwrap();
    let base = net.now();
    let mut released_at = None;
    for cycle in 0.. {
        for (i, &a) in arrivals.iter().enumerate() {
            if a == cycle {
                net.write_bar_reg(CoreId::from(i), 0, 1);
            }
        }
        // Before everyone has arrived, nobody may be released.
        if cycle <= last {
            for (i, &a) in arrivals.iter().enumerate() {
                if a < cycle {
                    assert_ne!(
                        net.bar_reg(CoreId::from(i), 0),
                        0,
                        "core {i} escaped at cycle {cycle} before all arrived (last={last})"
                    );
                }
            }
        }
        net.tick();
        if net.all_released(0) && cycle >= last {
            released_at = Some(net.now() - base - 1);
            break;
        }
        assert!(cycle < last + 1000, "barrier never completed");
    }
    let released_at = released_at.unwrap();
    assert!((0..n).all(|i| net.bar_reg(CoreId::from(i), 0) == 0));
    released_at - last + 1
}

#[test]
fn flat_network_always_releases_in_4_cycles() {
    forall("flat_network_always_releases_in_4_cycles", |rng| {
        let rows = 1 + rng.next_below(8) as u16;
        let cols = 1 + rng.next_below(8) as u16;
        let spread = rng.next_below(200);
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let arrivals: Vec<u64> = (0..n)
            .map(|_| {
                if spread == 0 {
                    0
                } else {
                    rng.next_below(spread + 1)
                }
            })
            .collect();
        let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
        let lat = drive(&mut net, &arrivals);
        assert_eq!(lat, 4, "arrivals: {arrivals:?}");
    });
}

#[test]
fn flat_network_back_to_back_episodes() {
    forall("flat_network_back_to_back_episodes", |rng| {
        let rows = 1 + rng.next_below(6) as u16;
        let cols = 1 + rng.next_below(6) as u16;
        let episodes = 1 + rng.next_below(4) as usize;
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
        for _ in 0..episodes {
            let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(30)).collect();
            let lat = drive(&mut net, &arrivals);
            assert_eq!(lat, 4);
        }
        assert_eq!(net.stats(0).barriers_completed, episodes as u64);
        assert_eq!(net.stats(0).mean_latency(), 4.0);
    });
}

#[test]
fn clustered_network_constant_latency() {
    forall("clustered_network_constant_latency", |rng| {
        let rows = 9 + rng.next_below(12) as u16;
        let cols = 9 + rng.next_below(12) as u16;
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(50)).collect();
        let mut net = ClusteredBarrierNetwork::new(mesh, GlineConfig::default());
        let lat = drive(&mut net, &arrivals);
        assert_eq!(lat, 7, "{rows}x{cols}");
    });
}

#[test]
fn masked_contexts_release_members_in_4_cycles() {
    forall("masked_contexts_release_members_in_4_cycles", |rng| {
        let rows = 1 + rng.next_below(6) as u16;
        let cols = 1 + rng.next_below(6) as u16;
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        if !mask.iter().any(|&m| m) {
            mask[rng.next_below(n as u64) as usize] = true;
        }
        let cfg = GlineConfig {
            contexts: 1,
            ..GlineConfig::default()
        };
        let mut net = BarrierNetwork::with_members(mesh, cfg, vec![mask.clone()]);
        // Stagger the member arrivals.
        let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(20)).collect();
        let last = (0..n)
            .filter(|&i| mask[i])
            .map(|i| arrivals[i])
            .max()
            .unwrap();
        for cycle in 0..(last + 10) {
            for i in 0..n {
                if mask[i] && arrivals[i] == cycle {
                    net.write_bar_reg(CoreId::from(i), 0, 1);
                }
            }
            // Nobody escapes early.
            if cycle <= last {
                for i in 0..n {
                    if mask[i] && arrivals[i] < cycle {
                        assert_ne!(net.bar_reg(CoreId::from(i), 0), 0, "core {i} escaped");
                    }
                }
            }
            net.tick();
        }
        assert!(net.all_released(0), "mask {mask:?} arrivals {arrivals:?}");
        assert_eq!(net.stats(0).latency.max(), Some(4));
        // Non-members were never disturbed.
        for i in 0..n {
            if !mask[i] {
                assert_eq!(net.bar_reg(CoreId::from(i), 0), 0);
            }
        }
    });
}

#[test]
fn contexts_do_not_interfere() {
    forall("contexts_do_not_interfere", |rng| {
        let mesh = Mesh2D::new(3, 3);
        let cfg = GlineConfig {
            contexts: 3,
            ..GlineConfig::default()
        };
        let mut net = BarrierNetwork::new(mesh, cfg);
        // Arrive in all three contexts at staggered times; each context
        // must complete independently.
        let schedules: Vec<Vec<u64>> = (0..3)
            .map(|_| (0..9).map(|_| rng.next_below(40)).collect())
            .collect();
        for cycle in 0..200u64 {
            for (ctx, schedule) in schedules.iter().enumerate() {
                for (i, &a) in schedule.iter().enumerate() {
                    if a == cycle {
                        net.write_bar_reg(CoreId::from(i), ctx, 1);
                    }
                }
            }
            net.tick();
        }
        for ctx in 0..3 {
            assert!(net.all_released(ctx), "context {ctx} stuck");
            assert_eq!(net.stats(ctx).barriers_completed, 1);
            assert_eq!(net.stats(ctx).latency.max(), Some(4));
        }
    });
}
