//! Property tests for the G-line barrier network: for *any* mesh shape
//! and *any* arrival schedule, the barrier must be correct (nobody
//! escapes early, everybody is released) and the latency from the last
//! arrival must be the constant the hardware promises.

#![allow(clippy::needless_range_loop)] // indexing parallel arrays

use gline_core::{BarrierHw, BarrierNetwork, ClusteredBarrierNetwork};
use proptest::prelude::*;
use sim_base::config::GlineConfig;
use sim_base::{CoreId, Mesh2D};

/// Drives `net` through one barrier with the given arrival schedule and
/// checks the fundamental properties along the way. Returns the latency
/// from last arrival to release.
fn drive<H: BarrierHw>(net: &mut H, arrivals: &[u64]) -> u64 {
    let n = arrivals.len();
    let last = *arrivals.iter().max().unwrap();
    let base = net.now();
    let mut released_at = None;
    for cycle in 0.. {
        for (i, &a) in arrivals.iter().enumerate() {
            if a == cycle {
                net.write_bar_reg(CoreId::from(i), 0, 1);
            }
        }
        // Before everyone has arrived, nobody may be released.
        if cycle <= last {
            for (i, &a) in arrivals.iter().enumerate() {
                if a < cycle {
                    assert_ne!(
                        net.bar_reg(CoreId::from(i), 0),
                        0,
                        "core {i} escaped at cycle {cycle} before all arrived (last={last})"
                    );
                }
            }
        }
        net.tick();
        if net.all_released(0) && cycle >= last {
            released_at = Some(net.now() - base - 1);
            break;
        }
        assert!(cycle < last + 1000, "barrier never completed");
    }
    let released_at = released_at.unwrap();
    assert!((0..n).all(|i| net.bar_reg(CoreId::from(i), 0) == 0));
    released_at - last + 1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn flat_network_always_releases_in_4_cycles(
        rows in 1u16..=8,
        cols in 1u16..=8,
        seed in any::<u64>(),
        spread in 0u64..200,
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut rng = sim_base::rng::SplitMix64::new(seed);
        let arrivals: Vec<u64> =
            (0..n).map(|_| if spread == 0 { 0 } else { rng.next_below(spread + 1) }).collect();
        let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
        let lat = drive(&mut net, &arrivals);
        prop_assert_eq!(lat, 4, "arrivals: {:?}", arrivals);
    }

    #[test]
    fn flat_network_back_to_back_episodes(
        rows in 1u16..=6,
        cols in 1u16..=6,
        seed in any::<u64>(),
        episodes in 1usize..5,
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut rng = sim_base::rng::SplitMix64::new(seed);
        let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
        for _ in 0..episodes {
            let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(30)).collect();
            let lat = drive(&mut net, &arrivals);
            prop_assert_eq!(lat, 4);
        }
        prop_assert_eq!(net.stats(0).barriers_completed, episodes as u64);
        prop_assert_eq!(net.stats(0).mean_latency(), 4.0);
    }

    #[test]
    fn clustered_network_constant_latency(
        rows in 9u16..=20,
        cols in 9u16..=20,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut rng = sim_base::rng::SplitMix64::new(seed);
        let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(50)).collect();
        let mut net = ClusteredBarrierNetwork::new(mesh, GlineConfig::default());
        let lat = drive(&mut net, &arrivals);
        prop_assert_eq!(lat, 7, "{}x{}", rows, cols);
    }

    #[test]
    fn masked_contexts_release_members_in_4_cycles(
        rows in 1u16..=6,
        cols in 1u16..=6,
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let n = mesh.num_tiles();
        let mut rng = sim_base::rng::SplitMix64::new(seed);
        let mut mask: Vec<bool> = (0..n).map(|_| rng.chance(0.5)).collect();
        if !mask.iter().any(|&m| m) {
            mask[rng.next_below(n as u64) as usize] = true;
        }
        let cfg = GlineConfig { contexts: 1, ..GlineConfig::default() };
        let mut net = BarrierNetwork::with_members(mesh, cfg, vec![mask.clone()]);
        // Stagger the member arrivals.
        let arrivals: Vec<u64> = (0..n).map(|_| rng.next_below(20)).collect();
        let last = (0..n).filter(|&i| mask[i]).map(|i| arrivals[i]).max().unwrap();
        for cycle in 0..(last + 10) {
            for i in 0..n {
                if mask[i] && arrivals[i] == cycle {
                    net.write_bar_reg(CoreId::from(i), 0, 1);
                }
            }
            // Nobody escapes early.
            if cycle <= last {
                for i in 0..n {
                    if mask[i] && arrivals[i] < cycle {
                        prop_assert_ne!(net.bar_reg(CoreId::from(i), 0), 0, "core {} escaped", i);
                    }
                }
            }
            net.tick();
        }
        prop_assert!(net.all_released(0), "mask {:?} arrivals {:?}", mask, arrivals);
        prop_assert_eq!(net.stats(0).latency.max(), Some(4));
        // Non-members were never disturbed.
        for i in 0..n {
            if !mask[i] {
                prop_assert_eq!(net.bar_reg(CoreId::from(i), 0), 0);
            }
        }
    }

    #[test]
    fn contexts_do_not_interfere(
        seed in any::<u64>(),
    ) {
        let mesh = Mesh2D::new(3, 3);
        let cfg = GlineConfig { contexts: 3, ..GlineConfig::default() };
        let mut net = BarrierNetwork::new(mesh, cfg);
        let mut rng = sim_base::rng::SplitMix64::new(seed);
        // Arrive in all three contexts at staggered times; each context
        // must complete independently.
        let schedules: Vec<Vec<u64>> =
            (0..3).map(|_| (0..9).map(|_| rng.next_below(40)).collect()).collect();
        for cycle in 0..200u64 {
            for ctx in 0..3 {
                for (i, &a) in schedules[ctx].iter().enumerate() {
                    if a == cycle {
                        net.write_bar_reg(CoreId::from(i), ctx, 1);
                    }
                }
            }
            net.tick();
        }
        for ctx in 0..3 {
            prop_assert!(net.all_released(ctx), "context {} stuck", ctx);
            prop_assert_eq!(net.stats(ctx).barriers_completed, 1);
            prop_assert_eq!(net.stats(ctx).latency.max(), Some(4));
        }
    }
}
