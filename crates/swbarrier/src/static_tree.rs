//! The static tree barrier (MCS-style): each thread owns a fixed node of
//! a binary tree; arrival propagates leaves → root, the wakeup wave
//! propagates root → leaves. Every spin is on a flag only one other
//! thread writes.

use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::ThreadBarrier;
use std::sync::atomic::{AtomicBool, Ordering};

/// The static binary tree barrier.
pub struct StaticTreeBarrier {
    n: usize,
    /// `arrived[t]`: set by thread `t` once its subtree has arrived.
    arrived: Vec<CachePadded<AtomicBool>>,
    /// `release[t]`: set by `t`'s parent during the wakeup wave.
    release: Vec<CachePadded<AtomicBool>>,
    sense: Vec<CachePadded<AtomicBool>>,
}

impl StaticTreeBarrier {
    /// A barrier for `n` threads; thread `t`'s children are `2t+1` and
    /// `2t+2`.
    pub fn new(n: usize) -> StaticTreeBarrier {
        assert!(n >= 1);
        StaticTreeBarrier {
            n,
            arrived: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            release: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
        }
    }

    fn children(&self, tid: usize) -> impl Iterator<Item = usize> + '_ {
        [2 * tid + 1, 2 * tid + 2]
            .into_iter()
            .filter(move |&c| c < self.n)
    }
}

impl ThreadBarrier for StaticTreeBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        if self.n == 1 {
            return;
        }
        let sense = self.sense[tid].load(Ordering::Relaxed);
        // Gather our subtree.
        for c in self.children(tid) {
            spin_until(|| self.arrived[c].load(Ordering::Acquire) == sense);
        }
        if tid != 0 {
            // Tell the parent and wait for the wakeup wave.
            self.arrived[tid].store(sense, Ordering::Release);
            spin_until(|| self.release[tid].load(Ordering::Acquire) == sense);
        }
        // Wake our children.
        for c in self.children(tid) {
            self.release[c].store(sense, Ordering::Release);
        }
        self.sense[tid].store(!sense, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_harness::check_barrier;

    #[test]
    fn single_thread_never_blocks() {
        let b = StaticTreeBarrier::new(1);
        for _ in 0..100 {
            b.wait(0);
        }
    }

    #[test]
    fn upholds_barrier_property() {
        for n in [2usize, 3, 5, 8, 11] {
            check_barrier(StaticTreeBarrier::new(n), 200);
        }
    }

    #[test]
    fn many_episodes_reuse() {
        check_barrier(StaticTreeBarrier::new(5), 2000);
    }
}
