//! # swbarrier — software barrier algorithms for real threads
//!
//! The paper's software baselines (centralized sense-reversal, combining
//! tree) and the other classic algorithms from Mellor-Crummey & Scott's
//! "Synchronization without Contention" — implemented for actual Rust
//! threads with cache-line-padded state, so the library is directly
//! usable on commodity multicores and benchmarkable against the
//! simulated machine (see the `swbarrier_threads` bench).
//!
//! All barriers implement [`ThreadBarrier`]: construct for `n` threads,
//! give each thread a distinct id in `0..n`, and call
//! [`wait(tid)`](ThreadBarrier::wait) — the call returns only after all
//! `n` threads of the episode have arrived. Barriers are reusable for
//! any number of episodes.
//!
//! ```
//! use swbarrier::{CentralizedBarrier, ThreadBarrier};
//! use std::sync::Arc;
//!
//! let n = 4;
//! let bar = Arc::new(CentralizedBarrier::new(n));
//! let handles: Vec<_> = (0..n)
//!     .map(|tid| {
//!         let bar = Arc::clone(&bar);
//!         std::thread::spawn(move || {
//!             for _ in 0..100 {
//!                 bar.wait(tid);
//!             }
//!         })
//!     })
//!     .collect();
//! for h in handles {
//!     h.join().unwrap();
//! }
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod centralized;
pub mod combining;
pub mod dissemination;
pub mod pad;
pub mod scoped;
mod spin;
pub mod static_tree;
pub mod tournament;
pub mod traced;

pub use centralized::CentralizedBarrier;
pub use combining::CombiningTreeBarrier;
pub use dissemination::DisseminationBarrier;
pub use static_tree::StaticTreeBarrier;
pub use tournament::TournamentBarrier;
pub use traced::TracedBarrier;

/// A reusable N-thread barrier. Thread ids must be distinct and in
/// `0..num_threads()`; every thread must participate in every episode.
pub trait ThreadBarrier: Sync + Send {
    /// Number of participating threads.
    fn num_threads(&self) -> usize;
    /// Blocks until all threads have called `wait` for this episode.
    fn wait(&self, tid: usize);
}

#[cfg(test)]
pub(crate) mod test_harness {
    use super::ThreadBarrier;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    /// The fundamental barrier property: when thread `t` leaves episode
    /// `e`, every other thread has *entered* episode `e` (its published
    /// stamp is at least `e`), and no thread is ever more than one
    /// episode ahead.
    pub fn check_barrier<B: ThreadBarrier + 'static>(bar: B, episodes: u64) {
        let n = bar.num_threads();
        let bar = Arc::new(bar);
        let stamps: Arc<Vec<AtomicU64>> = Arc::new((0..n).map(|_| AtomicU64::new(0)).collect());
        let handles: Vec<_> = (0..n)
            .map(|tid| {
                let bar = Arc::clone(&bar);
                let stamps = Arc::clone(&stamps);
                std::thread::spawn(move || {
                    for e in 1..=episodes {
                        stamps[tid].store(e, Ordering::SeqCst);
                        // Tiny random-ish work to vary arrival order.
                        for _ in 0..((tid as u64 * 7 + e) % 32) {
                            std::hint::spin_loop();
                        }
                        bar.wait(tid);
                        for p in 0..n {
                            let s = stamps[p].load(Ordering::SeqCst);
                            assert!(
                                s >= e && s <= e + 1,
                                "thread {tid} left episode {e} but thread {p} is at {s}"
                            );
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
