//! Spin-wait helper with progressive backoff.

/// Spins until `cond` returns true. Uses `spin_loop` hints first and
/// yields to the OS scheduler once the wait gets long (important when
/// threads outnumber cores, e.g. in CI).
pub(crate) fn spin_until(cond: impl Fn() -> bool) {
    let mut spins = 0u32;
    while !cond() {
        if spins < 64 {
            std::hint::spin_loop();
            spins += 1;
        } else {
            std::thread::yield_now();
        }
    }
}
