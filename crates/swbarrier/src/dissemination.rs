//! The dissemination barrier (Hensgen/Finkel/Manber, as presented by
//! Mellor-Crummey & Scott): ⌈log₂n⌉ rounds in which thread `t` signals
//! thread `(t + 2ʳ) mod n` and waits to be signalled — no single hot
//! location, all spinning on locally-owned flags.

use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::ThreadBarrier;
use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};

/// Per-thread private episode state (parity and sense), owned by its
/// thread; atomics only to satisfy `Sync`.
struct Private {
    parity: CachePadded<AtomicU8>,
    sense: CachePadded<AtomicBool>,
}

/// The dissemination barrier.
pub struct DisseminationBarrier {
    n: usize,
    rounds: usize,
    /// `flags[parity][tid][round]`.
    flags: [Vec<Vec<CachePadded<AtomicBool>>>; 2],
    private: Vec<Private>,
}

impl DisseminationBarrier {
    /// A barrier for `n` threads.
    pub fn new(n: usize) -> DisseminationBarrier {
        assert!(n >= 1);
        let rounds = usize::BITS as usize - (n - 1).leading_zeros() as usize;
        let rounds = if n == 1 { 0 } else { rounds };
        let make = || {
            (0..n)
                .map(|_| {
                    (0..rounds)
                        .map(|_| CachePadded::new(AtomicBool::new(false)))
                        .collect()
                })
                .collect()
        };
        DisseminationBarrier {
            n,
            rounds,
            flags: [make(), make()],
            private: (0..n)
                .map(|_| Private {
                    parity: CachePadded::new(AtomicU8::new(0)),
                    sense: CachePadded::new(AtomicBool::new(true)),
                })
                .collect(),
        }
    }

    /// Signalling rounds per episode (⌈log₂ n⌉).
    pub fn rounds(&self) -> usize {
        self.rounds
    }
}

impl ThreadBarrier for DisseminationBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        if self.n == 1 {
            return;
        }
        let parity = self.private[tid].parity.load(Ordering::Relaxed) as usize;
        let sense = self.private[tid].sense.load(Ordering::Relaxed);
        for r in 0..self.rounds {
            let partner = (tid + (1 << r)) % self.n;
            self.flags[parity][partner][r].store(sense, Ordering::Release);
            spin_until(|| self.flags[parity][tid][r].load(Ordering::Acquire) == sense);
        }
        if parity == 1 {
            self.private[tid].sense.store(!sense, Ordering::Relaxed);
        }
        self.private[tid]
            .parity
            .store(1 - parity as u8, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_harness::check_barrier;

    #[test]
    fn round_counts() {
        assert_eq!(DisseminationBarrier::new(1).rounds(), 0);
        assert_eq!(DisseminationBarrier::new(2).rounds(), 1);
        assert_eq!(DisseminationBarrier::new(3).rounds(), 2);
        assert_eq!(DisseminationBarrier::new(8).rounds(), 3);
        assert_eq!(DisseminationBarrier::new(9).rounds(), 4);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = DisseminationBarrier::new(1);
        for _ in 0..100 {
            b.wait(0);
        }
    }

    #[test]
    fn upholds_barrier_property() {
        for n in [2usize, 3, 5, 8] {
            check_barrier(DisseminationBarrier::new(n), 200);
        }
    }

    #[test]
    fn many_episodes_reuse() {
        check_barrier(DisseminationBarrier::new(7), 2000);
    }
}
