//! The combining-tree barrier — the real-thread analogue of the paper's
//! DSW baseline: a k-ary tree of counters; the last arriver at each node
//! climbs, and the release unwinds down the winners' paths.

use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::ThreadBarrier;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

struct Node {
    count: CachePadded<AtomicUsize>,
    flag: CachePadded<AtomicBool>,
    /// Children at this node (threads for level 0, nodes above).
    arity: usize,
}

/// A k-ary combining-tree barrier with sense reversal.
pub struct CombiningTreeBarrier {
    n: usize,
    arity: usize,
    /// Nodes, level by level; `level_off[l]` indexes the first node of
    /// level `l`.
    nodes: Vec<Node>,
    level_off: Vec<usize>,
    levels: usize,
    local_sense: Vec<CachePadded<AtomicBool>>,
}

impl CombiningTreeBarrier {
    /// A binary combining tree for `n` threads (the paper's DSW shape).
    pub fn binary(n: usize) -> CombiningTreeBarrier {
        CombiningTreeBarrier::with_arity(n, 2)
    }

    /// A combining tree with the given fan-in (≥ 2).
    pub fn with_arity(n: usize, arity: usize) -> CombiningTreeBarrier {
        assert!(n >= 1);
        assert!(arity >= 2);
        let mut nodes = Vec::new();
        let mut level_off = Vec::new();
        let mut width = n;
        while width > 1 {
            level_off.push(nodes.len());
            let count = width.div_ceil(arity);
            for i in 0..count {
                let children = (width - i * arity).min(arity);
                nodes.push(Node {
                    count: CachePadded::new(AtomicUsize::new(0)),
                    flag: CachePadded::new(AtomicBool::new(false)),
                    arity: children,
                });
            }
            width = count;
        }
        let levels = level_off.len();
        CombiningTreeBarrier {
            n,
            arity,
            nodes,
            level_off,
            levels,
            local_sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }

    /// Number of tree levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    fn node(&self, level: usize, idx: usize) -> &Node {
        &self.nodes[self.level_off[level] + idx]
    }

    fn node_index(&self, tid: usize, level: usize) -> usize {
        tid / self.arity.pow(level as u32 + 1)
    }
}

impl ThreadBarrier for CombiningTreeBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        if self.n == 1 {
            return;
        }
        let my_sense = !self.local_sense[tid].load(Ordering::Relaxed);
        self.local_sense[tid].store(my_sense, Ordering::Relaxed);

        // Climb until losing at some node (or winning the root).
        let mut reached = self.levels; // level we *failed* to win; levels == root won
        for level in 0..self.levels {
            let node = self.node(level, self.node_index(tid, level));
            if node.count.fetch_add(1, Ordering::AcqRel) != node.arity - 1 {
                // Not last: wait here.
                spin_until(|| node.flag.load(Ordering::Acquire) == my_sense);
                reached = level;
                break;
            }
        }
        // Release every level below the one we waited at (we were the
        // last arriver there): reset the count, then flip the flag.
        for level in (0..reached).rev() {
            let node = self.node(level, self.node_index(tid, level));
            node.count.store(0, Ordering::Relaxed);
            node.flag.store(my_sense, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_harness::check_barrier;

    #[test]
    fn shapes() {
        let b = CombiningTreeBarrier::binary(8);
        assert_eq!(b.levels(), 3);
        let b = CombiningTreeBarrier::binary(5);
        assert_eq!(b.levels(), 3); // 3 + 2 + 1 nodes
        let b = CombiningTreeBarrier::with_arity(16, 4);
        assert_eq!(b.levels(), 2);
        let b = CombiningTreeBarrier::binary(1);
        assert_eq!(b.levels(), 0);
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = CombiningTreeBarrier::binary(1);
        for _ in 0..100 {
            b.wait(0);
        }
    }

    #[test]
    fn upholds_barrier_property_binary() {
        for n in [2usize, 3, 5, 8] {
            check_barrier(CombiningTreeBarrier::binary(n), 200);
        }
    }

    #[test]
    fn upholds_barrier_property_wide() {
        for n in [4usize, 9, 16] {
            check_barrier(CombiningTreeBarrier::with_arity(n, 4), 200);
        }
    }

    #[test]
    fn many_episodes_reuse() {
        check_barrier(CombiningTreeBarrier::binary(6), 2000);
    }
}
