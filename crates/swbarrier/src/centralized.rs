//! The centralized sense-reversal barrier — the real-thread analogue of
//! the paper's CSW baseline (with an atomic `fetch_add` in place of the
//! lock; the contention pattern on the release flag is the same).

use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::ThreadBarrier;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Centralized sense-reversal barrier: one shared counter, one shared
/// release flag, per-thread local sense.
pub struct CentralizedBarrier {
    count: CachePadded<AtomicUsize>,
    sense: CachePadded<AtomicBool>,
    local_sense: Vec<CachePadded<AtomicBool>>,
}

impl CentralizedBarrier {
    /// A barrier for `n` threads.
    pub fn new(n: usize) -> CentralizedBarrier {
        assert!(n >= 1);
        CentralizedBarrier {
            count: CachePadded::new(AtomicUsize::new(0)),
            sense: CachePadded::new(AtomicBool::new(false)),
            local_sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
        }
    }
}

impl ThreadBarrier for CentralizedBarrier {
    fn num_threads(&self) -> usize {
        self.local_sense.len()
    }

    fn wait(&self, tid: usize) {
        let n = self.local_sense.len();
        // Flip this thread's sense (only this thread writes its slot).
        let my_sense = !self.local_sense[tid].load(Ordering::Relaxed);
        self.local_sense[tid].store(my_sense, Ordering::Relaxed);

        if self.count.fetch_add(1, Ordering::AcqRel) == n - 1 {
            // Last arriver: reset and release.
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            spin_until(|| self.sense.load(Ordering::Acquire) == my_sense);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_harness::check_barrier;

    #[test]
    fn single_thread_never_blocks() {
        let b = CentralizedBarrier::new(1);
        for _ in 0..1000 {
            b.wait(0);
        }
    }

    #[test]
    fn upholds_barrier_property() {
        for n in [2usize, 3, 4, 8] {
            check_barrier(CentralizedBarrier::new(n), 200);
        }
    }

    #[test]
    fn many_episodes_reuse() {
        check_barrier(CentralizedBarrier::new(4), 2000);
    }
}
