//! Cache-line padding to keep per-thread flags from false sharing.
//!
//! A minimal stand-in for `crossbeam_utils::CachePadded`: aligning each
//! value to 128 bytes puts every flag on its own cache line (two lines
//! on CPUs with adjacent-line prefetch), so one thread's spin loop never
//! invalidates a neighbour's flag.

use std::ops::{Deref, DerefMut};

/// Pads and aligns a value to 128 bytes.
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Pads `value` to its own cache line.
    pub const fn new(value: T) -> CachePadded<T> {
        CachePadded { value }
    }

    /// Unwraps the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

impl<T> From<T> for CachePadded<T> {
    fn from(value: T) -> CachePadded<T> {
        CachePadded::new(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padding_separates_adjacent_elements() {
        assert!(std::mem::align_of::<CachePadded<u8>>() >= 128);
        assert!(std::mem::size_of::<CachePadded<u8>>() >= 128);
        let v: Vec<CachePadded<u8>> = vec![CachePadded::new(1), CachePadded::new(2)];
        // simlint: allow(ptr-order) — layout assertion: only the
        // *distance* between adjacent elements is checked, which is a
        // pure function of the type's size, not of the load address.
        let a = &*v[0] as *const u8 as usize;
        // simlint: allow(ptr-order) — see above.
        let b = &*v[1] as *const u8 as usize;
        assert!(b - a >= 128, "elements {a:#x} and {b:#x} share a line");
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(41u64);
        *p += 1;
        assert_eq!(*p, 42);
        assert_eq!(p.into_inner(), 42);
    }
}
