//! The tournament barrier (Hensgen/Finkel/Manber / MCS variant):
//! statically paired "matches" per round; the pre-determined loser
//! signals the winner and spins; the champion starts a wakeup wave that
//! retraces the bracket.

use crate::pad::CachePadded;
use crate::spin::spin_until;
use crate::ThreadBarrier;
use std::sync::atomic::{AtomicBool, Ordering};

/// Role of a thread in one round (1-based rounds).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Role {
    /// Waits for `partner`'s arrival, advances to the next round.
    Winner {
        /// The losing partner.
        partner: usize,
    },
    /// Signals `partner` and spins for the release.
    Loser {
        /// The winning partner.
        partner: usize,
    },
    /// No partner in range this round; advances silently.
    Bye,
}

/// The tournament barrier.
pub struct TournamentBarrier {
    n: usize,
    rounds: usize,
    /// `roles[tid][r-1]`, only meaningful while `tid` is still in the
    /// bracket at round `r`.
    roles: Vec<Vec<Role>>,
    /// `arrival[tid][r-1]`: set by the loser of `tid`'s round-`r` match.
    arrival: Vec<Vec<CachePadded<AtomicBool>>>,
    /// One release flag per thread.
    release: Vec<CachePadded<AtomicBool>>,
    /// Per-thread sense.
    sense: Vec<CachePadded<AtomicBool>>,
}

impl TournamentBarrier {
    /// A barrier for `n` threads.
    pub fn new(n: usize) -> TournamentBarrier {
        assert!(n >= 1);
        let rounds = if n == 1 {
            0
        } else {
            usize::BITS as usize - (n - 1).leading_zeros() as usize
        };
        let roles = (0..n)
            .map(|tid| {
                (1..=rounds)
                    .map(|r| {
                        let step = 1usize << r;
                        let half = 1usize << (r - 1);
                        if tid % step == 0 {
                            if tid + half < n {
                                Role::Winner {
                                    partner: tid + half,
                                }
                            } else {
                                Role::Bye
                            }
                        } else if tid % step == half {
                            Role::Loser {
                                partner: tid - half,
                            }
                        } else {
                            // Already eliminated before round r; the
                            // entry is never consulted at runtime.
                            let _ = r;
                            Role::Bye
                        }
                    })
                    .collect()
            })
            .collect();
        TournamentBarrier {
            n,
            rounds,
            roles,
            arrival: (0..n)
                .map(|_| {
                    (0..rounds)
                        .map(|_| CachePadded::new(AtomicBool::new(false)))
                        .collect()
                })
                .collect(),
            release: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(false)))
                .collect(),
            sense: (0..n)
                .map(|_| CachePadded::new(AtomicBool::new(true)))
                .collect(),
        }
    }

    /// Bracket depth (⌈log₂ n⌉).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Wakeup wave: release the losers this thread defeated in rounds
    /// `below..=1` (descending).
    fn release_defeated(&self, tid: usize, below: usize, sense: bool) {
        for r in (1..=below).rev() {
            if let Role::Winner { partner } = self.roles[tid][r - 1] {
                self.release[partner].store(sense, Ordering::Release);
            }
        }
    }
}

impl ThreadBarrier for TournamentBarrier {
    fn num_threads(&self) -> usize {
        self.n
    }

    fn wait(&self, tid: usize) {
        if self.n == 1 {
            return;
        }
        let sense = self.sense[tid].load(Ordering::Relaxed);
        let mut lost_at = None;
        for r in 1..=self.rounds {
            match self.roles[tid][r - 1] {
                Role::Winner { .. } => {
                    spin_until(|| self.arrival[tid][r - 1].load(Ordering::Acquire) == sense);
                }
                Role::Loser { partner } => {
                    self.arrival[partner][r - 1].store(sense, Ordering::Release);
                    spin_until(|| self.release[tid].load(Ordering::Acquire) == sense);
                    lost_at = Some(r);
                    break;
                }
                Role::Bye => {}
            }
        }
        match lost_at {
            // Champion (thread 0): retrace the whole bracket.
            None => self.release_defeated(tid, self.rounds, sense),
            // Released loser: wake the subtree it had defeated.
            Some(r) => self.release_defeated(tid, r - 1, sense),
        }
        self.sense[tid].store(!sense, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_harness::check_barrier;

    #[test]
    fn only_thread_zero_is_champion() {
        let b = TournamentBarrier::new(8);
        assert_eq!(b.rounds(), 3);
        // Thread 0 wins every round; everyone else loses exactly once.
        for tid in 1..8 {
            let losses = b.roles[tid]
                .iter()
                .filter(|r| matches!(r, Role::Loser { .. }))
                .count();
            assert_eq!(losses, 1, "thread {tid}");
        }
        assert!(b.roles[0].iter().all(|r| matches!(r, Role::Winner { .. })));
    }

    #[test]
    fn byes_appear_for_non_powers_of_two() {
        let b = TournamentBarrier::new(5);
        // Thread 4 has byes in rounds 1 and 2, loses round 3 to thread 0.
        assert_eq!(b.roles[4][0], Role::Bye);
        assert_eq!(b.roles[4][1], Role::Bye);
        assert_eq!(b.roles[4][2], Role::Loser { partner: 0 });
    }

    #[test]
    fn single_thread_never_blocks() {
        let b = TournamentBarrier::new(1);
        for _ in 0..100 {
            b.wait(0);
        }
    }

    #[test]
    fn upholds_barrier_property() {
        for n in [2usize, 3, 5, 8] {
            check_barrier(TournamentBarrier::new(n), 200);
        }
    }

    #[test]
    fn many_episodes_reuse() {
        check_barrier(TournamentBarrier::new(6), 2000);
    }
}
