//! A tracing decorator for any [`ThreadBarrier`].
//!
//! Wraps a barrier so every episode emits a [`SwArrive`] when a thread
//! reaches the barrier and a [`SwRelease`] when it leaves, into a
//! [`SharedTracer`] that real threads can share. Stamps are episode
//! numbers (there is no simulated clock on the host), so the recorded
//! stream still sorts into barrier order.
//!
//! [`SwArrive`]: sim_base::trace::Event::SwArrive
//! [`SwRelease`]: sim_base::trace::Event::SwRelease

use crate::pad::CachePadded;
use crate::ThreadBarrier;
use sim_base::trace::{Event, SharedTracer, TraceSink};
use std::sync::atomic::{AtomicU64, Ordering};

/// A [`ThreadBarrier`] that records arrivals and releases.
pub struct TracedBarrier<B: ThreadBarrier, S: TraceSink + Send> {
    inner: B,
    tracer: SharedTracer<S>,
    episode: Vec<CachePadded<AtomicU64>>,
}

impl<B: ThreadBarrier, S: TraceSink + Send> TracedBarrier<B, S> {
    /// Wraps `inner`, emitting into `tracer`.
    pub fn new(inner: B, tracer: SharedTracer<S>) -> TracedBarrier<B, S> {
        let n = inner.num_threads();
        TracedBarrier {
            inner,
            tracer,
            episode: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
        }
    }

    /// The shared tracer (e.g. to drain the sink after a run).
    pub fn tracer(&self) -> &SharedTracer<S> {
        &self.tracer
    }

    /// Unwraps the inner barrier.
    pub fn into_inner(self) -> B {
        self.inner
    }
}

impl<B: ThreadBarrier, S: TraceSink + Send> ThreadBarrier for TracedBarrier<B, S> {
    fn num_threads(&self) -> usize {
        self.inner.num_threads()
    }

    fn wait(&self, tid: usize) {
        let episode = self.episode[tid].fetch_add(1, Ordering::Relaxed) + 1;
        self.tracer.emit(episode, || Event::SwArrive {
            tid: tid as u32,
            episode,
        });
        self.inner.wait(tid);
        self.tracer.emit(episode, || Event::SwRelease {
            tid: tid as u32,
            episode,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CentralizedBarrier;
    use sim_base::trace::RingSink;
    use std::sync::Arc;

    #[test]
    fn records_arrive_release_pairs_per_episode() {
        let n = 4;
        let episodes = 8u64;
        let tracer = SharedTracer::new(RingSink::new(4096));
        let bar = Arc::new(TracedBarrier::new(
            CentralizedBarrier::new(n),
            tracer.clone(),
        ));
        let handles: Vec<_> = (0..n)
            .map(|tid| {
                let bar = Arc::clone(&bar);
                std::thread::spawn(move || {
                    for _ in 0..episodes {
                        bar.wait(tid);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let recs: Vec<Event> = tracer.with_sink(|s| s.events().map(|(_, e)| e.clone()).collect());
        assert_eq!(recs.len(), n * episodes as usize * 2);
        for e in 1..=episodes {
            for tid in 0..n as u32 {
                let arrive = recs
                    .iter()
                    .position(|ev| matches!(ev, Event::SwArrive { tid: t, episode } if *t == tid && *episode == e));
                let release = recs
                    .iter()
                    .position(|ev| matches!(ev, Event::SwRelease { tid: t, episode } if *t == tid && *episode == e));
                let (a, r) = (
                    arrive.expect("arrive recorded"),
                    release.expect("release recorded"),
                );
                assert!(a < r, "thread {tid} episode {e}: release before arrive");
            }
        }
        // A release of episode e appears only after *every* arrival of e.
        for e in 1..=episodes {
            let last_arrive = recs
                .iter()
                .rposition(|ev| matches!(ev, Event::SwArrive { episode, .. } if *episode == e))
                .unwrap();
            let first_release = recs
                .iter()
                .position(|ev| matches!(ev, Event::SwRelease { episode, .. } if *episode == e))
                .unwrap();
            assert!(
                last_arrive < first_release,
                "episode {e}: a thread was released before all had arrived"
            );
        }
    }

    #[test]
    fn null_sink_wrapper_still_synchronizes() {
        let tracer: SharedTracer<sim_base::trace::NullSink> =
            SharedTracer::new(sim_base::trace::NullSink);
        let bar = TracedBarrier::new(CentralizedBarrier::new(3), tracer);
        crate::test_harness::check_barrier(bar, 50);
    }
}
