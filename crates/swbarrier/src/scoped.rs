//! Convenience entry point: run a closure on `n` scoped threads that
//! share a barrier — the typical BSP (bulk-synchronous parallel) shape
//! the paper's workloads have.
//!
//! ```
//! use swbarrier::{scoped, CombiningTreeBarrier, ThreadBarrier};
//! use std::sync::atomic::{AtomicU64, Ordering};
//!
//! let acc = AtomicU64::new(0);
//! scoped::run(CombiningTreeBarrier::binary(4), |tid, barrier| {
//!     // Phase 1: everyone contributes.
//!     acc.fetch_add(tid as u64 + 1, Ordering::Relaxed);
//!     barrier.wait(tid);
//!     // Phase 2: everyone observes the full sum.
//!     assert_eq!(acc.load(Ordering::Relaxed), 10);
//! });
//! ```

use crate::ThreadBarrier;

/// Spawns one scoped thread per barrier participant and runs `f(tid,
/// &barrier)` on each. Returns the barrier once every thread finishes,
/// so it can be reused.
///
/// Panics in any worker propagate (the panicking thread's join unwinds).
pub fn run<B, F>(barrier: B, f: F) -> B
where
    B: ThreadBarrier,
    F: Fn(usize, &B) + Sync,
{
    let n = barrier.num_threads();
    std::thread::scope(|s| {
        let barrier = &barrier;
        let f = &f;
        let handles: Vec<_> = (0..n).map(|tid| s.spawn(move || f(tid, barrier))).collect();
        for h in handles {
            h.join().expect("barrier worker panicked");
        }
    });
    barrier
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CentralizedBarrier, DisseminationBarrier};
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn bsp_phases_are_ordered() {
        let slots: Vec<AtomicU64> = (0..6).map(|_| AtomicU64::new(0)).collect();
        run(DisseminationBarrier::new(6), |tid, b| {
            for phase in 1..=10u64 {
                slots[tid].store(phase, Ordering::SeqCst);
                b.wait(tid);
                for s in &slots {
                    let v = s.load(Ordering::SeqCst);
                    assert!(v >= phase && v <= phase + 1, "phase skew: {v} vs {phase}");
                }
                b.wait(tid);
            }
        });
    }

    #[test]
    fn barrier_is_returned_for_reuse() {
        let b = run(CentralizedBarrier::new(3), |tid, b| b.wait(tid));
        run(b, |tid, b| b.wait(tid));
    }

    #[test]
    #[should_panic(expected = "worker panicked")]
    fn worker_panics_propagate() {
        run(CentralizedBarrier::new(1), |_, _| panic!("boom"));
    }
}
