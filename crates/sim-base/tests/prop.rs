//! Property tests for the foundations: mesh geometry, address math,
//! histogram invariants and the deterministic RNG.
//!
//! Runs on the in-repo seed-sweep harness ([`sim_base::check`]) instead of
//! an external property-testing crate, so the suite builds fully offline.

use sim_base::check::forall;
use sim_base::geom::Dir;
use sim_base::ids::Addr;
use sim_base::rng::SplitMix64;
use sim_base::stats::Histogram;
use sim_base::{Coord, Mesh2D};

#[test]
fn mesh_id_coord_bijection() {
    forall("mesh_id_coord_bijection", |r| {
        let (rows, cols) = loop {
            let rows = 1 + r.next_below(63) as u16;
            let cols = 1 + r.next_below(63) as u16;
            if (rows as usize) * (cols as usize) <= 4096 {
                break (rows, cols);
            }
        };
        let m = Mesh2D::new(rows, cols);
        for id in m.tiles() {
            assert_eq!(m.id_of(m.coord_of(id)), id);
        }
        let mut count = 0;
        for c in m.coords() {
            assert_eq!(m.coord_of(m.id_of(c)), c);
            count += 1;
        }
        assert_eq!(count, m.num_tiles());
    });
}

#[test]
fn xy_route_always_terminates_at_destination() {
    forall("xy_route_always_terminates_at_destination", |r| {
        let rows = 1 + r.next_below(15) as u16;
        let cols = 1 + r.next_below(15) as u16;
        let m = Mesh2D::new(rows, cols);
        let from = Coord::new(
            r.next_below(rows as u64) as u16,
            r.next_below(cols as u64) as u16,
        );
        let to = Coord::new(
            r.next_below(rows as u64) as u16,
            r.next_below(cols as u64) as u16,
        );
        let mut cur = from;
        let mut hops = 0u32;
        loop {
            let d = m.xy_next(cur, to);
            if d == Dir::Local {
                break;
            }
            cur = m
                .neighbor(cur, d)
                .expect("XY routing never leaves the mesh");
            hops += 1;
            assert!(hops <= (rows as u32 + cols as u32));
        }
        assert_eq!(cur, to);
        assert_eq!(hops, m.manhattan(from, to));
    });
}

#[test]
fn squarest_covers_exactly_n() {
    forall("squarest_covers_exactly_n", |r| {
        let n = 1 + r.next_below(2047) as usize;
        let m = Mesh2D::squarest(n);
        assert_eq!(m.num_tiles(), n);
        assert!(m.rows <= m.cols, "prefers wide meshes");
    });
}

#[test]
fn neighbor_relation_is_symmetric() {
    forall("neighbor_relation_is_symmetric", |r| {
        let rows = 1 + r.next_below(9) as u16;
        let cols = 1 + r.next_below(9) as u16;
        let m = Mesh2D::new(rows, cols);
        for c in m.coords() {
            for d in Dir::MESH {
                if let Some(nb) = m.neighbor(c, d) {
                    assert_eq!(m.neighbor(nb, d.opposite()), Some(c));
                }
            }
        }
    });
}

#[test]
fn addr_line_math_consistent() {
    forall("addr_line_math_consistent", |r| {
        let word = r.next_below(1_000_000);
        let line_bytes = 1u64 << (4 + r.next_below(6));
        let a = Addr::of_word(word);
        let l = a.line(line_bytes);
        assert!(l.base(line_bytes).0 <= a.0);
        assert!(a.0 < l.base(line_bytes).0 + line_bytes);
        assert_eq!(a.line_offset(line_bytes), a.0 - l.base(line_bytes).0);
    });
}

#[test]
fn histogram_count_sum_min_max() {
    forall("histogram_count_sum_min_max", |r| {
        let n = 1 + r.next_below(99) as usize;
        let samples: Vec<u64> = (0..n).map(|_| r.next_below(1_000_000)).collect();
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        assert_eq!(h.count(), samples.len() as u64);
        assert_eq!(h.sum(), samples.iter().sum::<u64>());
        assert_eq!(h.min(), samples.iter().min().copied());
        assert_eq!(h.max(), samples.iter().max().copied());
        let mean = h.mean();
        assert!(mean >= h.min().unwrap() as f64 && mean <= h.max().unwrap() as f64);
    });
}

#[test]
fn rng_bounded_is_in_range_and_deterministic() {
    forall("rng_bounded_is_in_range_and_deterministic", |r| {
        let seed = r.next_u64();
        let bound = 1 + r.next_below(1_000_000);
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            assert!(x < bound);
            assert_eq!(x, b.next_below(bound));
        }
    });
}
