//! Property tests for the foundations: mesh geometry, address math,
//! histogram invariants and the deterministic RNG.

use proptest::prelude::*;
use sim_base::geom::Dir;
use sim_base::ids::Addr;
use sim_base::rng::SplitMix64;
use sim_base::stats::Histogram;
use sim_base::{Coord, Mesh2D};

proptest! {
    #[test]
    fn mesh_id_coord_bijection(rows in 1u16..64, cols in 1u16..64) {
        prop_assume!((rows as usize) * (cols as usize) <= 4096);
        let m = Mesh2D::new(rows, cols);
        for id in m.tiles() {
            prop_assert_eq!(m.id_of(m.coord_of(id)), id);
        }
        let mut count = 0;
        for c in m.coords() {
            prop_assert_eq!(m.coord_of(m.id_of(c)), c);
            count += 1;
        }
        prop_assert_eq!(count, m.num_tiles());
    }

    #[test]
    fn xy_route_always_terminates_at_destination(
        rows in 1u16..16, cols in 1u16..16, seed in any::<u64>()
    ) {
        let m = Mesh2D::new(rows, cols);
        let mut r = SplitMix64::new(seed);
        let from = Coord::new(
            r.next_below(rows as u64) as u16,
            r.next_below(cols as u64) as u16,
        );
        let to = Coord::new(
            r.next_below(rows as u64) as u16,
            r.next_below(cols as u64) as u16,
        );
        let mut cur = from;
        let mut hops = 0u32;
        loop {
            let d = m.xy_next(cur, to);
            if d == Dir::Local {
                break;
            }
            cur = m.neighbor(cur, d).expect("XY routing never leaves the mesh");
            hops += 1;
            prop_assert!(hops <= (rows as u32 + cols as u32));
        }
        prop_assert_eq!(cur, to);
        prop_assert_eq!(hops, m.manhattan(from, to));
    }

    #[test]
    fn squarest_covers_exactly_n(n in 1usize..2048) {
        let m = Mesh2D::squarest(n);
        prop_assert_eq!(m.num_tiles(), n);
        prop_assert!(m.rows <= m.cols, "prefers wide meshes");
    }

    #[test]
    fn neighbor_relation_is_symmetric(rows in 1u16..10, cols in 1u16..10) {
        let m = Mesh2D::new(rows, cols);
        for c in m.coords() {
            for d in Dir::MESH {
                if let Some(nb) = m.neighbor(c, d) {
                    prop_assert_eq!(m.neighbor(nb, d.opposite()), Some(c));
                }
            }
        }
    }

    #[test]
    fn addr_line_math_consistent(word in 0u64..1_000_000, line_bytes_pow in 4u32..10) {
        let line_bytes = 1u64 << line_bytes_pow;
        let a = Addr::of_word(word);
        let l = a.line(line_bytes);
        prop_assert!(l.base(line_bytes).0 <= a.0);
        prop_assert!(a.0 < l.base(line_bytes).0 + line_bytes);
        prop_assert_eq!(a.line_offset(line_bytes), a.0 - l.base(line_bytes).0);
    }

    #[test]
    fn histogram_count_sum_min_max(samples in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum(), samples.iter().sum::<u64>());
        prop_assert_eq!(h.min(), samples.iter().min().copied());
        prop_assert_eq!(h.max(), samples.iter().max().copied());
        let mean = h.mean();
        prop_assert!(mean >= h.min().unwrap() as f64 && mean <= h.max().unwrap() as f64);
    }

    #[test]
    fn rng_bounded_is_in_range_and_deterministic(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..50 {
            let x = a.next_below(bound);
            prop_assert!(x < bound);
            prop_assert_eq!(x, b.next_below(bound));
        }
    }
}
