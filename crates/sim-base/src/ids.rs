//! Strongly-typed identifiers used across the simulator.
//!
//! Using newtypes instead of bare integers makes it impossible to confuse a
//! core index with a byte address or a cache-line number — bugs that are
//! otherwise common in simulator code where everything is a `usize`.

use std::fmt;

/// Identifier of a core / tile. Tiles are numbered row-major over the mesh:
/// tile `r * cols + c` sits at row `r`, column `c`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

impl CoreId {
    /// Returns the raw index as a `usize`, for indexing per-core tables.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for CoreId {
    fn from(v: usize) -> Self {
        debug_assert!(v <= u16::MAX as usize, "core id {v} out of range");
        CoreId(v as u16)
    }
}

/// A byte address in the simulated physical address space.
///
/// The simulated machine is word-addressed at an 8-byte granularity for
/// data accesses; `Addr` is nevertheless kept byte-granular so cache-line
/// arithmetic matches real hardware.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

/// Number of bytes in a machine word (one register / one scalar element).
pub const WORD_BYTES: u64 = 8;

impl Addr {
    /// Address of the `i`-th word.
    #[inline]
    pub fn of_word(i: u64) -> Addr {
        Addr(i * WORD_BYTES)
    }

    /// The word index this address falls into.
    #[inline]
    pub fn word_index(self) -> u64 {
        self.0 / WORD_BYTES
    }

    /// The cache line this address falls into, for a given line size.
    #[inline]
    pub fn line(self, line_bytes: u64) -> LineAddr {
        debug_assert!(line_bytes.is_power_of_two());
        LineAddr(self.0 / line_bytes)
    }

    /// Byte offset within its cache line.
    #[inline]
    pub fn line_offset(self, line_bytes: u64) -> u64 {
        self.0 % line_bytes
    }

    /// Returns the address advanced by `words` machine words.
    #[inline]
    pub fn add_words(self, words: u64) -> Addr {
        Addr(self.0 + words * WORD_BYTES)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A cache-line number (byte address divided by the line size).
///
/// All coherence-protocol state is keyed by `LineAddr`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u64);

impl LineAddr {
    /// Byte address of the first byte of the line.
    #[inline]
    pub fn base(self, line_bytes: u64) -> Addr {
        Addr(self.0 * line_bytes)
    }
}

impl fmt::Debug for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L0x{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_addressing_round_trips() {
        for i in [0u64, 1, 7, 8, 1024, 123_456] {
            assert_eq!(Addr::of_word(i).word_index(), i);
        }
    }

    #[test]
    fn line_math() {
        let a = Addr(0x1234);
        assert_eq!(a.line(64), LineAddr(0x1234 / 64));
        assert_eq!(a.line_offset(64), 0x1234 % 64);
        assert_eq!(a.line(64).base(64), Addr(0x1234 / 64 * 64));
    }

    #[test]
    fn add_words_advances_bytes() {
        assert_eq!(Addr(0).add_words(3), Addr(24));
        assert_eq!(Addr(8).add_words(1), Addr(16));
    }

    #[test]
    fn core_id_from_usize_and_index() {
        let c = CoreId::from(17usize);
        assert_eq!(c.index(), 17);
        assert_eq!(format!("{c:?}"), "core17");
        assert_eq!(format!("{c}"), "17");
    }

    #[test]
    fn addr_debug_is_hex() {
        assert_eq!(format!("{:?}", Addr(255)), "0xff");
        assert_eq!(format!("{:?}", LineAddr(16)), "L0x10");
    }

    #[test]
    fn same_line_words_share_line() {
        // 64-byte lines hold 8 words.
        let l0 = Addr::of_word(0).line(64);
        for w in 0..8 {
            assert_eq!(Addr::of_word(w).line(64), l0);
        }
        assert_ne!(Addr::of_word(8).line(64), l0);
    }
}
