//! Cycle-level event tracing.
//!
//! Every layer of the simulator (G-lines, controller FSMs, NoC, caches,
//! cores, the real-thread barrier library) can emit typed [`Event`]s into
//! a [`TraceSink`]. The sink is chosen *at compile time* through a generic
//! parameter, so the default [`NullSink`] configuration monomorphizes to
//! literally nothing: [`Tracer::emit`] takes the event as a closure and
//! only calls it when `S::ENABLED` is true, which lets the optimizer
//! delete both the event construction and the call for `NullSink`.
//!
//! Three sinks are provided:
//!
//! * [`NullSink`] — the zero-cost default; tracing compiled out.
//! * [`RingSink`] — keeps the last *N* events for post-mortem dumps when
//!   a differential test diverges or a run wedges.
//! * [`ChromeTraceSink`] — records everything and exports Chrome
//!   `trace_event` JSON for `chrome://tracing` / Perfetto.
//!
//! Components hold a [`Tracer`] (a shared handle, cheap to clone) so one
//! sink observes the whole system in a single time-ordered stream. For
//! real threads (the `swbarrier` crate) use [`SharedTracer`], the
//! `Send + Sync` variant.

use crate::clock::Cycle;
use crate::geom::Dir;
use crate::ids::CoreId;
use crate::json::Json;
use crate::stats::{MsgClass, TimeCat};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;
use std::sync::{Arc, Mutex};

/// Which G-line of a barrier context an event refers to (the paper's
/// `2 × (rows + 1)` wires: gather + release per row, gather + release for
/// the first column).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GlineKind {
    /// A row's horizontal gather line (slaves → row master).
    RowGather,
    /// A row's horizontal release line (row master → slaves).
    RowRelease,
    /// The column gather line (row masters → vertical master).
    ColGather,
    /// The column release line (vertical master → row masters).
    ColRelease,
}

impl GlineKind {
    /// Stable lowercase label used in trace dumps.
    pub fn label(self) -> &'static str {
        match self {
            GlineKind::RowGather => "row_gather",
            GlineKind::RowRelease => "row_release",
            GlineKind::ColGather => "col_gather",
            GlineKind::ColRelease => "col_release",
        }
    }
}

/// Which of the paper's Figure-4 controller automata an event refers to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtrlKind {
    /// Horizontal slave (tiles outside column 0).
    SlaveH,
    /// Horizontal master (column-0 tile of each row).
    MasterH,
    /// Vertical slave (column-0 tiles of rows ≥ 1).
    SlaveV,
    /// Vertical master (tile (0,0)).
    MasterV,
}

impl CtrlKind {
    /// Stable label used in trace dumps.
    pub fn label(self) -> &'static str {
        match self {
            CtrlKind::SlaveH => "slaveH",
            CtrlKind::MasterH => "masterH",
            CtrlKind::SlaveV => "slaveV",
            CtrlKind::MasterV => "masterV",
        }
    }
}

/// One traced occurrence. The variants cover every simulated layer; each
/// carries just enough context to be interpreted on its own.
#[derive(Clone, Debug, PartialEq)]
pub enum Event {
    /// A controller asserted a G-line (transmit edge). `count` is the
    /// number of transmitters on the wire after this assert.
    GlineAssert {
        /// Barrier context.
        ctx: u32,
        /// Which wire.
        kind: GlineKind,
        /// Row of the wire (0 for the column lines).
        row: u16,
        /// Transmitters asserting simultaneously so far this cycle.
        count: u32,
    },
    /// The single receiver of a G-line sensed a nonzero S-CSMA count.
    GlineSense {
        /// Barrier context.
        ctx: u32,
        /// Which wire.
        kind: GlineKind,
        /// Row of the wire (0 for the column lines).
        row: u16,
        /// The sensed transmitter count.
        count: u32,
    },
    /// A Figure-4 controller automaton changed state.
    CtrlTransition {
        /// Barrier context.
        ctx: u32,
        /// Tile hosting the controller.
        core: CoreId,
        /// Which automaton.
        ctrl: CtrlKind,
        /// State before the cycle.
        from: &'static str,
        /// State after the cycle.
        to: &'static str,
    },
    /// A core wrote a nonzero `bar_reg` (arrived at the barrier).
    BarrierArrive {
        /// Barrier context.
        ctx: u32,
        /// The arriving core.
        core: CoreId,
    },
    /// A core's `bar_reg` was cleared by the release wave.
    BarrierRelease {
        /// Barrier context.
        ctx: u32,
        /// The released core.
        core: CoreId,
    },
    /// A barrier episode completed (all members released).
    BarrierComplete {
        /// Barrier context.
        ctx: u32,
        /// Cycles from the last arrival to the release, inclusive.
        latency: Cycle,
    },
    /// A message entered the NoC.
    NocSend {
        /// Packet id (unique per NoC).
        pkt: u64,
        /// Source tile.
        src: CoreId,
        /// Destination tile.
        dst: CoreId,
        /// Virtual network.
        class: MsgClass,
        /// Number of flits.
        flits: u32,
    },
    /// A flit won switch allocation and left a router output port.
    NocFlitHop {
        /// Packet id.
        pkt: u64,
        /// Router the flit departed.
        at: CoreId,
        /// Output port.
        port: Dir,
    },
    /// A complete message left the NoC at its destination.
    NocDeliver {
        /// Packet id.
        pkt: u64,
        /// Destination tile.
        dst: CoreId,
        /// Virtual network.
        class: MsgClass,
        /// Injection-to-delivery latency in cycles.
        latency: Cycle,
    },
    /// An L1 data access was serviced (hit) or started a miss.
    L1Access {
        /// The accessing core.
        core: CoreId,
        /// Byte address.
        addr: u64,
        /// True for stores/atomics.
        write: bool,
        /// True when serviced without the protocol.
        hit: bool,
    },
    /// An L1 line changed MESI state (I = not resident).
    L1Transition {
        /// The cache's core.
        core: CoreId,
        /// Cache-line number.
        line: u64,
        /// State before.
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// A directory entry at a home bank changed state.
    DirTransition {
        /// Home tile.
        home: CoreId,
        /// Cache-line number.
        line: u64,
        /// State before (`"I"`, `"S"`, `"E"`).
        from: &'static str,
        /// State after.
        to: &'static str,
    },
    /// An L2 bank lookup.
    L2Access {
        /// Home tile.
        home: CoreId,
        /// Cache-line number.
        line: u64,
        /// True when the bank held the line.
        hit: bool,
    },
    /// A core retired instructions this cycle.
    Retire {
        /// The core.
        core: CoreId,
        /// Program counter of the first instruction retired.
        pc: u32,
        /// Instructions retired.
        count: u8,
    },
    /// A core finished a multi-cycle stall.
    Stall {
        /// The core.
        core: CoreId,
        /// What the stall was charged to.
        cat: TimeCat,
        /// Stall length in cycles.
        cycles: Cycle,
    },
    /// A core entered a new accounting region (`setregion`).
    Region {
        /// The core.
        core: CoreId,
        /// The new region.
        cat: TimeCat,
    },
    /// A real thread arrived at a software barrier episode.
    SwArrive {
        /// Thread id within the barrier.
        tid: u32,
        /// Episode number (0-based).
        episode: u64,
    },
    /// A real thread was released from a software barrier episode.
    SwRelease {
        /// Thread id within the barrier.
        tid: u32,
        /// Episode number (0-based).
        episode: u64,
    },
}

impl Event {
    /// Short stable name of the variant (Chrome trace `name` field).
    pub fn name(&self) -> &'static str {
        match self {
            Event::GlineAssert { .. } => "gline.assert",
            Event::GlineSense { .. } => "gline.sense",
            Event::CtrlTransition { .. } => "ctrl.transition",
            Event::BarrierArrive { .. } => "barrier.arrive",
            Event::BarrierRelease { .. } => "barrier.release",
            Event::BarrierComplete { .. } => "barrier.complete",
            Event::NocSend { .. } => "noc.send",
            Event::NocFlitHop { .. } => "noc.flit_hop",
            Event::NocDeliver { .. } => "noc.deliver",
            Event::L1Access { .. } => "l1.access",
            Event::L1Transition { .. } => "l1.transition",
            Event::DirTransition { .. } => "dir.transition",
            Event::L2Access { .. } => "l2.access",
            Event::Retire { .. } => "core.retire",
            Event::Stall { .. } => "core.stall",
            Event::Region { .. } => "core.region",
            Event::SwArrive { .. } => "sw.arrive",
            Event::SwRelease { .. } => "sw.release",
        }
    }

    /// The Chrome-trace lane (`tid`) this event renders on: per-core
    /// events use the core index; network-wide and wire-level events get
    /// high-numbered lanes so they group separately.
    pub fn lane(&self) -> u64 {
        match self {
            Event::GlineAssert { row, kind, .. } | Event::GlineSense { row, kind, .. } => {
                1000 + 4 * *row as u64 + *kind as u64
            }
            Event::CtrlTransition { core, .. }
            | Event::BarrierArrive { core, .. }
            | Event::BarrierRelease { core, .. }
            | Event::L1Access { core, .. }
            | Event::L1Transition { core, .. }
            | Event::Retire { core, .. }
            | Event::Stall { core, .. }
            | Event::Region { core, .. } => core.index() as u64,
            Event::DirTransition { home, .. } | Event::L2Access { home, .. } => home.index() as u64,
            Event::BarrierComplete { .. } => 999,
            Event::NocSend { src, .. } => src.index() as u64,
            Event::NocDeliver { dst, .. } => dst.index() as u64,
            Event::NocFlitHop { at, .. } => at.index() as u64,
            Event::SwArrive { tid, .. } | Event::SwRelease { tid, .. } => *tid as u64,
        }
    }

    /// The event's arguments as a JSON object (Chrome trace `args`).
    pub fn args_json(&self) -> Json {
        match self {
            Event::GlineAssert {
                ctx,
                kind,
                row,
                count,
            }
            | Event::GlineSense {
                ctx,
                kind,
                row,
                count,
            } => Json::obj([
                ("ctx", Json::from(*ctx)),
                ("line", Json::from(kind.label())),
                ("row", Json::from(*row)),
                ("count", Json::from(*count)),
            ]),
            Event::CtrlTransition {
                ctx,
                core,
                ctrl,
                from,
                to,
            } => Json::obj([
                ("ctx", Json::from(*ctx)),
                ("core", Json::from(core.index())),
                ("ctrl", Json::from(ctrl.label())),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
            ]),
            Event::BarrierArrive { ctx, core } | Event::BarrierRelease { ctx, core } => {
                Json::obj([
                    ("ctx", Json::from(*ctx)),
                    ("core", Json::from(core.index())),
                ])
            }
            Event::BarrierComplete { ctx, latency } => {
                Json::obj([("ctx", Json::from(*ctx)), ("latency", Json::from(*latency))])
            }
            Event::NocSend {
                pkt,
                src,
                dst,
                class,
                flits,
            } => Json::obj([
                ("pkt", Json::from(*pkt)),
                ("src", Json::from(src.index())),
                ("dst", Json::from(dst.index())),
                ("class", Json::from(class.label())),
                ("flits", Json::from(*flits)),
            ]),
            Event::NocFlitHop { pkt, at, port } => Json::obj([
                ("pkt", Json::from(*pkt)),
                ("at", Json::from(at.index())),
                ("port", Json::from(format!("{port:?}"))),
            ]),
            Event::NocDeliver {
                pkt,
                dst,
                class,
                latency,
            } => Json::obj([
                ("pkt", Json::from(*pkt)),
                ("dst", Json::from(dst.index())),
                ("class", Json::from(class.label())),
                ("latency", Json::from(*latency)),
            ]),
            Event::L1Access {
                core,
                addr,
                write,
                hit,
            } => Json::obj([
                ("core", Json::from(core.index())),
                ("addr", Json::from(*addr)),
                ("write", Json::from(*write)),
                ("hit", Json::from(*hit)),
            ]),
            Event::L1Transition {
                core,
                line,
                from,
                to,
            } => Json::obj([
                ("core", Json::from(core.index())),
                ("line", Json::from(*line)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
            ]),
            Event::DirTransition {
                home,
                line,
                from,
                to,
            } => Json::obj([
                ("home", Json::from(home.index())),
                ("line", Json::from(*line)),
                ("from", Json::from(*from)),
                ("to", Json::from(*to)),
            ]),
            Event::L2Access { home, line, hit } => Json::obj([
                ("home", Json::from(home.index())),
                ("line", Json::from(*line)),
                ("hit", Json::from(*hit)),
            ]),
            Event::Retire { core, pc, count } => Json::obj([
                ("core", Json::from(core.index())),
                ("pc", Json::from(*pc)),
                ("count", Json::from(*count)),
            ]),
            Event::Stall { core, cat, cycles } => Json::obj([
                ("core", Json::from(core.index())),
                ("cat", Json::from(cat.label())),
                ("cycles", Json::from(*cycles)),
            ]),
            Event::Region { core, cat } => Json::obj([
                ("core", Json::from(core.index())),
                ("cat", Json::from(cat.label())),
            ]),
            Event::SwArrive { tid, episode } | Event::SwRelease { tid, episode } => {
                Json::obj([("tid", Json::from(*tid)), ("episode", Json::from(*episode))])
            }
        }
    }
}

impl fmt::Display for Event {
    /// One stable line per event — the format the golden-trace files pin.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::GlineAssert {
                ctx,
                kind,
                row,
                count,
            } => {
                write!(
                    f,
                    "gline.assert ctx{ctx} {} row{row} count={count}",
                    kind.label()
                )
            }
            Event::GlineSense {
                ctx,
                kind,
                row,
                count,
            } => {
                write!(
                    f,
                    "gline.sense ctx{ctx} {} row{row} count={count}",
                    kind.label()
                )
            }
            Event::CtrlTransition {
                ctx,
                core,
                ctrl,
                from,
                to,
            } => {
                write!(f, "ctrl ctx{ctx} {} {:?} {from}->{to}", ctrl.label(), core)
            }
            Event::BarrierArrive { ctx, core } => write!(f, "barrier.arrive ctx{ctx} {core:?}"),
            Event::BarrierRelease { ctx, core } => write!(f, "barrier.release ctx{ctx} {core:?}"),
            Event::BarrierComplete { ctx, latency } => {
                write!(f, "barrier.complete ctx{ctx} latency={latency}")
            }
            Event::NocSend {
                pkt,
                src,
                dst,
                class,
                flits,
            } => {
                write!(
                    f,
                    "noc.send pkt{pkt} {src:?}->{dst:?} {} flits={flits}",
                    class.label()
                )
            }
            Event::NocFlitHop { pkt, at, port } => {
                write!(f, "noc.flit_hop pkt{pkt} at={at:?} port={port:?}")
            }
            Event::NocDeliver {
                pkt,
                dst,
                class,
                latency,
            } => {
                write!(
                    f,
                    "noc.deliver pkt{pkt} {dst:?} {} latency={latency}",
                    class.label()
                )
            }
            Event::L1Access {
                core,
                addr,
                write,
                hit,
            } => write!(
                f,
                "l1.access {core:?} addr=0x{addr:x} {} {}",
                if *write { "write" } else { "read" },
                if *hit { "hit" } else { "miss" }
            ),
            Event::L1Transition {
                core,
                line,
                from,
                to,
            } => {
                write!(f, "l1.transition {core:?} L0x{line:x} {from}->{to}")
            }
            Event::DirTransition {
                home,
                line,
                from,
                to,
            } => {
                write!(f, "dir.transition {home:?} L0x{line:x} {from}->{to}")
            }
            Event::L2Access { home, line, hit } => write!(
                f,
                "l2.access {home:?} L0x{line:x} {}",
                if *hit { "hit" } else { "miss" }
            ),
            Event::Retire { core, pc, count } => {
                write!(f, "core.retire {core:?} pc={pc} count={count}")
            }
            Event::Stall { core, cat, cycles } => {
                write!(f, "core.stall {core:?} {} cycles={cycles}", cat.label())
            }
            Event::Region { core, cat } => write!(f, "core.region {core:?} {}", cat.label()),
            Event::SwArrive { tid, episode } => write!(f, "sw.arrive t{tid} ep{episode}"),
            Event::SwRelease { tid, episode } => write!(f, "sw.release t{tid} ep{episode}"),
        }
    }
}

/// Destination of traced events.
///
/// `ENABLED` is an associated constant so the compiler can remove every
/// trace site when a disabled sink ([`NullSink`]) is monomorphized in.
pub trait TraceSink {
    /// Whether [`Tracer::emit`] should construct and forward events.
    const ENABLED: bool = true;

    /// Records one event at `cycle`.
    fn emit(&mut self, cycle: Cycle, ev: Event);
}

/// The zero-cost default sink: tracing compiled out entirely.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    const ENABLED: bool = false;

    #[inline(always)]
    fn emit(&mut self, _cycle: Cycle, _ev: Event) {}
}

/// Keeps the most recent `capacity` events for post-mortem dumps.
#[derive(Clone, Debug)]
pub struct RingSink {
    capacity: usize,
    buf: VecDeque<(Cycle, Event)>,
    /// Total events observed, including evicted ones.
    seen: u64,
}

impl RingSink {
    /// A ring holding the last `capacity` events (capacity 0 keeps none).
    pub fn new(capacity: usize) -> RingSink {
        RingSink {
            capacity,
            buf: VecDeque::with_capacity(capacity.min(4096)),
            seen: 0,
        }
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &(Cycle, Event)> {
        self.buf.iter()
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events observed since creation (retained or evicted).
    pub fn total_seen(&self) -> u64 {
        self.seen
    }

    /// Multi-line human-readable dump of the retained events.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        let evicted = self.seen - self.buf.len() as u64;
        if evicted > 0 {
            s.push_str(&format!("... {evicted} earlier events evicted ...\n"));
        }
        for (cycle, ev) in &self.buf {
            s.push_str(&format!("{cycle:>8} {ev}\n"));
        }
        s
    }
}

impl TraceSink for RingSink {
    fn emit(&mut self, cycle: Cycle, ev: Event) {
        self.seen += 1;
        if self.capacity == 0 {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
        }
        self.buf.push_back((cycle, ev));
    }
}

/// Records every event and exports Chrome `trace_event` JSON.
#[derive(Clone, Debug, Default)]
pub struct ChromeTraceSink {
    events: Vec<(Cycle, Event)>,
}

impl ChromeTraceSink {
    /// An empty sink.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[(Cycle, Event)] {
        &self.events
    }

    /// The trace as a Chrome `trace_event` JSON tree: an object with a
    /// `traceEvents` array of instant events, one microsecond per
    /// simulated cycle.
    pub fn to_chrome_json(&self) -> Json {
        let events: Vec<Json> = self
            .events
            .iter()
            .map(|(cycle, ev)| {
                Json::obj([
                    ("name", Json::from(ev.name())),
                    ("cat", Json::from(category_of(ev))),
                    ("ph", Json::from("i")),
                    ("s", Json::from("t")),
                    ("ts", Json::from(*cycle)),
                    ("pid", Json::from(0u64)),
                    ("tid", Json::from(ev.lane())),
                    ("args", ev.args_json()),
                ])
            })
            .collect();
        Json::obj([
            ("traceEvents", Json::Arr(events)),
            ("displayTimeUnit", Json::from("ms")),
            (
                "otherData",
                Json::obj([("clock", Json::from("simulated-cycles"))]),
            ),
        ])
    }

    /// Serializes the trace to a Chrome-loadable JSON string.
    pub fn to_json_string(&self) -> String {
        self.to_chrome_json().pretty()
    }
}

fn category_of(ev: &Event) -> &'static str {
    match ev {
        Event::GlineAssert { .. }
        | Event::GlineSense { .. }
        | Event::CtrlTransition { .. }
        | Event::BarrierArrive { .. }
        | Event::BarrierRelease { .. }
        | Event::BarrierComplete { .. } => "gline",
        Event::NocSend { .. } | Event::NocFlitHop { .. } | Event::NocDeliver { .. } => "noc",
        Event::L1Access { .. }
        | Event::L1Transition { .. }
        | Event::DirTransition { .. }
        | Event::L2Access { .. } => "mem",
        Event::Retire { .. } | Event::Stall { .. } | Event::Region { .. } => "core",
        Event::SwArrive { .. } | Event::SwRelease { .. } => "sw",
    }
}

impl TraceSink for ChromeTraceSink {
    fn emit(&mut self, cycle: Cycle, ev: Event) {
        self.events.push((cycle, ev));
    }
}

/// A shared handle to a sink, held by every component of one simulated
/// system. Cloning shares the underlying sink.
pub struct Tracer<S: TraceSink> {
    sink: Rc<RefCell<S>>,
}

impl<S: TraceSink> Tracer<S> {
    /// Wraps a sink.
    pub fn new(sink: S) -> Tracer<S> {
        Tracer {
            sink: Rc::new(RefCell::new(sink)),
        }
    }

    /// True when this tracer's sink type records events.
    #[inline(always)]
    pub fn enabled(&self) -> bool {
        S::ENABLED
    }

    /// Emits an event. The closure is only evaluated when the sink type is
    /// enabled, so with [`NullSink`] the whole call compiles away.
    #[inline(always)]
    pub fn emit(&self, cycle: Cycle, ev: impl FnOnce() -> Event) {
        if S::ENABLED {
            self.sink.borrow_mut().emit(cycle, ev());
        }
    }

    /// Runs `f` with exclusive access to the sink (to read a ring buffer
    /// back out, export a Chrome trace, …).
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.sink.borrow_mut())
    }
}

impl<S: TraceSink> Clone for Tracer<S> {
    fn clone(&self) -> Self {
        Tracer {
            sink: Rc::clone(&self.sink),
        }
    }
}

impl<S: TraceSink> fmt::Debug for Tracer<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tracer<{}>", std::any::type_name::<S>())
    }
}

impl Default for Tracer<NullSink> {
    fn default() -> Self {
        Tracer::new(NullSink)
    }
}

/// The `Send + Sync` tracer for real threads (`swbarrier`): same contract
/// as [`Tracer`] but the sink sits behind a mutex, and timestamps are a
/// global arrival order rather than simulated cycles.
pub struct SharedTracer<S: TraceSink> {
    sink: Arc<Mutex<S>>,
}

impl<S: TraceSink> SharedTracer<S> {
    /// Wraps a sink.
    pub fn new(sink: S) -> SharedTracer<S> {
        SharedTracer {
            sink: Arc::new(Mutex::new(sink)),
        }
    }

    /// Emits an event; the closure only runs when the sink is enabled.
    #[inline(always)]
    pub fn emit(&self, stamp: Cycle, ev: impl FnOnce() -> Event) {
        if S::ENABLED {
            self.sink.lock().unwrap().emit(stamp, ev());
        }
    }

    /// Runs `f` with exclusive access to the sink.
    pub fn with_sink<R>(&self, f: impl FnOnce(&mut S) -> R) -> R {
        f(&mut self.sink.lock().unwrap())
    }
}

impl<S: TraceSink> Clone for SharedTracer<S> {
    fn clone(&self) -> Self {
        SharedTracer {
            sink: Arc::clone(&self.sink),
        }
    }
}

impl<S: TraceSink> fmt::Debug for SharedTracer<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedTracer<{}>", std::any::type_name::<S>())
    }
}

impl Default for SharedTracer<NullSink> {
    fn default() -> Self {
        SharedTracer::new(NullSink)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn ev(core: u16) -> Event {
        Event::BarrierArrive {
            ctx: 0,
            core: CoreId(core),
        }
    }

    #[test]
    fn null_sink_is_disabled_and_skips_event_construction() {
        let t = Tracer::new(NullSink);
        assert!(!t.enabled());
        let mut constructed = false;
        t.emit(0, || {
            constructed = true;
            ev(0)
        });
        assert!(!constructed, "NullSink must not evaluate the event closure");
    }

    #[test]
    fn ring_sink_keeps_last_n() {
        let t = Tracer::new(RingSink::new(3));
        for i in 0..10u16 {
            t.emit(i as Cycle, || ev(i));
        }
        t.with_sink(|s| {
            assert_eq!(s.len(), 3);
            assert_eq!(s.total_seen(), 10);
            let kept: Vec<Cycle> = s.events().map(|(c, _)| *c).collect();
            assert_eq!(kept, vec![7, 8, 9]);
            assert!(s.dump().contains("7 earlier events evicted"));
        });
    }

    #[test]
    fn ring_capacity_zero_counts_but_keeps_nothing() {
        let mut s = RingSink::new(0);
        s.emit(1, ev(1));
        assert!(s.is_empty());
        assert_eq!(s.total_seen(), 1);
    }

    #[test]
    fn cloned_tracers_share_one_sink() {
        let t = Tracer::new(RingSink::new(8));
        let t2 = t.clone();
        t.emit(1, || ev(1));
        t2.emit(2, || ev(2));
        t.with_sink(|s| assert_eq!(s.len(), 2));
    }

    #[test]
    fn chrome_export_is_valid_json_with_trace_events() {
        let t = Tracer::new(ChromeTraceSink::new());
        t.emit(0, || ev(3));
        t.emit(4, || Event::BarrierComplete { ctx: 0, latency: 4 });
        let text = t.with_sink(|s| s.to_json_string());
        let parsed = json::parse(&text).expect("chrome trace must be valid JSON");
        let events = parsed.get("traceEvents").and_then(Json::as_arr).unwrap();
        assert_eq!(events.len(), 2);
        for e in events {
            assert!(e.get("name").and_then(Json::as_str).is_some());
            assert_eq!(e.get("ph").and_then(Json::as_str), Some("i"));
            assert!(e.get("ts").and_then(Json::as_u64).is_some());
            assert!(e.get("pid").and_then(Json::as_u64).is_some());
            assert!(e.get("tid").and_then(Json::as_u64).is_some());
        }
        assert_eq!(events[1].get("ts").and_then(Json::as_u64), Some(4));
    }

    #[test]
    fn event_display_is_stable() {
        let e = Event::GlineSense {
            ctx: 0,
            kind: GlineKind::RowGather,
            row: 2,
            count: 7,
        };
        assert_eq!(e.to_string(), "gline.sense ctx0 row_gather row2 count=7");
        let e = Event::CtrlTransition {
            ctx: 1,
            core: CoreId(8),
            ctrl: CtrlKind::MasterH,
            from: "Accounting",
            to: "Waiting",
        };
        assert_eq!(e.to_string(), "ctrl ctx1 masterH core8 Accounting->Waiting");
    }

    #[test]
    fn shared_tracer_works_across_threads() {
        let t = SharedTracer::new(RingSink::new(64));
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let t = t.clone();
                std::thread::spawn(move || {
                    t.emit(i as Cycle, || Event::SwArrive { tid: i, episode: 0 });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        t.with_sink(|s| assert_eq!(s.len(), 4));
    }
}
