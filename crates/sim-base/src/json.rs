//! A small self-contained JSON tree, writer and parser.
//!
//! The simulator emits reports, figures and Chrome traces as JSON and the
//! test suite parses them back. Keeping the implementation in-repo keeps
//! the workspace dependency-free (it builds with no registry access) while
//! covering everything the harness needs: the full JSON grammar, exact
//! `u64`/`i64` round-trips for cycle counts, escaping, and pretty-printing.

use std::collections::BTreeMap;
use std::fmt;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (cycle counts; kept exact beyond 2^53).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Insertion order is preserved.
    Obj(Vec<(String, Json)>),
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}
impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::U64(v)
    }
}
impl From<u32> for Json {
    fn from(v: u32) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u16> for Json {
    fn from(v: u16) -> Json {
        Json::U64(v as u64)
    }
}
impl From<u8> for Json {
    fn from(v: u8) -> Json {
        Json::U64(v as u64)
    }
}
impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::U64(v as u64)
    }
}
impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::I64(v)
    }
}
impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::F64(v)
    }
}
impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}
impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}
impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

impl Json {
    /// Builds an object from `(key, value)` pairs.
    pub fn obj<K: Into<String>, V: Into<Json>>(pairs: impl IntoIterator<Item = (K, V)>) -> Json {
        Json::Obj(
            pairs
                .into_iter()
                .map(|(k, v)| (k.into(), v.into()))
                .collect(),
        )
    }

    /// Builds an array from values.
    pub fn arr<V: Into<Json>>(items: impl IntoIterator<Item = V>) -> Json {
        Json::Arr(items.into_iter().map(Into::into).collect())
    }

    /// Looks a key up in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as `u64` if it is an integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(v) => Some(v),
            Json::I64(v) if v >= 0 => Some(v as u64),
            _ => None,
        }
    }

    /// The value as `f64` if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(v) => Some(v as f64),
            Json::I64(v) => Some(v as f64),
            Json::F64(v) => Some(v),
            _ => None,
        }
    }

    /// The value as `&str` if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn dump(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, None, 0);
        s
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut s = String::new();
        self.write(&mut s, Some(2), 0);
        s
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(v) => out.push_str(&v.to_string()),
            Json::I64(v) => out.push_str(&v.to_string()),
            Json::F64(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    item.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    newline(out, indent, depth + 1);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                newline(out, indent, depth);
                out.push('}');
            }
        }
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.dump())
    }
}

fn newline(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', n * depth));
    }
}

fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        // Always keep a decimal point / exponent so the value parses back
        // as a float, not an integer.
        let s = format!("{v}");
        let fractional = s.contains('.') || s.contains('e') || s.contains('E');
        out.push_str(&s);
        if !fractional {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; emit null like serde_json does.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with the byte offset it occurred at.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub at: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON parse error at byte {}: {}", self.at, self.msg)
    }
}

impl std::error::Error for ParseError {}

/// Parses a complete JSON document (trailing whitespace allowed).
pub fn parse(input: &str) -> Result<Json, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> ParseError {
        ParseError {
            at: self.pos,
            msg: msg.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        let mut seen = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if seen.insert(key.clone(), ()).is_some() {
                return Err(self.err(&format!("duplicate key {key:?}")));
            }
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            pairs.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'n' => s.push('\n'),
                        b'r' => s.push('\r'),
                        b't' => s.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let cp = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00)
                            } else {
                                hi
                            };
                            s.push(
                                char::from_u32(cp).ok_or_else(|| self.err("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let c = self
                .peek()
                .ok_or_else(|| self.err("unterminated \\u escape"))?;
            let d = (c as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
            self.pos += 1;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !float {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Json::U64(v));
            }
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::I64(v));
            }
        }
        text.parse::<f64>()
            .map(Json::F64)
            .map_err(|_| self.err("invalid number"))
    }
}

/// Conversion of a value into its JSON representation.
pub trait ToJson {
    /// Renders `self` as a [`Json`] tree.
    fn to_json(&self) -> Json;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for (text, v) in [
            ("null", Json::Null),
            ("true", Json::Bool(true)),
            ("false", Json::Bool(false)),
            ("0", Json::U64(0)),
            ("18446744073709551615", Json::U64(u64::MAX)),
            ("-42", Json::I64(-42)),
            ("1.5", Json::F64(1.5)),
            ("\"hi\"", Json::Str("hi".into())),
        ] {
            assert_eq!(parse(text).unwrap(), v, "{text}");
            assert_eq!(parse(&v.dump()).unwrap(), v, "{text}");
        }
    }

    #[test]
    fn nested_structure_round_trips() {
        let v = Json::obj([
            ("name", Json::from("g-line")),
            ("cycles", Json::from(4u64)),
            ("ratio", Json::from(0.25)),
            ("tags", Json::arr(["a", "b"])),
            (
                "nested",
                Json::obj([("empty", Json::Arr(vec![])), ("n", Json::Null)]),
            ),
        ]);
        for text in [v.dump(), v.pretty()] {
            assert_eq!(parse(&text).unwrap(), v);
        }
    }

    #[test]
    fn string_escapes() {
        let s = "quote\" slash\\ newline\n tab\t unicode ü 🚀";
        let v = Json::Str(s.into());
        assert_eq!(parse(&v.dump()).unwrap(), v);
        // Surrogate-pair escape decodes to one astral code point.
        assert_eq!(parse("\"\\ud83d\\ude00\"").unwrap(), Json::Str("😀".into()));
    }

    #[test]
    fn float_always_reparses_as_float() {
        // 2.0 must not serialize as "2" (which would parse back to U64).
        assert_eq!(parse(&Json::F64(2.0).dump()).unwrap(), Json::F64(2.0));
    }

    #[test]
    fn errors_are_located() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\":}",
            "tru",
            "\"open",
            "{\"a\":1,\"a\":2}",
            "1 2",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
        let e = parse("[1, x]").unwrap_err();
        assert_eq!(e.at, 4);
    }

    #[test]
    fn accessors() {
        let v = parse(r#"{"a": 1, "b": "x", "c": [true], "d": 1.5}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
        assert_eq!(v.get("b").and_then(Json::as_str), Some("x"));
        assert_eq!(
            v.get("c").and_then(Json::as_arr).map(<[Json]>::len),
            Some(1)
        );
        assert_eq!(v.get("d").and_then(Json::as_f64), Some(1.5));
        assert_eq!(v.get("missing"), None);
    }
}
