//! Statistics plumbing: the categories of Figures 6 and 7, counters and
//! histograms.
//!
//! The paper breaks **execution time** into `Barrier`, `Write`, `Read`,
//! `Lock` and `Busy` (Figure 6) and **network traffic** into `Coherence`,
//! `Request` and `Reply` messages (Figure 7). These enums are shared by the
//! memory system, the NoC and the reporting harness so every crate counts
//! into the same buckets.

use std::fmt;
use std::ops::{AddAssign, Index, IndexMut};

/// Execution-time categories of Figure 6.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum TimeCat {
    /// Time in barrier notification + busy-wait + release (S1+S2+S3).
    Barrier,
    /// Stall cycles attributable to stores.
    Write,
    /// Stall cycles attributable to loads.
    Read,
    /// Time in lock acquisition/release.
    Lock,
    /// Computation (issue of ALU ops and non-stalled cycles).
    Busy,
}

impl TimeCat {
    /// All categories, in the paper's legend order.
    pub const ALL: [TimeCat; 5] = [
        TimeCat::Barrier,
        TimeCat::Write,
        TimeCat::Read,
        TimeCat::Lock,
        TimeCat::Busy,
    ];

    /// Dense index for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            TimeCat::Barrier => 0,
            TimeCat::Write => 1,
            TimeCat::Read => 2,
            TimeCat::Lock => 3,
            TimeCat::Busy => 4,
        }
    }

    /// Display label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            TimeCat::Barrier => "Barrier",
            TimeCat::Write => "Write",
            TimeCat::Read => "Read",
            TimeCat::Lock => "Lock",
            TimeCat::Busy => "Busy",
        }
    }
}

/// Network-traffic categories of Figure 7. Each maps to one virtual
/// network in the NoC, which also gives protocol deadlock freedom.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MsgClass {
    /// Load/store/atomic requests travelling to an L2 home bank.
    Request,
    /// Data and acknowledgement replies.
    Reply,
    /// Protocol-generated traffic: invalidations, fetches, write-backs,
    /// invalidation acks.
    Coherence,
}

impl MsgClass {
    /// All classes, in the paper's legend order (bottom-up in Fig. 7).
    pub const ALL: [MsgClass; 3] = [MsgClass::Request, MsgClass::Reply, MsgClass::Coherence];

    /// Dense index; also the virtual-network number.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            MsgClass::Request => 0,
            MsgClass::Reply => 1,
            MsgClass::Coherence => 2,
        }
    }

    /// Display label used in the figures.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Request => "Request",
            MsgClass::Reply => "Reply",
            MsgClass::Coherence => "Coherence",
        }
    }
}

/// Cycles accumulated per [`TimeCat`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    cycles: [u64; 5],
}

impl TimeBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> TimeBreakdown {
        TimeBreakdown::default()
    }

    /// Adds `n` cycles to a category.
    #[inline]
    pub fn add(&mut self, cat: TimeCat, n: u64) {
        self.cycles[cat.index()] += n;
    }

    /// Total cycles across all categories.
    pub fn total(&self) -> u64 {
        self.cycles.iter().sum()
    }

    /// Fraction of the total in `cat` (0 when empty).
    pub fn fraction(&self, cat: TimeCat) -> f64 {
        let t = self.total();
        if t == 0 {
            0.0
        } else {
            self[cat] as f64 / t as f64
        }
    }
}

impl Index<TimeCat> for TimeBreakdown {
    type Output = u64;
    fn index(&self, cat: TimeCat) -> &u64 {
        &self.cycles[cat.index()]
    }
}

impl IndexMut<TimeCat> for TimeBreakdown {
    fn index_mut(&mut self, cat: TimeCat) -> &mut u64 {
        &mut self.cycles[cat.index()]
    }
}

impl AddAssign for TimeBreakdown {
    fn add_assign(&mut self, rhs: TimeBreakdown) {
        for i in 0..self.cycles.len() {
            self.cycles[i] += rhs.cycles[i];
        }
    }
}

/// Message counts per [`MsgClass`].
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TrafficBreakdown {
    msgs: [u64; 3],
}

impl TrafficBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> TrafficBreakdown {
        TrafficBreakdown::default()
    }

    /// Counts one message of class `c`.
    #[inline]
    pub fn add(&mut self, c: MsgClass, n: u64) {
        self.msgs[c.index()] += n;
    }

    /// Total messages.
    pub fn total(&self) -> u64 {
        self.msgs.iter().sum()
    }
}

impl Index<MsgClass> for TrafficBreakdown {
    type Output = u64;
    fn index(&self, c: MsgClass) -> &u64 {
        &self.msgs[c.index()]
    }
}

impl IndexMut<MsgClass> for TrafficBreakdown {
    fn index_mut(&mut self, c: MsgClass) -> &mut u64 {
        &mut self.msgs[c.index()]
    }
}

impl AddAssign for TrafficBreakdown {
    fn add_assign(&mut self, rhs: TrafficBreakdown) {
        for i in 0..self.msgs.len() {
            self.msgs[i] += rhs.msgs[i];
        }
    }
}

/// A simple power-of-two-bucketed latency histogram.
///
/// Bucket `i` counts samples in `[2^i, 2^(i+1))`, except bucket 0 which
/// counts 0 and 1. Cheap enough to keep per message class.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Histogram {
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one sample.
    pub fn record(&mut self, v: u64) {
        let b = if v <= 1 {
            0
        } else {
            64 - (v.leading_zeros() as usize) - 1
        };
        if self.buckets.len() <= b {
            self.buckets.resize(b + 1, 0);
        }
        self.buckets[b] += 1;
        self.count += 1;
        // Saturate: a sample near u64::MAX (itself saturated upstream)
        // must not wrap the running sum.
        self.sum = self.sum.saturating_add(v);
        if self.count == 1 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of the samples, 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Smallest recorded sample (`None` when empty).
    pub fn min(&self) -> Option<u64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest recorded sample (`None` when empty).
    pub fn max(&self) -> Option<u64> {
        (self.count > 0).then_some(self.max)
    }

    /// Sum of all samples.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Folds another histogram into this one, as if every sample of
    /// `other` had been [`record`](Self::record)ed here directly.
    ///
    /// This is the shard-merge operation of the parallel engines: it is
    /// associative and commutative (bucket counts, counts and saturating
    /// sums add; min/max combine), so any reduction order over per-shard
    /// histograms yields the identical merged histogram. Property-tested
    /// below.
    pub fn merge(&mut self, other: &Histogram) {
        if self.buckets.len() < other.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        // The empty sentinels (min = u64::MAX, max = 0) are the
        // identities of min/max, so empty histograms merge as no-ops
        // and the result stays field-identical to direct recording.
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl fmt::Display for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.1} min={} max={}",
            self.count,
            self.mean(),
            self.min().unwrap_or(0),
            self.max().unwrap_or(0)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breakdown_accumulates() {
        let mut b = TimeBreakdown::new();
        b.add(TimeCat::Busy, 100);
        b.add(TimeCat::Barrier, 50);
        b.add(TimeCat::Barrier, 25);
        assert_eq!(b[TimeCat::Barrier], 75);
        assert_eq!(b.total(), 175);
        assert!((b.fraction(TimeCat::Busy) - 100.0 / 175.0).abs() < 1e-12);
    }

    #[test]
    fn breakdown_add_assign() {
        let mut a = TimeBreakdown::new();
        a.add(TimeCat::Read, 10);
        let mut b = TimeBreakdown::new();
        b.add(TimeCat::Read, 5);
        b.add(TimeCat::Write, 7);
        a += b;
        assert_eq!(a[TimeCat::Read], 15);
        assert_eq!(a[TimeCat::Write], 7);
    }

    #[test]
    fn traffic_accumulates() {
        let mut t = TrafficBreakdown::new();
        t.add(MsgClass::Request, 3);
        t.add(MsgClass::Reply, 2);
        t.add(MsgClass::Coherence, 1);
        assert_eq!(t.total(), 6);
        assert_eq!(t[MsgClass::Request], 3);
    }

    #[test]
    fn histogram_stats() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.record(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min(), Some(1));
        assert_eq!(h.max(), Some(100));
        assert!((h.mean() - 22.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), None);
        assert_eq!(h.max(), None);
    }

    #[test]
    fn histogram_sum_saturates_instead_of_wrapping() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX);
        assert_eq!(h.sum(), u64::MAX, "sum must clamp, not wrap");
        assert_eq!(h.count(), 2);
        assert_eq!(h.max(), Some(u64::MAX));
        // The mean of a clamped sum is still finite and sane.
        assert!(h.mean() <= u64::MAX as f64);
    }

    /// Draws a histogram of 0..=24 samples spanning empty, tiny and
    /// huge (near-saturating) values — the shapes the shard merge has
    /// to get right.
    fn arbitrary_histogram(rng: &mut crate::rng::SplitMix64) -> Histogram {
        let mut h = Histogram::new();
        for _ in 0..rng.next_below(25) {
            let v = match rng.next_below(4) {
                0 => rng.next_below(4),
                1 => rng.next_below(1 << 20),
                2 => rng.next_u64(),
                _ => u64::MAX - rng.next_below(3),
            };
            h.record(v);
        }
        h
    }

    #[test]
    fn histogram_merge_matches_direct_recording() {
        // merge(a, b) must be field-identical to recording all of a's
        // and b's samples into one histogram; replay the samples by
        // regenerating them from the same seeds.
        crate::check::forall("histogram_merge_direct", |rng| {
            let samples: Vec<u64> = (0..rng.next_below(40))
                .map(|_| match rng.next_below(3) {
                    0 => rng.next_below(8),
                    1 => rng.next_below(1 << 30),
                    _ => rng.next_u64(),
                })
                .collect();
            let split = if samples.is_empty() {
                0
            } else {
                rng.next_below(samples.len() as u64 + 1) as usize
            };
            let mut merged = Histogram::new();
            let mut right = Histogram::new();
            for v in &samples[..split] {
                merged.record(*v);
            }
            for v in &samples[split..] {
                right.record(*v);
            }
            merged.merge(&right);
            let mut direct = Histogram::new();
            for v in &samples {
                direct.record(*v);
            }
            assert_eq!(merged, direct, "merge diverges from direct recording");
        });
    }

    #[test]
    fn histogram_merge_is_commutative() {
        crate::check::forall("histogram_merge_commutes", |rng| {
            let a = arbitrary_histogram(rng);
            let b = arbitrary_histogram(rng);
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            assert_eq!(ab, ba, "merge must commute");
        });
    }

    #[test]
    fn histogram_merge_is_associative() {
        crate::check::forall("histogram_merge_assoc", |rng| {
            let a = arbitrary_histogram(rng);
            let b = arbitrary_histogram(rng);
            let c = arbitrary_histogram(rng);
            let mut left = a.clone();
            left.merge(&b);
            left.merge(&c);
            let mut bc = b.clone();
            bc.merge(&c);
            let mut right = a.clone();
            right.merge(&bc);
            assert_eq!(left, right, "merge must associate");
        });
    }

    #[test]
    fn histogram_merge_empty_is_identity() {
        crate::check::forall("histogram_merge_identity", |rng| {
            let a = arbitrary_histogram(rng);
            let mut left = Histogram::new();
            left.merge(&a);
            assert_eq!(left, a, "empty.merge(a) != a");
            let mut right = a.clone();
            right.merge(&Histogram::new());
            assert_eq!(right, a, "a.merge(empty) != a");
        });
    }

    #[test]
    fn fraction_of_empty_is_zero() {
        let b = TimeBreakdown::new();
        assert_eq!(b.fraction(TimeCat::Lock), 0.0);
    }

    #[test]
    fn category_indices_are_dense_and_unique() {
        let mut seen = [false; 5];
        for c in TimeCat::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
        let mut seen = [false; 3];
        for c in MsgClass::ALL {
            assert!(!seen[c.index()]);
            seen[c.index()] = true;
        }
    }
}
