//! A minimal property-testing loop.
//!
//! The workspace builds with no external crates, so instead of `proptest`
//! the property tests run a deterministic seed sweep: every case gets its
//! own [`SplitMix64`] stream derived from the property name and case
//! index, and a failing case reports the exact seed to replay with
//! [`forall_seeded`]. There is no shrinking — generators are written so a
//! raw failing case is already small enough to debug (the seed sweep stays
//! reproducible across runs and platforms).

use crate::rng::SplitMix64;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Default number of cases per property.
pub const DEFAULT_CASES: u32 = 64;

/// Runs `prop` for [`DEFAULT_CASES`] deterministic cases.
///
/// `name` seeds the case streams, so distinct properties explore distinct
/// inputs; it is also printed when a case fails.
pub fn forall(name: &str, prop: impl FnMut(&mut SplitMix64)) {
    forall_cases(name, DEFAULT_CASES, prop);
}

/// Runs `prop` for `cases` deterministic cases.
pub fn forall_cases(name: &str, cases: u32, mut prop: impl FnMut(&mut SplitMix64)) {
    for case in 0..cases {
        let seed = case_seed(name, case);
        let result = catch_unwind(AssertUnwindSafe(|| {
            let mut rng = SplitMix64::new(seed);
            prop(&mut rng);
        }));
        if let Err(payload) = result {
            eprintln!(
                "property {name:?} failed at case {case}/{cases} \
                 (replay: forall_seeded({name:?}, {seed:#x}, ..))"
            );
            resume_unwind(payload);
        }
    }
}

/// Replays one property case from an explicit seed (printed on failure).
pub fn forall_seeded(name: &str, seed: u64, mut prop: impl FnMut(&mut SplitMix64)) {
    let _ = name;
    let mut rng = SplitMix64::new(seed);
    prop(&mut rng);
}

/// Derives a per-case seed from the property name and case index (FNV-1a
/// over the name, mixed with the index).
fn case_seed(name: &str, case: u32) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h ^ SplitMix64::new(case as u64).next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_requested_number_of_cases() {
        let mut n = 0;
        forall_cases("count", 17, |_| n += 1);
        assert_eq!(n, 17);
    }

    #[test]
    fn cases_get_distinct_streams() {
        let mut firsts = Vec::new();
        forall_cases("distinct", 8, |rng| firsts.push(rng.next_u64()));
        firsts.sort_unstable();
        firsts.dedup();
        assert_eq!(firsts.len(), 8, "every case must see fresh randomness");
    }

    #[test]
    fn properties_get_distinct_streams() {
        let (mut a, mut b) = (0, 0);
        forall_cases("stream-a", 1, |rng| a = rng.next_u64());
        forall_cases("stream-b", 1, |rng| b = rng.next_u64());
        assert_ne!(a, b);
    }

    #[test]
    fn failure_propagates() {
        let r = catch_unwind(|| forall_cases("boom", 4, |_| panic!("expected")));
        assert!(r.is_err());
    }
}
