//! The global cycle counter.
//!
//! The whole CMP is simulated cycle-by-cycle under a single clock domain
//! (the paper's 3 GHz cores, routers and G-lines all tick together). A
//! `Cycle` is just a `u64`, but the [`Clock`] helper centralizes advancing
//! and gives a place to hang watchdog logic.

/// A point in simulated time, measured in core clock cycles.
pub type Cycle = u64;

/// The global clock. Starts at cycle 0; [`Clock::advance`] moves to the next
/// cycle.
#[derive(Clone, Debug, Default)]
pub struct Clock {
    now: Cycle,
}

impl Clock {
    /// A clock at cycle 0.
    pub fn new() -> Clock {
        Clock { now: 0 }
    }

    /// The current cycle.
    #[inline]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Advances to the next cycle and returns it.
    #[inline]
    pub fn advance(&mut self) -> Cycle {
        self.now += 1;
        self.now
    }

    /// Advances by `n` cycles (used by fast-forward paths that know no
    /// component has work queued).
    #[inline]
    pub fn advance_by(&mut self, n: u64) -> Cycle {
        self.now += n;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_advances() {
        let mut c = Clock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(), 1);
        assert_eq!(c.advance(), 2);
        assert_eq!(c.advance_by(10), 12);
        assert_eq!(c.now(), 12);
    }
}
