//! Foundations shared by every crate of the `gline-cmp` simulator.
//!
//! This crate deliberately has no knowledge of caches, networks or barriers.
//! It provides the vocabulary the rest of the system speaks:
//!
//! * [`ids`] — strongly-typed identifiers for cores/tiles and memory
//!   addresses (word- and line-granular).
//! * [`geom`] — 2D-mesh geometry: coordinates, enumeration orders,
//!   Manhattan distances and XY-routing hop counts.
//! * [`clock`] — the global cycle counter type and a small clock helper.
//! * [`config`] — every tunable of the simulated CMP, with the exact
//!   ICPP 2010 Table 1 preset.
//! * [`stats`] — counters, histograms and the execution-time /
//!   network-traffic categories used by the paper's Figures 6 and 7.
//! * [`rng`] — a tiny deterministic SplitMix64 generator so that core
//!   simulator crates do not need an external RNG dependency.
//! * [`trace`] — the cycle-level event tracing subsystem: typed events,
//!   zero-cost-when-disabled sinks, Chrome `trace_event` export.
//! * [`json`] — a dependency-free JSON tree, writer and parser used for
//!   reports and traces.
//! * [`check`] — a deterministic seed-sweep property-testing loop.
//! * [`fxmap`] — an in-tree FxHash-style hasher and map aliases for the
//!   simulator's hot-path, trusted-key maps (fast and seedless, so
//!   iteration order is deterministic).
//! * [`active`] — the deterministic active-set scheduling primitive
//!   behind the sparse (work-list) tick paths of the NoC, the memory
//!   hierarchy and the core scheduler.
//! * [`shard`] — sharding primitives for the parallel tick engine: a
//!   sense-reversing thread barrier, worker-count derivation/clamping,
//!   and the deterministic tile partition.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod active;
pub mod check;
pub mod clock;
pub mod config;
pub mod fxmap;
pub mod geom;
pub mod ids;
pub mod json;
pub mod rng;
pub mod shard;
pub mod stats;
pub mod trace;

pub use active::ActiveSet;
pub use clock::{Clock, Cycle};
pub use config::CmpConfig;
pub use fxmap::{FxHashMap, FxHashSet};
pub use geom::{Coord, Mesh2D};
pub use ids::{Addr, CoreId, LineAddr};
pub use trace::{Event, NullSink, RingSink, TraceSink, Tracer};
