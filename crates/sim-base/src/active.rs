//! Deterministic active-set scheduling primitive.
//!
//! An [`ActiveSet`] is a set of small component indices (routers, home
//! banks, tiles, cores) that can possibly make progress this cycle.
//! Subsystems update membership on enqueue/dequeue *edges* — a flit
//! arrives, a transaction starts, a queue drains — so a quiet component
//! costs zero per-tick work even while its neighbours are busy.
//!
//! The contract that makes active-set iteration bit-identical to a
//! dense scan (see DESIGN.md §10) is:
//!
//! 1. **Superset invariant**: a component that can transition this
//!    cycle is in the set. The converse need not hold — stale members
//!    are allowed as long as visiting them is a no-op (the dense scan
//!    skips them with the same guard).
//! 2. **Deterministic order**: iteration visits members in ascending
//!    index order, exactly the order of the dense `for i in 0..n` loop.
//!
//! Internally the set is a dense membership bitmap plus an unsorted
//! insertion list: `insert` is O(1) amortized with flag-based dedup,
//! `remove` is O(1) (the list entry goes stale and is dropped at the
//! next compaction), and [`collect_sorted`](ActiveSet::collect_sorted)
//! compacts and sorts on demand. In steady state no operation
//! allocates (capacity is retained), which keeps the simulator's
//! zero-allocation tick property (`tests/zero_alloc.rs`).

/// A deterministically-ordered set of component indices `0..n`.
#[derive(Clone, Debug)]
pub struct ActiveSet {
    /// Membership bitmap: the single source of truth.
    in_set: Vec<bool>,
    /// Insertion list; may hold stale (removed) or duplicate entries
    /// until the next compaction.
    list: Vec<u32>,
    /// Live member count (tracks the bitmap, not the list).
    len: usize,
    /// True while the list may hold stale entries (set by `remove`;
    /// duplicates can only follow a remove, so this covers both).
    dirty: bool,
    /// True while the list is in ascending order (maintained on
    /// insert). Together with `!dirty` this lets `collect_sorted` skip
    /// compaction entirely — the dominant per-tick cost on short runs
    /// whose sets are built once in index order and never churned.
    sorted: bool,
}

impl ActiveSet {
    /// An empty set over the index domain `0..n`.
    pub fn new(n: usize) -> ActiveSet {
        assert!(n <= u32::MAX as usize, "index domain too large");
        ActiveSet {
            in_set: vec![false; n],
            list: Vec::new(),
            len: 0,
            dirty: false,
            sorted: true,
        }
    }

    /// Number of live members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no member is live.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// True when `i` is a live member.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        self.in_set[i]
    }

    /// Inserts `i`; a no-op if already present.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        if !self.in_set[i] {
            self.in_set[i] = true;
            self.len += 1;
            if self.sorted && self.list.last().is_some_and(|&last| i as u32 <= last) {
                self.sorted = false;
            }
            self.list.push(i as u32);
            // Keep the lazy list proportional to the live count so
            // [`for_each_live`](Self::for_each_live) stays O(len) even
            // for callers that maintain the set without ever draining
            // it through `collect_sorted` (e.g. the dense scheduling
            // path, or a set only consulted by `next_event`). At least
            // half the entries are stale/duplicate when this fires, so
            // the sweep amortizes to O(1) per insert.
            if self.list.len() >= 32 && self.list.len() >= 2 * self.len {
                self.compact();
            }
        }
    }

    /// Drops stale and duplicate list entries in place, keeping the
    /// first live copy of each member (relative order preserved).
    fn compact(&mut self) {
        let in_set = &mut self.in_set;
        self.list.retain(|&i| {
            let keep = in_set[i as usize];
            if keep {
                // Clear the flag so a duplicate live entry is dropped.
                in_set[i as usize] = false;
            }
            keep
        });
        for &i in &self.list {
            self.in_set[i as usize] = true;
        }
        // Compaction keeps the first live copy of each member, so the
        // list now mirrors the bitmap; relative order is preserved, so
        // `sorted` stays whatever it was.
        self.dirty = false;
        debug_assert_eq!(self.list.len(), self.len, "list/bitmap divergence");
    }

    /// Removes `i`; a no-op if absent. O(1): the list entry goes stale
    /// and is dropped by the next [`collect_sorted`](Self::collect_sorted).
    #[inline]
    pub fn remove(&mut self, i: usize) {
        if self.in_set[i] {
            self.in_set[i] = false;
            self.len -= 1;
            self.dirty = true;
        }
    }

    /// Compacts the internal list and copies the live members into
    /// `out` in ascending index order (the dense-scan order).
    ///
    /// The snapshot semantics are deliberate: callers iterate `out`
    /// while freely calling [`insert`](Self::insert)/
    /// [`remove`](Self::remove) on the set mid-iteration.
    pub fn collect_sorted(&mut self, out: &mut Vec<u32>) {
        // Deferred-compaction fast path: a list with no stale entries
        // that was built in ascending order IS the sorted live set —
        // the per-tick common case on short runs (sets populated once
        // in index order, never churned). The copy is all that remains.
        if !self.dirty && self.sorted {
            debug_assert_eq!(self.list.len(), self.len, "list/bitmap divergence");
            out.clear();
            out.extend_from_slice(&self.list);
            return;
        }
        let in_set = &self.in_set;
        self.list.retain(|&i| in_set[i as usize]);
        self.list.sort_unstable();
        self.list.dedup();
        self.dirty = false;
        self.sorted = true;
        debug_assert_eq!(self.list.len(), self.len, "list/bitmap divergence");
        out.clear();
        out.extend_from_slice(&self.list);
    }

    /// Visits every live member in unspecified order, without
    /// compacting. A member removed and re-inserted between compactions
    /// is visited once per list entry, so callers must be order- and
    /// duplicate-insensitive (e.g. a running `min`).
    pub fn for_each_live(&self, mut f: impl FnMut(usize)) {
        for &i in &self.list {
            if self.in_set[i as usize] {
                f(i as usize);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = ActiveSet::new(8);
        assert!(s.is_empty());
        s.insert(3);
        s.insert(1);
        s.insert(3); // dedup
        assert_eq!(s.len(), 2);
        assert!(s.contains(3) && s.contains(1) && !s.contains(0));
        s.remove(3);
        assert_eq!(s.len(), 1);
        assert!(!s.contains(3));
    }

    #[test]
    fn collect_sorted_is_ascending_and_compacts() {
        let mut s = ActiveSet::new(16);
        for i in [9, 2, 11, 5, 2] {
            s.insert(i);
        }
        s.remove(5);
        s.insert(5); // duplicate list entry, still one live member
        let mut out = Vec::new();
        s.collect_sorted(&mut out);
        assert_eq!(out, vec![2, 5, 9, 11]);
        // Compaction dropped stale/duplicate entries.
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn mid_iteration_removal_is_safe() {
        let mut s = ActiveSet::new(8);
        for i in 0..8 {
            s.insert(i);
        }
        let mut out = Vec::new();
        s.collect_sorted(&mut out);
        for &i in &out {
            s.remove(i as usize);
        }
        assert!(s.is_empty());
        s.collect_sorted(&mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn for_each_live_skips_removed() {
        let mut s = ActiveSet::new(8);
        s.insert(1);
        s.insert(4);
        s.insert(6);
        s.remove(4);
        let mut seen = Vec::new();
        s.for_each_live(|i| seen.push(i));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 6]);
    }

    #[test]
    fn uncompacted_churn_stays_bounded() {
        // A caller that only ever inserts/removes (never collects) must
        // not grow the lazy list without bound.
        let mut s = ActiveSet::new(8);
        for round in 0..10_000 {
            for i in 0..8 {
                s.insert(i);
            }
            for i in 0..8 {
                s.remove(i);
            }
            if round % 1000 == 0 {
                let mut seen = Vec::new();
                s.for_each_live(|i| seen.push(i));
                assert!(seen.is_empty());
            }
        }
        assert!(s.list.len() <= 64, "lazy list grew to {}", s.list.len());
        for i in 0..8 {
            s.insert(i);
        }
        let mut out = Vec::new();
        s.collect_sorted(&mut out);
        assert_eq!(out, (0..8).collect::<Vec<u32>>());
    }

    #[test]
    fn steady_state_reinsertion_does_not_grow() {
        let mut s = ActiveSet::new(4);
        let mut out = Vec::new();
        for _ in 0..1000 {
            s.insert(2);
            s.collect_sorted(&mut out);
            s.remove(2);
            s.collect_sorted(&mut out);
        }
        assert!(s.list.capacity() <= 16, "list grew without bound");
    }
}
