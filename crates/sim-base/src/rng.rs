//! A tiny deterministic pseudo-random generator (SplitMix64).
//!
//! Simulator components sometimes need cheap, reproducible randomness
//! (arbitration tie-breaking under test, synthetic address streams) without
//! dragging a full RNG crate into every dependency edge. SplitMix64 is the
//! standard seeding generator of the xoshiro family: 64 bits of state, good
//! equidistribution, and trivially reproducible across platforms.

/// SplitMix64 generator. Not cryptographic; do not use for secrets.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds produce equal streams.
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Panics if `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method for unbiased results.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Fast path for powers of two.
        if bound.is_power_of_two() {
            return self.next_u64() & (bound - 1);
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn bounded_values_in_range() {
        let mut r = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000, 1 << 40] {
            for _ in 0..200 {
                assert!(r.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn bounded_roughly_uniform() {
        let mut r = SplitMix64::new(9);
        let mut counts = [0u32; 4];
        for _ in 0..40_000 {
            counts[r.next_below(4) as usize] += 1;
        }
        for c in counts {
            assert!(
                (8_000..12_000).contains(&c),
                "bucket count {c} far from uniform"
            );
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50-element shuffle left the slice sorted");
    }
}
