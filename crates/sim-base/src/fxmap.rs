//! A fast, deterministic hasher for the simulator's hot-path maps.
//!
//! The standard library's `HashMap` defaults to SipHash with a
//! per-process random seed. That costs in two ways that matter here:
//!
//! * SipHash is comparatively slow for the tiny integer keys
//!   (`LineAddr`, packet ids) the simulator hashes millions of times
//!   per run.
//! * The random seed makes iteration order differ between *processes*,
//!   which is hostile to the determinism suite: any code that iterates
//!   a map (e.g. collecting matured directory transactions) would see a
//!   different order on every run.
//!
//! [`FxHasher`] is the classic multiply-xor hash used by rustc
//! (firefox's "Fx" hash), implemented in-tree because this workspace is
//! deliberately dependency-free. It is seedless, so iteration order is
//! a pure function of the operation history — two runs performing the
//! same inserts/removes iterate identically.
//!
//! This is *not* a DoS-resistant hash; the simulator only ever hashes
//! its own trusted keys.

// simlint: allow(std-hashmap) — this module IS the sanctioned wrapper:
// the std containers are re-hashed with the seedless FxHasher below.
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// The multiplicative constant of the Fx hash (64-bit golden-ratio
/// derived, same constant rustc uses).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A fast, seedless multiply-xor hasher for trusted integer-like keys.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// The [`std::hash::BuildHasher`] for [`FxHasher`] (zero-sized,
/// seedless).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` using the fast deterministic [`FxHasher`].
// simlint: allow(std-hashmap) — the wrapper definition itself.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// A `HashSet` using the fast deterministic [`FxHasher`].
// simlint: allow(std-hashmap) — the wrapper definition itself.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::LineAddr;

    #[test]
    fn map_round_trips() {
        let mut m: FxHashMap<LineAddr, u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert(LineAddr(i * 7), i);
        }
        for i in 0..1000u64 {
            assert_eq!(m.get(&LineAddr(i * 7)), Some(&i));
        }
        assert_eq!(m.len(), 1000);
    }

    #[test]
    fn iteration_order_is_a_function_of_history() {
        let build = |ops: &[(u64, bool)]| {
            let mut m: FxHashMap<u64, u64> = FxHashMap::default();
            for &(k, insert) in ops {
                if insert {
                    m.insert(k, k);
                } else {
                    m.remove(&k);
                }
            }
            m.keys().copied().collect::<Vec<_>>()
        };
        let ops: Vec<(u64, bool)> = (0..200).map(|i| (i * 31 % 97, i % 3 != 0)).collect();
        assert_eq!(build(&ops), build(&ops));
    }

    #[test]
    fn distinct_keys_rarely_collide() {
        use std::hash::BuildHasher;
        let bh = FxBuildHasher::default();
        // simlint: allow(std-hashmap) — collision test on raw hash
        // values; iteration order is never observed.
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            seen.insert(bh.hash_one(LineAddr(i)));
        }
        assert_eq!(seen.len(), 10_000, "64-bit hashes of small ints collided");
    }

    #[test]
    fn partial_chunks_hash_consistently() {
        let mut a = FxHasher::default();
        a.write(b"hello world");
        let mut b = FxHasher::default();
        b.write(b"hello world");
        assert_eq!(a.finish(), b.finish());
        let mut c = FxHasher::default();
        c.write(b"hello worle");
        assert_ne!(a.finish(), c.finish());
    }
}
