//! Sharding primitives for the parallel tick engine.
//!
//! The sharded-tick engine (see `DESIGN.md` §11) partitions the tiles of
//! the simulated chip across worker threads and runs every simulated
//! cycle in two phases — a parallel *compute* phase and a serialized
//! *exchange* phase — separated by a thread barrier. This module holds
//! the pieces that are independent of what is being sharded:
//!
//! * [`SpinBarrier`] — a sense-reversing centralized thread barrier,
//!   which is our own paper's CSW barrier applied to the simulator
//!   itself (§2.1 of the paper; Mellor-Crummey & Scott's
//!   "sense-reversing centralized barrier").
//! * [`available_workers`] / [`clamp_workers`] — the one place worker
//!   counts are derived and clamped, shared by the parallel engine and
//!   `bench::sweep` so every consumer agrees on the fallback logic.
//! * [`shard_ranges`] — the deterministic tile partition: contiguous,
//!   ascending, balanced to within one tile.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// How long a waiter busy-spins on the sense flag before yielding the
/// CPU. Small, because the benches run on hosts where workers may
/// outnumber cores; on a loaded machine a stubborn spin inverts the
/// speedup the barrier exists to buy.
const SPIN_LIMIT: u32 = 64;

/// A sense-reversing centralized barrier for a fixed set of threads.
///
/// Every participant keeps a thread-local `sense: bool` (starting
/// `false`) and calls [`wait`](Self::wait) with a mutable reference to
/// it. The last thread to arrive flips the shared sense and releases
/// the rest — two atomics total per episode, no re-initialization
/// between episodes, and immediately reusable (the reversal is what
/// makes back-to-back episodes safe, exactly as in the CSW barrier the
/// simulated machine runs in software).
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SpinBarrier {
    /// A barrier for `n` participating threads. `n` must be nonzero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Blocks until all `n` participants have called `wait` with this
    /// episode's sense. `local_sense` is the caller's thread-local
    /// sense flag; initialize it to `false` and pass the same variable
    /// to every `wait` on this barrier.
    ///
    /// Memory ordering: every write made before `wait` by any
    /// participant happens-before every read after `wait` in all
    /// participants (AcqRel on the arrival counter, Release on the
    /// sense flip, Acquire on the sense spin).
    pub fn wait(&self, local_sense: &mut bool) {
        let sense = !*local_sense;
        *local_sense = sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != sense {
                if spins < SPIN_LIMIT {
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

/// The host's available parallelism, falling back to 1 when the
/// runtime cannot tell (the same fallback every consumer previously
/// duplicated).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count into `1..=cap`. `cap` is the number
/// of independently schedulable work items (tiles for the parallel
/// engine, jobs for a sweep) — more workers than items only adds
/// barrier traffic.
pub fn clamp_workers(requested: usize, cap: usize) -> usize {
    requested.max(1).min(cap.max(1))
}

/// Partitions `n_items` tiles into `workers` contiguous, ascending
/// ranges `(lo, hi)` (half-open), balanced to within one tile: the
/// first `n_items % workers` shards get the extra tile. The partition
/// depends only on `(n_items, workers)`, never on thread identity —
/// part of the determinism argument of `DESIGN.md` §11.
pub fn shard_ranges(n_items: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = clamp_workers(workers, n_items);
    let base = n_items / workers;
    let extra = n_items % workers;
    let mut out = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, n_items);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn clamp_workers_bounds() {
        assert_eq!(clamp_workers(0, 32), 1);
        assert_eq!(clamp_workers(4, 32), 4);
        assert_eq!(clamp_workers(64, 32), 32);
        assert_eq!(clamp_workers(8, 0), 1);
        assert_eq!(clamp_workers(0, 0), 1);
    }

    #[test]
    fn shard_ranges_cover_contiguously() {
        for n in [1usize, 7, 8, 31, 32, 33] {
            for w in [1usize, 2, 3, 4, 8, 40] {
                let ranges = shard_ranges(n, w);
                assert_eq!(ranges.len(), clamp_workers(w, n));
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "gap in {n}x{w}");
                }
                let max = ranges.iter().map(|(l, h)| h - l).max().unwrap();
                let min = ranges.iter().map(|(l, h)| h - l).min().unwrap();
                assert!(max - min <= 1, "imbalance in {n}x{w}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // 4 threads × many episodes: inside each episode every thread
        // increments a shared counter; after the barrier every thread
        // must observe all increments of the episode.
        const THREADS: usize = 4;
        const EPISODES: u64 = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut sense = false;
                    for ep in 1..=EPISODES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        assert_eq!(counter.load(Ordering::Relaxed), ep * THREADS as u64);
                        barrier.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("barrier worker panicked");
        }
    }

    #[test]
    fn single_thread_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        let mut sense = false;
        for _ in 0..10 {
            b.wait(&mut sense);
        }
    }
}
