//! Sharding primitives for the parallel tick engine.
//!
//! The sharded-tick engine (see `DESIGN.md` §11/§13) partitions the
//! tiles of the simulated chip across worker threads and advances the
//! machine in alternating parallel/serial phases. This module holds the
//! pieces that are independent of what is being sharded:
//!
//! * [`SpinBarrier`] — a sense-reversing centralized thread barrier,
//!   which is our own paper's CSW barrier applied to the simulator
//!   itself (§2.1 of the paper; Mellor-Crummey & Scott's
//!   "sense-reversing centralized barrier"). Waiters spin briefly and
//!   then **park** on a condvar, so an oversubscribed host never pays a
//!   yield storm, and the barrier counts its crossings — the
//!   host-independent serialization metric `BENCH_parallel_engine.json`
//!   gates on.
//! * [`EpochGate`] — the epoch engine's rendezvous: per-worker
//!   doorbells (so an idle shard's worker stays parked across epochs it
//!   takes no part in) plus one join latch per epoch.
//! * [`available_workers`] / [`clamp_workers`] — the one place worker
//!   counts are derived and clamped, shared by the parallel engine and
//!   `bench::sweep` so every consumer agrees on the fallback logic.
//! * [`shard_ranges`] — the deterministic tile partition: contiguous,
//!   ascending, balanced to within one tile.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};

/// How long a waiter busy-spins before parking on the condvar. Small,
/// because the benches run on hosts where workers may outnumber cores;
/// on a loaded machine a stubborn spin inverts the speedup the barrier
/// exists to buy.
const SPIN_LIMIT: u32 = 64;

/// Cross-thread synchronization counters, the host-independent cost
/// model of the parallel engine's protocol (`DESIGN.md` §13):
///
/// * `crossings` — completed global rendezvous episodes. The per-cycle
///   protocol pays two per simulated cycle (release + join); the epoch
///   protocol pays one per multi-cycle epoch. Deterministic for a given
///   run, independent of host speed or scheduling — which is what makes
///   it gateable on a 1-core CI runner.
/// * `wakeups` — futex-style unparks actually performed (a waiter that
///   exhausted its spin budget and slept). Timing-dependent; reported,
///   never gated.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SyncCounters {
    /// Completed global rendezvous episodes.
    pub crossings: u64,
    /// Parked waiters actually resumed (timing-dependent; not gated).
    pub wakeups: u64,
}

impl SyncCounters {
    /// Fieldwise accumulation (merging one engine scope into a run).
    pub fn merge(&mut self, other: SyncCounters) {
        self.crossings += other.crossings;
        self.wakeups += other.wakeups;
    }
}

/// A sense-reversing centralized barrier for a fixed set of threads.
///
/// Every participant keeps a thread-local `sense: bool` (starting
/// `false`) and calls [`wait`](Self::wait) with a mutable reference to
/// it. The last thread to arrive flips the shared sense and releases
/// the rest — no re-initialization between episodes, and immediately
/// reusable (the reversal is what makes back-to-back episodes safe,
/// exactly as in the CSW barrier the simulated machine runs in
/// software). Waiters spin [`SPIN_LIMIT`] times, then park on a
/// condvar; the releaser flips the sense under the mutex, so a parked
/// waiter can never miss the flip.
#[derive(Debug)]
pub struct SpinBarrier {
    n: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    lock: Mutex<()>,
    cv: Condvar,
    crossings: AtomicU64,
    wakeups: AtomicU64,
}

impl SpinBarrier {
    /// A barrier for `n` participating threads. `n` must be nonzero.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a barrier needs at least one participant");
        Self {
            n,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            lock: Mutex::new(()),
            cv: Condvar::new(),
            crossings: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Completed barrier episodes and condvar wakeups so far.
    pub fn counters(&self) -> SyncCounters {
        SyncCounters {
            crossings: self.crossings.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }

    /// Blocks until all `n` participants have called `wait` with this
    /// episode's sense. `local_sense` is the caller's thread-local
    /// sense flag; initialize it to `false` and pass the same variable
    /// to every `wait` on this barrier.
    ///
    /// Memory ordering: every write made before `wait` by any
    /// participant happens-before every read after `wait` in all
    /// participants (AcqRel on the arrival counter, Release on the
    /// sense flip, Acquire on the sense spin).
    pub fn wait(&self, local_sense: &mut bool) {
        let sense = !*local_sense;
        *local_sense = sense;
        if self.count.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            self.count.store(0, Ordering::Relaxed);
            self.crossings.fetch_add(1, Ordering::Relaxed);
            // The flip happens under the mutex so that a waiter which
            // checked the sense and decided to park cannot lose the
            // wakeup: it re-checks under the same mutex.
            let _g = self.lock.lock().expect("barrier mutex poisoned");
            self.sense.store(sense, Ordering::Release);
            self.cv.notify_all();
        } else {
            for _ in 0..SPIN_LIMIT {
                if self.sense.load(Ordering::Acquire) == sense {
                    return;
                }
                std::hint::spin_loop();
            }
            let mut parked = false;
            let mut g = self.lock.lock().expect("barrier mutex poisoned");
            while self.sense.load(Ordering::Acquire) != sense {
                parked = true;
                g = self.cv.wait(g).expect("barrier mutex poisoned");
            }
            if parked {
                self.wakeups.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// One worker's wake channel in an [`EpochGate`]: a ring sequence
/// number plus a condvar to park on. The coordinator rings only the
/// doorbells of workers whose shards have work this epoch — a fully
/// idle shard's worker sleeps straight through, which is the fix for
/// the per-cycle protocol's "every worker wakes every tick" behavior.
#[derive(Debug)]
struct Doorbell {
    seq: AtomicU64,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    fn new() -> Doorbell {
        Doorbell {
            seq: AtomicU64::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        }
    }
}

/// The epoch engine's rendezvous (`DESIGN.md` §13). One epoch is:
///
/// 1. coordinator publishes the epoch's shared state, then
///    [`open_epoch`](Self::open_epoch) — arms the join latch for the
///    participating workers and rings their doorbells;
/// 2. each rung worker free-runs its shard for the whole window and
///    [`arrive`](Self::arrive)s at the join latch;
/// 3. the coordinator (who ran its own shard inline)
///    [`join`](Self::join)s — the single global rendezvous of the
///    epoch, counted as one crossing.
///
/// Workers not rung this epoch stay parked on their doorbells; ring
/// sequence numbers make back-to-back epochs safe without
/// re-initialization. [`close`](Self::close) rings every doorbell with
/// the stop flag raised.
#[derive(Debug)]
pub struct EpochGate {
    /// Doorbell for worker `w` (1-based; the coordinator is worker 0
    /// and has none) lives at `doorbells[w - 1]`.
    doorbells: Vec<Doorbell>,
    remaining: AtomicUsize,
    join_lock: Mutex<()>,
    join_cv: Condvar,
    stop: AtomicBool,
    crossings: AtomicU64,
    wakeups: AtomicU64,
}

impl EpochGate {
    /// A gate for `workers` total participants (coordinator included),
    /// so `workers - 1` doorbells.
    pub fn new(workers: usize) -> EpochGate {
        assert!(workers >= 1);
        EpochGate {
            doorbells: (1..workers).map(|_| Doorbell::new()).collect(),
            remaining: AtomicUsize::new(0),
            join_lock: Mutex::new(()),
            join_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            crossings: AtomicU64::new(0),
            wakeups: AtomicU64::new(0),
        }
    }

    /// Crossing/wakeup counters so far.
    pub fn counters(&self) -> SyncCounters {
        SyncCounters {
            crossings: self.crossings.load(Ordering::Relaxed),
            wakeups: self.wakeups.load(Ordering::Relaxed),
        }
    }

    /// Opens an epoch for the workers listed in `active` (indexed
    /// `1..=doorbells`; the coordinator never appears). Arms the join
    /// latch *before* ringing — a rung worker may arrive immediately.
    /// Epochs in which no worker participates cost no synchronization
    /// and count no crossing.
    pub fn open_epoch(&self, active: &[bool]) {
        debug_assert_eq!(active.len(), self.doorbells.len() + 1);
        let rung = active[1..].iter().filter(|&&a| a).count();
        if rung == 0 {
            return;
        }
        self.remaining.store(rung, Ordering::Release);
        for (i, db) in self.doorbells.iter().enumerate() {
            if active[i + 1] {
                Self::ring(db);
            }
        }
    }

    fn ring(db: &Doorbell) {
        // Bump under the mutex: a worker that checked the sequence and
        // decided to park re-checks under the same mutex, so the
        // notify cannot be lost.
        let _g = db.lock.lock().expect("doorbell mutex poisoned");
        db.seq.fetch_add(1, Ordering::Release);
        db.cv.notify_one();
    }

    /// Worker `w`'s wait for its next ring. `last_seen` is the worker's
    /// thread-local ring count (start at 0). Returns `true` when the
    /// gate has been closed and the worker should exit.
    pub fn wait_for_ring(&self, w: usize, last_seen: &mut u64) -> bool {
        let db = &self.doorbells[w - 1];
        let mut spins = 0u32;
        while db.seq.load(Ordering::Acquire) == *last_seen {
            if spins < SPIN_LIMIT {
                spins += 1;
                std::hint::spin_loop();
                continue;
            }
            let mut parked = false;
            let mut g = db.lock.lock().expect("doorbell mutex poisoned");
            while db.seq.load(Ordering::Acquire) == *last_seen {
                parked = true;
                g = db.cv.wait(g).expect("doorbell mutex poisoned");
            }
            if parked {
                self.wakeups.fetch_add(1, Ordering::Relaxed);
            }
            break;
        }
        *last_seen = db.seq.load(Ordering::Acquire);
        self.stop.load(Ordering::Acquire)
    }

    /// A rung worker's arrival at the epoch's join latch.
    pub fn arrive(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.join_lock.lock().expect("join mutex poisoned");
            self.join_cv.notify_one();
        }
    }

    /// The coordinator's wait for every rung worker; the epoch's one
    /// global rendezvous. `rung` is the number of workers opened this
    /// epoch (0 ⇒ free: no crossing).
    pub fn join(&self, rung: usize) {
        if rung == 0 {
            return;
        }
        self.crossings.fetch_add(1, Ordering::Relaxed);
        for _ in 0..SPIN_LIMIT {
            if self.remaining.load(Ordering::Acquire) == 0 {
                return;
            }
            std::hint::spin_loop();
        }
        let mut parked = false;
        let mut g = self.join_lock.lock().expect("join mutex poisoned");
        while self.remaining.load(Ordering::Acquire) != 0 {
            parked = true;
            g = self.join_cv.wait(g).expect("join mutex poisoned");
        }
        if parked {
            self.wakeups.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Closes the gate: every worker's next (or current) wait returns
    /// `true`.
    pub fn close(&self) {
        self.stop.store(true, Ordering::Release);
        for db in &self.doorbells {
            Self::ring(db);
        }
    }
}

/// The host's available parallelism, falling back to 1 when the
/// runtime cannot tell (the same fallback every consumer previously
/// duplicated).
pub fn available_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Clamps a requested worker count into `1..=cap`. `cap` is the number
/// of independently schedulable work items (tiles for the parallel
/// engine, jobs for a sweep) — more workers than items only adds
/// barrier traffic.
pub fn clamp_workers(requested: usize, cap: usize) -> usize {
    requested.max(1).min(cap.max(1))
}

/// Partitions `n_items` tiles into `workers` contiguous, ascending
/// ranges `(lo, hi)` (half-open), balanced to within one tile: the
/// first `n_items % workers` shards get the extra tile. The partition
/// depends only on `(n_items, workers)`, never on thread identity —
/// part of the determinism argument of `DESIGN.md` §11.
pub fn shard_ranges(n_items: usize, workers: usize) -> Vec<(usize, usize)> {
    let workers = clamp_workers(workers, n_items);
    let base = n_items / workers;
    let extra = n_items % workers;
    let mut out = Vec::with_capacity(workers);
    let mut lo = 0;
    for w in 0..workers {
        let len = base + usize::from(w < extra);
        out.push((lo, lo + len));
        lo += len;
    }
    debug_assert_eq!(lo, n_items);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn clamp_workers_bounds() {
        assert_eq!(clamp_workers(0, 32), 1);
        assert_eq!(clamp_workers(4, 32), 4);
        assert_eq!(clamp_workers(64, 32), 32);
        assert_eq!(clamp_workers(8, 0), 1);
        assert_eq!(clamp_workers(0, 0), 1);
    }

    #[test]
    fn shard_ranges_cover_contiguously() {
        for n in [1usize, 7, 8, 31, 32, 33] {
            for w in [1usize, 2, 3, 4, 8, 40] {
                let ranges = shard_ranges(n, w);
                assert_eq!(ranges.len(), clamp_workers(w, n));
                assert_eq!(ranges[0].0, 0);
                assert_eq!(ranges.last().unwrap().1, n);
                for pair in ranges.windows(2) {
                    assert_eq!(pair[0].1, pair[1].0, "gap in {n}x{w}");
                }
                let max = ranges.iter().map(|(l, h)| h - l).max().unwrap();
                let min = ranges.iter().map(|(l, h)| h - l).min().unwrap();
                assert!(max - min <= 1, "imbalance in {n}x{w}");
            }
        }
    }

    #[test]
    fn barrier_synchronizes_phases() {
        // 4 threads × many episodes: inside each episode every thread
        // increments a shared counter; after the barrier every thread
        // must observe all increments of the episode.
        const THREADS: usize = 4;
        const EPISODES: u64 = 200;
        let barrier = Arc::new(SpinBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut sense = false;
                    for ep in 1..=EPISODES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut sense);
                        assert_eq!(counter.load(Ordering::Relaxed), ep * THREADS as u64);
                        barrier.wait(&mut sense);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("barrier worker panicked");
        }
        assert_eq!(
            barrier.counters().crossings,
            2 * EPISODES,
            "one crossing per completed episode"
        );
    }

    #[test]
    fn single_thread_barrier_never_blocks() {
        let b = SpinBarrier::new(1);
        let mut sense = false;
        for _ in 0..10 {
            b.wait(&mut sense);
        }
        assert_eq!(b.counters().crossings, 10);
        assert_eq!(b.counters().wakeups, 0);
    }

    #[test]
    fn epoch_gate_selective_rings_and_join() {
        const WORKERS: usize = 4; // coordinator + 3
        const EPOCHS: u64 = 300;
        let gate = Arc::new(EpochGate::new(WORKERS));
        let hits: Vec<_> = (0..WORKERS).map(|_| Arc::new(AtomicU64::new(0))).collect();
        let handles: Vec<_> = (1..WORKERS)
            .map(|w| {
                let gate = Arc::clone(&gate);
                let hit = Arc::clone(&hits[w]);
                std::thread::spawn(move || {
                    let mut seen = 0u64;
                    loop {
                        if gate.wait_for_ring(w, &mut seen) {
                            return;
                        }
                        hit.fetch_add(1, Ordering::Relaxed);
                        gate.arrive();
                    }
                })
            })
            .collect();
        // Ring a rotating subset; worker 3 is never rung.
        for ep in 0..EPOCHS {
            let active = [false, true, ep % 2 == 0, false];
            let rung = active[1..].iter().filter(|&&a| a).count();
            gate.open_epoch(&active);
            gate.join(rung);
        }
        gate.close();
        for h in handles {
            h.join().expect("gate worker panicked");
        }
        assert_eq!(hits[1].load(Ordering::Relaxed), EPOCHS);
        assert_eq!(hits[2].load(Ordering::Relaxed), EPOCHS.div_ceil(2));
        assert_eq!(
            hits[3].load(Ordering::Relaxed),
            0,
            "never-rung worker slept"
        );
        assert_eq!(gate.counters().crossings, EPOCHS, "one crossing per epoch");
    }

    #[test]
    fn sync_counters_merge() {
        let mut a = SyncCounters {
            crossings: 3,
            wakeups: 1,
        };
        a.merge(SyncCounters {
            crossings: 4,
            wakeups: 0,
        });
        assert_eq!(a.crossings, 7);
        assert_eq!(a.wakeups, 1);
    }
}
