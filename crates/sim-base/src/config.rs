//! Configuration of the simulated CMP.
//!
//! [`CmpConfig::icpp2010`] reproduces Table 1 of the paper exactly:
//!
//! | Parameter              | Value                      |
//! |------------------------|----------------------------|
//! | Number of cores        | 32                         |
//! | Core                   | 3 GHz, in-order 2-way      |
//! | Cache line size        | 64 bytes                   |
//! | L1 I/D-cache           | 32 KB, 4-way, 1 cycle      |
//! | L2 cache (per core)    | 256 KB, 4-way, 6+2 cycles  |
//! | Memory access time     | 400 cycles                 |
//! | Network configuration  | 2D mesh                    |
//! | Network bandwidth      | 75 GB/s                    |
//! | Link width             | 75 bytes                   |

use crate::geom::Mesh2D;
use crate::json::{Json, ToJson};

/// Core pipeline parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreConfig {
    /// Clock frequency in GHz (only used to convert cycles to wall time in
    /// reports; the simulation itself is cycle-based).
    pub freq_ghz: f64,
    /// Maximum instructions issued per cycle (paper: in-order 2-way).
    pub issue_width: u8,
}

impl Default for CoreConfig {
    fn default() -> Self {
        CoreConfig {
            freq_ghz: 3.0,
            issue_width: 2,
        }
    }
}

/// Geometry and timing of one cache level.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity.
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u64,
    /// Access latency in cycles (for L2 this is the tag latency; see
    /// [`CacheConfig::extra_data_latency`]).
    pub hit_latency: u32,
    /// Additional cycles for the data array (the paper's "6+2 cycles" L2:
    /// 6-cycle tag + 2-cycle data).
    pub extra_data_latency: u32,
}

impl CacheConfig {
    /// Number of sets. Panics if the geometry is inconsistent.
    pub fn num_sets(&self) -> u64 {
        let lines = self.size_bytes / self.line_bytes;
        assert!(
            lines.is_multiple_of(self.ways as u64),
            "cache lines {lines} not divisible by ways {}",
            self.ways
        );
        let sets = lines / self.ways as u64;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        sets
    }

    /// Full hit latency (tag + data).
    pub fn total_latency(&self) -> u32 {
        self.hit_latency + self.extra_data_latency
    }
}

/// Network-on-chip parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NocConfig {
    /// Flit width in bytes (Table 1: 75-byte links, so a 64-byte line plus
    /// header fits in one flit).
    pub link_bytes: u32,
    /// Cycles a flit spends traversing one router (route + VC alloc +
    /// switch + output).
    pub router_latency: u32,
    /// Cycles to cross one inter-router link.
    pub link_latency: u32,
    /// Flit buffer depth of each input virtual channel.
    pub vc_buffer_flits: u32,
    /// Size in bytes of a protocol message header (src, dst, type, addr).
    pub header_bytes: u32,
}

impl Default for NocConfig {
    fn default() -> Self {
        NocConfig {
            link_bytes: 75,
            router_latency: 3,
            link_latency: 1,
            vc_buffer_flits: 4,
            header_bytes: 11,
        }
    }
}

/// Main-memory parameters.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MemConfig {
    /// Access latency in cycles (Table 1: 400).
    pub latency: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig { latency: 400 }
    }
}

/// G-line barrier-network parameters (Section 3 of the paper).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GlineConfig {
    /// Cycles for a signal to cross one G-line (paper: 1; the "longer
    /// latency G-lines" future-work variant uses more).
    pub line_latency: u32,
    /// Electrical limit: transmitters supported per G-line.
    ///
    /// The paper cites 6 transmitters + 1 receiver per line (giving "up to
    /// 7×7 cores"), yet its own evaluation runs a 32-core 2D mesh whose
    /// 4×8 layout puts 7 slave transmitters on each row's gather line. We
    /// therefore default to 7 so the paper's Table 1 machine is
    /// constructible; set 6 to enforce the strict published budget.
    pub max_transmitters: u32,
    /// Number of independent barrier contexts (the paper's future-work
    /// space multiplexing; the baseline design has 1).
    pub contexts: u32,
}

impl Default for GlineConfig {
    fn default() -> Self {
        GlineConfig {
            line_latency: 1,
            max_transmitters: 7,
            contexts: 1,
        }
    }
}

/// Complete configuration of the simulated CMP.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CmpConfig {
    /// Mesh shape; `mesh.num_tiles()` is the core count.
    pub mesh: Mesh2D,
    /// Core parameters.
    pub core: CoreConfig,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Per-tile bank of the shared distributed L2.
    pub l2: CacheConfig,
    /// NoC parameters.
    pub noc: NocConfig,
    /// Memory backend.
    pub mem: MemConfig,
    /// G-line barrier network.
    pub gline: GlineConfig,
}

impl CmpConfig {
    /// The exact ICPP 2010 Table 1 configuration: 32 cores on a 4×8 mesh.
    pub fn icpp2010() -> CmpConfig {
        CmpConfig {
            mesh: Mesh2D::new(4, 8),
            core: CoreConfig::default(),
            l1: CacheConfig {
                size_bytes: 32 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 1,
                extra_data_latency: 0,
            },
            l2: CacheConfig {
                size_bytes: 256 * 1024,
                ways: 4,
                line_bytes: 64,
                hit_latency: 6,
                extra_data_latency: 2,
            },
            noc: NocConfig::default(),
            mem: MemConfig::default(),
            gline: GlineConfig::default(),
        }
    }

    /// The Table 1 configuration scaled to `n` cores (used by the Figure 5
    /// core-count sweep). The mesh is the squarest factorization of `n`.
    pub fn icpp2010_with_cores(n: usize) -> CmpConfig {
        let mut c = CmpConfig::icpp2010();
        c.mesh = Mesh2D::squarest(n);
        c
    }

    /// Number of cores.
    pub fn num_cores(&self) -> usize {
        self.mesh.num_tiles()
    }

    /// Total G-lines needed per barrier context:
    /// `2 × (rows + 1)` for an `R × C` mesh (two per row plus two for the
    /// first column) — the paper's `2 × (√NumCores + 1)` for square meshes.
    pub fn glines_per_barrier(&self) -> u32 {
        2 * (self.mesh.rows as u32 + 1)
    }

    /// True when the mesh exceeds the flat single-level G-line budget and
    /// barrier hardware must be the two-level clustered composition
    /// (`max_transmitters` slave transmitters plus the master per line).
    pub fn needs_clustered_gline(&self) -> bool {
        let dim = self.gline.max_transmitters + 1;
        self.mesh.rows as u32 > dim || self.mesh.cols as u32 > dim
    }

    /// Structural consistency check, run automatically by
    /// [`from_json`](Self::from_json). Errors name the offending config
    /// field so front ends can surface them without a backtrace.
    pub fn validate(&self) -> Result<(), String> {
        // `Mesh2D` itself guarantees nonzero dimensions; re-check here so
        // hand-built configs get the same named error as JSON ones.
        if self.mesh.rows == 0 || self.mesh.cols == 0 {
            return Err(format!(
                "mesh.rows and mesh.cols must be nonzero (got {}x{})",
                self.mesh.rows, self.mesh.cols
            ));
        }
        if self.core.issue_width == 0 {
            return Err("core.issue_width must be at least 1".into());
        }
        validate_cache("l1", &self.l1)?;
        validate_cache("l2", &self.l2)?;
        if self.gline.line_latency == 0 {
            return Err("gline.line_latency must be at least 1".into());
        }
        if self.gline.max_transmitters == 0 {
            return Err("gline.max_transmitters must be at least 1".into());
        }
        if self.gline.contexts == 0 {
            return Err("gline.contexts must be at least 1".into());
        }
        // Two G-line levels span at most (max_transmitters + 1)² tiles
        // per dimension; beyond that a third level would be required.
        let dim = self.gline.max_transmitters + 1;
        let span = dim * dim;
        if self.mesh.rows as u32 > span || self.mesh.cols as u32 > span {
            return Err(format!(
                "{}x{} mesh needs more than two G-line levels at \
                 gline.max_transmitters = {} (limit {span} rows/cols; \
                 raise gline.max_transmitters or shrink the mesh)",
                self.mesh.rows, self.mesh.cols, self.gline.max_transmitters
            ));
        }
        Ok(())
    }
}

fn validate_cache(name: &str, c: &CacheConfig) -> Result<(), String> {
    if c.line_bytes == 0 || !c.line_bytes.is_power_of_two() {
        return Err(format!(
            "{name}.line_bytes must be a nonzero power of two (got {})",
            c.line_bytes
        ));
    }
    if c.ways == 0 {
        return Err(format!("{name}.ways must be at least 1"));
    }
    if c.size_bytes == 0 || !c.size_bytes.is_multiple_of(c.line_bytes) {
        return Err(format!(
            "{name}.size_bytes must be a nonzero multiple of {name}.line_bytes \
             (got {} / {})",
            c.size_bytes, c.line_bytes
        ));
    }
    let lines = c.size_bytes / c.line_bytes;
    if !lines.is_multiple_of(c.ways as u64) {
        return Err(format!(
            "{name}: {lines} cache lines not divisible by {name}.ways = {}",
            c.ways
        ));
    }
    let sets = lines / c.ways as u64;
    if !sets.is_power_of_two() {
        return Err(format!(
            "{name}: set count {sets} must be a power of two \
             (adjust {name}.size_bytes or {name}.ways)"
        ));
    }
    Ok(())
}

/// Reading a config back from JSON can fail on missing or mistyped keys.
fn field(v: &Json, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

impl ToJson for CmpConfig {
    fn to_json(&self) -> Json {
        Json::obj([
            (
                "mesh",
                Json::obj([
                    ("rows", Json::from(self.mesh.rows)),
                    ("cols", Json::from(self.mesh.cols)),
                ]),
            ),
            (
                "core",
                Json::obj([
                    ("freq_ghz", Json::from(self.core.freq_ghz)),
                    ("issue_width", Json::from(self.core.issue_width)),
                ]),
            ),
            ("l1", cache_json(&self.l1)),
            ("l2", cache_json(&self.l2)),
            (
                "noc",
                Json::obj([
                    ("link_bytes", Json::from(self.noc.link_bytes)),
                    ("router_latency", Json::from(self.noc.router_latency)),
                    ("link_latency", Json::from(self.noc.link_latency)),
                    ("vc_buffer_flits", Json::from(self.noc.vc_buffer_flits)),
                    ("header_bytes", Json::from(self.noc.header_bytes)),
                ]),
            ),
            (
                "mem",
                Json::obj([("latency", Json::from(self.mem.latency))]),
            ),
            (
                "gline",
                Json::obj([
                    ("line_latency", Json::from(self.gline.line_latency)),
                    ("max_transmitters", Json::from(self.gline.max_transmitters)),
                    ("contexts", Json::from(self.gline.contexts)),
                ]),
            ),
        ])
    }
}

fn cache_json(c: &CacheConfig) -> Json {
    Json::obj([
        ("size_bytes", Json::from(c.size_bytes)),
        ("ways", Json::from(c.ways)),
        ("line_bytes", Json::from(c.line_bytes)),
        ("hit_latency", Json::from(c.hit_latency)),
        ("extra_data_latency", Json::from(c.extra_data_latency)),
    ])
}

fn cache_from_json(v: &Json) -> Result<CacheConfig, String> {
    Ok(CacheConfig {
        size_bytes: field(v, "size_bytes")? as u64,
        ways: field(v, "ways")? as u32,
        line_bytes: field(v, "line_bytes")? as u64,
        hit_latency: field(v, "hit_latency")? as u32,
        extra_data_latency: field(v, "extra_data_latency")? as u32,
    })
}

impl CmpConfig {
    /// Reads a configuration back from the [`ToJson`] representation.
    pub fn from_json(v: &Json) -> Result<CmpConfig, String> {
        let sub = |key: &str| v.get(key).ok_or_else(|| format!("missing section {key:?}"));
        let mesh = sub("mesh")?;
        let core = sub("core")?;
        let noc = sub("noc")?;
        let gline = sub("gline")?;
        let rows = field(mesh, "rows")? as u16;
        let cols = field(mesh, "cols")? as u16;
        if rows == 0 || cols == 0 {
            // Checked before `Mesh2D::new`, which would panic.
            return Err(format!(
                "mesh.rows and mesh.cols must be nonzero (got {rows}x{cols})"
            ));
        }
        let cfg = CmpConfig {
            mesh: Mesh2D::new(rows, cols),
            core: CoreConfig {
                freq_ghz: field(core, "freq_ghz")?,
                issue_width: field(core, "issue_width")? as u8,
            },
            l1: cache_from_json(sub("l1")?)?,
            l2: cache_from_json(sub("l2")?)?,
            noc: NocConfig {
                link_bytes: field(noc, "link_bytes")? as u32,
                router_latency: field(noc, "router_latency")? as u32,
                link_latency: field(noc, "link_latency")? as u32,
                vc_buffer_flits: field(noc, "vc_buffer_flits")? as u32,
                header_bytes: field(noc, "header_bytes")? as u32,
            },
            mem: MemConfig {
                latency: field(sub("mem")?, "latency")? as u32,
            },
            gline: GlineConfig {
                line_latency: field(gline, "line_latency")? as u32,
                max_transmitters: field(gline, "max_transmitters")? as u32,
                contexts: field(gline, "contexts")? as u32,
            },
        };
        cfg.validate()?;
        Ok(cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_values() {
        let c = CmpConfig::icpp2010();
        assert_eq!(c.num_cores(), 32);
        assert_eq!(c.core.issue_width, 2);
        assert_eq!(c.l1.size_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 4);
        assert_eq!(c.l1.line_bytes, 64);
        assert_eq!(c.l1.total_latency(), 1);
        assert_eq!(c.l2.size_bytes, 256 * 1024);
        assert_eq!(c.l2.total_latency(), 8); // 6+2 cycles
        assert_eq!(c.mem.latency, 400);
        assert_eq!(c.noc.link_bytes, 75);
    }

    #[test]
    fn cache_set_counts() {
        let c = CmpConfig::icpp2010();
        assert_eq!(c.l1.num_sets(), 128); // 32KB / 64B / 4
        assert_eq!(c.l2.num_sets(), 1024); // 256KB / 64B / 4
    }

    #[test]
    fn gline_count_matches_paper_formula() {
        // Paper: 10 G-lines for a 16-core (4×4) CMP.
        let mut c = CmpConfig::icpp2010_with_cores(16);
        assert_eq!(c.glines_per_barrier(), 10);
        // 32 cores → 4×8 mesh → 2×(4+1) = 10 as well (4 rows).
        c = CmpConfig::icpp2010();
        assert_eq!(c.glines_per_barrier(), 10);
    }

    #[test]
    fn with_cores_shapes() {
        assert_eq!(CmpConfig::icpp2010_with_cores(1).mesh, Mesh2D::new(1, 1));
        assert_eq!(CmpConfig::icpp2010_with_cores(4).mesh, Mesh2D::new(2, 2));
        assert_eq!(CmpConfig::icpp2010_with_cores(8).mesh, Mesh2D::new(2, 4));
        assert_eq!(CmpConfig::icpp2010_with_cores(32).mesh, Mesh2D::new(4, 8));
    }

    #[test]
    fn config_json_round_trip() {
        let c = CmpConfig::icpp2010();
        let s = c.to_json().pretty();
        let d = CmpConfig::from_json(&crate::json::parse(&s).unwrap()).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn config_from_json_reports_missing_fields() {
        let v = crate::json::parse("{}").unwrap();
        let e = CmpConfig::from_json(&v).unwrap_err();
        assert!(e.contains("mesh"), "{e}");
    }

    #[test]
    fn from_json_rejects_zero_mesh_dims_without_panicking() {
        let mut c = CmpConfig::icpp2010();
        let s = c.to_json().pretty().replace("\"rows\": 4", "\"rows\": 0");
        let e = CmpConfig::from_json(&crate::json::parse(&s).unwrap()).unwrap_err();
        assert!(e.contains("mesh.rows"), "{e}");
        c.mesh.cols = 0; // hand-built configs get the same named error
        assert!(c.validate().unwrap_err().contains("mesh.cols"));
    }

    #[test]
    fn validate_names_the_offending_field() {
        let mut c = CmpConfig::icpp2010();
        assert_eq!(c.validate(), Ok(()));
        c.gline.contexts = 0;
        assert!(c.validate().unwrap_err().contains("gline.contexts"));
        c = CmpConfig::icpp2010();
        c.l1.ways = 3;
        assert!(c.validate().unwrap_err().contains("l1"));
        c = CmpConfig::icpp2010();
        c.l2.size_bytes = 100;
        assert!(c.validate().unwrap_err().contains("l2.size_bytes"));
    }

    #[test]
    fn validate_rejects_three_level_meshes_and_flags_clustering() {
        let mut c = CmpConfig::icpp2010_with_cores(1024);
        assert_eq!(c.mesh, Mesh2D::new(32, 32));
        assert!(c.needs_clustered_gline(), "32x32 exceeds the flat budget");
        assert_eq!(c.validate(), Ok(()), "two levels span 64x64");
        assert!(!CmpConfig::icpp2010().needs_clustered_gline());

        c.mesh = Mesh2D::new(65, 65);
        let e = c.validate().unwrap_err();
        assert!(e.contains("more than two G-line levels"), "{e}");
        assert!(e.contains("gline.max_transmitters"), "{e}");
    }
}
