//! 2D-mesh geometry.
//!
//! The simulated CMP is a tiled design laid out as a `rows × cols` mesh.
//! Tiles are numbered row-major, which is also the numbering the G-line
//! barrier network uses: the *master* controllers sit in column 0, and the
//! column-0 tile of row 0 hosts the vertical master.

use crate::ids::CoreId;
use std::fmt;

/// A position in the mesh: `(row, col)`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Coord {
    /// Row, `0..rows`.
    pub row: u16,
    /// Column, `0..cols`.
    pub col: u16,
}

impl Coord {
    /// Convenience constructor.
    #[inline]
    pub fn new(row: u16, col: u16) -> Coord {
        Coord { row, col }
    }
}

impl fmt::Debug for Coord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})", self.row, self.col)
    }
}

/// Direction of a mesh link, from the perspective of a router.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Dir {
    /// Toward row - 1.
    North,
    /// Toward row + 1.
    South,
    /// Toward col + 1.
    East,
    /// Toward col - 1.
    West,
    /// The local tile port (ejection/injection).
    Local,
}

impl Dir {
    /// The four mesh directions, excluding `Local`.
    pub const MESH: [Dir; 4] = [Dir::North, Dir::South, Dir::East, Dir::West];

    /// All five router ports.
    pub const ALL: [Dir; 5] = [Dir::North, Dir::South, Dir::East, Dir::West, Dir::Local];

    /// The opposite direction (the port a neighbouring router receives on).
    pub fn opposite(self) -> Dir {
        match self {
            Dir::North => Dir::South,
            Dir::South => Dir::North,
            Dir::East => Dir::West,
            Dir::West => Dir::East,
            Dir::Local => Dir::Local,
        }
    }

    /// Dense index 0..5 for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        match self {
            Dir::North => 0,
            Dir::South => 1,
            Dir::East => 2,
            Dir::West => 3,
            Dir::Local => 4,
        }
    }
}

/// A `rows × cols` 2D mesh with row-major tile numbering.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Mesh2D {
    /// Number of rows.
    pub rows: u16,
    /// Number of columns.
    pub cols: u16,
}

impl Mesh2D {
    /// Creates a mesh; panics on an empty dimension.
    pub fn new(rows: u16, cols: u16) -> Mesh2D {
        assert!(rows > 0 && cols > 0, "mesh dimensions must be nonzero");
        Mesh2D { rows, cols }
    }

    /// The squarest mesh holding exactly `n` tiles: prefers `r × c` with
    /// `r <= c`, `r * c == n` and `c - r` minimal (e.g. 32 → 4×8, 16 → 4×4).
    pub fn squarest(n: usize) -> Mesh2D {
        assert!(n > 0 && n <= u16::MAX as usize);
        let mut best = (1u16, n as u16);
        let mut r = 1usize;
        while r * r <= n {
            if n.is_multiple_of(r) {
                best = (r as u16, (n / r) as u16);
            }
            r += 1;
        }
        Mesh2D::new(best.0, best.1)
    }

    /// Total number of tiles.
    #[inline]
    pub fn num_tiles(self) -> usize {
        self.rows as usize * self.cols as usize
    }

    /// Row-major tile id for a coordinate.
    #[inline]
    pub fn id_of(self, c: Coord) -> CoreId {
        debug_assert!(
            c.row < self.rows && c.col < self.cols,
            "{c:?} outside {self:?}"
        );
        CoreId(c.row * self.cols + c.col)
    }

    /// Coordinate of a tile id.
    #[inline]
    pub fn coord_of(self, id: CoreId) -> Coord {
        debug_assert!((id.index()) < self.num_tiles(), "{id:?} outside {self:?}");
        Coord {
            row: id.0 / self.cols,
            col: id.0 % self.cols,
        }
    }

    /// Iterator over all tile ids in row-major order.
    pub fn tiles(self) -> impl Iterator<Item = CoreId> {
        (0..self.num_tiles()).map(CoreId::from)
    }

    /// Iterator over all coordinates in row-major order.
    pub fn coords(self) -> impl Iterator<Item = Coord> {
        let cols = self.cols;
        let rows = self.rows;
        (0..rows).flat_map(move |r| (0..cols).map(move |c| Coord::new(r, c)))
    }

    /// The neighbouring coordinate in direction `d`, if it exists.
    pub fn neighbor(self, c: Coord, d: Dir) -> Option<Coord> {
        let (row, col) = (c.row as i32, c.col as i32);
        let (nr, nc) = match d {
            Dir::North => (row - 1, col),
            Dir::South => (row + 1, col),
            Dir::East => (row, col + 1),
            Dir::West => (row, col - 1),
            Dir::Local => return Some(c),
        };
        if nr < 0 || nc < 0 || nr >= self.rows as i32 || nc >= self.cols as i32 {
            None
        } else {
            Some(Coord::new(nr as u16, nc as u16))
        }
    }

    /// Manhattan distance between two coordinates (number of mesh hops
    /// under dimension-ordered routing).
    pub fn manhattan(self, a: Coord, b: Coord) -> u32 {
        let dr = (a.row as i32 - b.row as i32).unsigned_abs();
        let dc = (a.col as i32 - b.col as i32).unsigned_abs();
        dr + dc
    }

    /// The next direction on the XY (column-first… actually X-then-Y:
    /// correct column, then row) route from `from` toward `to`. Returns
    /// `Dir::Local` when already there.
    pub fn xy_next(self, from: Coord, to: Coord) -> Dir {
        if from.col < to.col {
            Dir::East
        } else if from.col > to.col {
            Dir::West
        } else if from.row < to.row {
            Dir::South
        } else if from.row > to.row {
            Dir::North
        } else {
            Dir::Local
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_coord_round_trip() {
        let m = Mesh2D::new(4, 8);
        for id in m.tiles() {
            assert_eq!(m.id_of(m.coord_of(id)), id);
        }
        assert_eq!(m.num_tiles(), 32);
    }

    #[test]
    fn squarest_shapes() {
        assert_eq!(Mesh2D::squarest(32), Mesh2D::new(4, 8));
        assert_eq!(Mesh2D::squarest(16), Mesh2D::new(4, 4));
        assert_eq!(Mesh2D::squarest(1), Mesh2D::new(1, 1));
        assert_eq!(Mesh2D::squarest(2), Mesh2D::new(1, 2));
        assert_eq!(Mesh2D::squarest(7), Mesh2D::new(1, 7));
        assert_eq!(Mesh2D::squarest(12), Mesh2D::new(3, 4));
    }

    #[test]
    fn neighbors_at_edges() {
        let m = Mesh2D::new(2, 2);
        let c00 = Coord::new(0, 0);
        assert_eq!(m.neighbor(c00, Dir::North), None);
        assert_eq!(m.neighbor(c00, Dir::West), None);
        assert_eq!(m.neighbor(c00, Dir::South), Some(Coord::new(1, 0)));
        assert_eq!(m.neighbor(c00, Dir::East), Some(Coord::new(0, 1)));
        assert_eq!(m.neighbor(c00, Dir::Local), Some(c00));
    }

    #[test]
    fn xy_route_reaches_destination() {
        let m = Mesh2D::new(4, 8);
        let from = Coord::new(3, 0);
        let to = Coord::new(0, 7);
        let mut cur = from;
        let mut hops = 0;
        loop {
            let d = m.xy_next(cur, to);
            if d == Dir::Local {
                break;
            }
            cur = m.neighbor(cur, d).expect("route stays in mesh");
            hops += 1;
            assert!(hops <= 32, "route did not terminate");
        }
        assert_eq!(cur, to);
        assert_eq!(hops, m.manhattan(from, to));
    }

    #[test]
    fn xy_corrects_x_before_y() {
        let m = Mesh2D::new(4, 4);
        assert_eq!(m.xy_next(Coord::new(2, 1), Coord::new(0, 3)), Dir::East);
        assert_eq!(m.xy_next(Coord::new(2, 3), Coord::new(0, 3)), Dir::North);
    }

    #[test]
    fn opposite_is_involution() {
        for d in Dir::ALL {
            assert_eq!(d.opposite().opposite(), d);
        }
    }

    #[test]
    fn manhattan_symmetry() {
        let m = Mesh2D::new(5, 5);
        let a = Coord::new(1, 4);
        let b = Coord::new(3, 0);
        assert_eq!(m.manhattan(a, b), m.manhattan(b, a));
        assert_eq!(m.manhattan(a, a), 0);
        assert_eq!(m.manhattan(a, b), 6);
    }
}
