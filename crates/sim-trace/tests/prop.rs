//! Property tests for the trace format: round-trip fidelity over
//! generated traces, and graceful rejection — an `Err`, never a panic —
//! of truncated, bit-flipped, and wrong-version files.
//!
//! The generators build arbitrary *valid* traces (anything
//! [`CoreTrace::validate`] accepts, not just what the recorder emits),
//! so the codec is held to its full contract, then attack the encoded
//! bytes. Decoding attacked bytes may still succeed (flipping a stored
//! value yields a different valid trace), but whatever comes back must
//! itself pass validation — the decoder never launders a broken stream.

use sim_base::check::{forall, forall_cases};
use sim_base::rng::SplitMix64;
use sim_isa::inst::{AmoOp, Region};
use sim_trace::{
    decode_core, encode_core, read_dir, write_dir, CoreTrace, Effect, Step, TraceError, TraceOp,
    TraceSet,
};

fn gen_effect(rng: &mut SplitMix64) -> Effect {
    match rng.next_below(5) {
        0 => Effect::None,
        1 => Effect::Load {
            addr: rng.next_u64() & 0xffff_fff8,
        },
        2 => Effect::Store {
            addr: rng.next_u64() & 0xffff_fff8,
            value: rng.next_u64(),
        },
        3 => Effect::Amo {
            addr: rng.next_u64() & 0xffff_fff8,
            op: if rng.chance(0.5) {
                AmoOp::Add
            } else {
                AmoOp::Swap
            },
            operand: rng.next_u64(),
        },
        _ => Effect::Busy {
            cycles: 2 + rng.next_below(1000) as u32,
        },
    }
}

fn gen_step(rng: &mut SplitMix64, effect: Effect) -> Step {
    let n_bar = rng.next_below(3) as usize;
    Step {
        pc: rng.next_below(1 << 20) as u32,
        retires: 1 + rng.next_below(4) as u8,
        region: match rng.next_below(4) {
            0 => Some(Region::Normal),
            1 => Some(Region::Barrier),
            2 => Some(Region::Lock),
            _ => None,
        },
        bar_writes: (0..n_bar)
            .map(|_| (rng.next_below(8) as u8, rng.next_u64()))
            .collect(),
        effect,
    }
}

/// An arbitrary trace satisfying [`CoreTrace::validate`]: any op mix,
/// every spin chased by its exit step, one final halting step.
fn gen_trace(rng: &mut SplitMix64) -> CoreTrace {
    let mut ops = Vec::new();
    for _ in 0..rng.next_below(40) {
        match rng.next_below(3) {
            0 => {
                let e = gen_effect(rng);
                ops.push(TraceOp::Step(gen_step(rng, e)));
            }
            1 => {
                ops.push(TraceOp::GlineSpin {
                    pc: rng.next_below(1 << 20) as u32,
                    iters: 1 + rng.next_below(1 << 20),
                });
                let e = gen_effect(rng);
                ops.push(TraceOp::Step(gen_step(rng, e)));
            }
            _ => {
                ops.push(TraceOp::MemSpin {
                    pc: rng.next_below(1 << 20) as u32,
                    addr: rng.next_u64() & 0xffff_fff8,
                    iter_retires: 2 + rng.next_below(2) as u8,
                    iters: 1 + rng.next_below(1 << 20),
                });
                let e = gen_effect(rng);
                ops.push(TraceOp::Step(gen_step(rng, e)));
            }
        }
    }
    ops.push(TraceOp::Step(gen_step(rng, Effect::Halt)));
    CoreTrace {
        core: rng.next_below(4096) as u32,
        ops,
    }
}

#[test]
fn round_trip_preserves_any_valid_trace() {
    forall("trace_round_trip", |rng| {
        let t = gen_trace(rng);
        t.validate().expect("generator emits valid traces");
        let bytes = encode_core(&t);
        let back = decode_core(&bytes).expect("round trip decodes");
        assert_eq!(t, back, "decode(encode(t)) != t");
    });
}

#[test]
fn truncation_at_any_point_is_rejected_without_panic() {
    forall("trace_truncation", |rng| {
        let t = gen_trace(rng);
        let bytes = encode_core(&t);
        // Cut at a random prefix (including the empty file), plus the
        // boundary just before the end — every cut must produce a
        // structured error, not a panic or a silently-shorter trace.
        for cut in [
            rng.next_below(bytes.len() as u64) as usize,
            bytes.len() - 1,
            0,
        ] {
            match decode_core(&bytes[..cut]) {
                Err(_) => {}
                Ok(back) => panic!(
                    "decoding a {cut}/{} byte prefix produced a trace of {} ops",
                    bytes.len(),
                    back.ops.len()
                ),
            }
        }
    });
}

#[test]
fn trailing_garbage_is_rejected() {
    forall_cases("trace_trailing_garbage", 16, |rng| {
        let t = gen_trace(rng);
        let mut bytes = encode_core(&t);
        bytes.push(rng.next_u64() as u8);
        assert!(
            decode_core(&bytes).is_err(),
            "trailing bytes must be rejected"
        );
    });
}

#[test]
fn corruption_never_panics_and_never_launders_invalid_traces() {
    forall("trace_corruption", |rng| {
        let t = gen_trace(rng);
        let mut bytes = encode_core(&t);
        // Flip 1–8 random bits anywhere in the stream.
        for _ in 0..1 + rng.next_below(8) {
            let i = rng.next_below(bytes.len() as u64) as usize;
            bytes[i] ^= 1 << rng.next_below(8);
        }
        // A flip in payload bytes can legitimately decode (to a
        // different trace); what must never happen is a panic or an
        // `Ok` carrying a trace that fails validation.
        if let Ok(back) = decode_core(&bytes) {
            back.validate()
                .expect("decoder accepted a trace that fails validation");
        }
    });
}

#[test]
fn wrong_magic_and_version_are_structured_errors() {
    forall_cases("trace_magic_version", 16, |rng| {
        let t = gen_trace(rng);
        let good = encode_core(&t);

        let mut bad_magic = good.clone();
        bad_magic[rng.next_below(4) as usize] ^= 0xff;
        assert!(
            matches!(decode_core(&bad_magic), Err(TraceError::BadMagic)),
            "corrupt magic must be BadMagic"
        );

        let mut bad_version = good.clone();
        let v = 2 + rng.next_below(1 << 30) as u32;
        bad_version[4..8].copy_from_slice(&v.to_le_bytes());
        assert!(
            matches!(decode_core(&bad_version), Err(TraceError::BadVersion(got)) if got == v),
            "future version must be BadVersion"
        );
    });
}

#[test]
fn dir_round_trip_and_manifest_corruption() {
    forall_cases("trace_dir_round_trip", 16, |rng| {
        let set = TraceSet {
            cores: (0..1 + rng.next_below(4))
                .map(|i| {
                    let mut t = gen_trace(rng);
                    t.core = i as u32;
                    t
                })
                .collect(),
            pokes: (0..rng.next_below(4))
                .map(|_| (rng.next_u64() & 0xffff_fff8, rng.next_u64()))
                .collect(),
            workload: format!("prop-{}", rng.next_u64()),
        };
        let dir = std::env::temp_dir().join(format!("gltr-prop-{}", rng.next_u64()));
        write_dir(&dir, &set).expect("write_dir");
        let back = read_dir(&dir).expect("read_dir");
        assert_eq!(set, back, "directory round trip changed the trace set");

        // Manifest attacks must come back as errors, not panics.
        std::fs::write(dir.join("manifest.json"), "{ not json").unwrap();
        assert!(read_dir(&dir).is_err(), "corrupt manifest must be rejected");
        std::fs::remove_file(dir.join("manifest.json")).unwrap();
        assert!(read_dir(&dir).is_err(), "missing manifest must be rejected");
        std::fs::remove_dir_all(&dir).unwrap();
    });
}
