//! The in-memory trace model.

use sim_isa::inst::{AmoOp, Region};

/// The side effect an issue group hands to the rest of the machine as
/// it ends. At most one per group: data-memory instructions, `busy`
/// blocks and `halt` all terminate the group in the exec-driven core.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Effect {
    /// The group ended without touching memory (ALU work, branches,
    /// barrier-register traffic, short `busy`).
    None,
    /// The group issued a load and the core entered its read stall.
    Load {
        /// Byte address of the access.
        addr: u64,
    },
    /// The group issued a store and the core entered its write stall.
    Store {
        /// Byte address of the access.
        addr: u64,
        /// Value stored.
        value: u64,
    },
    /// The group issued an atomic and the core entered its write stall.
    Amo {
        /// Byte address of the access.
        addr: u64,
        /// The read-modify-write flavour.
        op: AmoOp,
        /// Operand of the atomic.
        operand: u64,
    },
    /// The group opened a multi-cycle `busy` block (`cycles >= 2`; the
    /// issuing cycle is the first of the block, as in the exec core).
    Busy {
        /// Total block length in cycles.
        cycles: u32,
    },
    /// The core halted (explicit `halt`, or the program ran out).
    Halt,
}

/// One issue group: everything a core did on one *executing* cycle.
/// Stall cycles are not recorded — replay reproduces them from the live
/// memory hierarchy, which sees the identical request sequence.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Program counter at the start of the group (reproduces the
    /// exec-driven `Retire` trace events bit-identically).
    pub pc: u32,
    /// Dynamic instructions retired by the group.
    pub retires: u8,
    /// The architectural region after the group, when the group changed
    /// it (`region` markers; drives cycle attribution from here on).
    pub region: Option<Region>,
    /// `barw` arrivals performed by the group, in program order, with
    /// the barrier context each one targeted baked in.
    pub bar_writes: Vec<(u8, u64)>,
    /// The group-ending side effect.
    pub effect: Effect,
}

/// One op of a core's trace: a plain issue group or a run-length
/// compressed spin loop (spins dominate barrier-bound executions, so
/// compressing them is what makes traces compact — and what lets the
/// replay engine classify them for cycle skipping in O(1)).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TraceOp {
    /// A plain issue group.
    Step(Step),
    /// `iters` iterations of a G-line barrier spin (`top: barr ;
    /// b<cond> …, top`): one cycle and two retires per iteration, no
    /// memory interaction. The final, falling-through check is a plain
    /// [`Step`] after this op.
    GlineSpin {
        /// Program counter of the loop top.
        pc: u32,
        /// Taken-branch iterations executed.
        iters: u64,
    },
    /// `iters` iterations of a memory flag spin (`top: [li ;] ld ;
    /// b<cond> …, top`): two cycles per iteration — the load-issuing
    /// phase (an L1 hit) and the resolve-plus-back-branch phase. The
    /// final, falling-through iteration is recorded as plain steps.
    MemSpin {
        /// Program counter of the loop top.
        pc: u32,
        /// Byte address every iteration probes.
        addr: u64,
        /// Dynamic instructions per full iteration (2 or 3).
        iter_retires: u8,
        /// Full (taken-branch) iterations executed.
        iters: u64,
    },
}

/// One core's recorded execution.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CoreTrace {
    /// The core this trace belongs to.
    pub core: u32,
    /// The op sequence, in execution order.
    pub ops: Vec<TraceOp>,
}

impl CoreTrace {
    /// Checks the op-stream invariants the replay engine relies on:
    ///
    /// * the stream is non-empty and its final op is a plain [`Step`]
    ///   carrying [`Effect::Halt`] (replay terminates), with no halt
    ///   anywhere else (no dead ops);
    /// * every compressed spin op is followed by a plain [`Step`] — the
    ///   loop's falling-through exit — so the replay cursor never has to
    ///   look past one op ahead.
    ///
    /// [`crate::decode_core`] enforces this on every file it accepts;
    /// the check exists separately for hand-built traces.
    ///
    /// # Errors
    /// A human-readable description of the first violation.
    pub fn validate(&self) -> Result<(), String> {
        if self.ops.is_empty() {
            return Err("empty op stream".into());
        }
        for (i, op) in self.ops.iter().enumerate() {
            let last = i + 1 == self.ops.len();
            match op {
                TraceOp::Step(s) => {
                    if (s.effect == Effect::Halt) != last {
                        return Err(format!("op {i}: halt must be exactly the final op"));
                    }
                }
                TraceOp::GlineSpin { .. } | TraceOp::MemSpin { .. } => {
                    if !matches!(self.ops.get(i + 1), Some(TraceOp::Step(_))) {
                        return Err(format!("op {i}: compressed spin without its exit step"));
                    }
                }
            }
        }
        Ok(())
    }

    /// Total dynamic instructions the trace retires (sanity metric).
    pub fn instructions(&self) -> u64 {
        self.ops
            .iter()
            .map(|op| match op {
                TraceOp::Step(s) => s.retires as u64,
                TraceOp::GlineSpin { iters, .. } => 2 * iters,
                TraceOp::MemSpin {
                    iter_retires,
                    iters,
                    ..
                } => *iter_retires as u64 * iters,
            })
            .sum()
    }
}

/// A whole machine's traces: one [`CoreTrace`] per core plus the
/// initial memory image the recording run started from. Everything a
/// third party needs to submit a replayable workload.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceSet {
    /// Per-core traces, indexed by core id.
    pub cores: Vec<CoreTrace>,
    /// Initial memory image: (byte address, value) pairs poked before
    /// cycle 0.
    pub pokes: Vec<(u64, u64)>,
    /// Free-form provenance label (workload name).
    pub workload: String,
}
