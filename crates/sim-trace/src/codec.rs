//! Length-prefixed binary encoding of one core's trace.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic    b"GLTR"
//! version  u32
//! core     u32
//! op_count u64
//! op_count × op:
//!   tag u8:
//!     1 = Step:      pc u32, retires u8, region u8 (0 none / 1 normal /
//!                    2 barrier / 3 lock), n_bar_writes u8,
//!                    n × (ctx u8, value u64), effect u8 + payload
//!     2 = GlineSpin: pc u32, iters u64
//!     3 = MemSpin:   pc u32, addr u64, iter_retires u8, iters u64
//!   effect u8:
//!     0 = None | 1 = Load (addr u64) | 2 = Store (addr u64, value u64)
//!     3 = Amo (op u8, addr u64, operand u64) | 4 = Busy (cycles u32)
//!     5 = Halt
//! ```
//!
//! No trailing bytes are tolerated; every read is bounds-checked, so a
//! truncated or bit-flipped file decodes to a [`TraceError`], never a
//! panic.

use crate::format::{CoreTrace, Effect, Step, TraceOp};
use crate::{TraceError, FORMAT_VERSION, MAGIC};
use sim_isa::inst::{AmoOp, Region};

const TAG_STEP: u8 = 1;
const TAG_GLINE_SPIN: u8 = 2;
const TAG_MEM_SPIN: u8 = 3;

const FX_NONE: u8 = 0;
const FX_LOAD: u8 = 1;
const FX_STORE: u8 = 2;
const FX_AMO: u8 = 3;
const FX_BUSY: u8 = 4;
const FX_HALT: u8 = 5;

fn region_byte(r: Option<Region>) -> u8 {
    match r {
        None => 0,
        Some(Region::Normal) => 1,
        Some(Region::Barrier) => 2,
        Some(Region::Lock) => 3,
    }
}

/// Encodes one core's trace into the versioned binary layout.
pub fn encode_core(t: &CoreTrace) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + t.ops.len() * 8);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&t.core.to_le_bytes());
    out.extend_from_slice(&(t.ops.len() as u64).to_le_bytes());
    for op in &t.ops {
        match op {
            TraceOp::Step(s) => {
                out.push(TAG_STEP);
                out.extend_from_slice(&s.pc.to_le_bytes());
                out.push(s.retires);
                out.push(region_byte(s.region));
                out.push(s.bar_writes.len() as u8);
                for &(ctx, v) in &s.bar_writes {
                    out.push(ctx);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                match s.effect {
                    Effect::None => out.push(FX_NONE),
                    Effect::Load { addr } => {
                        out.push(FX_LOAD);
                        out.extend_from_slice(&addr.to_le_bytes());
                    }
                    Effect::Store { addr, value } => {
                        out.push(FX_STORE);
                        out.extend_from_slice(&addr.to_le_bytes());
                        out.extend_from_slice(&value.to_le_bytes());
                    }
                    Effect::Amo { addr, op, operand } => {
                        out.push(FX_AMO);
                        out.push(match op {
                            AmoOp::Add => 0,
                            AmoOp::Swap => 1,
                        });
                        out.extend_from_slice(&addr.to_le_bytes());
                        out.extend_from_slice(&operand.to_le_bytes());
                    }
                    Effect::Busy { cycles } => {
                        out.push(FX_BUSY);
                        out.extend_from_slice(&cycles.to_le_bytes());
                    }
                    Effect::Halt => out.push(FX_HALT),
                }
            }
            TraceOp::GlineSpin { pc, iters } => {
                out.push(TAG_GLINE_SPIN);
                out.extend_from_slice(&pc.to_le_bytes());
                out.extend_from_slice(&iters.to_le_bytes());
            }
            TraceOp::MemSpin {
                pc,
                addr,
                iter_retires,
                iters,
            } => {
                out.push(TAG_MEM_SPIN);
                out.extend_from_slice(&pc.to_le_bytes());
                out.extend_from_slice(&addr.to_le_bytes());
                out.push(*iter_retires);
                out.extend_from_slice(&iters.to_le_bytes());
            }
        }
    }
    out
}

/// A bounds-checked little-endian reader over the raw bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize, reading: &'static str) -> Result<&'a [u8], TraceError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(TraceError::Truncated {
                offset: self.pos,
                reading,
            }),
        }
    }

    fn u8(&mut self, reading: &'static str) -> Result<u8, TraceError> {
        Ok(self.take(1, reading)?[0])
    }

    fn u32(&mut self, reading: &'static str) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(4, reading)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self, reading: &'static str) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8, reading)?.try_into().expect("8 bytes"),
        ))
    }

    fn corrupt(&self, what: impl Into<String>) -> TraceError {
        TraceError::Corrupt {
            offset: self.pos,
            what: what.into(),
        }
    }
}

/// Decodes one core's trace, rejecting malformed input gracefully.
///
/// # Errors
/// [`TraceError`] on bad magic, unknown version, truncation, impossible
/// field values, or trailing bytes.
pub fn decode_core(bytes: &[u8]) -> Result<CoreTrace, TraceError> {
    let mut r = Reader { buf: bytes, pos: 0 };
    if r.take(4, "magic")? != MAGIC {
        return Err(TraceError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != FORMAT_VERSION {
        return Err(TraceError::BadVersion(version));
    }
    let core = r.u32("core id")?;
    let op_count = r.u64("op count")?;
    // A trace op is at least 2 bytes, so `op_count` beyond the byte
    // budget is corrupt — checking up front keeps a hostile count from
    // provoking a huge allocation.
    if op_count > (bytes.len() as u64) / 2 {
        return Err(r.corrupt(format!("op count {op_count} exceeds file size")));
    }
    let mut ops = Vec::with_capacity(op_count as usize);
    for _ in 0..op_count {
        let tag = r.u8("op tag")?;
        let op = match tag {
            TAG_STEP => {
                let pc = r.u32("step pc")?;
                let retires = r.u8("step retires")?;
                let region = match r.u8("step region")? {
                    0 => None,
                    1 => Some(Region::Normal),
                    2 => Some(Region::Barrier),
                    3 => Some(Region::Lock),
                    b => return Err(r.corrupt(format!("region byte {b}"))),
                };
                let n_bar = r.u8("bar-write count")?;
                let mut bar_writes = Vec::with_capacity(n_bar as usize);
                for _ in 0..n_bar {
                    let ctx = r.u8("bar-write ctx")?;
                    let v = r.u64("bar-write value")?;
                    if v == 0 {
                        return Err(r.corrupt("zero bar-write value"));
                    }
                    bar_writes.push((ctx, v));
                }
                let effect = match r.u8("effect tag")? {
                    FX_NONE => Effect::None,
                    FX_LOAD => Effect::Load {
                        addr: r.u64("load addr")?,
                    },
                    FX_STORE => Effect::Store {
                        addr: r.u64("store addr")?,
                        value: r.u64("store value")?,
                    },
                    FX_AMO => {
                        let op = match r.u8("amo op")? {
                            0 => AmoOp::Add,
                            1 => AmoOp::Swap,
                            b => return Err(r.corrupt(format!("amo op byte {b}"))),
                        };
                        Effect::Amo {
                            op,
                            addr: r.u64("amo addr")?,
                            operand: r.u64("amo operand")?,
                        }
                    }
                    FX_BUSY => {
                        let cycles = r.u32("busy cycles")?;
                        if cycles < 2 {
                            return Err(r.corrupt(format!("busy block of {cycles} cycles")));
                        }
                        Effect::Busy { cycles }
                    }
                    FX_HALT => Effect::Halt,
                    b => return Err(r.corrupt(format!("effect tag {b}"))),
                };
                TraceOp::Step(Step {
                    pc,
                    retires,
                    region,
                    bar_writes,
                    effect,
                })
            }
            TAG_GLINE_SPIN => {
                let pc = r.u32("gline-spin pc")?;
                let iters = r.u64("gline-spin iters")?;
                if iters == 0 {
                    return Err(r.corrupt("empty gline spin"));
                }
                TraceOp::GlineSpin { pc, iters }
            }
            TAG_MEM_SPIN => {
                let pc = r.u32("mem-spin pc")?;
                let addr = r.u64("mem-spin addr")?;
                let iter_retires = r.u8("mem-spin iter retires")?;
                if !(2..=3).contains(&iter_retires) {
                    return Err(r.corrupt(format!("mem-spin iteration of {iter_retires} retires")));
                }
                let iters = r.u64("mem-spin iters")?;
                if iters == 0 {
                    return Err(r.corrupt("empty mem spin"));
                }
                TraceOp::MemSpin {
                    pc,
                    addr,
                    iter_retires,
                    iters,
                }
            }
            b => return Err(r.corrupt(format!("op tag {b}"))),
        };
        ops.push(op);
    }
    if r.pos != bytes.len() {
        return Err(r.corrupt(format!("{} trailing bytes", bytes.len() - r.pos)));
    }
    let t = CoreTrace { core, ops };
    // Cross-op invariants (spin ops carry their exit step, the stream
    // ends in exactly one halt) so the replay engine can trust any
    // decoded trace.
    t.validate().map_err(|what| TraceError::Corrupt {
        offset: r.pos,
        what,
    })?;
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreTrace {
        CoreTrace {
            core: 3,
            ops: vec![
                TraceOp::Step(Step {
                    pc: 0,
                    retires: 2,
                    region: Some(Region::Barrier),
                    bar_writes: vec![(0, 1)],
                    effect: Effect::None,
                }),
                TraceOp::GlineSpin { pc: 2, iters: 17 },
                TraceOp::Step(Step {
                    pc: 2,
                    retires: 2,
                    region: Some(Region::Normal),
                    bar_writes: vec![],
                    effect: Effect::Store {
                        addr: 0x1_0040,
                        value: 9,
                    },
                }),
                TraceOp::MemSpin {
                    pc: 5,
                    addr: 0x1_0000,
                    iter_retires: 3,
                    iters: 250,
                },
                TraceOp::Step(Step {
                    pc: 9,
                    retires: 1,
                    region: None,
                    bar_writes: vec![],
                    effect: Effect::Halt,
                }),
            ],
        }
    }

    #[test]
    fn round_trips() {
        let t = sample();
        assert_eq!(decode_core(&encode_core(&t)).unwrap(), t);
    }

    #[test]
    fn rejects_bad_magic() {
        let mut b = encode_core(&sample());
        b[0] = b'X';
        assert!(matches!(decode_core(&b), Err(TraceError::BadMagic)));
    }

    #[test]
    fn rejects_future_version() {
        let mut b = encode_core(&sample());
        b[4] = 0xEE;
        assert!(matches!(decode_core(&b), Err(TraceError::BadVersion(_))));
    }

    #[test]
    fn rejects_every_truncation_point() {
        let b = encode_core(&sample());
        for len in 0..b.len() {
            assert!(
                decode_core(&b[..len]).is_err(),
                "prefix of {len} bytes must not decode"
            );
        }
    }

    #[test]
    fn rejects_trailing_bytes() {
        let mut b = encode_core(&sample());
        b.push(0);
        assert!(matches!(decode_core(&b), Err(TraceError::Corrupt { .. })));
    }

    #[test]
    fn rejects_semantically_broken_streams() {
        let halt = TraceOp::Step(Step {
            pc: 1,
            retires: 1,
            region: None,
            bar_writes: vec![],
            effect: Effect::Halt,
        });
        // A spin with no exit step behind it.
        let t = CoreTrace {
            core: 0,
            ops: vec![TraceOp::GlineSpin { pc: 0, iters: 3 }],
        };
        assert!(matches!(
            decode_core(&encode_core(&t)),
            Err(TraceError::Corrupt { .. })
        ));
        // A stream that never halts.
        let t = CoreTrace {
            core: 0,
            ops: vec![TraceOp::Step(Step {
                pc: 0,
                retires: 1,
                region: None,
                bar_writes: vec![],
                effect: Effect::None,
            })],
        };
        assert!(matches!(
            decode_core(&encode_core(&t)),
            Err(TraceError::Corrupt { .. })
        ));
        // A halt that is not the final op.
        let t = CoreTrace {
            core: 0,
            ops: vec![halt.clone(), halt],
        };
        assert!(matches!(
            decode_core(&encode_core(&t)),
            Err(TraceError::Corrupt { .. })
        ));
    }

    #[test]
    fn rejects_huge_op_count_without_allocating() {
        let mut b = encode_core(&CoreTrace {
            core: 0,
            ops: vec![],
        });
        // op_count sits at bytes 12..20.
        b[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(decode_core(&b), Err(TraceError::Corrupt { .. })));
    }
}
