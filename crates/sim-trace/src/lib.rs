//! # sim-trace — on-disk execution traces for trace-driven replay
//!
//! The exec-driven simulator interprets ISA programs every run. For
//! large sweeps that cost is pure overhead: the timing-relevant
//! behaviour of a core is fully described by the sequence of *issue
//! groups* it executes — how many instructions retired, which memory
//! request (if any) the group issued, which barrier writes it performed
//! — because everything between issue groups is a pure stall whose
//! length the memory hierarchy and barrier network reproduce on their
//! own. This crate defines that sequence as a compact, versioned
//! on-disk format (`DESIGN.md` §12):
//!
//! * [`TraceOp`] — one issue group ([`Step`]) or a run-length
//!   compressed spin loop ([`TraceOp::GlineSpin`], [`TraceOp::MemSpin`]).
//! * [`CoreTrace`] — one core's op sequence; encoded to a
//!   length-prefixed binary file (`core<i>.trace`) by [`encode_core`] /
//!   [`decode_core`].
//! * [`TraceSet`] — a whole machine's traces plus the initial memory
//!   image, written to / read from a directory by [`write_dir`] /
//!   [`read_dir`] (`manifest.json` + one trace file per core).
//!
//! Decoding never panics on hostile input: truncated, corrupted and
//! wrong-version files all come back as a structured [`TraceError`]
//! (property-tested in `tests/prop.rs`).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod codec;
mod dir;
mod format;

pub use codec::{decode_core, encode_core};
pub use dir::{read_dir, write_dir};
pub use format::{CoreTrace, Effect, Step, TraceOp, TraceSet};

/// Format version written by this crate (bumped on any layout change).
pub const FORMAT_VERSION: u32 = 1;

/// Magic bytes opening every per-core trace file.
pub const MAGIC: [u8; 4] = *b"GLTR";

/// Why a trace could not be read. Every variant is a graceful rejection
/// — hostile bytes never panic the decoder.
#[derive(Debug)]
pub enum TraceError {
    /// Filesystem error (annotated with the path involved).
    Io(String, std::io::Error),
    /// The file does not start with [`MAGIC`].
    BadMagic,
    /// The file's version is not [`FORMAT_VERSION`].
    BadVersion(u32),
    /// The file ends in the middle of a field.
    Truncated {
        /// Byte offset at which the read ran out.
        offset: usize,
        /// What the decoder was reading.
        reading: &'static str,
    },
    /// A field holds an impossible value.
    Corrupt {
        /// Byte offset of the offending field.
        offset: usize,
        /// What is wrong with it.
        what: String,
    },
    /// The directory's files disagree with each other or the manifest.
    Inconsistent(String),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::Io(path, e) => write!(f, "{path}: {e}"),
            TraceError::BadMagic => write!(f, "not a trace file (bad magic)"),
            TraceError::BadVersion(v) => {
                write!(
                    f,
                    "trace format version {v} (this build reads {FORMAT_VERSION})"
                )
            }
            TraceError::Truncated { offset, reading } => {
                write!(f, "truncated at byte {offset} while reading {reading}")
            }
            TraceError::Corrupt { offset, what } => write!(f, "corrupt at byte {offset}: {what}"),
            TraceError::Inconsistent(what) => write!(f, "inconsistent trace set: {what}"),
        }
    }
}

impl std::error::Error for TraceError {}
