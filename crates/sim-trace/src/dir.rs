//! Trace-set directory layout: `manifest.json` plus one binary
//! `core<i>.trace` file per core.
//!
//! The manifest carries the format version, the core count, the
//! workload label and the initial memory image (addresses and values as
//! decimal strings, so the full `u64` range survives the JSON float
//! representation). Everything cross-file — core count vs. trace files,
//! each file's embedded core id — is validated on read.

use crate::format::TraceSet;
use crate::{decode_core, encode_core, TraceError, FORMAT_VERSION};
use sim_base::json::{parse, Json};
use std::path::Path;

fn io_err(path: &Path, e: std::io::Error) -> TraceError {
    TraceError::Io(path.display().to_string(), e)
}

fn core_file(dir: &Path, i: usize) -> std::path::PathBuf {
    dir.join(format!("core{i}.trace"))
}

/// Writes `set` into `dir`, creating the directory if needed.
///
/// # Errors
/// [`TraceError::Io`] on any filesystem failure.
pub fn write_dir(dir: &Path, set: &TraceSet) -> Result<(), TraceError> {
    std::fs::create_dir_all(dir).map_err(|e| io_err(dir, e))?;
    let pokes = Json::arr(
        set.pokes
            .iter()
            .map(|&(a, v)| Json::arr([Json::from(a.to_string()), Json::from(v.to_string())])),
    );
    let manifest = Json::obj([
        ("version", Json::from(FORMAT_VERSION as u64)),
        ("cores", Json::from(set.cores.len() as u64)),
        ("workload", Json::from(set.workload.as_str())),
        ("pokes", pokes),
    ]);
    let mpath = dir.join("manifest.json");
    std::fs::write(&mpath, manifest.pretty()).map_err(|e| io_err(&mpath, e))?;
    for (i, t) in set.cores.iter().enumerate() {
        let path = core_file(dir, i);
        std::fs::write(&path, encode_core(t)).map_err(|e| io_err(&path, e))?;
    }
    Ok(())
}

fn manifest_corrupt(what: impl Into<String>) -> TraceError {
    TraceError::Corrupt {
        offset: 0,
        what: format!("manifest.json: {}", what.into()),
    }
}

fn parse_poke(entry: &Json) -> Result<(u64, u64), TraceError> {
    let pair = entry
        .as_arr()
        .filter(|p| p.len() == 2)
        .ok_or_else(|| manifest_corrupt("poke entry is not an [addr, value] pair"))?;
    let num = |j: &Json| -> Result<u64, TraceError> {
        j.as_str()
            .and_then(|s| s.parse().ok())
            .or_else(|| j.as_u64())
            .ok_or_else(|| manifest_corrupt("poke field is not a u64"))
    };
    Ok((num(&pair[0])?, num(&pair[1])?))
}

/// Reads a trace set back from `dir`, validating the manifest against
/// the per-core files.
///
/// # Errors
/// [`TraceError`] on filesystem failures, malformed JSON or binary
/// content, version mismatches, or manifest/file disagreements.
pub fn read_dir(dir: &Path) -> Result<TraceSet, TraceError> {
    let mpath = dir.join("manifest.json");
    let text = std::fs::read_to_string(&mpath).map_err(|e| io_err(&mpath, e))?;
    let manifest = parse(&text).map_err(|e| manifest_corrupt(format!("not valid JSON ({e:?})")))?;
    let version = manifest
        .get("version")
        .and_then(Json::as_u64)
        .ok_or_else(|| manifest_corrupt("missing version"))?;
    if version != FORMAT_VERSION as u64 {
        return Err(TraceError::BadVersion(version as u32));
    }
    let cores = manifest
        .get("cores")
        .and_then(Json::as_u64)
        .ok_or_else(|| manifest_corrupt("missing core count"))?;
    if cores == 0 || cores > 4096 {
        return Err(manifest_corrupt(format!("implausible core count {cores}")));
    }
    let workload = manifest
        .get("workload")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_string();
    let mut pokes = Vec::new();
    if let Some(list) = manifest.get("pokes") {
        let list = list
            .as_arr()
            .ok_or_else(|| manifest_corrupt("pokes is not an array"))?;
        for entry in list {
            pokes.push(parse_poke(entry)?);
        }
    }
    let mut traces = Vec::with_capacity(cores as usize);
    for i in 0..cores as usize {
        let path = core_file(dir, i);
        let bytes = std::fs::read(&path).map_err(|e| io_err(&path, e))?;
        let t = decode_core(&bytes)?;
        if t.core as usize != i {
            return Err(TraceError::Inconsistent(format!(
                "{} holds core {}'s trace",
                path.display(),
                t.core
            )));
        }
        traces.push(t);
    }
    Ok(TraceSet {
        cores: traces,
        pokes,
        workload,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::format::{CoreTrace, Effect, Step, TraceOp};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("sim-trace-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    fn sample_set() -> TraceSet {
        let core = |i: u32| CoreTrace {
            core: i,
            ops: vec![TraceOp::Step(Step {
                pc: 0,
                retires: 1,
                region: None,
                bar_writes: vec![],
                effect: Effect::Halt,
            })],
        };
        TraceSet {
            cores: (0..2).map(core).collect(),
            pokes: vec![(0x1_0000, u64::MAX), (0x2_0000, 7)],
            workload: "unit".into(),
        }
    }

    #[test]
    fn directory_round_trips() {
        let dir = temp_dir("roundtrip");
        let set = sample_set();
        write_dir(&dir, &set).unwrap();
        assert_eq!(read_dir(&dir).unwrap(), set);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let dir = temp_dir("missing");
        assert!(matches!(read_dir(&dir), Err(TraceError::Io(..))));
    }

    #[test]
    fn mismatched_core_id_is_inconsistent() {
        let dir = temp_dir("coreid");
        let mut set = sample_set();
        write_dir(&dir, &set).unwrap();
        set.cores[1].core = 0;
        std::fs::write(core_file(&dir, 1), encode_core(&set.cores[1])).unwrap();
        assert!(matches!(read_dir(&dir), Err(TraceError::Inconsistent(_))));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn garbage_manifest_is_rejected() {
        let dir = temp_dir("garbage");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("manifest.json"), "{not json").unwrap();
        assert!(matches!(read_dir(&dir), Err(TraceError::Corrupt { .. })));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
