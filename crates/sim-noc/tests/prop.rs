//! Property tests for the NoC: arbitrary traffic must be delivered
//! exactly once, per-pair-per-class FIFO order must hold, and the
//! network must drain to idle under any buffer size.
//!
//! Runs on the in-repo seed-sweep harness ([`sim_base::check`]) instead of
//! an external property-testing crate, so the suite builds fully offline.

#![allow(clippy::needless_range_loop)] // indexing parallel arrays

use sim_base::check::forall_cases;
use sim_base::config::NocConfig;
use sim_base::rng::SplitMix64;
use sim_base::stats::MsgClass;
use sim_base::{CoreId, Mesh2D};
use sim_noc::{Message, Noc};

#[derive(Clone, Debug)]
struct Traffic {
    src: usize,
    dst: usize,
    class: MsgClass,
    bytes: u32,
}

fn arb_class(rng: &mut SplitMix64) -> MsgClass {
    [MsgClass::Request, MsgClass::Reply, MsgClass::Coherence][rng.next_below(3) as usize]
}

fn arb_traffic(rng: &mut SplitMix64, tiles: usize) -> Traffic {
    Traffic {
        src: rng.next_below(tiles as u64) as usize,
        dst: rng.next_below(tiles as u64) as usize,
        class: arb_class(rng),
        bytes: if rng.chance(0.5) { 0 } else { 64 },
    }
}

#[test]
fn every_message_delivered_exactly_once() {
    forall_cases("every_message_delivered_exactly_once", 48, |rng| {
        let rows = 1 + rng.next_below(4) as u16;
        let cols = 1 + rng.next_below(8) as u16;
        let mesh = Mesh2D::new(rows, cols);
        let tiles = mesh.num_tiles();
        let buf = 1 + rng.next_below(8) as u32;
        let n_msgs = 1 + rng.next_below(199) as usize;
        let cfg = NocConfig {
            vc_buffer_flits: buf,
            ..NocConfig::default()
        };
        let mut noc: Noc<usize> = Noc::new(mesh, cfg);
        let mut expected = vec![0usize; tiles];
        let mut sent = 0;
        for tag in 0..n_msgs {
            let t = arb_traffic(rng, tiles);
            noc.send(Message {
                src: CoreId::from(t.src),
                dst: CoreId::from(t.dst),
                class: t.class,
                payload_bytes: t.bytes,
                payload: tag,
            });
            expected[t.dst] += 1;
            sent += 1;
        }
        let mut guard = 0;
        while !noc.is_idle() {
            noc.tick();
            guard += 1;
            assert!(guard < 1_000_000, "network failed to drain");
        }
        let mut got = 0;
        let mut seen = sim_base::fxmap::FxHashSet::default();
        for d in 0..tiles {
            let mut count = 0;
            while let Some(m) = noc.recv(CoreId::from(d)) {
                assert!(
                    seen.insert(m.payload),
                    "message {} delivered twice",
                    m.payload
                );
                assert_eq!(m.dst.index(), d, "delivered to the wrong tile");
                count += 1;
            }
            assert_eq!(count, expected[d], "tile {d} delivery count");
            got += count;
        }
        assert_eq!(got, sent);
    });
}

#[test]
fn per_pair_per_class_fifo() {
    forall_cases("per_pair_per_class_fifo", 48, |rng| {
        let n_msgs = 1 + rng.next_below(59) as usize;
        let src = rng.next_below(8) as usize;
        let dst = (src + 1 + rng.next_below(7) as usize) % 8;
        let class = arb_class(rng);
        let mesh = Mesh2D::new(2, 4);
        let mut noc: Noc<usize> = Noc::new(mesh, NocConfig::default());
        for i in 0..n_msgs {
            noc.send(Message {
                src: CoreId::from(src),
                dst: CoreId::from(dst),
                class,
                payload_bytes: if i % 3 == 0 { 64 } else { 0 },
                payload: i,
            });
        }
        let mut guard = 0;
        while !noc.is_idle() {
            noc.tick();
            guard += 1;
            assert!(guard < 100_000);
        }
        let mut got = Vec::new();
        while let Some(m) = noc.recv(CoreId::from(dst)) {
            got.push(m.payload);
        }
        assert_eq!(got, (0..n_msgs).collect::<Vec<_>>());
    });
}

#[test]
fn flit_hops_match_manhattan_distance() {
    forall_cases("flit_hops_match_manhattan_distance", 48, |rng| {
        let src = rng.next_below(32) as usize;
        let dst = (src + 1 + rng.next_below(31) as usize) % 32;
        let mesh = Mesh2D::new(4, 8);
        let mut noc: Noc<u8> = Noc::new(mesh, NocConfig::default());
        noc.send(Message {
            src: CoreId::from(src),
            dst: CoreId::from(dst),
            class: MsgClass::Request,
            payload_bytes: 0,
            payload: 0,
        });
        while !noc.is_idle() {
            noc.tick();
        }
        let hops = mesh.manhattan(
            mesh.coord_of(CoreId::from(src)),
            mesh.coord_of(CoreId::from(dst)),
        );
        assert_eq!(noc.stats().flit_hops, hops as u64);
        // And the latency is exactly hops × (router + link) + ejection.
        assert_eq!(
            noc.stats().latency_of(MsgClass::Request).max(),
            Some(hops as u64 * 4 + 3)
        );
    });
}
