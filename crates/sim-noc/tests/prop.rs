//! Property tests for the NoC: arbitrary traffic must be delivered
//! exactly once, per-pair-per-class FIFO order must hold, and the
//! network must drain to idle under any buffer size.

#![allow(clippy::needless_range_loop)] // indexing parallel arrays

use proptest::prelude::*;
use sim_base::config::NocConfig;
use sim_base::stats::MsgClass;
use sim_base::{CoreId, Mesh2D};
use sim_noc::{Message, Noc};

#[derive(Clone, Debug)]
struct Traffic {
    src: usize,
    dst: usize,
    class: MsgClass,
    bytes: u32,
}

fn arb_class() -> impl Strategy<Value = MsgClass> {
    prop_oneof![Just(MsgClass::Request), Just(MsgClass::Reply), Just(MsgClass::Coherence)]
}

fn arb_traffic(tiles: usize) -> impl Strategy<Value = Traffic> {
    (0..tiles, 0..tiles, arb_class(), prop_oneof![Just(0u32), Just(64u32)])
        .prop_map(|(src, dst, class, bytes)| Traffic { src, dst, class, bytes })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn every_message_delivered_exactly_once(
        rows in 1u16..=4,
        cols in 1u16..=8,
        msgs in prop::collection::vec(arb_traffic(32), 1..200),
        buf in 1u32..=8,
    ) {
        let mesh = Mesh2D::new(rows, cols);
        let tiles = mesh.num_tiles();
        let cfg = NocConfig { vc_buffer_flits: buf, ..NocConfig::default() };
        let mut noc: Noc<usize> = Noc::new(mesh, cfg);
        let mut expected = vec![0usize; tiles];
        let mut sent = 0;
        for (tag, t) in msgs.iter().enumerate() {
            if t.src >= tiles || t.dst >= tiles {
                continue;
            }
            noc.send(Message {
                src: CoreId::from(t.src),
                dst: CoreId::from(t.dst),
                class: t.class,
                payload_bytes: t.bytes,
                payload: tag,
            });
            expected[t.dst] += 1;
            sent += 1;
        }
        let mut guard = 0;
        while !noc.is_idle() {
            noc.tick();
            guard += 1;
            prop_assert!(guard < 1_000_000, "network failed to drain");
        }
        let mut got = 0;
        let mut seen = std::collections::HashSet::new();
        for d in 0..tiles {
            let mut count = 0;
            while let Some(m) = noc.recv(CoreId::from(d)) {
                prop_assert!(seen.insert(m.payload), "message {} delivered twice", m.payload);
                prop_assert_eq!(m.dst.index(), d, "delivered to the wrong tile");
                count += 1;
            }
            prop_assert_eq!(count, expected[d], "tile {} delivery count", d);
            got += count;
        }
        prop_assert_eq!(got, sent);
    }

    #[test]
    fn per_pair_per_class_fifo(
        n_msgs in 1usize..60,
        src in 0usize..8,
        dst in 0usize..8,
        class in arb_class(),
    ) {
        prop_assume!(src != dst);
        let mesh = Mesh2D::new(2, 4);
        let mut noc: Noc<usize> = Noc::new(mesh, NocConfig::default());
        for i in 0..n_msgs {
            noc.send(Message {
                src: CoreId::from(src),
                dst: CoreId::from(dst),
                class,
                payload_bytes: if i % 3 == 0 { 64 } else { 0 },
                payload: i,
            });
        }
        let mut guard = 0;
        while !noc.is_idle() {
            noc.tick();
            guard += 1;
            prop_assert!(guard < 100_000);
        }
        let mut got = Vec::new();
        while let Some(m) = noc.recv(CoreId::from(dst)) {
            got.push(m.payload);
        }
        prop_assert_eq!(got, (0..n_msgs).collect::<Vec<_>>());
    }

    #[test]
    fn flit_hops_match_manhattan_distance(
        src in 0usize..32,
        dst in 0usize..32,
    ) {
        prop_assume!(src != dst);
        let mesh = Mesh2D::new(4, 8);
        let mut noc: Noc<u8> = Noc::new(mesh, NocConfig::default());
        noc.send(Message {
            src: CoreId::from(src),
            dst: CoreId::from(dst),
            class: MsgClass::Request,
            payload_bytes: 0,
            payload: 0,
        });
        while !noc.is_idle() {
            noc.tick();
        }
        let hops = mesh.manhattan(mesh.coord_of(CoreId::from(src)), mesh.coord_of(CoreId::from(dst)));
        prop_assert_eq!(noc.stats().flit_hops, hops as u64);
        // And the latency is exactly hops × (router + link) + ejection.
        prop_assert_eq!(noc.stats().latency_of(MsgClass::Request).max(), Some(hops as u64 * 4 + 3));
    }
}
