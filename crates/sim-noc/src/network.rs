//! The mesh network: injection, routing, arbitration, delivery.

use crate::msg::{flits_for, Flit, Message, PacketInfo};
use crate::router::{Router, WormLock, NUM_PORTS, NUM_VCS};
use crate::stats::NocStats;
use sim_base::active::ActiveSet;
use sim_base::config::NocConfig;
use sim_base::fxmap::FxHashMap;
use sim_base::geom::Dir;
use sim_base::trace::{Event, NullSink, TraceSink, Tracer};
use sim_base::{CoreId, Cycle, Mesh2D};
use std::collections::VecDeque;

/// A flit in flight on a link (plus the upstream router pipeline).
#[derive(Clone, Copy, Debug)]
struct WireEntry {
    arrive: Cycle,
    router: usize,
    in_port: usize,
    vc: usize,
    flit: Flit,
}

/// A flit crossing the destination router toward the network interface.
#[derive(Clone, Copy, Debug)]
struct EjectEntry {
    arrive: Cycle,
    flit: Flit,
}

/// Default number of cycles a packet may live before the deadlock
/// watchdog trips.
const DEFAULT_WATCHDOG: u64 = 1_000_000;

/// Active-set occupancy counters (diagnostics only — never part of a
/// report, so sparse and dense runs stay bit-identical).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NocSchedStats {
    /// Ticks performed.
    pub ticks: u64,
    /// Routers visited by phase-3 arbitration (routers with buffered
    /// flits; the dense scan visits the same ones after its guard).
    pub router_visits: u64,
    /// Tiles visited by phase-2 injection (tiles with queued flits).
    pub inject_visits: u64,
}

impl NocSchedStats {
    /// Mean number of routers arbitrated per tick.
    pub fn mean_active_routers(&self) -> f64 {
        if self.ticks == 0 {
            0.0
        } else {
            self.router_visits as f64 / self.ticks as f64
        }
    }
}

/// The cycle-level mesh NoC, generic over the payload type `T` and a
/// [`TraceSink`] (the default [`NullSink`] compiles tracing away).
///
/// Driving contract (same as the other hardware models in this project):
/// during a cycle, clients may [`send`](Noc::send) and
/// [`recv`](Noc::recv); the simulator then calls [`tick`](Noc::tick)
/// exactly once per cycle.
#[derive(Debug)]
pub struct Noc<T, S: TraceSink = NullSink> {
    mesh: Mesh2D,
    cfg: NocConfig,
    routers: Vec<Router>,
    /// Unbounded per-tile, per-VC network-interface injection queues.
    inject_q: Vec<[VecDeque<Flit>; NUM_VCS]>,
    /// Flits in flight between routers, FIFO in arrival order (the per-hop
    /// delay is a constant, so push order == arrival order).
    wire: VecDeque<WireEntry>,
    /// Flits crossing the final router toward delivery.
    eject: VecDeque<EjectEntry>,
    /// Per-packet routing/bookkeeping state.
    packets: FxHashMap<u64, PacketInfo>,
    /// Payloads parked while their flits traverse the mesh.
    payloads: FxHashMap<u64, Message<T>>,
    /// Same-tile messages bypassing the mesh: (deliver_at, message).
    bypass: VecDeque<(Cycle, Message<T>)>,
    /// Delivered messages per tile.
    delivered: Vec<VecDeque<Message<T>>>,
    next_pkt: u64,
    now: Cycle,
    /// Flits anywhere in the system (fast-path check).
    active_flits: usize,
    /// Flits buffered in each router's input VCs (mirrors
    /// [`Router::buffered`], maintained on enqueue/dequeue edges).
    router_flits: Vec<u32>,
    /// Routers with buffered flits — the phase-3 arbitration work list.
    active_routers: ActiveSet,
    /// Tiles with a non-empty NI injection queue — the phase-2 work list.
    inject_tiles: ActiveSet,
    /// Tiles with undelivered messages (exact: maintained by
    /// delivery-queue push/pop edges).
    delivery_tiles: ActiveSet,
    /// Total undelivered messages across all tiles.
    delivered_count: usize,
    /// Scratch for snapshotting an active set during a tick.
    sched_scratch: Vec<u32>,
    /// Gate for the sparse tick paths (`--no-active-set` escape hatch).
    active_set_enabled: bool,
    sched: NocSchedStats,
    watchdog: u64,
    stats: NocStats,
    tracer: Tracer<S>,
}

impl<T> Noc<T> {
    /// Builds the NoC for a mesh.
    pub fn new(mesh: Mesh2D, cfg: NocConfig) -> Noc<T> {
        Noc::traced(mesh, cfg, Tracer::default())
    }
}

impl<T, S: TraceSink> Noc<T, S> {
    /// Builds a traced NoC: sends, per-flit link hops and deliveries are
    /// emitted into `tracer`.
    pub fn traced(mesh: Mesh2D, cfg: NocConfig, tracer: Tracer<S>) -> Noc<T, S> {
        assert!(
            cfg.vc_buffer_flits >= 1,
            "VC buffers need at least one flit"
        );
        assert!(cfg.link_bytes >= 1);
        let n = mesh.num_tiles();
        Noc {
            mesh,
            cfg,
            routers: (0..n).map(|_| Router::new(cfg.vc_buffer_flits)).collect(),
            inject_q: (0..n).map(|_| Default::default()).collect(),
            wire: VecDeque::new(),
            eject: VecDeque::new(),
            packets: FxHashMap::default(),
            payloads: FxHashMap::default(),
            bypass: VecDeque::new(),
            delivered: (0..n).map(|_| VecDeque::new()).collect(),
            next_pkt: 0,
            now: 0,
            active_flits: 0,
            router_flits: vec![0; n],
            active_routers: ActiveSet::new(n),
            inject_tiles: ActiveSet::new(n),
            delivery_tiles: ActiveSet::new(n),
            delivered_count: 0,
            sched_scratch: Vec::new(),
            active_set_enabled: true,
            sched: NocSchedStats::default(),
            watchdog: DEFAULT_WATCHDOG,
            stats: NocStats::default(),
            tracer,
        }
    }

    /// The tracer this NoC emits into.
    pub fn tracer(&self) -> &Tracer<S> {
        &self.tracer
    }

    /// The mesh this network spans.
    pub fn mesh(&self) -> Mesh2D {
        self.mesh
    }

    /// Configuration in use.
    pub fn config(&self) -> NocConfig {
        self.cfg
    }

    /// Current cycle (ticks performed).
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Statistics so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Sets the deadlock watchdog: panic when a packet has been in the
    /// network longer than `cycles`.
    pub fn set_watchdog(&mut self, cycles: u64) {
        self.watchdog = cycles;
    }

    /// Enables or disables active-set micro-scheduling (on by default).
    /// When disabled, [`tick`](Self::tick) falls back to the dense
    /// every-router/every-tile scan; results are bit-identical either
    /// way (the work lists merely skip components the dense scan would
    /// also skip with its own guards).
    pub fn set_active_set_enabled(&mut self, on: bool) {
        self.active_set_enabled = on;
    }

    /// Whether active-set micro-scheduling is enabled.
    pub fn active_set_enabled(&self) -> bool {
        self.active_set_enabled
    }

    /// Active-set occupancy counters for this run so far.
    pub fn sched_stats(&self) -> NocSchedStats {
        self.sched
    }

    /// True when no message is anywhere in the network.
    pub fn is_idle(&self) -> bool {
        self.active_flits == 0 && self.bypass.is_empty()
    }

    /// Messages currently in flight (including bypass).
    pub fn in_flight(&self) -> usize {
        self.packets.len() + self.bypass.len()
    }

    /// Injects a message. Same-tile messages bypass the mesh and arrive
    /// next cycle; all others are flit-ized and compete for links.
    pub fn send(&mut self, msg: Message<T>) {
        assert!(
            msg.src.index() < self.mesh.num_tiles(),
            "bad src {:?}",
            msg.src
        );
        assert!(
            msg.dst.index() < self.mesh.num_tiles(),
            "bad dst {:?}",
            msg.dst
        );
        if msg.src == msg.dst {
            self.stats.local_bypass += 1;
            // Delivered by this cycle's tick, i.e. visible to the
            // receiver on the next cycle — one cycle of NI latency.
            self.bypass.push_back((self.now, msg));
            return;
        }
        self.stats.sent.add(msg.class, 1);
        let nflits = flits_for(
            msg.payload_bytes,
            self.cfg.header_bytes,
            self.cfg.link_bytes,
        );
        let pkt = self.next_pkt;
        self.next_pkt += 1;
        self.packets.insert(
            pkt,
            PacketInfo {
                dst: msg.dst,
                class: msg.class,
                injected_at: self.now,
                flits_total: nflits,
                flits_arrived: 0,
            },
        );
        self.tracer.emit(self.now, || Event::NocSend {
            pkt,
            src: msg.src,
            dst: msg.dst,
            class: msg.class,
            flits: nflits,
        });
        let vc = msg.class.index();
        let q = &mut self.inject_q[msg.src.index()][vc];
        for i in 0..nflits {
            q.push_back(Flit {
                pkt,
                is_head: i == 0,
                is_tail: i == nflits - 1,
            });
        }
        self.active_flits += nflits as usize;
        self.inject_tiles.insert(msg.src.index());
        self.payloads.insert(pkt, msg);
    }

    /// Pops one delivered message for `tile`, if any.
    pub fn recv(&mut self, tile: CoreId) -> Option<Message<T>> {
        let q = &mut self.delivered[tile.index()];
        let msg = q.pop_front();
        if msg.is_some() {
            self.delivered_count -= 1;
            if q.is_empty() {
                self.delivery_tiles.remove(tile.index());
            }
        }
        msg
    }

    /// True when any delivered message is waiting to be received.
    pub fn has_deliveries(&self) -> bool {
        self.delivered_count > 0
    }

    /// True when `tile` has at least one delivered message waiting.
    /// Exact and one tick ahead of the receiver: messages become
    /// deliverable during the previous cycle's [`tick`](Self::tick), so
    /// at the top of a cycle this predicate names precisely the tiles
    /// whose controllers will be handed a message this cycle.
    pub fn has_delivery_for(&self, tile: CoreId) -> bool {
        !self.delivered[tile.index()].is_empty()
    }

    /// Snapshots the tiles with undelivered messages into `out`, in
    /// ascending tile order (the order a dense `for tile in 0..n` recv
    /// scan would find them).
    pub fn collect_delivery_tiles(&mut self, out: &mut Vec<u32>) {
        self.delivery_tiles.collect_sorted(out);
    }

    /// Records a message delivery to `tile`'s queue bookkeeping.
    #[inline]
    fn note_delivery(&mut self, tile: usize) {
        self.delivered_count += 1;
        self.delivery_tiles.insert(tile);
    }

    /// Re-queues a message directly into `tile`'s delivered queue,
    /// without transit, flits, or statistics. The epoch engine's
    /// boundary canonicalization uses this for same-tile messages its
    /// free-run produced on the final window cycle but did not consume:
    /// serially they would sit in the bypass queue and deliver on the
    /// next tick, so the epoch engine re-materializes them here (before
    /// that tick runs) to leave the network in the bit-identical state.
    pub fn redeliver(&mut self, tile: CoreId, msg: Message<T>) {
        self.delivered[tile.index()].push_back(msg);
        self.note_delivery(tile.index());
    }

    /// A lower bound on the cycle at which the next in-transit message
    /// can *mature into a delivery* (become receivable by its tile), or
    /// `None` when nothing is in transit. Callers must have drained the
    /// bypass queue and all delivered queues first — this bound only
    /// speaks for flits.
    ///
    /// The bound follows the pipeline: an ejecting flit delivers no
    /// earlier than its scheduled arrival; a flit on a wire must still
    /// cross the ejection pipeline (`router_latency`) after it lands;
    /// and a flit buffered in a router or injection queue can win
    /// arbitration next tick at the earliest, then eject. The epoch
    /// engine turns this into a free-run window: ticks strictly before
    /// the bound cannot hand any tile a new message.
    pub fn earliest_delivery_maturation(&self) -> Option<Cycle> {
        debug_assert!(
            self.bypass.is_empty() && !self.has_deliveries(),
            "maturation bound queried with undrained deliveries"
        );
        if self.active_flits == 0 {
            return None;
        }
        let r = self.cfg.router_latency as u64;
        // Both queues are FIFO in arrival order (each adds a constant
        // latency to its push cycle), so the fronts are the minima.
        let mut m = Cycle::MAX;
        if let Some(e) = self.eject.front() {
            m = m.min(e.arrive);
        }
        if let Some(w) = self.wire.front() {
            m = m.min(w.arrive + r);
        }
        if self.wire.len() + self.eject.len() < self.active_flits {
            // Something is buffered in a router or injection queue; it
            // may win arbitration on the very next tick and then cross
            // the ejection pipeline.
            m = m.min(self.now + r);
        }
        Some(m.max(self.now))
    }

    /// Minimum number of cycles between a *remote* (`src != dst`)
    /// [`send`](Self::send) at cycle `e` and the tick at whose end the
    /// message can first mature into a delivery (`e +` this value):
    /// injection arbitration plus the source router's pipeline, one
    /// link, and the destination's ejection pipeline — a floor even for
    /// mesh neighbours, so the destination tile handles it no earlier
    /// than cycle `e + this + 1`. Same-tile sends bypass the network
    /// entirely and are *not* covered.
    pub fn min_remote_delivery_latency(&self) -> u64 {
        (2 * self.cfg.router_latency + self.cfg.link_latency) as u64
    }

    /// Credits `n` local-bypass sends to the statistics without routing
    /// anything. The epoch engine consumes same-tile messages through
    /// per-tile inboxes that never touch the network; this keeps the
    /// `local_bypass` counter identical to the serial engine's.
    pub fn add_local_bypass(&mut self, n: u64) {
        self.stats.local_bypass += n;
    }

    /// The earliest cycle at which the network can change observable
    /// state, or `None` when it is completely empty.
    ///
    /// Returns `Some(now)` when receivers already have work (delivered
    /// or matured-bypass messages) or an in-transit arrival matures this
    /// very cycle, `Some(now + 1)` while flits are buffered in routers
    /// or injection queues (arbitration makes progress every cycle), and
    /// the earliest in-transit arrival when every flit is on a wire or
    /// crossing the ejection pipeline — all ticks strictly before the
    /// reported cycle are provable no-ops.
    pub fn next_event(&self) -> Option<Cycle> {
        if self.has_deliveries() || !self.bypass.is_empty() {
            // Bypass entries are stamped with their send cycle, so a
            // non-empty bypass queue always matures by the next tick.
            return Some(self.now);
        }
        if self.active_flits == 0 {
            return None;
        }
        // Earliest scheduled arrival. Both queues are FIFO in arrival
        // order (each adds a constant latency to its push cycle), so the
        // fronts are the minima.
        let w = self.wire.front().map(|e| e.arrive);
        let e = self.eject.front().map(|e| e.arrive);
        let front = match (w, e) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, b) => a.or(b),
        };
        debug_assert!(front.is_none_or(|f| f >= self.now), "stale arrival");
        if self.wire.len() + self.eject.len() < self.active_flits {
            // Something is buffered in a router or injection queue;
            // arbitration may move it on the very next tick — unless an
            // already-matured arrival changes state even sooner.
            return Some(front.map_or(self.now + 1, |f| f.min(self.now + 1)));
        }
        front
    }

    /// Jumps the network clock to `t` without ticking the cycles in
    /// between. Only legal when [`next_event`](Self::next_event)
    /// reports no observable state change strictly before `t` — every
    /// skipped tick would have been a no-op.
    pub fn skip_to(&mut self, t: Cycle) {
        debug_assert!(t >= self.now);
        debug_assert!(
            self.next_event().is_none_or(|e| e >= t),
            "NoC skip over a live event"
        );
        self.now = t;
    }

    /// Next output direction for a packet at router `r`.
    fn route(&self, r: usize, pkt: u64) -> Dir {
        let dst = self.packets[&pkt].dst;
        self.mesh
            .xy_next(self.mesh.coord_of(CoreId::from(r)), self.mesh.coord_of(dst))
    }

    /// Advances the network one cycle.
    pub fn tick(&mut self) {
        let now = self.now;
        self.sched.ticks += 1;

        // Phase 1: bypass + wire + ejection arrivals scheduled for `now`.
        while self.bypass.front().is_some_and(|(t, _)| *t <= now) {
            let (_, msg) = self.bypass.pop_front().expect("checked non-empty");
            let dst = msg.dst.index();
            self.delivered[dst].push_back(msg);
            self.note_delivery(dst);
        }
        while self.wire.front().is_some_and(|w| w.arrive <= now) {
            let w = self.wire.pop_front().expect("checked non-empty");
            self.routers[w.router].in_buf[w.in_port][w.vc].push_back(w.flit);
            self.router_flits[w.router] += 1;
            self.active_routers.insert(w.router);
        }
        while self.eject.front().is_some_and(|e| e.arrive <= now) {
            let e = self.eject.pop_front().expect("checked non-empty");
            self.finish_flit(e.flit, now);
        }

        // Fast path: nothing anywhere.
        if self.active_flits == 0 {
            self.now += 1;
            return;
        }

        if self.active_set_enabled {
            self.tick_sparse(now);
        } else {
            self.tick_dense(now);
        }

        // Deadlock watchdog (amortized).
        if now.is_multiple_of(4096) {
            for (pkt, info) in &self.packets {
                assert!(
                    now - info.injected_at <= self.watchdog,
                    "NoC watchdog: packet {pkt} ({:?} → {:?}, class {:?}) stuck for {} cycles",
                    self.payloads.get(pkt).map(|m| m.src),
                    info.dst,
                    info.class,
                    now - info.injected_at
                );
            }
        }

        self.now += 1;
    }

    /// Phases 2 and 3 over the active-set work lists: only tiles with
    /// queued flits and routers with buffered flits are visited. These
    /// are exactly the components the dense scan does work on (its
    /// guards skip the rest), and both work lists iterate in ascending
    /// index order, so the two paths are bit-identical.
    fn tick_sparse(&mut self, now: Cycle) {
        // Phase 2: NI injection into the local input VCs.
        if !self.inject_tiles.is_empty() {
            let mut tiles = std::mem::take(&mut self.sched_scratch);
            self.inject_tiles.collect_sorted(&mut tiles);
            for &tile in &tiles {
                self.sched.inject_visits += 1;
                if self.inject_tile(tile as usize) {
                    self.inject_tiles.remove(tile as usize);
                }
            }
            self.sched_scratch = tiles;
        }
        // Phase 3: per-router, per-output-port arbitration. Arbitration
        // moves flits onto wires and ejection pipelines — never directly
        // into another router's input buffer — so membership cannot grow
        // mid-iteration and the snapshot is exact.
        let mut routers = std::mem::take(&mut self.sched_scratch);
        self.active_routers.collect_sorted(&mut routers);
        for &r in &routers {
            let r = r as usize;
            if self.router_flits[r] == 0 {
                self.active_routers.remove(r);
                continue;
            }
            self.sched.router_visits += 1;
            for out in Dir::ALL {
                self.arbitrate(r, out, now);
            }
            if self.router_flits[r] == 0 {
                self.active_routers.remove(r);
            }
        }
        self.sched_scratch = routers;
    }

    /// Phases 2 and 3 as a dense every-tile/every-router scan (the
    /// `--no-active-set` reference path). Work-list membership is still
    /// maintained so the sparse path can be re-enabled mid-run.
    fn tick_dense(&mut self, now: Cycle) {
        // Phase 2: NI injection into the local input VCs.
        for tile in 0..self.inject_q.len() {
            if self.inject_tiles.contains(tile) {
                self.sched.inject_visits += 1;
            }
            if self.inject_tile(tile) {
                self.inject_tiles.remove(tile);
            }
        }
        // Phase 3: per-router, per-output-port arbitration.
        for r in 0..self.routers.len() {
            debug_assert_eq!(self.router_flits[r] as usize, self.routers[r].buffered());
            if self.router_flits[r] == 0 {
                self.active_routers.remove(r);
                continue;
            }
            self.sched.router_visits += 1;
            for out in Dir::ALL {
                self.arbitrate(r, out, now);
            }
            if self.router_flits[r] == 0 {
                self.active_routers.remove(r);
            }
        }
    }

    /// Phase-2 NI injection for one tile: moves queued flits into the
    /// local input VCs while they have space. Returns true when every
    /// injection queue of the tile is now empty.
    fn inject_tile(&mut self, tile: usize) -> bool {
        let mut moved = 0u32;
        let mut empty = true;
        let q3 = &mut self.inject_q[tile];
        let bufs = &mut self.routers[tile].in_buf[Dir::Local.index()];
        for (vc, q) in q3.iter_mut().enumerate() {
            let buf = &mut bufs[vc];
            while !q.is_empty() && (buf.len() as u32) < self.cfg.vc_buffer_flits {
                buf.push_back(q.pop_front().expect("checked non-empty"));
                moved += 1;
            }
            empty &= q.is_empty();
        }
        if moved > 0 {
            self.router_flits[tile] += moved;
            self.active_routers.insert(tile);
        }
        empty
    }

    /// Picks and forwards at most one flit through output `out` of router
    /// `r` this cycle.
    fn arbitrate(&mut self, r: usize, out: Dir, now: Cycle) {
        let out_i = out.index();
        // Build the candidate list lazily in round-robin order over the
        // 15 (input port, vc) pairs.
        let start = self.routers[r].rr[out_i];
        for k in 0..(NUM_PORTS * NUM_VCS) {
            let slot = (start + k) % (NUM_PORTS * NUM_VCS);
            let (p, vc) = (slot / NUM_VCS, slot % NUM_VCS);
            let Some(&flit) = self.routers[r].in_buf[p][vc].front() else {
                continue;
            };
            // Eligibility: continuation flits must match the wormhole
            // lock; head flits need the lock free and the route to match.
            match self.routers[r].out_lock[out_i][vc] {
                Some(lock) => {
                    if !(lock.in_port == p && lock.pkt == flit.pkt) {
                        continue;
                    }
                    debug_assert!(!flit.is_head, "head flit under an existing lock");
                }
                None => {
                    if !flit.is_head || self.route(r, flit.pkt) != out {
                        continue;
                    }
                }
            }
            // Flow control: downstream space (mesh ports only).
            if out != Dir::Local && self.routers[r].credits[out_i][vc] == 0 {
                continue;
            }
            // Grant.
            let flit = self.routers[r].in_buf[p][vc]
                .pop_front()
                .expect("head exists");
            self.router_flits[r] -= 1;
            self.routers[r].rr[out_i] = (slot + 1) % (NUM_PORTS * NUM_VCS);
            // Wormhole lock maintenance.
            self.routers[r].out_lock[out_i][vc] = if flit.is_tail {
                None
            } else {
                Some(WormLock {
                    pkt: flit.pkt,
                    in_port: p,
                })
            };
            // Credit return to the upstream router this flit came from.
            if p != Dir::Local.index() {
                let dir = Dir::ALL[p];
                let up = self
                    .mesh
                    .neighbor(self.mesh.coord_of(CoreId::from(r)), dir)
                    .expect("flit arrived from a real neighbor");
                let up_r = self.mesh.id_of(up).index();
                self.routers[up_r].credits[dir.opposite().index()][vc] += 1;
            }
            if out == Dir::Local {
                self.eject.push_back(EjectEntry {
                    arrive: now + self.cfg.router_latency as u64,
                    flit,
                });
            } else {
                self.routers[r].credits[out_i][vc] -= 1;
                self.stats.flit_hops += 1;
                self.tracer.emit(now, || Event::NocFlitHop {
                    pkt: flit.pkt,
                    at: CoreId::from(r),
                    port: out,
                });
                let nb = self
                    .mesh
                    .neighbor(self.mesh.coord_of(CoreId::from(r)), out)
                    .expect("XY routing never routes off the mesh");
                self.wire.push_back(WireEntry {
                    arrive: now + (self.cfg.router_latency + self.cfg.link_latency) as u64,
                    router: self.mesh.id_of(nb).index(),
                    in_port: out.opposite().index(),
                    vc,
                    flit,
                });
            }
            return; // one flit per output port per cycle
        }
    }

    /// Accounts an ejected flit; on the tail, reassembles and delivers.
    fn finish_flit(&mut self, flit: Flit, now: Cycle) {
        self.active_flits -= 1;
        let info = self
            .packets
            .get_mut(&flit.pkt)
            .expect("packet state exists");
        info.flits_arrived += 1;
        if flit.is_tail {
            debug_assert_eq!(
                info.flits_arrived, info.flits_total,
                "tail arrived before body"
            );
            let info = self.packets.remove(&flit.pkt).expect("present");
            let msg = self.payloads.remove(&flit.pkt).expect("payload parked");
            self.stats.delivered.add(info.class, 1);
            self.stats.latency[info.class.index()].record(now - info.injected_at);
            self.tracer.emit(now, || Event::NocDeliver {
                pkt: flit.pkt,
                dst: info.dst,
                class: info.class,
                latency: now - info.injected_at,
            });
            self.delivered[info.dst.index()].push_back(msg);
            self.note_delivery(info.dst.index());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim_base::stats::MsgClass::{self, Coherence, Reply, Request};

    fn noc(rows: u16, cols: u16) -> Noc<u32> {
        Noc::new(Mesh2D::new(rows, cols), NocConfig::default())
    }

    fn msg(src: usize, dst: usize, class: MsgClass, bytes: u32, tag: u32) -> Message<u32> {
        Message {
            src: CoreId::from(src),
            dst: CoreId::from(dst),
            class,
            payload_bytes: bytes,
            payload: tag,
        }
    }

    fn run_until_idle<S: TraceSink>(n: &mut Noc<u32, S>, max: u64) {
        let mut c = 0;
        while !n.is_idle() {
            n.tick();
            c += 1;
            assert!(c < max, "network did not drain in {max} cycles");
        }
    }

    #[test]
    fn single_hop_latency_formula() {
        let mut n = noc(1, 2);
        n.send(msg(0, 1, Request, 0, 7));
        run_until_idle(&mut n, 100);
        let got = n.recv(CoreId(1)).expect("delivered");
        assert_eq!(got.payload, 7);
        // hops × (router 3 + link 1) + ejection router 3 = 7.
        assert_eq!(n.stats().latency_of(Request).max(), Some(7));
    }

    #[test]
    fn multi_hop_latency_scales_with_distance() {
        let mut n = noc(4, 8);
        n.send(msg(0, 31, Reply, 64, 1)); // corner to corner: 10 hops
        run_until_idle(&mut n, 200);
        assert!(n.recv(CoreId(31)).is_some());
        assert_eq!(n.stats().latency_of(Reply).max(), Some(10 * 4 + 3));
        assert_eq!(n.stats().flit_hops, 10);
    }

    #[test]
    fn local_message_bypasses_network() {
        let mut n = noc(2, 2);
        n.send(msg(2, 2, Request, 0, 9));
        n.tick();
        assert_eq!(n.recv(CoreId(2)).map(|m| m.payload), Some(9));
        assert_eq!(
            n.stats().total_messages(),
            0,
            "bypass is not network traffic"
        );
        assert_eq!(n.stats().local_bypass, 1);
    }

    #[test]
    fn classes_are_counted_separately() {
        let mut n = noc(2, 2);
        n.send(msg(0, 1, Request, 0, 0));
        n.send(msg(0, 1, Reply, 64, 1));
        n.send(msg(1, 0, Coherence, 0, 2));
        run_until_idle(&mut n, 200);
        assert_eq!(n.stats().sent[Request], 1);
        assert_eq!(n.stats().sent[Reply], 1);
        assert_eq!(n.stats().sent[Coherence], 1);
        assert_eq!(n.stats().delivered.total(), 3);
    }

    #[test]
    fn per_pair_per_class_ordering() {
        let mut n = noc(4, 4);
        for i in 0..20 {
            n.send(msg(0, 15, Request, 0, i));
        }
        run_until_idle(&mut n, 2000);
        let mut got = Vec::new();
        while let Some(m) = n.recv(CoreId(15)) {
            got.push(m.payload);
        }
        assert_eq!(
            got,
            (0..20).collect::<Vec<_>>(),
            "same src/dst/class must stay FIFO"
        );
    }

    #[test]
    fn multiflit_packets_do_not_interleave_within_a_vc() {
        // Narrow links force multi-flit packets; two senders share the
        // east-bound path through the middle column.
        let cfg = NocConfig {
            link_bytes: 16,
            ..NocConfig::default()
        }; // 5 flits/packet
        let mut n: Noc<u32> = Noc::new(Mesh2D::new(1, 3), cfg);
        n.send(Message {
            src: CoreId(0),
            dst: CoreId(2),
            class: Request,
            payload_bytes: 64,
            payload: 0,
        });
        n.send(Message {
            src: CoreId(1),
            dst: CoreId(2),
            class: Request,
            payload_bytes: 64,
            payload: 1,
        });
        run_until_idle(&mut n, 2000);
        assert_eq!(n.stats().delivered[Request], 2);
        // 5 flits over 2 hops + 5 flits over 1 hop.
        assert_eq!(n.stats().flit_hops, 15);
    }

    #[test]
    fn link_serializes_one_flit_per_cycle() {
        // 8 single-flit messages must cross the same final link; the last
        // one is delayed ≥ 7 cycles behind the first.
        let mut n = noc(1, 2);
        for i in 0..8 {
            n.send(msg(0, 1, Request, 0, i));
        }
        run_until_idle(&mut n, 200);
        let lat = n.stats().latency_of(Request);
        assert_eq!(lat.count(), 8);
        assert_eq!(lat.min(), Some(7));
        assert!(
            lat.max().unwrap() >= 7 + 7,
            "serialization must delay the tail"
        );
    }

    #[test]
    fn tiny_buffers_still_deliver_everything() {
        let cfg = NocConfig {
            vc_buffer_flits: 1,
            ..NocConfig::default()
        };
        let mut n: Noc<u32> = Noc::new(Mesh2D::new(4, 4), cfg);
        let mut expect = [0u32; 16];
        let mut tag = 0;
        for s in 0..16 {
            #[allow(clippy::needless_range_loop)] // d is also the message dst
            for d in 0..16 {
                if s != d {
                    n.send(msg(s, d, Coherence, 0, tag));
                    expect[d] += 1;
                    tag += 1;
                }
            }
        }
        run_until_idle(&mut n, 50_000);
        for (d, &want) in expect.iter().enumerate() {
            let mut got = 0;
            while n.recv(CoreId::from(d)).is_some() {
                got += 1;
            }
            assert_eq!(got, want, "tile {d}");
        }
    }

    #[test]
    fn all_to_all_across_classes_drains() {
        let mut n = noc(4, 8);
        let classes = [Request, Reply, Coherence];
        for s in 0..32 {
            for d in 0..32 {
                if s != d {
                    n.send(msg(
                        s,
                        d,
                        classes[(s + d) % 3],
                        ((s * d) % 2 * 64) as u32,
                        0,
                    ));
                }
            }
        }
        run_until_idle(&mut n, 100_000);
        assert_eq!(n.stats().delivered.total(), 32 * 31);
        assert_eq!(n.in_flight(), 0);
    }

    #[test]
    #[should_panic(expected = "watchdog")]
    fn watchdog_trips_on_stuck_traffic() {
        // A watchdog of 0 means any packet alive at the next check trips
        // it; flood enough traffic to still be draining then.
        let mut n = noc(1, 2);
        n.set_watchdog(0);
        for _ in 0..10_000 {
            n.send(msg(0, 1, Request, 64, 0));
        }
        for _ in 0..5000 {
            n.tick();
        }
    }

    #[test]
    fn is_idle_reflects_state() {
        let mut n = noc(2, 2);
        assert!(n.is_idle());
        n.send(msg(0, 3, Request, 0, 0));
        assert!(!n.is_idle());
        run_until_idle(&mut n, 100);
        assert!(n.is_idle());
        assert!(n.now() > 0);
    }

    #[test]
    fn fast_path_advances_time() {
        let mut n = noc(2, 2);
        for _ in 0..100 {
            n.tick();
        }
        assert_eq!(n.now(), 100);
    }

    #[test]
    fn traced_noc_reports_send_hops_and_delivery() {
        use sim_base::trace::{Event, RingSink, Tracer};
        let tracer = Tracer::new(RingSink::new(128));
        let mut n: Noc<u32, RingSink> =
            Noc::traced(Mesh2D::new(1, 3), NocConfig::default(), tracer.clone());
        n.send(msg(0, 2, Request, 0, 5));
        run_until_idle(&mut n, 100);
        let events: Vec<Event> = tracer.with_sink(|s| s.events().map(|(_, e)| e.clone()).collect());
        let sends: Vec<&Event> = events
            .iter()
            .filter(|e| matches!(e, Event::NocSend { .. }))
            .collect();
        assert_eq!(sends.len(), 1);
        assert!(matches!(
            sends[0],
            Event::NocSend {
                pkt: 0,
                flits: 1,
                class: Request,
                ..
            }
        ));
        // Two link hops (0→1, 1→2), then the delivery with the measured latency.
        let hops = events
            .iter()
            .filter(|e| matches!(e, Event::NocFlitHop { .. }))
            .count();
        assert_eq!(hops as u64, n.stats().flit_hops);
        assert!(events.iter().any(|e| matches!(
            e,
            Event::NocDeliver {
                pkt: 0,
                latency: 11,
                ..
            }
        )));
        // Wormhole locks all cleared once drained.
        assert!(n.routers.iter().all(|r| r.locked_outputs() == 0));
    }
}
