//! Network statistics: the Figure-7 message counters plus latency and
//! energy proxies.

use sim_base::stats::{Histogram, MsgClass, TrafficBreakdown};

/// Statistics of a [`crate::Noc`].
#[derive(Clone, Debug, Default)]
pub struct NocStats {
    /// Messages injected, by class (the paper's Figure-7 counters).
    pub sent: TrafficBreakdown,
    /// Messages delivered, by class.
    pub delivered: TrafficBreakdown,
    /// Same-tile messages that bypassed the network (not in `sent`).
    pub local_bypass: u64,
    /// Total flit × link-hop products (energy / bandwidth proxy).
    pub flit_hops: u64,
    /// End-to-end message latency per class, injection to delivery.
    pub latency: [Histogram; 3],
}

impl NocStats {
    /// Latency histogram for one class.
    pub fn latency_of(&self, c: MsgClass) -> &Histogram {
        &self.latency[c.index()]
    }

    /// Total messages that actually crossed the network.
    pub fn total_messages(&self) -> u64 {
        self.sent.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_zero() {
        let s = NocStats::default();
        assert_eq!(s.total_messages(), 0);
        assert_eq!(s.flit_hops, 0);
        assert_eq!(s.latency_of(MsgClass::Reply).count(), 0);
    }
}
