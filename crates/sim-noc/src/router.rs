//! One mesh router: 5 ports × 3 virtual channels, wormhole switching,
//! credit-based flow control, round-robin arbitration per output port.

use crate::msg::Flit;
use sim_base::geom::Dir;
use std::collections::VecDeque;

/// Number of virtual channels (= virtual networks = message classes).
pub const NUM_VCS: usize = 3;

/// Number of router ports.
pub const NUM_PORTS: usize = 5;

/// A wormhole lock on an output (port, vc): which packet holds it and
/// which input port its flits come from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct WormLock {
    pub pkt: u64,
    pub in_port: usize,
}

/// Router state. The [`crate::network::Noc`] drives arbitration; this
/// struct owns the buffers, credits and locks.
#[derive(Clone, Debug)]
pub(crate) struct Router {
    /// Input buffers: `in_buf[port][vc]`.
    pub in_buf: [[VecDeque<Flit>; NUM_VCS]; NUM_PORTS],
    /// Credits available toward the downstream router on each output
    /// port/vc. Local output (ejection) is uncredited (always accepted).
    pub credits: [[u32; NUM_VCS]; NUM_PORTS],
    /// Current wormhole binding per output (port, vc).
    pub out_lock: [[Option<WormLock>; NUM_VCS]; NUM_PORTS],
    /// Round-robin pointer per output port, over (in_port, vc) pairs.
    pub rr: [usize; NUM_PORTS],
}

impl Router {
    /// A router whose mesh output ports start with `buf_flits` credits.
    pub fn new(buf_flits: u32) -> Router {
        Router {
            in_buf: Default::default(),
            credits: [[buf_flits; NUM_VCS]; NUM_PORTS],
            out_lock: [[None; NUM_VCS]; NUM_PORTS],
            rr: [0; NUM_PORTS],
        }
    }

    /// Total buffered flits (for idle fast-pathing).
    pub fn buffered(&self) -> usize {
        self.in_buf.iter().flatten().map(VecDeque::len).sum()
    }

    /// True if input `port`/`vc` has buffer space for one more flit.
    /// (Inter-router space is governed by the upstream credit counters;
    /// the network checks local injection space directly on the buffers,
    /// so this helper is used by tests and external inspection.)
    #[allow(dead_code)]
    pub fn has_space(&self, port: Dir, vc: usize, cap: u32) -> bool {
        (self.in_buf[port.index()][vc].len() as u32) < cap
    }

    /// Number of output (port, vc) pairs currently bound by a wormhole
    /// lock — an observability hook for trace-driven invariant checks
    /// (every lock must eventually clear when the network drains).
    #[allow(dead_code)]
    pub fn locked_outputs(&self) -> usize {
        self.out_lock
            .iter()
            .flatten()
            .filter(|l| l.is_some())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_router_is_idle_with_full_credits() {
        let r = Router::new(4);
        assert_eq!(r.buffered(), 0);
        assert!(r.has_space(Dir::Local, 0, 4));
        for p in 0..NUM_PORTS {
            for v in 0..NUM_VCS {
                assert_eq!(r.credits[p][v], 4);
                assert_eq!(r.out_lock[p][v], None);
            }
        }
    }
}
