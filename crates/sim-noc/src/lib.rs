//! # sim-noc — cycle-level 2D-mesh network-on-chip
//!
//! The main data network of the simulated CMP (Table 1 of the paper:
//! 2D mesh, 75-byte links, 75 GB/s). The coherence protocol of `sim-mem`
//! rides on it; the G-line barrier network of `gline-core` deliberately
//! does **not** — that separation is the paper's whole point.
//!
//! Model:
//!
//! * **Topology** — `R × C` mesh, one router per tile, 5 ports each
//!   (North/South/East/West/Local), dimension-ordered XY routing
//!   (deadlock-free per virtual network).
//! * **Virtual networks** — one per [`sim_base::stats::MsgClass`]
//!   (Request / Reply / Coherence). This both matches the paper's
//!   Figure-7 traffic taxonomy and breaks protocol deadlock cycles.
//! * **Switching** — wormhole: packets are split into link-width flits;
//!   an output port is held by a packet from head to tail. One flit per
//!   output port per cycle.
//! * **Flow control** — credit-based; each input virtual channel buffers
//!   [`sim_base::config::NocConfig::vc_buffer_flits`] flits.
//! * **Timing** — `router_latency` cycles per router traversal plus
//!   `link_latency` per link.
//!
//! Messages whose source and destination tile coincide (e.g. an L1 miss
//! whose L2 home bank is local) bypass the network, are delivered on the
//! next cycle and are *not* counted in traffic statistics — they never
//! cross a link, matching how the paper counts "messages across the
//! network".

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod msg;
pub mod network;
pub mod router;
pub mod stats;

pub use msg::Message;
pub use network::{Noc, NocSchedStats};
pub use stats::NocStats;
