//! Messages and flits.

use sim_base::stats::MsgClass;
use sim_base::{CoreId, Cycle};

/// A network message carrying an opaque payload `T` (the coherence
/// protocol's packet type in the full system).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Message<T> {
    /// Source tile.
    pub src: CoreId,
    /// Destination tile.
    pub dst: CoreId,
    /// Traffic class / virtual network.
    pub class: MsgClass,
    /// Payload size in bytes, *excluding* the header (a data reply
    /// carries a 64-byte line; control messages carry 0).
    pub payload_bytes: u32,
    /// The payload itself.
    pub payload: T,
}

/// Internal per-packet bookkeeping while its flits are in the network.
#[derive(Clone, Debug)]
pub(crate) struct PacketInfo {
    pub dst: CoreId,
    pub class: MsgClass,
    pub injected_at: Cycle,
    pub flits_total: u32,
    pub flits_arrived: u32,
}

/// One flit. Routing state is looked up from the packet table via `pkt`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Flit {
    /// Packet id.
    pub pkt: u64,
    /// First flit of the packet (carries the route).
    pub is_head: bool,
    /// Last flit of the packet (releases the wormhole locks).
    pub is_tail: bool,
}

/// Number of flits a message occupies on `link_bytes`-wide links with a
/// `header_bytes` header.
pub fn flits_for(payload_bytes: u32, header_bytes: u32, link_bytes: u32) -> u32 {
    let total = payload_bytes + header_bytes;
    total.div_ceil(link_bytes).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flit_counts() {
        // Table-1 geometry: 75-byte links, 11-byte header.
        assert_eq!(flits_for(0, 11, 75), 1, "control message is one flit");
        assert_eq!(
            flits_for(64, 11, 75),
            1,
            "header + full line fits one link word"
        );
        assert_eq!(flits_for(65, 11, 75), 2);
        assert_eq!(
            flits_for(0, 0, 75),
            1,
            "degenerate empty message still one flit"
        );
        // Narrow links: 64-byte line + 8-byte header on 16-byte links.
        assert_eq!(flits_for(64, 8, 16), 5);
    }
}
