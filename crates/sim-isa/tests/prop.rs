//! Property tests for the ISA: assembler/disassembler round trips over
//! arbitrary programs, and interpreter invariants.
//!
//! Runs on the in-repo seed-sweep harness ([`sim_base::check`]) instead of
//! an external property-testing crate, so the suite builds fully offline.

use sim_base::check::{forall, forall_cases};
use sim_base::rng::SplitMix64;
use sim_isa::inst::{AluOp, AmoOp, BranchCond, Inst, Region};
use sim_isa::interp::{Machine, RefCmp};
use sim_isa::{assemble, disassemble, Program, Reg};

fn arb_reg(rng: &mut SplitMix64) -> Reg {
    Reg(rng.next_below(32) as u8)
}

const ALU_OPS: [AluOp; 12] = [
    AluOp::Add,
    AluOp::Sub,
    AluOp::Mul,
    AluOp::Div,
    AluOp::Rem,
    AluOp::And,
    AluOp::Or,
    AluOp::Xor,
    AluOp::Sll,
    AluOp::Srl,
    AluOp::Slt,
    AluOp::Sltu,
];

fn arb_alu(rng: &mut SplitMix64) -> AluOp {
    ALU_OPS[rng.next_below(ALU_OPS.len() as u64) as usize]
}

/// Any instruction with branch targets within `len`.
fn arb_inst(rng: &mut SplitMix64, len: usize) -> Inst {
    let target = |rng: &mut SplitMix64| rng.next_below(len as u64 + 1) as usize;
    match rng.next_below(16) {
        0 => Inst::Li {
            rd: arb_reg(rng),
            imm: rng.next_u64() as i64,
        },
        1 => Inst::Alu {
            op: arb_alu(rng),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
        },
        2 => Inst::AluI {
            op: arb_alu(rng),
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            imm: rng.next_u64() as i64,
        },
        3 => Inst::Ld {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            off: (rng.next_below(8192) as i64 - 4096) * 8,
        },
        4 => Inst::St {
            rs2: arb_reg(rng),
            rs1: arb_reg(rng),
            off: (rng.next_below(8192) as i64 - 4096) * 8,
        },
        5 => Inst::Amo {
            op: if rng.chance(0.5) {
                AmoOp::Add
            } else {
                AmoOp::Swap
            },
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
        },
        6 => Inst::Branch {
            cond: [
                BranchCond::Eq,
                BranchCond::Ne,
                BranchCond::Lt,
                BranchCond::Ge,
            ][rng.next_below(4) as usize],
            rs1: arb_reg(rng),
            rs2: arb_reg(rng),
            target: target(rng),
        },
        7 => Inst::Jal {
            rd: arb_reg(rng),
            target: target(rng),
        },
        8 => Inst::Jalr {
            rd: arb_reg(rng),
            rs1: arb_reg(rng),
        },
        9 => Inst::Busy {
            cycles: rng.next_below(1000) as u32,
        },
        10 => Inst::BarWrite { rs1: arb_reg(rng) },
        11 => Inst::BarRead { rd: arb_reg(rng) },
        12 => Inst::BarCtx {
            ctx: rng.next_below(256) as u8,
        },
        13 => Inst::SetRegion {
            region: [Region::Normal, Region::Barrier, Region::Lock][rng.next_below(3) as usize],
        },
        14 => Inst::Halt,
        _ => Inst::Nop,
    }
}

#[test]
fn disassemble_assemble_round_trips() {
    forall_cases("disassemble_assemble_round_trips", 128, |rng| {
        let len = 1 + rng.next_below(39) as usize;
        let insts: Vec<Inst> = (0..len).map(|_| arb_inst(rng, len)).collect();
        let p1 = Program::from_insts(insts);
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        assert_eq!(
            p1.insts(),
            p2.insts(),
            "round trip changed program:\n{text}"
        );
    });
}

#[test]
fn alu_ops_never_panic() {
    forall_cases("alu_ops_never_panic", 128, |rng| {
        let op = arb_alu(rng);
        let (a, b) = (rng.next_u64(), rng.next_u64());
        let _ = op.apply(a, b);
        // Division corner cases must be defined, not trapping.
        let _ = op.apply(a, 0);
        let _ = op.apply(u64::MAX, u64::MAX);
    });
}

#[test]
fn r0_is_always_zero() {
    forall("r0_is_always_zero", |rng| {
        let imm = rng.next_u64() as i64;
        let p = assemble(&format!("li r0, {imm}\nadd r0, r0, r0\nhalt")).unwrap();
        let mut m = Machine::new();
        let mut mem = vec![0u64; 1];
        while !m.halted {
            m.step(&p, &mut mem).unwrap();
        }
        assert_eq!(m.reg(Reg::ZERO), 0);
    });
}

#[test]
fn straightline_alu_programs_terminate_with_correct_sums() {
    forall(
        "straightline_alu_programs_terminate_with_correct_sums",
        |rng| {
            let n = 1 + rng.next_below(19) as usize;
            let vals: Vec<u64> = (0..n).map(|_| rng.next_below(1_000_000)).collect();
            // li + repeated addi: the machine must fold the same total.
            let mut src = String::from("li r1, 0\n");
            for v in &vals {
                src.push_str(&format!("addi r1, r1, {v}\n"));
            }
            src.push_str("halt");
            let p = assemble(&src).unwrap();
            let mut cmp = RefCmp::new(1, 0);
            cmp.run(&[&p], 10_000).unwrap();
            assert_eq!(cmp.cores[0].reg(Reg::r(1)), vals.iter().sum::<u64>());
        },
    );
}

#[test]
fn interpreter_counts_retired_instructions() {
    forall("interpreter_counts_retired_instructions", |rng| {
        let n = 1 + rng.next_below(99) as usize;
        let src = "nop\n".repeat(n) + "halt";
        let p = assemble(&src).unwrap();
        let mut cmp = RefCmp::new(1, 0);
        cmp.run(&[&p], 10_000).unwrap();
        assert_eq!(cmp.cores[0].retired, n as u64 + 1);
    });
}
