//! Property tests for the ISA: assembler/disassembler round trips over
//! arbitrary programs, and interpreter invariants.

use proptest::prelude::*;
use proptest::strategy::ValueTree;
use sim_isa::inst::{AluOp, AmoOp, BranchCond, Inst, Region};
use sim_isa::interp::{Machine, RefCmp};
use sim_isa::{assemble, disassemble, Program, Reg};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(Reg)
}

fn arb_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Sll),
        Just(AluOp::Srl),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
    ]
}

/// Any instruction with branch targets within `len`.
fn arb_inst(len: usize) -> impl Strategy<Value = Inst> {
    let t = 0..=len;
    prop_oneof![
        (arb_reg(), any::<i64>()).prop_map(|(rd, imm)| Inst::Li { rd, imm }),
        (arb_alu(), arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Alu { op, rd, rs1, rs2 }),
        (arb_alu(), arb_reg(), arb_reg(), any::<i64>())
            .prop_map(|(op, rd, rs1, imm)| Inst::AluI { op, rd, rs1, imm }),
        (arb_reg(), arb_reg(), -4096i64..4096)
            .prop_map(|(rd, rs1, off)| Inst::Ld { rd, rs1, off: off * 8 }),
        (arb_reg(), arb_reg(), -4096i64..4096)
            .prop_map(|(rs2, rs1, off)| Inst::St { rs2, rs1, off: off * 8 }),
        (prop_oneof![Just(AmoOp::Add), Just(AmoOp::Swap)], arb_reg(), arb_reg(), arb_reg())
            .prop_map(|(op, rd, rs1, rs2)| Inst::Amo { op, rd, rs1, rs2 }),
        (
            prop_oneof![
                Just(BranchCond::Eq),
                Just(BranchCond::Ne),
                Just(BranchCond::Lt),
                Just(BranchCond::Ge)
            ],
            arb_reg(),
            arb_reg(),
            t.clone()
        )
            .prop_map(|(cond, rs1, rs2, target)| Inst::Branch { cond, rs1, rs2, target }),
        (arb_reg(), t).prop_map(|(rd, target)| Inst::Jal { rd, target }),
        (arb_reg(), arb_reg()).prop_map(|(rd, rs1)| Inst::Jalr { rd, rs1 }),
        (0u32..1000).prop_map(|cycles| Inst::Busy { cycles }),
        arb_reg().prop_map(|rs1| Inst::BarWrite { rs1 }),
        arb_reg().prop_map(|rd| Inst::BarRead { rd }),
        any::<u8>().prop_map(|ctx| Inst::BarCtx { ctx }),
        prop_oneof![Just(Region::Normal), Just(Region::Barrier), Just(Region::Lock)]
            .prop_map(|region| Inst::SetRegion { region }),
        Just(Inst::Halt),
        Just(Inst::Nop),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn disassemble_assemble_round_trips(len in 1usize..40, seed in any::<u64>()) {
        // Build a deterministic arbitrary program of `len` instructions.
        let mut runner = proptest::test_runner::TestRunner::deterministic();
        let _ = seed; // length and seed both vary via proptest inputs
        let insts: Vec<Inst> = (0..len)
            .map(|_| arb_inst(len).new_tree(&mut runner).unwrap().current())
            .collect();
        let p1 = Program::from_insts(insts);
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
        prop_assert_eq!(p1.insts(), p2.insts(), "round trip changed program:\n{}", text);
    }

    #[test]
    fn alu_ops_never_panic(op_sel in 0usize..12, a in any::<u64>(), b in any::<u64>()) {
        let ops = [
            AluOp::Add, AluOp::Sub, AluOp::Mul, AluOp::Div, AluOp::Rem, AluOp::And,
            AluOp::Or, AluOp::Xor, AluOp::Sll, AluOp::Srl, AluOp::Slt, AluOp::Sltu,
        ];
        let _ = ops[op_sel].apply(a, b);
    }

    #[test]
    fn r0_is_always_zero(imm in any::<i64>()) {
        let p = assemble(&format!("li r0, {imm}\nadd r0, r0, r0\nhalt")).unwrap();
        let mut m = Machine::new();
        let mut mem = vec![0u64; 1];
        while !m.halted {
            m.step(&p, &mut mem).unwrap();
        }
        prop_assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn straightline_alu_programs_terminate_with_correct_sums(
        vals in prop::collection::vec(0u64..1_000_000, 1..20)
    ) {
        // li + repeated addi: the machine must fold the same total.
        let mut src = String::from("li r1, 0\n");
        for v in &vals {
            src.push_str(&format!("addi r1, r1, {v}\n"));
        }
        src.push_str("halt");
        let p = assemble(&src).unwrap();
        let mut cmp = RefCmp::new(1, 0);
        cmp.run(&[&p], 10_000).unwrap();
        prop_assert_eq!(cmp.cores[0].reg(Reg::r(1)), vals.iter().sum::<u64>());
    }

    #[test]
    fn interpreter_counts_retired_instructions(n in 1usize..100) {
        let src = "nop\n".repeat(n) + "halt";
        let p = assemble(&src).unwrap();
        let mut cmp = RefCmp::new(1, 0);
        cmp.run(&[&p], 10_000).unwrap();
        prop_assert_eq!(cmp.cores[0].retired, n as u64 + 1);
    }
}
