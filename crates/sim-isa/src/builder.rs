//! Programmatic program construction.
//!
//! Workload generators build programs with [`ProgBuilder`] instead of
//! string templates: labels are declared and referenced by name, and the
//! builder checks at [`ProgBuilder::build`] time that every referenced
//! label was defined.
//!
//! ```
//! use sim_isa::{ProgBuilder, Reg};
//!
//! let r1 = Reg::r(1);
//! let r2 = Reg::r(2);
//! let mut b = ProgBuilder::new();
//! b.li(r1, 1)
//!     .barw(r1) // announce arrival
//!     .label("spin")
//!     .barr(r2)
//!     .bne(r2, Reg::ZERO, "spin") // wait for the G-line release
//!     .halt();
//! let prog = b.build();
//! assert_eq!(prog.len(), 5);
//! ```

use crate::inst::{AluOp, AmoOp, BranchCond, Inst, Program, Region};
use crate::reg::Reg;
use sim_base::fxmap::FxHashMap;

/// Builder for [`Program`]s with named labels.
#[derive(Debug, Default)]
pub struct ProgBuilder {
    insts: Vec<Inst>,
    labels: FxHashMap<String, usize>,
    fixups: Vec<(usize, String)>,
}

impl ProgBuilder {
    /// An empty builder.
    pub fn new() -> ProgBuilder {
        ProgBuilder::default()
    }

    /// Number of instructions emitted so far.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when nothing has been emitted.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// Defines `name` at the current position.
    ///
    /// # Panics
    /// Panics on duplicate definition.
    pub fn label(&mut self, name: &str) -> &mut Self {
        let prev = self.labels.insert(name.to_string(), self.insts.len());
        assert!(prev.is_none(), "duplicate label `{name}`");
        self
    }

    /// Emits a raw instruction.
    pub fn inst(&mut self, i: Inst) -> &mut Self {
        self.insts.push(i);
        self
    }

    /// `li rd, imm`.
    pub fn li(&mut self, rd: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::Li { rd, imm })
    }

    /// Register-register ALU operation.
    pub fn alu(&mut self, op: AluOp, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.inst(Inst::Alu { op, rd, rs1, rs2 })
    }

    /// Register-immediate ALU operation.
    pub fn alui(&mut self, op: AluOp, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.inst(Inst::AluI { op, rd, rs1, imm })
    }

    /// `add rd, rs1, rs2`.
    pub fn add(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Add, rd, rs1, rs2)
    }

    /// `addi rd, rs1, imm`.
    pub fn addi(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Add, rd, rs1, imm)
    }

    /// `mul rd, rs1, rs2`.
    pub fn mul(&mut self, rd: Reg, rs1: Reg, rs2: Reg) -> &mut Self {
        self.alu(AluOp::Mul, rd, rs1, rs2)
    }

    /// `muli rd, rs1, imm`.
    pub fn muli(&mut self, rd: Reg, rs1: Reg, imm: i64) -> &mut Self {
        self.alui(AluOp::Mul, rd, rs1, imm)
    }

    /// `ld rd, off(rs1)`.
    pub fn ld(&mut self, rd: Reg, off: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::Ld { rd, rs1, off })
    }

    /// `st rs2, off(rs1)`.
    pub fn st(&mut self, rs2: Reg, off: i64, rs1: Reg) -> &mut Self {
        self.inst(Inst::St { rs2, rs1, off })
    }

    /// `amoadd rd, rs2, (rs1)`.
    pub fn amoadd(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Amo {
            op: AmoOp::Add,
            rd,
            rs1,
            rs2,
        })
    }

    /// `amoswap rd, rs2, (rs1)`.
    pub fn amoswap(&mut self, rd: Reg, rs2: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Amo {
            op: AmoOp::Swap,
            rd,
            rs1,
            rs2,
        })
    }

    fn branch(&mut self, cond: BranchCond, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.inst(Inst::Branch {
            cond,
            rs1,
            rs2,
            target: usize::MAX,
        })
    }

    /// `beq rs1, rs2, label`.
    pub fn beq(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Eq, rs1, rs2, label)
    }

    /// `bne rs1, rs2, label`.
    pub fn bne(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ne, rs1, rs2, label)
    }

    /// `blt rs1, rs2, label`.
    pub fn blt(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Lt, rs1, rs2, label)
    }

    /// `bge rs1, rs2, label`.
    pub fn bge(&mut self, rs1: Reg, rs2: Reg, label: &str) -> &mut Self {
        self.branch(BranchCond::Ge, rs1, rs2, label)
    }

    /// `jal rd, label`.
    pub fn jal(&mut self, rd: Reg, label: &str) -> &mut Self {
        self.fixups.push((self.insts.len(), label.to_string()));
        self.inst(Inst::Jal {
            rd,
            target: usize::MAX,
        })
    }

    /// Unconditional `j label`.
    pub fn jump(&mut self, label: &str) -> &mut Self {
        self.jal(Reg::ZERO, label)
    }

    /// `jalr rd, rs1` (indirect jump, e.g. subroutine return).
    pub fn jalr(&mut self, rd: Reg, rs1: Reg) -> &mut Self {
        self.inst(Inst::Jalr { rd, rs1 })
    }

    /// `busy cycles`.
    pub fn busy(&mut self, cycles: u32) -> &mut Self {
        self.inst(Inst::Busy { cycles })
    }

    /// `barw rs1`.
    pub fn barw(&mut self, rs1: Reg) -> &mut Self {
        self.inst(Inst::BarWrite { rs1 })
    }

    /// `barr rd`.
    pub fn barr(&mut self, rd: Reg) -> &mut Self {
        self.inst(Inst::BarRead { rd })
    }

    /// `barctx imm` — select the barrier context.
    pub fn barctx(&mut self, ctx: u8) -> &mut Self {
        self.inst(Inst::BarCtx { ctx })
    }

    /// `region <kind>` — time-attribution marker.
    pub fn region(&mut self, region: Region) -> &mut Self {
        self.inst(Inst::SetRegion { region })
    }

    /// `halt`.
    pub fn halt(&mut self) -> &mut Self {
        self.inst(Inst::Halt)
    }

    /// `nop`.
    pub fn nop(&mut self) -> &mut Self {
        self.inst(Inst::Nop)
    }

    /// Resolves labels and produces the program.
    ///
    /// # Panics
    /// Panics if any referenced label was never defined.
    pub fn build(self) -> Program {
        let ProgBuilder {
            mut insts,
            labels,
            fixups,
        } = self;
        for (idx, name) in fixups {
            let target = *labels
                .get(&name)
                .unwrap_or_else(|| panic!("undefined label `{name}` referenced at {idx}"));
            match &mut insts[idx] {
                Inst::Branch { target: t, .. } | Inst::Jal { target: t, .. } => *t = target,
                _ => unreachable!(),
            }
        }
        Program::with_labels(insts, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    #[test]
    fn builder_matches_assembler() {
        let src = "
            li r1, 10
        loop:
            addi r1, r1, -1
            bne r1, r0, loop
            halt
        ";
        let from_text = assemble(src).unwrap();
        let mut b = ProgBuilder::new();
        b.li(Reg::r(1), 10)
            .label("loop")
            .addi(Reg::r(1), Reg::r(1), -1)
            .bne(Reg::r(1), Reg::ZERO, "loop")
            .halt();
        assert_eq!(b.build().insts(), from_text.insts());
    }

    #[test]
    fn forward_references_resolve() {
        let mut b = ProgBuilder::new();
        b.jump("end").nop().label("end").halt();
        let p = b.build();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 2
            })
        );
    }

    #[test]
    #[should_panic(expected = "undefined label")]
    fn missing_label_panics() {
        let mut b = ProgBuilder::new();
        b.jump("nowhere");
        let _ = b.build();
    }

    #[test]
    #[should_panic(expected = "duplicate label")]
    fn duplicate_label_panics() {
        let mut b = ProgBuilder::new();
        b.label("x").nop().label("x");
    }

    #[test]
    fn all_emitters_produce_instructions() {
        let mut b = ProgBuilder::new();
        b.li(Reg::r(1), 5)
            .add(Reg::r(2), Reg::r(1), Reg::r(1))
            .addi(Reg::r(2), Reg::r(2), 1)
            .mul(Reg::r(3), Reg::r(2), Reg::r(2))
            .muli(Reg::r(3), Reg::r(3), 2)
            .ld(Reg::r(4), 0, Reg::r(3))
            .st(Reg::r(4), 8, Reg::r(3))
            .amoadd(Reg::r(5), Reg::r(4), Reg::r(3))
            .amoswap(Reg::r(5), Reg::r(4), Reg::r(3))
            .jalr(Reg::ZERO, Reg::r(31))
            .busy(3)
            .barw(Reg::r(1))
            .barr(Reg::r(6))
            .nop()
            .halt();
        assert_eq!(b.len(), 15);
        assert!(!b.is_empty());
    }
}
