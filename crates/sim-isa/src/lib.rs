//! # sim-isa — the instruction set of the simulated cores
//!
//! The paper's software barriers (centralized sense-reversal and binary
//! combining tree) are *programs*: their cost comes from the loads, stores
//! and atomics they execute through the cache-coherence protocol. To model
//! that faithfully the simulated cores run real code in a miniature RISC
//! ISA instead of abstract "synchronize" events.
//!
//! The ISA is deliberately small but complete enough for the paper's
//! workloads:
//!
//! * 32 general-purpose 64-bit registers, `r0` hard-wired to zero;
//! * ALU register-register and register-immediate operations;
//! * word loads and stores (`ld`/`st`), which the full-system simulator
//!   routes through L1/L2/directory;
//! * atomic read-modify-writes (`amoadd`, `amoswap`) — the `fetch&op` /
//!   `test&set` class of primitives the paper names as the hardware half
//!   of software synchronization;
//! * branches and jump-and-link for loops and subroutines;
//! * `busy n` — n cycles of pure computation (compact workload modelling);
//! * `barw` / `barr` — write/read the G-line `bar_reg` special register
//!   (Section 3.3 of the paper);
//! * `halt`.
//!
//! The crate provides the instruction type ([`inst::Inst`]), a text
//! [`asm`]sembler and disassembler, a programmatic [`builder`], and
//! [`interp`] — architectural reference interpreters (single- and
//! multi-core) used as golden models by the cycle-accurate simulator's
//! tests.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod asm;
pub mod builder;
pub mod inst;
pub mod interp;
pub mod reg;

pub use asm::{assemble, disassemble, AsmError};
pub use builder::ProgBuilder;
pub use inst::{Inst, Program};
pub use reg::Reg;
