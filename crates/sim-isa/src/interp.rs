//! Architectural reference interpreters.
//!
//! These execute programs with **no timing model** — one instruction per
//! step, idealized barriers, sequentially consistent memory. The
//! cycle-accurate full-system simulator in `sim-cmp` is tested against
//! them: both must compute the same final memory and registers, the
//! simulator just takes a (much) better-modelled number of cycles.

use crate::inst::{Inst, Program};
use crate::reg::{Reg, NUM_REGS};
use std::fmt;

/// An execution fault. The simulated machine has no trap handlers, so
/// faults abort the run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// Data address not 8-byte aligned.
    Unaligned {
        /// The faulting byte address.
        addr: u64,
    },
    /// Data address beyond the configured memory.
    OutOfBounds {
        /// The faulting byte address.
        addr: u64,
    },
    /// Jump/branch landed outside the program (and not exactly at the
    /// end, which is treated as halt).
    BadPc {
        /// The faulting instruction index.
        pc: usize,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ExecError::Unaligned { addr } => write!(f, "unaligned access at 0x{addr:x}"),
            ExecError::OutOfBounds { addr } => write!(f, "out-of-bounds access at 0x{addr:x}"),
            ExecError::BadPc { pc } => write!(f, "control transfer to bad pc {pc}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// What a single step did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StepOutcome {
    /// Executed one instruction.
    Ran,
    /// The core is (now) halted.
    Halted,
    /// The core is spinning on a nonzero `bar_reg` — i.e. it executed an
    /// instruction, but is logically blocked at a barrier.
    AtBarrier,
}

fn mem_index(addr: u64, mem_len: usize) -> Result<usize, ExecError> {
    if !addr.is_multiple_of(8) {
        return Err(ExecError::Unaligned { addr });
    }
    let idx = (addr / 8) as usize;
    if idx >= mem_len {
        return Err(ExecError::OutOfBounds { addr });
    }
    Ok(idx)
}

/// Architectural state of one core.
#[derive(Clone, Debug)]
pub struct Machine {
    /// Register file; index 0 is hard-wired zero.
    pub regs: [u64; NUM_REGS],
    /// Next instruction index.
    pub pc: usize,
    /// Set by `halt` (or running off the end of the program).
    pub halted: bool,
    /// The barrier special register. Written by `barw`; the surrounding
    /// executor clears it when the barrier completes.
    pub bar_reg: u64,
    /// Dynamic instruction count.
    pub retired: u64,
}

impl Machine {
    /// A reset core starting at instruction 0.
    pub fn new() -> Machine {
        Machine {
            regs: [0; NUM_REGS],
            pc: 0,
            halted: false,
            bar_reg: 0,
            retired: 0,
        }
    }

    /// Reads a register (`r0` reads zero).
    #[inline]
    pub fn reg(&self, r: Reg) -> u64 {
        if r.index() == 0 {
            0
        } else {
            self.regs[r.index()]
        }
    }

    /// Writes a register (`r0` writes are ignored).
    #[inline]
    pub fn set_reg(&mut self, r: Reg, v: u64) {
        if r.index() != 0 {
            self.regs[r.index()] = v;
        }
    }

    /// Executes one instruction against `mem` (a flat word array; byte
    /// address `a` lives at `mem[a / 8]`).
    pub fn step(&mut self, prog: &Program, mem: &mut [u64]) -> Result<StepOutcome, ExecError> {
        if self.halted {
            return Ok(StepOutcome::Halted);
        }
        let Some(inst) = prog.fetch(self.pc) else {
            self.halted = true;
            return Ok(StepOutcome::Halted);
        };
        let mut next_pc = self.pc + 1;
        let mut outcome = StepOutcome::Ran;
        match inst {
            Inst::Li { rd, imm } => self.set_reg(rd, imm as u64),
            Inst::Alu { op, rd, rs1, rs2 } => {
                let v = op.apply(self.reg(rs1), self.reg(rs2));
                self.set_reg(rd, v);
            }
            Inst::AluI { op, rd, rs1, imm } => {
                let v = op.apply(self.reg(rs1), imm as u64);
                self.set_reg(rd, v);
            }
            Inst::Ld { rd, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as u64);
                let idx = mem_index(addr, mem.len())?;
                self.set_reg(rd, mem[idx]);
            }
            Inst::St { rs2, rs1, off } => {
                let addr = self.reg(rs1).wrapping_add(off as u64);
                let idx = mem_index(addr, mem.len())?;
                mem[idx] = self.reg(rs2);
            }
            Inst::Amo { op, rd, rs1, rs2 } => {
                let addr = self.reg(rs1);
                let idx = mem_index(addr, mem.len())?;
                let old = mem[idx];
                mem[idx] = op.apply(old, self.reg(rs2));
                self.set_reg(rd, old);
            }
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                if cond.taken(self.reg(rs1), self.reg(rs2)) {
                    next_pc = target;
                }
            }
            Inst::Jal { rd, target } => {
                self.set_reg(rd, (self.pc + 1) as u64);
                next_pc = target;
            }
            Inst::Jalr { rd, rs1 } => {
                let t = self.reg(rs1) as usize;
                self.set_reg(rd, (self.pc + 1) as u64);
                next_pc = t;
            }
            // The reference machine models a single barrier context;
            // context selection is a timing-level concern.
            Inst::Busy { .. } | Inst::Nop | Inst::SetRegion { .. } | Inst::BarCtx { .. } => {}
            Inst::BarWrite { rs1 } => {
                self.bar_reg = self.reg(rs1);
                if self.bar_reg != 0 {
                    outcome = StepOutcome::AtBarrier;
                }
            }
            Inst::BarRead { rd } => {
                let v = self.bar_reg;
                self.set_reg(rd, v);
                if v != 0 {
                    outcome = StepOutcome::AtBarrier;
                }
            }
            Inst::Halt => {
                self.halted = true;
                self.retired += 1;
                return Ok(StepOutcome::Halted);
            }
        }
        if next_pc > prog.len() {
            return Err(ExecError::BadPc { pc: next_pc });
        }
        self.pc = next_pc;
        self.retired += 1;
        Ok(outcome)
    }
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

/// An idealized multi-core executor: round-robin, one instruction per
/// core per round, sequentially consistent shared memory, and zero-cost
/// barriers (a `barw` completes as soon as every core has written).
///
/// This is the *golden model* the cycle-accurate simulator is checked
/// against.
#[derive(Clone, Debug)]
pub struct RefCmp {
    /// Per-core architectural state.
    pub cores: Vec<Machine>,
    /// Shared word-addressed memory.
    pub mem: Vec<u64>,
    /// Barriers completed so far.
    pub barriers: u64,
}

impl RefCmp {
    /// `n` cores over `mem_words` words of zeroed shared memory.
    pub fn new(n: usize, mem_words: usize) -> RefCmp {
        assert!(n > 0);
        RefCmp {
            cores: vec![Machine::new(); n],
            mem: vec![0; mem_words],
            barriers: 0,
        }
    }

    /// True when every core has halted.
    pub fn all_halted(&self) -> bool {
        self.cores.iter().all(|c| c.halted)
    }

    /// Runs one round: each core executes one instruction (barrier-blocked
    /// cores spin in place). Completes a barrier when every non-halted
    /// core has a nonzero `bar_reg`.
    pub fn round(&mut self, progs: &[&Program]) -> Result<(), ExecError> {
        assert_eq!(progs.len(), self.cores.len(), "one program per core");
        for (core, prog) in self.cores.iter_mut().zip(progs) {
            core.step(prog, &mut self.mem)?;
        }
        let at_barrier = self.cores.iter().filter(|c| !c.halted).count() > 0
            && self
                .cores
                .iter()
                .filter(|c| !c.halted)
                .all(|c| c.bar_reg != 0);
        if at_barrier {
            for c in &mut self.cores {
                c.bar_reg = 0;
            }
            self.barriers += 1;
        }
        Ok(())
    }

    /// Runs rounds until every core halts, with a step budget to catch
    /// livelock. Returns the number of rounds executed.
    pub fn run(&mut self, progs: &[&Program], max_rounds: u64) -> Result<u64, ExecError> {
        let mut rounds = 0;
        while !self.all_halted() {
            self.round(progs)?;
            rounds += 1;
            assert!(
                rounds <= max_rounds,
                "reference execution exceeded {max_rounds} rounds"
            );
        }
        Ok(rounds)
    }

    /// Word at byte address `addr`.
    pub fn word(&self, addr: u64) -> u64 {
        self.mem[(addr / 8) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run1(src: &str, mem_words: usize) -> (Machine, Vec<u64>) {
        let p = assemble(src).unwrap();
        let mut cmp = RefCmp::new(1, mem_words);
        cmp.run(&[&p], 1_000_000).unwrap();
        (cmp.cores[0].clone(), cmp.mem)
    }

    #[test]
    fn arithmetic_loop_sums() {
        // sum 1..=10 into r2.
        let (m, _) = run1(
            "
            li r1, 10
        loop:
            add r2, r2, r1
            addi r1, r1, -1
            bne r1, r0, loop
            halt
            ",
            0,
        );
        assert_eq!(m.reg(Reg::r(2)), 55);
    }

    #[test]
    fn loads_and_stores() {
        let p = assemble(
            "
            li r1, 0        # base
            li r2, 123
            st r2, 0(r1)
            st r2, 8(r1)
            ld r3, 8(r1)
            addi r3, r3, 1
            st r3, 16(r1)
            halt
            ",
        )
        .unwrap();
        let mut cmp = RefCmp::new(1, 8);
        cmp.run(&[&p], 1000).unwrap();
        assert_eq!(cmp.word(0), 123);
        assert_eq!(cmp.word(8), 123);
        assert_eq!(cmp.word(16), 124);
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let (m, _) = run1("li r0, 99\nadd r0, r0, r0\nhalt", 0);
        assert_eq!(m.reg(Reg::ZERO), 0);
    }

    #[test]
    fn amo_returns_old_value() {
        let p = assemble(
            "
            li r1, 8
            li r2, 5
            st r2, 0(r1)
            li r3, 3
            amoadd r4, r3, (r1)
            amoswap r5, r0, (r1)
            halt
            ",
        )
        .unwrap();
        let mut cmp = RefCmp::new(1, 4);
        cmp.run(&[&p], 1000).unwrap();
        assert_eq!(cmp.cores[0].reg(Reg::r(4)), 5, "amoadd old value");
        assert_eq!(cmp.cores[0].reg(Reg::r(5)), 8, "amoswap old value");
        assert_eq!(cmp.word(8), 0, "amoswap stored operand");
    }

    #[test]
    fn unaligned_access_faults() {
        let p = assemble("li r1, 4\nld r2, 0(r1)\nhalt").unwrap();
        let mut cmp = RefCmp::new(1, 4);
        let e = cmp.run(&[&p], 100).unwrap_err();
        assert_eq!(e, ExecError::Unaligned { addr: 4 });
    }

    #[test]
    fn out_of_bounds_faults() {
        let p = assemble("li r1, 800\nst r1, 0(r1)\nhalt").unwrap();
        let mut cmp = RefCmp::new(1, 4);
        let e = cmp.run(&[&p], 100).unwrap_err();
        assert_eq!(e, ExecError::OutOfBounds { addr: 800 });
    }

    #[test]
    fn subroutine_call_and_return() {
        let (m, _) = run1(
            "
            li r1, 7
            jal r31, double
            jal r31, double
            halt
        double:
            add r1, r1, r1
            jalr r0, r31
            ",
            0,
        );
        assert_eq!(m.reg(Reg::r(1)), 28);
    }

    #[test]
    fn running_off_the_end_halts() {
        let (m, _) = run1("nop\nnop", 0);
        assert!(m.halted);
        assert_eq!(m.retired, 2);
    }

    #[test]
    fn two_cores_synchronize_at_barrier() {
        // Core 0 stores then hits the barrier; core 1 spins at the
        // barrier first, then reads what core 0 stored.
        let p0 = assemble(
            "
            li r1, 42
            st r1, 0(r0)
            li r2, 1
            barw r2
        w:  barr r3
            bne r3, r0, w
            halt
            ",
        )
        .unwrap();
        let p1 = assemble(
            "
            li r2, 1
            barw r2
        w:  barr r3
            bne r3, r0, w
            ld r4, 0(r0)
            halt
            ",
        )
        .unwrap();
        let mut cmp = RefCmp::new(2, 4);
        cmp.run(&[&p0, &p1], 10_000).unwrap();
        assert_eq!(
            cmp.cores[1].reg(Reg::r(4)),
            42,
            "barrier must order the store before the load"
        );
        assert_eq!(cmp.barriers, 1);
    }

    #[test]
    fn barrier_ignores_halted_cores() {
        // Core 1 halts immediately; core 0's barrier completes alone.
        let p0 = assemble("li r1, 1\nbarw r1\nw: barr r2\nbne r2, r0, w\nhalt").unwrap();
        let p1 = assemble("halt").unwrap();
        let mut cmp = RefCmp::new(2, 0);
        cmp.run(&[&p0, &p1], 10_000).unwrap();
        assert!(cmp.all_halted());
    }

    #[test]
    fn many_barriers_in_a_loop() {
        let src = "
            li r10, 50     # iterations
            li r1, 1
        loop:
            barw r1
        w:  barr r2
            bne r2, r0, w
            addi r10, r10, -1
            bne r10, r0, loop
            halt
        ";
        let p = assemble(src).unwrap();
        let progs = [p.clone(), p.clone(), p.clone(), p];
        let refs: Vec<&Program> = progs.iter().collect();
        let mut cmp = RefCmp::new(4, 0);
        cmp.run(&refs, 100_000).unwrap();
        assert_eq!(cmp.barriers, 50);
    }
}
