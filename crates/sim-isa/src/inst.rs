//! Instruction and program types.

use crate::reg::Reg;
use sim_base::fxmap::FxHashMap;
use std::fmt;

/// Binary ALU operation selector, shared by the register-register and
/// register-immediate forms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; division by zero yields 0 (documented choice: the
    /// simulated machine does not trap).
    Div,
    /// Remainder; by zero yields the dividend (RISC-V convention).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (by low 6 bits).
    Sll,
    /// Logical shift right (by low 6 bits).
    Srl,
    /// Set-if-less-than, signed (1 or 0).
    Slt,
    /// Set-if-less-than, unsigned (1 or 0).
    Sltu,
}

impl AluOp {
    /// Applies the operation to two 64-bit values.
    pub fn apply(self, a: u64, b: u64) -> u64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    ((a as i64).wrapping_div(b as i64)) as u64
                }
            }
            AluOp::Rem => {
                if b == 0 {
                    a
                } else {
                    ((a as i64).wrapping_rem(b as i64)) as u64
                }
            }
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Sll => a << (b & 63),
            AluOp::Srl => a >> (b & 63),
            AluOp::Slt => ((a as i64) < (b as i64)) as u64,
            AluOp::Sltu => (a < b) as u64,
        }
    }

    /// Assembly mnemonic of the register-register form.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Sll => "sll",
            AluOp::Srl => "srl",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
        }
    }
}

/// Branch condition selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BranchCond {
    /// Taken when equal.
    Eq,
    /// Taken when not equal.
    Ne,
    /// Taken when rs1 < rs2, signed.
    Lt,
    /// Taken when rs1 >= rs2, signed.
    Ge,
}

impl BranchCond {
    /// Evaluates the condition.
    pub fn taken(self, a: u64, b: u64) -> bool {
        match self {
            BranchCond::Eq => a == b,
            BranchCond::Ne => a != b,
            BranchCond::Lt => (a as i64) < (b as i64),
            BranchCond::Ge => (a as i64) >= (b as i64),
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchCond::Eq => "beq",
            BranchCond::Ne => "bne",
            BranchCond::Lt => "blt",
            BranchCond::Ge => "bge",
        }
    }
}

/// Atomic read-modify-write selector.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AmoOp {
    /// `rd = M[addr]; M[addr] += rs2` — the paper's `fetch&op`.
    Add,
    /// `rd = M[addr]; M[addr] = rs2` — subsumes `test&set`.
    Swap,
}

impl AmoOp {
    /// New memory value given old contents and the operand.
    pub fn apply(self, old: u64, operand: u64) -> u64 {
        match self {
            AmoOp::Add => old.wrapping_add(operand),
            AmoOp::Swap => operand,
        }
    }

    /// Assembly mnemonic.
    pub fn mnemonic(self) -> &'static str {
        match self {
            AmoOp::Add => "amoadd",
            AmoOp::Swap => "amoswap",
        }
    }
}

/// Execution-region marker for time attribution (the paper's Figure-6
/// categories). Set by runtime-library code around synchronization
/// sequences; has no architectural effect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
pub enum Region {
    /// Ordinary computation: stalls attribute to Read/Write, the rest to
    /// Busy.
    #[default]
    Normal,
    /// Inside a barrier (notification, busy-wait or release).
    Barrier,
    /// Inside lock acquisition or release.
    Lock,
}

impl Region {
    /// Assembly operand name.
    pub fn name(self) -> &'static str {
        match self {
            Region::Normal => "normal",
            Region::Barrier => "barrier",
            Region::Lock => "lock",
        }
    }

    /// Parses an assembly operand name.
    pub fn from_name(s: &str) -> Option<Region> {
        Some(match s {
            "normal" => Region::Normal,
            "barrier" => Region::Barrier,
            "lock" => Region::Lock,
            _ => return None,
        })
    }
}

/// One machine instruction. Branch targets are absolute instruction
/// indices (the assembler resolves labels to these).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Inst {
    /// `li rd, imm` — load immediate.
    Li {
        /// Destination.
        rd: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Register-register ALU: `op rd, rs1, rs2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// First source.
        rs1: Reg,
        /// Second source.
        rs2: Reg,
    },
    /// Register-immediate ALU: `opi rd, rs1, imm`.
    AluI {
        /// Operation.
        op: AluOp,
        /// Destination.
        rd: Reg,
        /// Source.
        rs1: Reg,
        /// Immediate operand.
        imm: i64,
    },
    /// `ld rd, off(rs1)` — load the word at `rs1 + off`.
    Ld {
        /// Destination.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset (must keep the address 8-byte aligned).
        off: i64,
    },
    /// `st rs2, off(rs1)` — store `rs2` to `rs1 + off`.
    St {
        /// Value to store.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Byte offset.
        off: i64,
    },
    /// `amoadd/amoswap rd, rs2, (rs1)` — atomic read-modify-write at the
    /// address in `rs1`; old value lands in `rd`.
    Amo {
        /// Operation.
        op: AmoOp,
        /// Destination for the old memory value.
        rd: Reg,
        /// Address register.
        rs1: Reg,
        /// Operand register.
        rs2: Reg,
    },
    /// Conditional branch to an absolute instruction index.
    Branch {
        /// Condition.
        cond: BranchCond,
        /// First comparand.
        rs1: Reg,
        /// Second comparand.
        rs2: Reg,
        /// Absolute target instruction index.
        target: usize,
    },
    /// `jal rd, target` — jump and link (rd = return index).
    Jal {
        /// Link register (often `r0` for a plain jump).
        rd: Reg,
        /// Absolute target instruction index.
        target: usize,
    },
    /// `jalr rd, rs1` — indirect jump to the index in `rs1`, linking `rd`.
    Jalr {
        /// Link register.
        rd: Reg,
        /// Register holding the target instruction index.
        rs1: Reg,
    },
    /// `busy n` — n cycles of computation with no memory traffic.
    Busy {
        /// Number of cycles.
        cycles: u32,
    },
    /// `barw rs1` — write `bar_reg` from a register (barrier arrival when
    /// nonzero).
    BarWrite {
        /// Source register (value must be nonzero for an arrival).
        rs1: Reg,
    },
    /// `barr rd` — read `bar_reg` into a register (spin until zero).
    BarRead {
        /// Destination.
        rd: Reg,
    },
    /// `barctx imm` — select which barrier context subsequent
    /// `barw`/`barr` use (hardware with several contexts only; see the
    /// paper's §5 space/time multiplexing).
    BarCtx {
        /// Context index.
        ctx: u8,
    },
    /// Marks the current execution region for time attribution.
    SetRegion {
        /// The region entered.
        region: Region,
    },
    /// Stop this core.
    Halt,
    /// Do nothing for one issue slot.
    Nop,
}

impl Inst {
    /// True for instructions that access data memory (the ones the cache
    /// hierarchy sees).
    pub fn is_memory(self) -> bool {
        matches!(self, Inst::Ld { .. } | Inst::St { .. } | Inst::Amo { .. })
    }

    /// True for control-flow instructions.
    pub fn is_control(self) -> bool {
        matches!(
            self,
            Inst::Branch { .. } | Inst::Jal { .. } | Inst::Jalr { .. }
        )
    }
}

/// An assembled program: instructions plus the label map (kept for
/// disassembly and debugging).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Program {
    insts: Vec<Inst>,
    labels: FxHashMap<String, usize>,
}

impl Program {
    /// Wraps raw instructions (no labels).
    pub fn from_insts(insts: Vec<Inst>) -> Program {
        Program {
            insts,
            labels: FxHashMap::default(),
        }
    }

    /// Wraps instructions with a label map; validates label targets.
    pub fn with_labels(insts: Vec<Inst>, labels: FxHashMap<String, usize>) -> Program {
        for (name, &idx) in &labels {
            assert!(idx <= insts.len(), "label {name} points past the end");
        }
        Program { insts, labels }
    }

    /// The instruction at `pc`, or `None` past the end (treated as halt).
    #[inline]
    pub fn fetch(&self, pc: usize) -> Option<Inst> {
        self.insts.get(pc).copied()
    }

    /// All instructions.
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.insts.len()
    }

    /// True when the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.insts.is_empty()
    }

    /// The label map.
    pub fn labels(&self) -> &FxHashMap<String, usize> {
        &self.labels
    }

    /// Instruction index of a label.
    pub fn label(&self, name: &str) -> Option<usize> {
        self.labels.get(name).copied()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", crate::asm::disassemble(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(3, u64::MAX), 2); // wrapping
        assert_eq!(AluOp::Sub.apply(3, 5), (-2i64) as u64);
        assert_eq!(AluOp::Mul.apply(7, 6), 42);
        assert_eq!(AluOp::Div.apply(42, 5), 8);
        assert_eq!(AluOp::Div.apply((-42i64) as u64, 5), (-8i64) as u64);
        assert_eq!(AluOp::Div.apply(42, 0), 0);
        assert_eq!(AluOp::Rem.apply(42, 5), 2);
        assert_eq!(AluOp::Rem.apply(42, 0), 42);
        assert_eq!(AluOp::Sll.apply(1, 65), 2); // shift amount masked
        assert_eq!(AluOp::Slt.apply((-1i64) as u64, 0), 1);
        assert_eq!(AluOp::Sltu.apply((-1i64) as u64, 0), 0);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchCond::Eq.taken(4, 4));
        assert!(BranchCond::Ne.taken(4, 5));
        assert!(BranchCond::Lt.taken((-1i64) as u64, 0));
        assert!(BranchCond::Ge.taken(0, (-1i64) as u64));
        assert!(!BranchCond::Lt.taken(0, (-1i64) as u64));
    }

    #[test]
    fn amo_semantics() {
        assert_eq!(AmoOp::Add.apply(10, 5), 15);
        assert_eq!(AmoOp::Swap.apply(10, 5), 5);
    }

    #[test]
    fn region_names_round_trip() {
        for r in [Region::Normal, Region::Barrier, Region::Lock] {
            assert_eq!(Region::from_name(r.name()), Some(r));
        }
        assert_eq!(Region::from_name("bogus"), None);
    }

    #[test]
    fn classification() {
        assert!(Inst::Ld {
            rd: Reg(1),
            rs1: Reg(2),
            off: 0
        }
        .is_memory());
        assert!(Inst::Amo {
            op: AmoOp::Add,
            rd: Reg(1),
            rs1: Reg(2),
            rs2: Reg(3)
        }
        .is_memory());
        assert!(!Inst::Nop.is_memory());
        assert!(Inst::Jal {
            rd: Reg::ZERO,
            target: 0
        }
        .is_control());
        assert!(!Inst::Halt.is_control());
    }

    #[test]
    fn program_fetch_and_labels() {
        let mut labels = FxHashMap::default();
        labels.insert("start".to_string(), 0);
        let p = Program::with_labels(vec![Inst::Nop, Inst::Halt], labels);
        assert_eq!(p.fetch(0), Some(Inst::Nop));
        assert_eq!(p.fetch(5), None);
        assert_eq!(p.label("start"), Some(0));
        assert_eq!(p.label("missing"), None);
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
    }

    #[test]
    #[should_panic(expected = "points past the end")]
    fn bad_label_rejected() {
        let mut labels = FxHashMap::default();
        labels.insert("x".to_string(), 9);
        let _ = Program::with_labels(vec![Inst::Halt], labels);
    }
}
