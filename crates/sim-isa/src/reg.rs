//! Register names.

use std::fmt;

/// One of the 32 general-purpose registers. `r0` always reads zero and
/// ignores writes.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Reg(pub u8);

/// Number of architectural registers.
pub const NUM_REGS: usize = 32;

impl Reg {
    /// The always-zero register.
    pub const ZERO: Reg = Reg(0);

    /// Constructs `rN`; panics when `n >= 32`.
    pub fn r(n: u8) -> Reg {
        assert!((n as usize) < NUM_REGS, "register r{n} does not exist");
        Reg(n)
    }

    /// Dense index for register-file lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructor_and_display() {
        assert_eq!(Reg::r(7), Reg(7));
        assert_eq!(format!("{}", Reg::r(31)), "r31");
        assert_eq!(Reg::ZERO.index(), 0);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn out_of_range_rejected() {
        let _ = Reg::r(32);
    }
}
