//! Text assembler and disassembler.
//!
//! Syntax (one instruction per line; `#` or `;` start a comment):
//!
//! ```text
//!     li   r1, 100
//! loop:
//!     ld   r2, 0(r3)        # word load
//!     add  r4, r4, r2
//!     addi r3, r3, 8
//!     addi r1, r1, -1
//!     bne  r1, r0, loop
//!     amoadd r5, r6, (r7)   # r5 = old M[r7]; M[r7] += r6
//!     barw r1               # announce barrier arrival
//! spin:
//!     barr r2
//!     bne  r2, r0, spin     # wait for the G-line release
//!     halt
//! ```

use crate::inst::{AluOp, AmoOp, BranchCond, Inst, Program, Region};
use crate::reg::Reg;
use sim_base::fxmap::FxHashMap;
use std::fmt;

/// An assembly error with its 1-based source line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

fn err<T>(line: usize, msg: impl Into<String>) -> Result<T, AsmError> {
    Err(AsmError {
        line,
        msg: msg.into(),
    })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, AsmError> {
    let t = tok.trim();
    let Some(num) = t.strip_prefix('r') else {
        return err(line, format!("expected register, got `{t}`"));
    };
    match num.parse::<u8>() {
        Ok(n) if (n as usize) < crate::reg::NUM_REGS => Ok(Reg(n)),
        _ => err(line, format!("bad register `{t}`")),
    }
}

fn parse_imm(tok: &str, line: usize) -> Result<i64, AsmError> {
    let t = tok.trim();
    let (neg, rest) = match t.strip_prefix('-') {
        Some(r) => (true, r),
        None => (false, t),
    };
    let v = if let Some(hex) = rest.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).map(|v| v as i64)
    } else {
        rest.parse::<i64>()
    };
    match v {
        Ok(v) => Ok(if neg { -v } else { v }),
        Err(_) => err(line, format!("bad immediate `{t}`")),
    }
}

/// Parses `off(rN)`.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), AsmError> {
    let t = tok.trim();
    let Some(open) = t.find('(') else {
        return err(line, format!("expected `off(reg)`, got `{t}`"));
    };
    if !t.ends_with(')') {
        return err(line, format!("missing `)` in `{t}`"));
    }
    let off_str = &t[..open];
    let reg_str = &t[open + 1..t.len() - 1];
    let off = if off_str.trim().is_empty() {
        0
    } else {
        parse_imm(off_str, line)?
    };
    Ok((off, parse_reg(reg_str, line)?))
}

fn alu_op(m: &str) -> Option<AluOp> {
    Some(match m {
        "add" => AluOp::Add,
        "sub" => AluOp::Sub,
        "mul" => AluOp::Mul,
        "div" => AluOp::Div,
        "rem" => AluOp::Rem,
        "and" => AluOp::And,
        "or" => AluOp::Or,
        "xor" => AluOp::Xor,
        "sll" => AluOp::Sll,
        "srl" => AluOp::Srl,
        "slt" => AluOp::Slt,
        "sltu" => AluOp::Sltu,
        _ => return None,
    })
}

fn branch_cond(m: &str) -> Option<BranchCond> {
    Some(match m {
        "beq" => BranchCond::Eq,
        "bne" => BranchCond::Ne,
        "blt" => BranchCond::Lt,
        "bge" => BranchCond::Ge,
        _ => return None,
    })
}

/// A not-yet-resolved jump target.
enum PendingTarget {
    None,
    Label(String),
}

/// Assembles source text into a [`Program`].
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    let mut insts: Vec<Inst> = Vec::new();
    let mut labels: FxHashMap<String, usize> = FxHashMap::default();
    // (inst index, label, source line) to patch after the label pass.
    let mut fixups: Vec<(usize, String, usize)> = Vec::new();

    for (lineno0, raw) in src.lines().enumerate() {
        let line = lineno0 + 1;
        let mut text = raw;
        if let Some(p) = text.find(['#', ';']) {
            text = &text[..p];
        }
        let mut text = text.trim();
        // Possibly several labels on the line: `a: b: inst`.
        while let Some(colon) = text.find(':') {
            let name = text[..colon].trim();
            if name.is_empty() || name.contains(char::is_whitespace) {
                return err(line, format!("bad label `{name}`"));
            }
            if labels.insert(name.to_string(), insts.len()).is_some() {
                return err(line, format!("duplicate label `{name}`"));
            }
            text = text[colon + 1..].trim();
        }
        if text.is_empty() {
            continue;
        }
        let (mnemonic, rest) = match text.find(char::is_whitespace) {
            Some(p) => (&text[..p], text[p..].trim()),
            None => (text, ""),
        };
        let ops: Vec<&str> = if rest.is_empty() {
            Vec::new()
        } else {
            rest.split(',').map(str::trim).collect()
        };
        let need = |n: usize| -> Result<(), AsmError> {
            if ops.len() == n {
                Ok(())
            } else {
                err(
                    line,
                    format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()),
                )
            }
        };

        let mut pending = PendingTarget::None;
        let inst = if let Some(op) = alu_op(mnemonic) {
            need(3)?;
            Inst::Alu {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                rs2: parse_reg(ops[2], line)?,
            }
        } else if let Some(op) = mnemonic.strip_suffix('i').and_then(alu_op) {
            need(3)?;
            Inst::AluI {
                op,
                rd: parse_reg(ops[0], line)?,
                rs1: parse_reg(ops[1], line)?,
                imm: parse_imm(ops[2], line)?,
            }
        } else if let Some(cond) = branch_cond(mnemonic) {
            need(3)?;
            pending = PendingTarget::Label(ops[2].to_string());
            Inst::Branch {
                cond,
                rs1: parse_reg(ops[0], line)?,
                rs2: parse_reg(ops[1], line)?,
                target: usize::MAX,
            }
        } else {
            match mnemonic {
                "li" => {
                    need(2)?;
                    Inst::Li {
                        rd: parse_reg(ops[0], line)?,
                        imm: parse_imm(ops[1], line)?,
                    }
                }
                "ld" => {
                    need(2)?;
                    let (off, rs1) = parse_mem_operand(ops[1], line)?;
                    Inst::Ld {
                        rd: parse_reg(ops[0], line)?,
                        rs1,
                        off,
                    }
                }
                "st" => {
                    need(2)?;
                    let (off, rs1) = parse_mem_operand(ops[1], line)?;
                    Inst::St {
                        rs2: parse_reg(ops[0], line)?,
                        rs1,
                        off,
                    }
                }
                "amoadd" | "amoswap" => {
                    need(3)?;
                    let op = if mnemonic == "amoadd" {
                        AmoOp::Add
                    } else {
                        AmoOp::Swap
                    };
                    let (off, rs1) = parse_mem_operand(ops[2], line)?;
                    if off != 0 {
                        return err(line, "atomics take a plain `(reg)` address");
                    }
                    Inst::Amo {
                        op,
                        rd: parse_reg(ops[0], line)?,
                        rs1,
                        rs2: parse_reg(ops[1], line)?,
                    }
                }
                "jal" => {
                    need(2)?;
                    pending = PendingTarget::Label(ops[1].to_string());
                    Inst::Jal {
                        rd: parse_reg(ops[0], line)?,
                        target: usize::MAX,
                    }
                }
                "j" => {
                    need(1)?;
                    pending = PendingTarget::Label(ops[0].to_string());
                    Inst::Jal {
                        rd: Reg::ZERO,
                        target: usize::MAX,
                    }
                }
                "jalr" => {
                    need(2)?;
                    Inst::Jalr {
                        rd: parse_reg(ops[0], line)?,
                        rs1: parse_reg(ops[1], line)?,
                    }
                }
                "busy" => {
                    need(1)?;
                    let n = parse_imm(ops[0], line)?;
                    if n < 0 || n > u32::MAX as i64 {
                        return err(line, "busy count out of range");
                    }
                    Inst::Busy { cycles: n as u32 }
                }
                "barw" => {
                    need(1)?;
                    Inst::BarWrite {
                        rs1: parse_reg(ops[0], line)?,
                    }
                }
                "barr" => {
                    need(1)?;
                    Inst::BarRead {
                        rd: parse_reg(ops[0], line)?,
                    }
                }
                "barctx" => {
                    need(1)?;
                    let v = parse_imm(ops[0], line)?;
                    if !(0..256).contains(&v) {
                        return err(line, "barrier context out of range");
                    }
                    Inst::BarCtx { ctx: v as u8 }
                }
                "region" => {
                    need(1)?;
                    match Region::from_name(ops[0]) {
                        Some(region) => Inst::SetRegion { region },
                        None => return err(line, format!("unknown region `{}`", ops[0])),
                    }
                }
                "halt" => {
                    need(0)?;
                    Inst::Halt
                }
                "nop" => {
                    need(0)?;
                    Inst::Nop
                }
                _ => return err(line, format!("unknown mnemonic `{mnemonic}`")),
            }
        };
        if let PendingTarget::Label(l) = pending {
            fixups.push((insts.len(), l, line));
        }
        insts.push(inst);
    }

    for (idx, label, line) in fixups {
        let Some(&target) = labels.get(&label) else {
            return err(line, format!("undefined label `{label}`"));
        };
        match &mut insts[idx] {
            Inst::Branch { target: t, .. } | Inst::Jal { target: t, .. } => *t = target,
            _ => unreachable!("fixup on a non-jump"),
        }
    }
    Ok(Program::with_labels(insts, labels))
}

/// Disassembles a program back into assembly text. Branch/jump targets
/// are rendered as generated `L<index>` labels.
pub fn disassemble(p: &Program) -> String {
    use std::collections::BTreeSet;
    let mut targets: BTreeSet<usize> = BTreeSet::new();
    for inst in p.insts() {
        match *inst {
            Inst::Branch { target, .. } | Inst::Jal { target, .. } => {
                targets.insert(target);
            }
            _ => {}
        }
    }
    let label = |i: usize| format!("L{i}");
    let mut out = String::new();
    for (i, inst) in p.insts().iter().enumerate() {
        if targets.contains(&i) {
            out.push_str(&label(i));
            out.push_str(":\n");
        }
        let text = match *inst {
            Inst::Li { rd, imm } => format!("li {rd}, {imm}"),
            Inst::Alu { op, rd, rs1, rs2 } => format!("{} {rd}, {rs1}, {rs2}", op.mnemonic()),
            Inst::AluI { op, rd, rs1, imm } => format!("{}i {rd}, {rs1}, {imm}", op.mnemonic()),
            Inst::Ld { rd, rs1, off } => format!("ld {rd}, {off}({rs1})"),
            Inst::St { rs2, rs1, off } => format!("st {rs2}, {off}({rs1})"),
            Inst::Amo { op, rd, rs1, rs2 } => format!("{} {rd}, {rs2}, ({rs1})", op.mnemonic()),
            Inst::Branch {
                cond,
                rs1,
                rs2,
                target,
            } => {
                format!("{} {rs1}, {rs2}, {}", cond.mnemonic(), label(target))
            }
            Inst::Jal { rd, target } => format!("jal {rd}, {}", label(target)),
            Inst::Jalr { rd, rs1 } => format!("jalr {rd}, {rs1}"),
            Inst::Busy { cycles } => format!("busy {cycles}"),
            Inst::BarWrite { rs1 } => format!("barw {rs1}"),
            Inst::BarRead { rd } => format!("barr {rd}"),
            Inst::BarCtx { ctx } => format!("barctx {ctx}"),
            Inst::SetRegion { region } => format!("region {}", region.name()),
            Inst::Halt => "halt".to_string(),
            Inst::Nop => "nop".to_string(),
        };
        out.push_str("    ");
        out.push_str(&text);
        out.push('\n');
    }
    // A trailing branch target (label at end of program).
    if targets.contains(&p.len()) {
        out.push_str(&label(p.len()));
        out.push_str(":\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_the_paper_barrier_idiom() {
        let p = assemble(
            "
            li r1, 1
            barw r1          # arrival at the barrier
        spin:
            barr r2
            bne r2, r0, spin # wait until all cores arrive
            halt
            ",
        )
        .unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p.fetch(1), Some(Inst::BarWrite { rs1: Reg(1) }));
        assert_eq!(
            p.fetch(3),
            Some(Inst::Branch {
                cond: BranchCond::Ne,
                rs1: Reg(2),
                rs2: Reg(0),
                target: 2
            })
        );
    }

    #[test]
    fn memory_operands() {
        let p = assemble("ld r1, 16(r2)\nst r3, -8(r4)\nld r5, (r6)").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Ld {
                rd: Reg(1),
                rs1: Reg(2),
                off: 16
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::St {
                rs2: Reg(3),
                rs1: Reg(4),
                off: -8
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Ld {
                rd: Reg(5),
                rs1: Reg(6),
                off: 0
            })
        );
    }

    #[test]
    fn atomics() {
        let p = assemble("amoadd r1, r2, (r3)\namoswap r4, r5, (r6)").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Amo {
                op: AmoOp::Add,
                rd: Reg(1),
                rs1: Reg(3),
                rs2: Reg(2)
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Amo {
                op: AmoOp::Swap,
                rd: Reg(4),
                rs1: Reg(6),
                rs2: Reg(5)
            })
        );
    }

    #[test]
    fn hex_and_negative_immediates() {
        let p = assemble("li r1, 0x40\nli r2, -0x10\naddi r3, r3, -1").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Li {
                rd: Reg(1),
                imm: 64
            })
        );
        assert_eq!(
            p.fetch(1),
            Some(Inst::Li {
                rd: Reg(2),
                imm: -16
            })
        );
    }

    #[test]
    fn forward_and_backward_labels() {
        let p = assemble("j end\nback:\nnop\nj back\nend:\nhalt").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 3
            })
        );
        assert_eq!(
            p.fetch(2),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 1
            })
        );
    }

    #[test]
    fn error_reporting_lines() {
        let e = assemble("nop\nfrob r1, r2").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("unknown mnemonic"));
        let e = assemble("ld r1, r2").unwrap_err();
        assert!(e.msg.contains("off(reg)"), "{}", e.msg);
        let e = assemble("beq r1, r2, nowhere").unwrap_err();
        assert!(e.msg.contains("undefined label"));
        let e = assemble("dup:\nnop\ndup:").unwrap_err();
        assert!(e.msg.contains("duplicate label"));
        let e = assemble("add r1, r2").unwrap_err();
        assert!(e.msg.contains("expects 3"));
        let e = assemble("li r99, 0").unwrap_err();
        assert!(e.msg.contains("bad register"));
    }

    #[test]
    fn disassemble_round_trip() {
        let src = "
            li r1, 42
        top:
            addi r1, r1, -1
            ld r2, 8(r3)
            st r2, 0(r4)
            amoadd r5, r1, (r6)
            slti r7, r1, 10
            bne r1, r0, top
            jal r31, sub
            busy 17
            region barrier
            region normal
            halt
        sub:
            barctx 2
            barw r1
            barr r2
            barctx 0
            jalr r0, r31
            ";
        let p1 = assemble(src).unwrap();
        let text = disassemble(&p1);
        let p2 = assemble(&text).unwrap();
        assert_eq!(
            p1.insts(),
            p2.insts(),
            "round-trip changed the program:\n{text}"
        );
    }

    #[test]
    fn label_at_end_of_program() {
        let p = assemble("j end\nend:").unwrap();
        assert_eq!(
            p.fetch(0),
            Some(Inst::Jal {
                rd: Reg::ZERO,
                target: 1
            })
        );
        // Round-trips even with the trailing label.
        let p2 = assemble(&disassemble(&p)).unwrap();
        assert_eq!(p.insts(), p2.insts());
    }
}
