//! Figure-5 benchmark: cycles per barrier on the simulated CMP under the
//! three barrier implementations, swept over core counts. The Criterion
//! measurement is host wall-time per simulated episode batch; the
//! *simulated* cycles per barrier are printed alongside.

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_base::config::CmpConfig;
use sim_cmp::runtime::BarrierKind;
use workloads::synthetic;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_barrier_latency");
    g.sample_size(10);
    let iters = 10;
    for &cores in &[4usize, 16, 32] {
        for kind in BarrierKind::ALL {
            // Report the simulated latency once per configuration.
            let w = synthetic::build(cores, kind, iters);
            let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(cores));
            let cycles = sys.run(1_000_000_000).unwrap();
            eprintln!(
                "[fig5] {:>3} cores {}: {:>9.1} simulated cycles/barrier",
                cores,
                kind.label(),
                synthetic::cycles_per_barrier(cycles, iters)
            );
            g.bench_with_input(
                BenchmarkId::new(kind.label(), cores),
                &cores,
                |b, &cores| {
                    b.iter(|| {
                        let w = synthetic::build(cores, kind, iters);
                        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(cores));
                        sys.run(1_000_000_000).unwrap()
                    })
                },
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
