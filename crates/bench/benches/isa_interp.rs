//! ISA toolchain microbenchmarks: assembler throughput and reference
//! interpreter speed (both sit on test/CI critical paths).

use bench::harness::{criterion_group, criterion_main, Criterion};
use sim_isa::interp::RefCmp;
use sim_isa::{assemble, disassemble};

const KERNEL: &str = "
    li r1, 0
    li r2, 1000
loop:
    mul r3, r1, r1
    add r4, r4, r3
    addi r1, r1, 1
    bne r1, r2, loop
    halt
";

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("isa");
    g.bench_function("assemble_small_kernel", |b| {
        b.iter(|| assemble(KERNEL).unwrap())
    });
    let prog = assemble(KERNEL).unwrap();
    g.bench_function("disassemble_small_kernel", |b| {
        b.iter(|| disassemble(&prog))
    });
    g.bench_function("interpret_7k_insts", |b| {
        b.iter(|| {
            let mut cmp = RefCmp::new(1, 16);
            cmp.run(&[&prog], 1_000_000).unwrap()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
