//! Wall-clock win of active-set micro-scheduling, plus the parallel
//! sweep engine's determinism and scaling.
//!
//! Part 1 runs the full `barrier kind × contention shape` synthetic
//! matrix (GL/CSW/DSW, contended and imbalanced) on the 32-core
//! machine, once with active-set scheduling enabled and once with
//! `--no-active-set`, with quiescence skipping on in both runs. The
//! full `SystemReport`s must be bit-identical (the active-set
//! contract); the wall-clock ratio is the win from visiting only
//! routers with buffered flits, homes with live transactions, and
//! unparked cores. The headline number is the contended CSW run — the
//! coherence-bound regime where skipping cannot help because the
//! machine is never quiescent.
//!
//! Part 2 fans the same matrix across host threads via
//! [`bench::sweep`] and asserts the merged results are identical to
//! the serial sweep, element for element. Results land in
//! `BENCH_active_set.json` at the repo root.

use std::time::Instant;

use bench::experiments::BENCH_CORES;
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::sweep::{default_workers, sweep};
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_cmp::SystemReport;
use workloads::common::Workload;
use workloads::synthetic;

/// One timed end-to-end run with active-set scheduling on or off.
struct Run {
    wall_s: f64,
    cycles: u64,
    ticks_per_s: f64,
    report: SystemReport,
    mean_active_cores: f64,
    mean_busy_homes: f64,
    mean_active_routers: f64,
}

fn measure(w: &Workload, active: bool) -> Run {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    sys.set_active_set_enabled(active);
    let start = Instant::now();
    let cycles = sys.run(20_000_000_000).expect("workload completes");
    let wall_s = start.elapsed().as_secs_f64();
    Run {
        wall_s,
        cycles,
        ticks_per_s: cycles as f64 / wall_s.max(1e-9),
        report: sys.report(),
        mean_active_cores: sys.core_sched_stats().mean_active_cores(),
        mean_busy_homes: sys.mem_sched_stats().mean_busy_homes(),
        mean_active_routers: sys.noc_sched_stats().mean_active_routers(),
    }
}

fn run_json(r: &Run) -> Json {
    Json::obj([
        ("wall_s", Json::from(r.wall_s)),
        ("cycles", Json::from(r.cycles)),
        ("ticks_per_s", Json::from(r.ticks_per_s)),
    ])
}

/// Measures `w` both ways, checks bit-identity, and returns the JSON
/// record plus the wall-clock speedup.
fn compare(name: &str, w: &Workload) -> (Json, f64) {
    measure(w, true); // warm-up
    let on = measure(w, true);
    let off = measure(w, false);
    assert_eq!(
        on.report, off.report,
        "{name}: active-set scheduling changed the report"
    );
    let speedup = off.wall_s / on.wall_s.max(1e-9);
    eprintln!(
        "[active_set] {name}: {} cycles; mean active {:.1}/{} cores, \
         {:.1}/{} homes, {:.1}/{} routers",
        on.cycles,
        on.mean_active_cores,
        BENCH_CORES,
        on.mean_busy_homes,
        BENCH_CORES,
        on.mean_active_routers,
        BENCH_CORES,
    );
    eprintln!(
        "[active_set]   active on : {:>9.2} ms  ({:.2e} ticks/s)",
        on.wall_s * 1e3,
        on.ticks_per_s
    );
    eprintln!(
        "[active_set]   active off: {:>9.2} ms  ({:.2e} ticks/s)",
        off.wall_s * 1e3,
        off.ticks_per_s
    );
    eprintln!("[active_set]   wall-clock speedup: {speedup:.2}x");
    let json = Json::obj([
        ("name", Json::from(name)),
        ("active_on", run_json(&on)),
        ("active_off", run_json(&off)),
        ("speedup", Json::from(speedup)),
        ("mean_active_cores", Json::from(on.mean_active_cores)),
        ("mean_busy_homes", Json::from(on.mean_busy_homes)),
        ("mean_active_routers", Json::from(on.mean_active_routers)),
    ]);
    (json, speedup)
}

/// Runs every matrix entry once (active-set on) and returns
/// `(cycles, report)` per entry, in matrix order.
fn sweep_once(
    matrix: &[(&'static str, Workload)],
    workers: usize,
) -> (Vec<(u64, SystemReport)>, f64) {
    let start = Instant::now();
    let out = sweep(matrix, workers, |(_, w)| {
        let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
        let cycles = sys.run(20_000_000_000).expect("workload completes");
        (cycles, sys.report())
    });
    (out, start.elapsed().as_secs_f64())
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` (the CI smoke pass) runs scaled-down
    // workloads; a real `cargo bench` uses the full iteration counts
    // and enforces the speedup floor.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, stagger) = if test_mode { (1, 200) } else { (6, 1000) };
    let matrix = synthetic::barrier_matrix(BENCH_CORES, iters, stagger);

    // Part 1: single-threaded active-set on vs off, per matrix entry.
    let mut entries = Vec::new();
    let mut contended_csw_speedup = 0.0;
    for (name, w) in &matrix {
        let (json, speedup) = compare(name, w);
        if *name == "contended CSW" {
            contended_csw_speedup = speedup;
        }
        entries.push(json);
    }

    // Contended GL is over in ~156 cycles, so a single wall-clock pair
    // is noise; the gate uses the best speedup over several pairs. The
    // regime is all-cores-spinning with zero memory/NoC traffic, where
    // active-set bookkeeping once cost 0.58x — the floor pins the fix
    // (spin-park fast path + deferred list compaction) at parity or
    // better rather than chasing the noisy upside.
    let contended_gl = &matrix
        .iter()
        .find(|(n, _)| *n == "contended GL")
        .expect("matrix has contended GL")
        .1;
    let contended_gl_speedup = (0..7)
        .map(|_| {
            let on = measure(contended_gl, true);
            let off = measure(contended_gl, false);
            off.wall_s / on.wall_s.max(1e-9)
        })
        .fold(0.0f64, f64::max);
    eprintln!("[active_set] contended GL best-of-7 speedup: {contended_gl_speedup:.2}x");

    // Part 2: the parallel sweep must merge to the exact serial result.
    let workers = default_workers();
    let (serial, serial_wall) = sweep_once(&matrix, 1);
    let (parallel, parallel_wall) = sweep_once(&matrix, workers);
    assert_eq!(
        serial, parallel,
        "parallel sweep reordered or changed results"
    );
    let scaling = serial_wall / parallel_wall.max(1e-9);
    eprintln!(
        "[active_set] sweep: serial {:.2} ms, {} workers {:.2} ms ({scaling:.2}x)",
        serial_wall * 1e3,
        workers,
        parallel_wall * 1e3
    );

    let json = Json::obj([
        ("benchmark", Json::from("synthetic barrier matrix")),
        ("cores", Json::from(BENCH_CORES as u64)),
        ("host", bench::sweep::host_json(workers)),
        ("iters", Json::from(iters)),
        ("stagger", Json::from(stagger)),
        ("workloads", Json::arr(entries)),
        ("contended_csw_speedup", Json::from(contended_csw_speedup)),
        ("contended_gl_speedup", Json::from(contended_gl_speedup)),
        (
            "sweep",
            Json::obj([
                ("workers", Json::from(workers as u64)),
                ("serial_wall_s", Json::from(serial_wall)),
                ("parallel_wall_s", Json::from(parallel_wall)),
                ("scaling", Json::from(scaling)),
            ]),
        ),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_active_set.json");
    std::fs::write(path, json.pretty()).expect("write BENCH_active_set.json");
    eprintln!("[active_set] wrote {path}");
    if !test_mode {
        assert!(
            contended_csw_speedup >= 1.5,
            "active-set scheduling must buy >= 1.5x wall-clock on the contended CSW \
             workload, got {contended_csw_speedup:.2}x"
        );
        assert!(
            contended_gl_speedup >= 0.9,
            "active-set scheduling must not regress the short contended GL workload \
             below 0.9x wall-clock (best of 7), got {contended_gl_speedup:.2}x"
        );
    }

    // Harness samples for trend tracking alongside the other benches.
    let contended = &matrix
        .iter()
        .find(|(n, _)| *n == "contended CSW")
        .expect("matrix has contended CSW")
        .1;
    let mut g = c.benchmark_group("active_set");
    g.sample_size(10);
    for active in [true, false] {
        g.bench_with_input(
            BenchmarkId::new("contended_csw", if active { "active" } else { "dense" }),
            &active,
            |b, &active| b.iter(|| measure(contended, active).cycles),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
