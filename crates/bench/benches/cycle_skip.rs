//! Wall-clock win of the quiescence-aware cycle-skipping scheduler.
//!
//! Measures a Figure 6-style barrier-heavy run — the synthetic benchmark
//! under the centralized software barrier (CSW) with per-core load
//! imbalance, so the cores spend most of every barrier period spinning
//! in the wait loop — once with skipping enabled and once with
//! `--no-skip`, and reports host wall-clock plus simulated ticks/sec for
//! both. The simulated cycle counts must agree exactly (the skip
//! scheduler's bit-identity contract); the wall-clock ratio is the
//! speedup the scheduler buys. The perfectly balanced (contention-bound)
//! variant is measured too: there the network is almost never quiescent,
//! so it bounds the scheduler's overhead rather than its win. Results
//! land in `BENCH_cycle_skip.json` at the repo root.

use std::time::Instant;

use bench::experiments::BENCH_CORES;
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_cmp::runtime::BarrierKind;
use workloads::common::Workload;
use workloads::synthetic;

/// One timed end-to-end run with skipping forced on or off.
struct Run {
    wall_s: f64,
    cycles: u64,
    ticks_per_s: f64,
    cycles_skipped: u64,
}

fn measure(w: &Workload, skip: bool) -> Run {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    sys.set_skip_enabled(skip);
    let start = Instant::now();
    let cycles = sys.run(20_000_000_000).expect("workload completes");
    let wall_s = start.elapsed().as_secs_f64();
    Run {
        wall_s,
        cycles,
        ticks_per_s: cycles as f64 / wall_s.max(1e-9),
        cycles_skipped: sys.skip_stats().cycles_skipped,
    }
}

fn run_json(r: &Run) -> Json {
    Json::obj([
        ("wall_s", Json::from(r.wall_s)),
        ("cycles", Json::from(r.cycles)),
        ("ticks_per_s", Json::from(r.ticks_per_s)),
        ("cycles_skipped", Json::from(r.cycles_skipped)),
    ])
}

/// Measures `w` both ways, prints the comparison, and returns the JSON
/// record plus the wall-clock speedup. Each side is timed `reps` times
/// with the runs interleaved and the fastest kept: host noise only ever
/// adds wall-clock, so min-of-N estimates the true cost, and
/// interleaving keeps a slow host phase from landing on one side only.
fn compare(name: &str, w: &Workload, reps: usize) -> (Json, f64) {
    measure(w, true); // warm-up
    let mut on = measure(w, true);
    let mut off = measure(w, false);
    for _ in 1..reps {
        let r = measure(w, true);
        if r.wall_s < on.wall_s {
            on = r;
        }
        let r = measure(w, false);
        if r.wall_s < off.wall_s {
            off = r;
        }
    }
    assert_eq!(
        on.cycles, off.cycles,
        "{name}: cycle skipping changed the simulated cycle count"
    );
    let speedup = off.wall_s / on.wall_s.max(1e-9);
    eprintln!(
        "[cycle_skip] {name}: {} cycles, {:.1}% elided",
        on.cycles,
        100.0 * on.cycles_skipped as f64 / on.cycles as f64
    );
    eprintln!(
        "[cycle_skip]   skip on : {:>9.2} ms  ({:.2e} ticks/s)",
        on.wall_s * 1e3,
        on.ticks_per_s
    );
    eprintln!(
        "[cycle_skip]   skip off: {:>9.2} ms  ({:.2e} ticks/s)",
        off.wall_s * 1e3,
        off.ticks_per_s
    );
    eprintln!("[cycle_skip]   wall-clock speedup: {speedup:.2}x");
    let json = Json::obj([
        ("skip_on", run_json(&on)),
        ("skip_off", run_json(&off)),
        ("speedup", Json::from(speedup)),
    ]);
    (json, speedup)
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` (the CI smoke pass) runs scaled-down
    // workloads; a real `cargo bench` uses the full iteration counts and
    // enforces the speedup floor.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, stagger, reps) = if test_mode { (1, 200, 1) } else { (6, 1000, 3) };
    let imbalanced = synthetic::build_imbalanced(BENCH_CORES, BarrierKind::Csw, iters, stagger);
    let contended = synthetic::build(BENCH_CORES, BarrierKind::Csw, iters);

    let (imb_json, speedup) = compare("imbalanced CSW", &imbalanced, reps);
    let (con_json, contended_speedup) = compare("contended CSW", &contended, reps);

    let json = Json::obj([
        ("benchmark", Json::from("synthetic")),
        ("barrier", Json::from("csw")),
        ("cores", Json::from(BENCH_CORES as u64)),
        ("host", bench::sweep::host_json(1)),
        ("iters", Json::from(iters)),
        ("stagger", Json::from(stagger)),
        ("imbalanced", imb_json),
        ("contended", con_json),
        ("speedup", Json::from(speedup)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_cycle_skip.json");
    std::fs::write(path, json.pretty()).expect("write BENCH_cycle_skip.json");
    eprintln!("[cycle_skip] wrote {path}");
    if !test_mode {
        // The floor was 2.0x when the dense (`--no-skip`) path still
        // ticked every tile's memory system through the monolithic
        // `MemorySystem` maps; the banked tile lanes compressed the
        // dense tick enough (~3x wall-clock on this workload) that the
        // skip-on/skip-off *ratio* narrowed even though both absolute
        // times improved. The gate's job is unchanged: skipping must
        // still clearly pay on the wait-bound shape.
        assert!(
            speedup >= 1.15,
            "cycle skipping must buy >= 1.15x wall-clock on the imbalanced CSW workload, \
             got {speedup:.2}x"
        );
        // The contended workload is never quiescent, so skipping can't
        // win there — but the failure backoff must keep the overhead of
        // probing for skips within the measurement noise floor.
        assert!(
            contended_speedup >= 0.99,
            "cycle skipping must not slow the contended CSW workload below 0.99x, \
             got {contended_speedup:.2}x"
        );
    }

    // Harness samples for trend tracking alongside the other benches.
    let mut g = c.benchmark_group("cycle_skip");
    g.sample_size(10);
    for skip in [true, false] {
        g.bench_with_input(
            BenchmarkId::new("imbalanced_csw", if skip { "skip" } else { "no_skip" }),
            &skip,
            |b, &skip| b.iter(|| measure(&imbalanced, skip).cycles),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
