//! Memory-hierarchy microbenchmarks: L1 hit throughput, remote-miss
//! round trips, invalidation storms, and atomic ping-pong — the costs
//! that make software barriers slow.

use bench::harness::{criterion_group, criterion_main, Criterion};
use sim_base::config::CmpConfig;
use sim_base::CoreId;
use sim_isa::inst::AmoOp;
use sim_mem::{CoreReq, MemorySystem};

fn complete(sys: &mut MemorySystem, core: CoreId) {
    loop {
        if sys.poll(core).is_some() {
            return;
        }
        sys.tick();
    }
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("coherence");
    g.bench_function("l1_hit_load", |b| {
        let mut sys = MemorySystem::new(&CmpConfig::icpp2010_with_cores(4));
        sys.request(CoreId(0), CoreReq::Load { addr: 0 });
        complete(&mut sys, CoreId(0));
        b.iter(|| {
            sys.request(CoreId(0), CoreReq::Load { addr: 0 });
            complete(&mut sys, CoreId(0));
        })
    });
    g.bench_function("remote_l2_hit_load", |b| {
        let mut sys = MemorySystem::new(&CmpConfig::icpp2010_with_cores(32));
        // Warm line 9 into L2 of its home, shared by core 0.
        sys.request(CoreId(0), CoreReq::Load { addr: 9 * 64 });
        complete(&mut sys, CoreId(0));
        let mut flip = 0u64;
        b.iter(|| {
            // Alternate readers so the L1 never keeps it long.
            let core = CoreId::from(1 + (flip % 30) as usize);
            flip += 1;
            sys.request(core, CoreReq::Load { addr: 9 * 64 });
            complete(&mut sys, core);
        })
    });
    g.bench_function("amo_pingpong_2cores", |b| {
        let mut sys = MemorySystem::new(&CmpConfig::icpp2010_with_cores(32));
        let mut turn = 0usize;
        b.iter(|| {
            let core = CoreId::from(if turn.is_multiple_of(2) { 0 } else { 31 });
            turn += 1;
            sys.request(
                core,
                CoreReq::Amo {
                    addr: 0x200,
                    op: AmoOp::Add,
                    operand: 1,
                },
            );
            complete(&mut sys, core);
        })
    });
    g.bench_function("invalidation_storm_31_sharers", |b| {
        let mut sys = MemorySystem::new(&CmpConfig::icpp2010_with_cores(32));
        b.iter(|| {
            for cidx in 0..31 {
                sys.request(CoreId(cidx), CoreReq::Load { addr: 0x300 });
                complete(&mut sys, CoreId(cidx));
            }
            sys.request(
                CoreId(31),
                CoreReq::Store {
                    addr: 0x300,
                    value: 1,
                },
            );
            complete(&mut sys, CoreId(31));
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
