//! Many-core scaling sweep: the Figure-5 GL-vs-software comparison
//! pushed past the paper's 32 cores to 64, 256 and 1024 (the §5 future
//! work this repo's clustered network and scalable directory enable).
//!
//! For every core count the synthetic four-barrier loop runs twice —
//! once on G-line hardware (the flat network up to the transmitter
//! budget, the two-level [`ClusteredBarrierNetwork`] beyond it) and
//! once on the hierarchical software barrier (DSW, a binary combining
//! tree: the strongest software baseline at scale). Three things are
//! checked:
//!
//! * **Figure-5 ordering, host-independent, enforced everywhere**: at
//!   every core count the GL barrier is cheaper per episode than DSW,
//!   and the gap widens with the machine (at 1024 cores DSW must be
//!   ≥ 10x GL per barrier).
//! * **GL flatness, host-independent, enforced everywhere**: per-barrier
//!   GL cost may grow from 32 to 1024 cores only by the clustered
//!   network's extra release latency and spin granularity — bounded at
//!   3x, versus the orders of magnitude software barriers pay.
//! * **Simulator scalability, wall-clock, full runs on multi-core hosts
//!   only**: the host cost of one simulated core-cycle at 1024 cores
//!   must stay within [`COST_RATIO_FLOOR`]x of the 32-core machine —
//!   the O(active) hot paths must not degrade toward O(N²).
//!
//! Results land in `BENCH_scale.json` at the repo root with host
//! provenance, mirroring the other bench outputs.

use std::time::Instant;

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gline_core::{BarrierHw, ClusteredBarrierNetwork};
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_cmp::runtime::BarrierKind;
use sim_cmp::System;
use workloads::synthetic;

/// Core counts swept (32 = the paper's Table 1 machine).
const CORE_COUNTS: [usize; 4] = [32, 64, 256, 1024];

/// Ceiling on host seconds per simulated core-cycle at 1024 cores,
/// relative to the 32-core machine (GL workload).
const COST_RATIO_FLOOR: f64 = 3.0;

/// Ceiling on the growth of GL per-barrier cost from 32 to 1024 cores.
const GL_FLATNESS_FLOOR: f64 = 3.0;

/// Floor on the 1024-core DSW/GL per-barrier ratio.
const DSW_GAP_FLOOR: f64 = 10.0;

/// One finished run at a given core count and barrier kind.
struct Run {
    cycles: u64,
    wall_s: f64,
    per_barrier: f64,
    /// Host seconds to simulate one cycle of one core.
    cost_per_core_cycle: f64,
}

fn run_one(n: usize, kind: BarrierKind, iters: u64, workers: usize) -> Run {
    let w = synthetic::build(n, kind, iters);
    let cfg = CmpConfig::icpp2010_with_cores(n);
    cfg.validate().expect("sweep configs are valid");
    let (cycles, wall_s) = if cfg.needs_clustered_gline() {
        let hw = ClusteredBarrierNetwork::new(cfg.mesh, cfg.gline);
        drive(w.into_system_with_hw(cfg, hw), kind, iters, workers)
    } else {
        drive(w.into_system(cfg), kind, iters, workers)
    };
    Run {
        cycles,
        wall_s,
        per_barrier: synthetic::cycles_per_barrier(cycles, iters),
        cost_per_core_cycle: wall_s / (cycles as f64 * n as f64).max(1.0),
    }
}

fn drive<B: BarrierHw>(
    mut sys: System<B>,
    kind: BarrierKind,
    iters: u64,
    workers: usize,
) -> (u64, f64) {
    let start = Instant::now();
    let cycles = if workers > 1 {
        sys.run_with_workers(20_000_000_000, workers)
    } else {
        sys.run(20_000_000_000)
    }
    .expect("sweep workload completes");
    if kind == BarrierKind::Gl {
        assert_eq!(
            sys.report().gl_barriers,
            iters * synthetic::BARRIERS_PER_ITER,
            "every GL episode must complete in hardware"
        );
    }
    (cycles, start.elapsed().as_secs_f64())
}

/// Min-of-`reps` wall clock; the simulated cycle counts are
/// deterministic, so only the host timing varies.
fn best_of(n: usize, kind: BarrierKind, iters: u64, workers: usize, reps: usize) -> Run {
    let mut best = run_one(n, kind, iters, workers);
    for _ in 1..reps {
        let r = run_one(n, kind, iters, workers);
        assert_eq!(best.cycles, r.cycles, "{n}-core run must be deterministic");
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` (the CI smoke) runs a scaled-down sweep
    // and skips the wall-clock gate; the structural Figure-5 gates are
    // simulated-cycle counts and hold at any scale.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, reps) = if test_mode { (2, 1) } else { (16, 3) };
    let workers = 1; // serial engine: the sweep gates single-thread cost

    let mut entries = Vec::new();
    let mut gl_by_cores = Vec::new();
    let mut dsw_by_cores = Vec::new();
    for &n in &CORE_COUNTS {
        let gl = best_of(n, BarrierKind::Gl, iters, workers, reps);
        let dsw = best_of(n, BarrierKind::Dsw, iters, workers, reps);
        eprintln!(
            "[scale] {n:>4} cores: GL {:>7.1} cyc/barrier ({:.2e} s/core-cycle), \
             DSW {:>9.1} cyc/barrier ({:.2e} s/core-cycle)",
            gl.per_barrier, gl.cost_per_core_cycle, dsw.per_barrier, dsw.cost_per_core_cycle
        );
        entries.push(Json::obj([
            ("cores", Json::from(n as u64)),
            (
                "clustered_gl",
                Json::from(CmpConfig::icpp2010_with_cores(n).needs_clustered_gline()),
            ),
            ("gl_cycles", Json::from(gl.cycles)),
            ("gl_cycles_per_barrier", Json::from(gl.per_barrier)),
            ("gl_wall_s", Json::from(gl.wall_s)),
            ("gl_cost_per_core_cycle", Json::from(gl.cost_per_core_cycle)),
            ("dsw_cycles", Json::from(dsw.cycles)),
            ("dsw_cycles_per_barrier", Json::from(dsw.per_barrier)),
            ("dsw_wall_s", Json::from(dsw.wall_s)),
            (
                "dsw_cost_per_core_cycle",
                Json::from(dsw.cost_per_core_cycle),
            ),
            (
                "dsw_over_gl_per_barrier",
                Json::from(dsw.per_barrier / gl.per_barrier.max(1e-9)),
            ),
        ]));
        gl_by_cores.push((n, gl));
        dsw_by_cores.push((n, dsw));
    }

    let gl32 = &gl_by_cores[0].1;
    let gl1024 = &gl_by_cores.last().unwrap().1;
    let dsw1024 = &dsw_by_cores.last().unwrap().1;
    let gl_growth = gl1024.per_barrier / gl32.per_barrier.max(1e-9);
    let dsw_gap = dsw1024.per_barrier / gl1024.per_barrier.max(1e-9);
    let cost_ratio = gl1024.cost_per_core_cycle / gl32.cost_per_core_cycle.max(f64::MIN_POSITIVE);
    let enforce_cost = !test_mode;
    eprintln!(
        "[scale] GL 32→1024 per-barrier growth {gl_growth:.2}x; 1024-core DSW/GL gap \
         {dsw_gap:.1}x; per-core-cycle host cost ratio {cost_ratio:.2}x"
    );

    let json = Json::obj([
        ("benchmark", Json::from("many-core scaling sweep")),
        ("host", bench::sweep::host_json(workers)),
        ("iters", Json::from(iters)),
        (
            "barriers_per_run",
            Json::from(iters * synthetic::BARRIERS_PER_ITER),
        ),
        ("points", Json::arr(entries)),
        ("gl_per_barrier_growth_32_to_1024", Json::from(gl_growth)),
        ("gl_flatness_floor", Json::from(GL_FLATNESS_FLOOR)),
        ("dsw_over_gl_at_1024", Json::from(dsw_gap)),
        ("dsw_gap_floor", Json::from(DSW_GAP_FLOOR)),
        ("cost_per_core_cycle_ratio", Json::from(cost_ratio)),
        ("cost_ratio_floor", Json::from(COST_RATIO_FLOOR)),
        ("cost_ratio_enforced", Json::from(enforce_cost)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    std::fs::write(path, json.pretty()).expect("write BENCH_scale.json");
    eprintln!("[scale] wrote {path}");

    assert!(
        gl_growth <= GL_FLATNESS_FLOOR,
        "GL per-barrier cost must stay near-flat from 32 to 1024 cores \
         (<= {GL_FLATNESS_FLOOR}x), got {gl_growth:.2}x"
    );
    assert!(
        dsw_gap >= DSW_GAP_FLOOR,
        "at 1024 cores the hierarchical software barrier must cost >= \
         {DSW_GAP_FLOOR}x the GL barrier per episode, got {dsw_gap:.1}x"
    );
    for w in gl_by_cores.windows(2) {
        let ((a_n, a), (b_n, b)) = (&w[0], &w[1]);
        assert!(
            b.per_barrier <= a.per_barrier * GL_FLATNESS_FLOOR,
            "GL per-barrier cost jumped {a_n}→{b_n} cores: {} → {}",
            a.per_barrier,
            b.per_barrier
        );
    }
    if enforce_cost {
        assert!(
            cost_ratio <= COST_RATIO_FLOOR,
            "simulating one core-cycle of the 1024-core machine must cost <= \
             {COST_RATIO_FLOOR}x the 32-core machine, got {cost_ratio:.2}x \
             (an O(N) hot path is back)"
        );
    }

    // Harness samples for trend tracking alongside the other benches.
    let mut g = c.benchmark_group("scale");
    g.sample_size(10);
    for &n in &[32usize, 256] {
        g.bench_with_input(BenchmarkId::new("gl_sweep", n), &n, |b, &n| {
            b.iter(|| run_one(n, BarrierKind::Gl, 2, 1).cycles)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
