//! Whole-benchmark runs under DSW vs GL (the Figure 6/7 experiments),
//! measured as host wall-time; the simulated cycle ratios are printed so
//! the paper's reductions can be read off a `cargo bench` run.

use bench::experiments::{benchmarks, run_workload, BENCH_CORES};
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::Scale;
use sim_cmp::runtime::BarrierKind;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_fig7");
    g.sample_size(10);
    for (name, build) in benchmarks(Scale::Quick) {
        let dsw = run_workload(&build(BENCH_CORES, BarrierKind::Dsw), BENCH_CORES);
        let gl = run_workload(&build(BENCH_CORES, BarrierKind::Gl), BENCH_CORES);
        eprintln!(
            "[fig6/7] {name:<14} GL/DSW time {:.3}  traffic {:.3}",
            gl.normalized_time(&dsw),
            gl.normalized_traffic(&dsw)
        );
        for kind in [BarrierKind::Dsw, BarrierKind::Gl] {
            g.bench_with_input(
                BenchmarkId::new(name.replace(' ', "_"), kind.label()),
                &kind,
                |b, &kind| b.iter(|| run_workload(&build(BENCH_CORES, kind), BENCH_CORES).cycles),
            );
        }
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
