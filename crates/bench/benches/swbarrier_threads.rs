//! Real-thread barrier algorithms on the host machine: ns/episode for
//! each `swbarrier` algorithm — the commodity-hardware analogue of the
//! paper's Figure 5 (minus the G-lines your CPU doesn't have).

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use swbarrier::{
    CentralizedBarrier, CombiningTreeBarrier, DisseminationBarrier, StaticTreeBarrier,
    ThreadBarrier, TournamentBarrier,
};

/// Measures whole barrier episodes: worker threads loop on `wait` while
/// the measured thread participates for `iters` episodes.
fn episodes(bar: Arc<dyn ThreadBarrier>, iters: u64) {
    let n = bar.num_threads();
    let stop = Arc::new(AtomicBool::new(false));
    let workers: Vec<_> = (1..n)
        .map(|tid| {
            let bar = Arc::clone(&bar);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    bar.wait(tid);
                }
            })
        })
        .collect();
    for _ in 0..iters {
        bar.wait(0);
    }
    stop.store(true, Ordering::Relaxed);
    // One more episode so workers observe the flag and exit.
    bar.wait(0);
    for w in workers {
        w.join().unwrap();
    }
}

fn bench(c: &mut Criterion) {
    let n = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(8);
    let mut g = c.benchmark_group("swbarrier_threads");
    g.sample_size(10);
    type Factory = Box<dyn Fn() -> Box<dyn ThreadBarrier>>;
    let algos: Vec<(&str, Factory)> = vec![
        (
            "centralized",
            Box::new(move || Box::new(CentralizedBarrier::new(n))),
        ),
        (
            "combining2",
            Box::new(move || Box::new(CombiningTreeBarrier::binary(n))),
        ),
        (
            "combining4",
            Box::new(move || Box::new(CombiningTreeBarrier::with_arity(n, 4))),
        ),
        (
            "dissemination",
            Box::new(move || Box::new(DisseminationBarrier::new(n))),
        ),
        (
            "tournament",
            Box::new(move || Box::new(TournamentBarrier::new(n))),
        ),
        (
            "static_tree",
            Box::new(move || Box::new(StaticTreeBarrier::new(n))),
        ),
    ];
    for (name, make) in algos {
        g.bench_with_input(BenchmarkId::new(name, n), &n, |b, _| {
            b.iter(|| episodes(Arc::from(make()), 2000));
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
