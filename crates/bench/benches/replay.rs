//! Trace-driven replay vs exec-mode throughput.
//!
//! For each synthetic barrier workload the bench records a trace set
//! (untimed), then times an exec-mode run against a replay of the
//! recording under identical scheduler defaults. The reports must be
//! bit-identical (the lockstep contract); the wall-clock ratio is the
//! win from driving the memory hierarchy and barrier network straight
//! from the compressed op stream instead of fetching, decoding and
//! interpreting every issue group. Results land in `BENCH_replay.json`
//! at the repo root with host provenance; the CSW floor is gated so the
//! replay path cannot silently rot back to exec speed.

use std::time::Instant;

use bench::experiments::BENCH_CORES;
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use bench::sweep::{default_workers, host_json};
use bench::validate::compare_reports;
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_cmp::System;
use sim_trace::TraceSet;
use workloads::common::Workload;
use workloads::synthetic;

/// Records `w` on the dense serial engine (untimed — recording is a
/// one-off capture, not the measured path).
fn record(w: &Workload) -> TraceSet {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    let (_, traces) = sys
        .run_recorded(20_000_000_000)
        .expect("recording completes");
    TraceSet {
        cores: traces,
        pokes: w.pokes.clone(),
        workload: w.name.clone(),
    }
}

struct Timed {
    wall_s: f64,
    cycles: u64,
}

fn time_exec(w: &Workload) -> (Timed, sim_cmp::SystemReport) {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    let start = Instant::now();
    let cycles = sys.run(20_000_000_000).expect("exec run completes");
    (
        Timed {
            wall_s: start.elapsed().as_secs_f64(),
            cycles,
        },
        sys.report(),
    )
}

fn time_replay(w: &Workload, set: &TraceSet) -> (Timed, sim_cmp::SystemReport) {
    let mut sys = System::replay(CmpConfig::icpp2010_with_cores(w.progs.len()), set);
    let start = Instant::now();
    let cycles = sys.run(20_000_000_000).expect("replay completes");
    (
        Timed {
            wall_s: start.elapsed().as_secs_f64(),
            cycles,
        },
        sys.report(),
    )
}

/// Best replay-vs-exec wall-clock ratio over `rounds` paired runs.
fn best_speedup(w: &Workload, set: &TraceSet, rounds: u32) -> (f64, Json) {
    let mut best = 0.0f64;
    let mut json = Json::Null;
    for _ in 0..rounds {
        let (exec, exec_rep) = time_exec(w);
        let (replay, replay_rep) = time_replay(w, set);
        compare_reports(&exec_rep, &replay_rep)
            .unwrap_or_else(|d| panic!("{}: replay diverged from exec: {d}", w.name));
        let speedup = exec.wall_s / replay.wall_s.max(1e-9);
        if speedup > best {
            best = speedup;
            json = Json::obj([
                ("cycles", Json::from(exec.cycles)),
                ("exec_wall_s", Json::from(exec.wall_s)),
                ("replay_wall_s", Json::from(replay.wall_s)),
                (
                    "exec_ticks_per_s",
                    Json::from(exec.cycles as f64 / exec.wall_s.max(1e-9)),
                ),
                (
                    "replay_ticks_per_s",
                    Json::from(replay.cycles as f64 / replay.wall_s.max(1e-9)),
                ),
                ("speedup", Json::from(speedup)),
            ]);
        }
    }
    (best, json)
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` is the CI smoke pass: scaled-down
    // workloads, no speedup floor (the lockstep assertion still runs).
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, stagger, rounds) = if test_mode { (1, 200, 1) } else { (6, 1000, 3) };
    let matrix = synthetic::barrier_matrix(BENCH_CORES, iters, stagger);

    let mut entries = Vec::new();
    let mut csw_speedup = 0.0f64;
    for (name, w) in &matrix {
        let set = record(w);
        let (speedup, json) = best_speedup(w, &set, rounds);
        eprintln!("[replay] {name}: replay/exec speedup {speedup:.2}x (best of {rounds})");
        if name.contains("CSW") {
            csw_speedup = csw_speedup.max(speedup);
        }
        entries.push(Json::obj([("name", Json::from(*name)), ("best", json)]));
    }

    let workers = default_workers();
    let json = Json::obj([
        ("benchmark", Json::from("trace-driven replay vs exec")),
        ("cores", Json::from(BENCH_CORES as u64)),
        ("host", host_json(workers)),
        ("iters", Json::from(iters)),
        ("stagger", Json::from(stagger)),
        ("rounds", Json::from(rounds as u64)),
        ("workloads", Json::arr(entries)),
        ("best_csw_replay_speedup", Json::from(csw_speedup)),
    ]);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_replay.json");
    std::fs::write(path, json.pretty()).expect("write BENCH_replay.json");
    eprintln!("[replay] wrote {path}");
    if !test_mode {
        assert!(
            csw_speedup >= 1.1,
            "trace-driven replay must beat exec by >= 1.1x wall-clock on a CSW \
             workload (best of {rounds}), got {csw_speedup:.2}x"
        );
    }

    // Harness samples for trend tracking: exec vs replay on the
    // contended CSW workload.
    let contended = &matrix
        .iter()
        .find(|(n, _)| *n == "contended CSW")
        .expect("matrix has contended CSW")
        .1;
    let set = record(contended);
    let mut g = c.benchmark_group("replay");
    g.sample_size(10);
    g.bench_with_input(
        BenchmarkId::new("contended_csw", "exec"),
        contended,
        |b, w| b.iter(|| time_exec(w).0.cycles),
    );
    g.bench_with_input(
        BenchmarkId::new("contended_csw", "replay"),
        &(contended, &set),
        |b, (w, set)| b.iter(|| time_replay(w, set).0.cycles),
    );
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
