//! Ablations of the design choices called out in DESIGN.md. These are
//! printed studies (simulated-cycle results) wrapped in a Criterion
//! harness so `cargo bench` runs them; the interesting output is the
//! eprintln'd tables.
//!
//! 1. **G-line latency** — the paper's "longer latency G-lines"
//!    alternative for big meshes: barrier latency vs. line latency.
//! 2. **Space vs. time multiplexing** — wires vs. latency for multiple
//!    concurrent barriers (the paper's future work, both halves).
//! 3. **Mesh aspect ratio** — the G-line count formula 2×(rows+1) makes
//!    wide meshes cheaper in wires than tall ones at equal core count.
//! 4. **NoC link width** — how much of the software barrier's cost is
//!    serialization vs. protocol round trips.
//! 5. **Energy** — GL vs DSW interconnect energy on the synthetic
//!    benchmark (the paper's §5 claim).

use bench::harness::{criterion_group, criterion_main, Criterion};
use gline_core::{BarrierHw, BarrierNetwork, TdmBarrierNetwork};
use sim_base::config::{CmpConfig, GlineConfig};
use sim_base::Mesh2D;
use sim_cmp::runtime::BarrierKind;
use sim_cmp::EnergyModel;
use workloads::synthetic;

fn ablation_gline_latency() {
    eprintln!("\n[ablation 1] barrier latency vs G-line latency (10x10 mesh, repeatered lines)");
    for lat in [1u32, 2, 3, 4] {
        // Budget relaxed so only the latency varies across the sweep.
        let cfg = GlineConfig {
            line_latency: lat,
            max_transmitters: 9,
            ..GlineConfig::default()
        };
        let mesh = Mesh2D::new(10, 10);
        let mut net = BarrierNetwork::new(mesh, cfg);
        let cycles = net.run_single_barrier(&vec![0; 100]);
        eprintln!("  line latency {lat} cycles → barrier {cycles} cycles");
    }
}

fn ablation_space_vs_time() {
    eprintln!("\n[ablation 2] 4 concurrent barriers on a 4x8 mesh: wires vs latency");
    let mesh = Mesh2D::new(4, 8);
    let spatial = BarrierNetwork::new(
        mesh,
        GlineConfig {
            contexts: 4,
            ..GlineConfig::default()
        },
    );
    let mut one = BarrierNetwork::new(
        mesh,
        GlineConfig {
            contexts: 4,
            ..GlineConfig::default()
        },
    );
    let lat_spatial = one.run_single_barrier(&vec![0; 32]);
    eprintln!(
        "  space-multiplexed: {} G-lines, {} cycles/barrier",
        spatial.num_glines(),
        lat_spatial
    );
    let mut tdm = TdmBarrierNetwork::new(mesh, GlineConfig::default(), 4);
    let lat_tdm = tdm.run_single_barrier(&vec![0; 32]);
    eprintln!(
        "  time-multiplexed:  {} G-lines, {} cycles/barrier",
        tdm.num_glines(),
        lat_tdm
    );
}

fn ablation_aspect_ratio() {
    eprintln!("\n[ablation 3] 32 cores, mesh aspect ratio: wires and latency");
    for (r, c) in [(4u16, 8u16), (8, 4), (2, 16), (16, 2)] {
        let mesh = Mesh2D::new(r, c);
        let cfg = GlineConfig {
            max_transmitters: 15,
            ..GlineConfig::default()
        };
        let mut net = BarrierNetwork::new(mesh, cfg);
        let lat = net.run_single_barrier(&vec![0; 32]);
        eprintln!(
            "  {r:>2}x{c:<2}: {:>2} G-lines, {lat} cycles (budget relaxed to 15 tx/line)",
            net.num_glines()
        );
    }
}

fn ablation_link_width() {
    eprintln!("\n[ablation 4] DSW barrier cost vs NoC link width (16 cores, 10 barriers)");
    for link in [19u32, 38, 75] {
        let mut cfg = CmpConfig::icpp2010_with_cores(16);
        cfg.noc.link_bytes = link;
        let w = synthetic::build(16, BarrierKind::Dsw, 10);
        let mut sys = w.into_system(cfg);
        let cycles = sys.run(1_000_000_000).unwrap();
        eprintln!(
            "  {link:>2}-byte links: {:>7.1} cycles/barrier",
            synthetic::cycles_per_barrier(cycles, 10)
        );
    }
}

fn ablation_issue_width() {
    eprintln!("\n[ablation 6] core issue width: Kernel 2 execution time (8 cores, GL)");
    for width in [1u8, 2, 4] {
        let mut cfg = CmpConfig::icpp2010_with_cores(8);
        cfg.core.issue_width = width;
        let w = workloads::livermore::kernel2(
            8,
            BarrierKind::Gl,
            workloads::livermore::KernelParams::scaled(512, 10),
        );
        let mut sys = w.into_system(cfg);
        let cycles = sys.run(1_000_000_000).unwrap();
        eprintln!("  {width}-wide issue: {cycles} cycles");
    }
}

fn ablation_energy() {
    eprintln!("\n[ablation 5] interconnect energy, 32 cores, 20 synthetic barriers");
    let model = EnergyModel::nominal_45nm();
    for kind in BarrierKind::ALL {
        let w = synthetic::build(32, kind, 5);
        let mut sys = w.into_system(CmpConfig::icpp2010());
        sys.run(1_000_000_000).unwrap();
        let e = model.estimate(&sys.report());
        eprintln!(
            "  {:<4} NoC {:>12.1} nJ + G-lines {:>8.3} nJ = {:>12.1} nJ",
            kind.label(),
            e.noc_nj,
            e.gline_nj,
            e.interconnect_nj()
        );
    }
}

fn bench(c: &mut Criterion) {
    ablation_gline_latency();
    ablation_space_vs_time();
    ablation_aspect_ratio();
    ablation_link_width();
    ablation_issue_width();
    ablation_energy();
    // A token Criterion measurement so the harness reports something.
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("flat_barrier_4x8", |b| {
        let mut net = BarrierNetwork::new(Mesh2D::new(4, 8), GlineConfig::default());
        let arrivals = vec![0u64; 32];
        b.iter(|| net.run_single_barrier(&arrivals))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
