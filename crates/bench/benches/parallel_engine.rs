//! Wall-clock scaling of the sharded-tick parallel engine
//! (`DESIGN.md` §11).
//!
//! Runs the compute-bearing synthetic matrix (GL/CSW/DSW × contended /
//! imbalanced — [`synthetic::compute_matrix`], whose cores are live
//! almost every cycle, so the compute phase has real work to shard) on
//! the 32-core machine with the serial engine and with 2/4/8 worker
//! threads. Every parallel run must be **bit-identical** to the serial
//! one — same `SystemReport`, same skip and scheduler statistics — and
//! the wall-clock ratio is the engine's win. The headline number is
//! contended CSW at 4 workers, the coherence-bound regime where
//! neither cycle skipping nor core parking can help, leaving raw
//! per-cycle work as the only thing left to parallelize.
//!
//! Results land in `BENCH_parallel_engine.json` at the repo root. The
//! ≥ 1.7x speedup floor is only enforced on hosts that actually have
//! ≥ 4 cores (and never in the CI smoke's `--test` mode); the JSON's
//! `host` and `speedup_floor_enforced` fields record what this run
//! could and did check.

use std::time::Instant;

use bench::experiments::BENCH_CORES;
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_base::shard::available_workers;
use sim_cmp::{CoreSchedStats, SkipStats, SystemReport};
use workloads::common::Workload;
use workloads::synthetic;

/// Worker counts measured per matrix entry (1 = the serial engine).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One timed end-to-end run at a given worker count.
struct Run {
    wall_s: f64,
    cycles: u64,
    ticks_per_s: f64,
    report: SystemReport,
    skip: SkipStats,
    sched: CoreSchedStats,
}

fn measure(w: &Workload, workers: usize) -> Run {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    let start = Instant::now();
    let cycles = if workers == 1 {
        sys.run(20_000_000_000).expect("workload completes")
    } else {
        sys.run_with_workers(20_000_000_000, workers)
            .expect("workload completes")
    };
    let wall_s = start.elapsed().as_secs_f64();
    Run {
        wall_s,
        cycles,
        ticks_per_s: cycles as f64 / wall_s.max(1e-9),
        report: sys.report(),
        skip: sys.skip_stats(),
        sched: sys.core_sched_stats(),
    }
}

/// Min-of-`reps` measurement (host noise only ever adds wall-clock).
fn best_of(w: &Workload, workers: usize, reps: usize) -> Run {
    let mut best = measure(w, workers);
    for _ in 1..reps {
        let r = measure(w, workers);
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` (the CI smoke pass) runs scaled-down
    // workloads; a real `cargo bench` uses the full sizes and — on a
    // host with enough cores — enforces the speedup floor.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, work, stagger, reps) = if test_mode {
        (1, 50, 200, 1)
    } else {
        (4, 2000, 1000, 3)
    };
    let matrix = synthetic::compute_matrix(BENCH_CORES, iters, work, stagger);

    let mut entries = Vec::new();
    let mut headline_speedup = 0.0; // contended CSW at 4 workers
    for (name, w) in &matrix {
        best_of(w, 1, 1); // warm-up
        let serial = best_of(w, 1, reps);
        eprintln!(
            "[parallel_engine] {name}: {} cycles; serial {:>9.2} ms ({:.2e} ticks/s)",
            serial.cycles,
            serial.wall_s * 1e3,
            serial.ticks_per_s
        );
        let mut points = vec![Json::obj([
            ("workers", Json::from(1u64)),
            ("wall_s", Json::from(serial.wall_s)),
            ("ticks_per_s", Json::from(serial.ticks_per_s)),
            ("speedup", Json::from(1.0)),
        ])];
        for &workers in &WORKER_COUNTS[1..] {
            let r = best_of(w, workers, reps);
            assert_eq!(serial.cycles, r.cycles, "{name}@{workers}: cycle count");
            assert_eq!(serial.report, r.report, "{name}@{workers}: report");
            assert_eq!(serial.skip, r.skip, "{name}@{workers}: skip stats");
            assert_eq!(serial.sched, r.sched, "{name}@{workers}: sched stats");
            let speedup = serial.wall_s / r.wall_s.max(1e-9);
            eprintln!(
                "[parallel_engine]   {workers} workers: {:>9.2} ms ({:.2e} ticks/s, {speedup:.2}x)",
                r.wall_s * 1e3,
                r.ticks_per_s
            );
            if *name == "contended CSW" && workers == 4 {
                headline_speedup = speedup;
            }
            points.push(Json::obj([
                ("workers", Json::from(workers as u64)),
                ("wall_s", Json::from(r.wall_s)),
                ("ticks_per_s", Json::from(r.ticks_per_s)),
                ("speedup", Json::from(speedup)),
            ]));
        }
        entries.push(Json::obj([
            ("name", Json::from(*name)),
            ("cycles", Json::from(serial.cycles)),
            ("points", Json::arr(points)),
        ]));
    }

    // The floor only means something on a host that can actually run 4
    // workers in parallel; on smaller hosts the bit-identity checks
    // above still ran, and the JSON records that the floor did not.
    let enforce_floor = !test_mode && available_workers() >= 4;
    let json = Json::obj([
        ("benchmark", Json::from("synthetic compute matrix")),
        ("cores", Json::from(BENCH_CORES as u64)),
        (
            "host",
            bench::sweep::host_json(*WORKER_COUNTS.last().unwrap()),
        ),
        ("iters", Json::from(iters)),
        ("work", Json::from(work as u64)),
        ("stagger", Json::from(stagger as u64)),
        ("workloads", Json::arr(entries)),
        ("contended_csw_speedup_at_4", Json::from(headline_speedup)),
        ("speedup_floor_enforced", Json::from(enforce_floor)),
    ]);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_engine.json"
    );
    std::fs::write(path, json.pretty()).expect("write BENCH_parallel_engine.json");
    eprintln!("[parallel_engine] wrote {path}");
    if enforce_floor {
        assert!(
            headline_speedup >= 1.7,
            "the sharded-tick engine must buy >= 1.7x wall-clock at 4 workers on the \
             contended CSW workload, got {headline_speedup:.2}x"
        );
    }

    // Harness samples for trend tracking alongside the other benches.
    let contended = &matrix
        .iter()
        .find(|(n, _)| *n == "contended CSW")
        .expect("matrix has contended CSW")
        .1;
    let mut g = c.benchmark_group("parallel_engine");
    g.sample_size(10);
    for workers in [1usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("contended_csw", format!("{workers}w")),
            &workers,
            |b, &workers| b.iter(|| measure(contended, workers).cycles),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
