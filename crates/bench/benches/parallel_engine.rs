//! Wall-clock scaling and synchronization cost of the parallel engine
//! (`DESIGN.md` §11 per-cycle protocol, §13 epoch protocol).
//!
//! Runs the compute-bearing synthetic matrix (GL/CSW/DSW × contended /
//! imbalanced — [`synthetic::compute_matrix`], whose cores are live
//! almost every cycle, so the compute phase has real work to shard) on
//! the 32-core machine with the serial engine, with 2/4/8 worker
//! threads under the epoch-batched protocol, and with 4 workers under
//! the legacy per-cycle protocol. Every parallel run must be
//! **bit-identical** to the serial one — same `SystemReport`, same
//! skip and scheduler statistics — and two numbers are gated:
//!
//! * **Barrier crossings per kilocycle** (host-independent, enforced
//!   everywhere including the CI smoke): on contended CSW at 4 workers
//!   the epoch protocol must cross its rendezvous barrier ≥ 10x less
//!   often per simulated kilocycle than the per-cycle protocol. This
//!   is the structural win — it holds on a 1-core host because it
//!   counts protocol events, not seconds.
//! * **Wall-clock speedup** ≥ 1.7x at 4 workers on contended CSW, only
//!   enforced on hosts that actually have ≥ 4 cores and never in the
//!   CI smoke's `--test` mode.
//!
//! Results land in `BENCH_parallel_engine.json` at the repo root; its
//! `host`, `speedup_floor_enforced`, and `crossings_floor_enforced`
//! fields record what this run could and did check, so a 1-core run
//! can't silently pass the wall-clock floor.

use std::time::Instant;

use bench::experiments::BENCH_CORES;
use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_base::config::CmpConfig;
use sim_base::json::Json;
use sim_base::shard::available_workers;
use sim_cmp::{CoreSchedStats, SkipStats, SyncProtocol, SyncStats, SystemReport};
use workloads::common::Workload;
use workloads::synthetic;

/// Worker counts measured per matrix entry (1 = the serial engine).
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// The old-vs-new protocol comparison point: both protocols at this
/// worker count, on every matrix entry.
const COMPARE_WORKERS: usize = 4;

/// Host-independent floor on the contended-CSW crossings drop.
const CROSSINGS_DROP_FLOOR: f64 = 10.0;

/// One timed end-to-end run at a given worker count and protocol.
struct Run {
    wall_s: f64,
    cycles: u64,
    ticks_per_s: f64,
    report: SystemReport,
    skip: SkipStats,
    sched: CoreSchedStats,
    sync: SyncStats,
}

fn measure(w: &Workload, workers: usize, proto: SyncProtocol) -> Run {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(w.progs.len()));
    sys.set_sync_protocol(proto);
    let start = Instant::now();
    let cycles = if workers == 1 {
        sys.run(20_000_000_000).expect("workload completes")
    } else {
        sys.run_with_workers(20_000_000_000, workers)
            .expect("workload completes")
    };
    let wall_s = start.elapsed().as_secs_f64();
    Run {
        wall_s,
        cycles,
        ticks_per_s: cycles as f64 / wall_s.max(1e-9),
        report: sys.report(),
        skip: sys.skip_stats(),
        sched: sys.core_sched_stats(),
        sync: sys.sync_stats(),
    }
}

/// Min-of-`reps` measurement (host noise only ever adds wall-clock).
/// Synchronization statistics are deterministic across reps (modulo
/// wakeups), so taking them from the fastest rep loses nothing.
fn best_of(w: &Workload, workers: usize, proto: SyncProtocol, reps: usize) -> Run {
    let mut best = measure(w, workers, proto);
    for _ in 1..reps {
        let r = measure(w, workers, proto);
        if r.wall_s < best.wall_s {
            best = r;
        }
    }
    best
}

/// Asserts the parallel run `r` is bit-identical to the serial run.
fn assert_identical(name: &str, tag: &str, serial: &Run, r: &Run) {
    assert_eq!(serial.cycles, r.cycles, "{name}@{tag}: cycle count");
    assert_eq!(serial.report, r.report, "{name}@{tag}: report");
    assert_eq!(serial.skip, r.skip, "{name}@{tag}: skip stats");
    assert_eq!(serial.sched, r.sched, "{name}@{tag}: sched stats");
}

/// One JSON point: protocol, workers, wall-clock, and sync-cost shape.
fn point(protocol: &str, workers: usize, speedup: f64, r: &Run) -> Json {
    Json::obj([
        ("protocol", Json::from(protocol)),
        ("workers", Json::from(workers as u64)),
        ("wall_s", Json::from(r.wall_s)),
        ("ticks_per_s", Json::from(r.ticks_per_s)),
        ("speedup", Json::from(speedup)),
        (
            "crossings_per_kcycle",
            Json::from(r.sync.crossings_per_kilocycle()),
        ),
        ("epochs", Json::from(r.sync.epochs)),
        ("mean_epoch_len", Json::from(r.sync.mean_epoch_len())),
        (
            "shard_epochs_skipped",
            Json::from(r.sync.shard_epochs_skipped),
        ),
    ])
}

fn bench(c: &mut Criterion) {
    // `cargo bench -- --test` (the CI smoke pass) runs scaled-down
    // workloads; a real `cargo bench` uses the full sizes and — on a
    // host with enough cores — enforces the wall-clock speedup floor.
    // The crossings-drop floor is enforced in both modes: it counts
    // simulated-protocol events, so workload scale and host core count
    // don't excuse it.
    let test_mode = std::env::args().any(|a| a == "--test");
    let (iters, work, stagger, reps) = if test_mode {
        (1, 300, 200, 1)
    } else {
        (4, 2000, 1000, 3)
    };
    let matrix = synthetic::compute_matrix(BENCH_CORES, iters, work, stagger);

    let mut entries = Vec::new();
    let mut headline_speedup = 0.0; // contended CSW, epoch @ 4 workers
    let mut headline_drop = 0.0; // contended CSW crossings drop @ 4 workers
    for (name, w) in &matrix {
        best_of(w, 1, SyncProtocol::Epoch, 1); // warm-up
        let serial = best_of(w, 1, SyncProtocol::Epoch, reps);
        eprintln!(
            "[parallel_engine] {name}: {} cycles; serial {:>9.2} ms ({:.2e} ticks/s)",
            serial.cycles,
            serial.wall_s * 1e3,
            serial.ticks_per_s
        );
        let mut points = vec![point("serial", 1, 1.0, &serial)];
        let mut epoch_at_compare: Option<Run> = None;
        for &workers in &WORKER_COUNTS[1..] {
            let r = best_of(w, workers, SyncProtocol::Epoch, reps);
            assert_identical(name, &format!("{workers}w epoch"), &serial, &r);
            let speedup = serial.wall_s / r.wall_s.max(1e-9);
            eprintln!(
                "[parallel_engine]   epoch     {workers}w: {:>9.2} ms ({speedup:.2}x), \
                 {:.1} crossings/kcycle, mean epoch {:.1} cycles",
                r.wall_s * 1e3,
                r.sync.crossings_per_kilocycle(),
                r.sync.mean_epoch_len()
            );
            if *name == "contended CSW" && workers == COMPARE_WORKERS {
                headline_speedup = speedup;
            }
            points.push(point("epoch", workers, speedup, &r));
            if workers == COMPARE_WORKERS {
                epoch_at_compare = Some(r);
            }
        }

        // The old protocol at the comparison point: still bit-identical,
        // and the denominator of the crossings-drop gate.
        let pc = best_of(w, COMPARE_WORKERS, SyncProtocol::PerCycle, reps);
        assert_identical(name, "4w per-cycle", &serial, &pc);
        let pc_speedup = serial.wall_s / pc.wall_s.max(1e-9);
        let epoch = epoch_at_compare.expect("compare point measured");
        let drop = pc.sync.crossings_per_kilocycle()
            / epoch.sync.crossings_per_kilocycle().max(f64::MIN_POSITIVE);
        eprintln!(
            "[parallel_engine]   per-cycle {COMPARE_WORKERS}w: {:>9.2} ms ({pc_speedup:.2}x), \
             {:.1} crossings/kcycle — epoch drops crossings {drop:.1}x",
            pc.wall_s * 1e3,
            pc.sync.crossings_per_kilocycle()
        );
        if *name == "contended CSW" {
            headline_drop = drop;
        }
        points.push(point("per-cycle", COMPARE_WORKERS, pc_speedup, &pc));

        entries.push(Json::obj([
            ("name", Json::from(*name)),
            ("cycles", Json::from(serial.cycles)),
            ("crossings_drop_at_4", Json::from(drop)),
            ("points", Json::arr(points)),
        ]));
    }

    // The wall-clock floor only means something on a host that can
    // actually run 4 workers in parallel; on smaller hosts the
    // bit-identity checks above still ran, and the JSON records that
    // the floor did not. The crossings floor is host-independent and
    // always enforced.
    let enforce_floor = !test_mode && available_workers() >= 4;
    let json = Json::obj([
        ("benchmark", Json::from("synthetic compute matrix")),
        ("cores", Json::from(BENCH_CORES as u64)),
        (
            "host",
            bench::sweep::host_json(*WORKER_COUNTS.last().unwrap()),
        ),
        ("iters", Json::from(iters)),
        ("work", Json::from(work as u64)),
        ("stagger", Json::from(stagger as u64)),
        ("workloads", Json::arr(entries)),
        ("contended_csw_speedup_at_4", Json::from(headline_speedup)),
        ("speedup_floor", Json::from(1.7)),
        ("speedup_floor_enforced", Json::from(enforce_floor)),
        (
            "contended_csw_crossings_drop_at_4",
            Json::from(headline_drop),
        ),
        ("crossings_floor", Json::from(CROSSINGS_DROP_FLOOR)),
        ("crossings_floor_enforced", Json::from(true)),
    ]);
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_parallel_engine.json"
    );
    std::fs::write(path, json.pretty()).expect("write BENCH_parallel_engine.json");
    eprintln!("[parallel_engine] wrote {path}");
    assert!(
        headline_drop >= CROSSINGS_DROP_FLOOR,
        "the epoch protocol must cut barrier crossings per kilocycle by >= \
         {CROSSINGS_DROP_FLOOR}x on contended CSW at {COMPARE_WORKERS} workers, \
         got {headline_drop:.2}x"
    );
    if enforce_floor {
        assert!(
            headline_speedup >= 1.7,
            "the epoch engine must buy >= 1.7x wall-clock at 4 workers on the \
             contended CSW workload, got {headline_speedup:.2}x"
        );
    }

    // Harness samples for trend tracking alongside the other benches.
    let contended = &matrix
        .iter()
        .find(|(n, _)| *n == "contended CSW")
        .expect("matrix has contended CSW")
        .1;
    let mut g = c.benchmark_group("parallel_engine");
    g.sample_size(10);
    for (tag, workers, proto) in [
        ("1w", 1usize, SyncProtocol::Epoch),
        ("4w-epoch", 4, SyncProtocol::Epoch),
        ("4w-per-cycle", 4, SyncProtocol::PerCycle),
    ] {
        g.bench_with_input(
            BenchmarkId::new("contended_csw", tag),
            &(workers, proto),
            |b, &(workers, proto)| b.iter(|| measure(contended, workers, proto).cycles),
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
