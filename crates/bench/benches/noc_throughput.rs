//! NoC microbenchmarks: uniform-random traffic drain time and idle tick
//! overhead (the fast path matters because the full-system simulator
//! ticks the NoC every cycle).

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sim_base::config::NocConfig;
use sim_base::rng::SplitMix64;
use sim_base::stats::MsgClass;
use sim_base::{CoreId, Mesh2D};
use sim_noc::{Message, Noc};

fn drain_uniform(n_msgs: usize) -> u64 {
    let mesh = Mesh2D::new(4, 8);
    let mut noc: Noc<u32> = Noc::new(mesh, NocConfig::default());
    let mut rng = SplitMix64::new(42);
    for i in 0..n_msgs {
        let src = rng.next_below(32) as usize;
        let mut dst = rng.next_below(32) as usize;
        if dst == src {
            dst = (dst + 1) % 32;
        }
        let class = MsgClass::ALL[i % 3];
        noc.send(Message {
            src: CoreId::from(src),
            dst: CoreId::from(dst),
            class,
            payload_bytes: if i % 2 == 0 { 64 } else { 0 },
            payload: i as u32,
        });
    }
    while !noc.is_idle() {
        noc.tick();
    }
    for t in 0..32 {
        while noc.recv(CoreId(t)).is_some() {}
    }
    noc.now()
}

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("noc");
    for &msgs in &[32usize, 256, 1024] {
        g.bench_with_input(
            BenchmarkId::new("uniform_drain", msgs),
            &msgs,
            |b, &msgs| b.iter(|| drain_uniform(msgs)),
        );
    }
    g.bench_function("idle_tick", |b| {
        let mut noc: Noc<u32> = Noc::new(Mesh2D::new(4, 8), NocConfig::default());
        b.iter(|| {
            for _ in 0..1000 {
                noc.tick();
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
