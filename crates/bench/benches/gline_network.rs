//! Microbenchmarks of the G-line barrier network model itself: how fast
//! the simulator can turn barrier episodes, flat vs clustered, and with
//! multiple contexts.

use bench::harness::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gline_core::{BarrierHw, BarrierNetwork, ClusteredBarrierNetwork, TdmBarrierNetwork};
use sim_base::config::GlineConfig;
use sim_base::trace::{RingSink, Tracer};
use sim_base::Mesh2D;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("gline_network");
    for &(rows, cols) in &[(2u16, 2u16), (4, 8), (8, 8)] {
        let mesh = Mesh2D::new(rows, cols);
        g.bench_with_input(
            BenchmarkId::new("flat_episode", format!("{rows}x{cols}")),
            &mesh,
            |b, &mesh| {
                let mut net = BarrierNetwork::new(mesh, GlineConfig::default());
                let arrivals = vec![0u64; mesh.num_tiles()];
                b.iter(|| net.run_single_barrier(&arrivals))
            },
        );
    }
    for &(rows, cols) in &[(16u16, 16u16), (32, 32)] {
        let mesh = Mesh2D::new(rows, cols);
        g.bench_with_input(
            BenchmarkId::new("clustered_episode", format!("{rows}x{cols}")),
            &mesh,
            |b, &mesh| {
                let mut net = ClusteredBarrierNetwork::new(mesh, GlineConfig::default());
                let arrivals = vec![0u64; mesh.num_tiles()];
                b.iter(|| net.run_single_barrier(&arrivals))
            },
        );
    }
    // TDM: several logical barriers over one wire set.
    for &v in &[2usize, 4] {
        g.bench_with_input(BenchmarkId::new("tdm_episode", v), &v, |b, &v| {
            let mut net = TdmBarrierNetwork::new(Mesh2D::new(4, 8), GlineConfig::default(), v);
            let arrivals = vec![0u64; 32];
            b.iter(|| net.run_single_barrier(&arrivals))
        });
    }
    // Trace-overhead check: `flat_episode` above runs the default
    // `NullSink` path (every emit site compiled away); this lane runs the
    // same episode with a recording `RingSink` for contrast. The NullSink
    // numbers are the regression gate — they must stay where the untraced
    // seed had them.
    g.bench_function("flat_episode_ringsink/4x8", |b| {
        let mesh = Mesh2D::new(4, 8);
        let tracer = Tracer::new(RingSink::new(256));
        let mut net = BarrierNetwork::traced(mesh, GlineConfig::default(), tracer);
        let arrivals = vec![0u64; mesh.num_tiles()];
        b.iter(|| net.run_single_barrier(&arrivals))
    });
    // Masked context over half the cores.
    g.bench_function("masked_half_episode", |b| {
        let mesh = Mesh2D::new(4, 8);
        let mask: Vec<bool> = mesh.coords().map(|c| c.col < 4).collect();
        let mut net =
            BarrierNetwork::with_members(mesh, GlineConfig::default(), vec![mask.clone()]);
        b.iter(|| {
            for (i, &m) in mask.iter().enumerate() {
                if m {
                    net.write_bar_reg(sim_base::CoreId::from(i), 0, 1);
                }
            }
            while !net.all_released(0) {
                net.tick();
            }
        })
    });
    // Ablation: multiple barrier contexts ticking together.
    for &ctxs in &[1u32, 4, 8] {
        g.bench_with_input(
            BenchmarkId::new("contexts_tick", ctxs),
            &ctxs,
            |b, &ctxs| {
                let cfg = GlineConfig {
                    contexts: ctxs,
                    ..GlineConfig::default()
                };
                let mut net = BarrierNetwork::new(Mesh2D::new(4, 8), cfg);
                b.iter(|| {
                    for _ in 0..100 {
                        net.tick();
                    }
                })
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
