//! `simlint` — determinism and safety lints for the simulation crates.
//!
//! A deliberately small, dependency-free static checker that enforces
//! the workspace's correctness conventions (the ones `rustc` and clippy
//! cannot see). It tokenizes just enough Rust — comments, string/char
//! literals — to scan *code* text separately from *comment* text, then
//! applies line-oriented rules:
//!
//! * **safety-comment** — every `unsafe` block, fn, or impl must carry
//!   a `// SAFETY:` comment (same line, or immediately above, with only
//!   comments/attributes/blank lines in between); for `unsafe fn`
//!   declarations a `# Safety` doc section counts, since there the
//!   obligations sit on the caller.
//! * **std-hashmap** — no `std::collections::{HashMap, HashSet}` in
//!   simulation code: their `RandomState` hasher randomizes iteration
//!   order per process, a determinism hazard. Use `sim_base::fxmap`, or
//!   escape with `// simlint: allow(std-hashmap)` plus a rationale.
//! * **wall-clock** — no `Instant::now` / `SystemTime` / `thread_rng`
//!   in simulation paths; simulated time comes from the cycle counter.
//!   The `bench` crate (which measures real time by design) and
//!   `sim-check` (whose wedge watchdog is host-side tooling) are
//!   exempt.
//! * **ptr-order** — no pointer-to-integer casts in simulation code:
//!   addresses differ run to run, so ordering, hashing, or branching on
//!   them is nondeterministic. Escape with
//!   `// simlint: allow(ptr-order)` where the cast provably never
//!   influences simulation behavior (e.g. layout assertions in tests).
//! * **phase-protocol** — the sharded engines' raw-aliasing entry
//!   points (`tile_lanes(` / `epoch_tiles(` / `shard_phase(` /
//!   `epoch_shard_phase(` / `.ptrs.get()` / `.outs[`) may appear only
//!   in the files that *are* the phase protocol; everything else must
//!   go through the safe serial API.
//!
//! Escapes are per-line: `// simlint: allow(<rule>)` on the offending
//! line or in the comment block directly above it. Every escape should
//! say why.
//!
//! The `simlint` binary (`cargo run -p bench --bin simlint -- --deny`)
//! walks the workspace and reports findings; CI runs it as a hard gate.
//! See `DESIGN.md` §14 for how the rules relate to the model checker.

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

/// One rule violation at a specific line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// File the violation is in (as walked, workspace-relative).
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Rule identifier (e.g. `safety-comment`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub msg: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.rule,
            self.msg
        )
    }
}

/// Files that *are* the shard-phase protocol: the only places the
/// raw-aliasing entry points may appear.
const PHASE_PROTOCOL_FILES: &[&str] = &[
    "crates/sim-cmp/src/par.rs",
    "crates/sim-cmp/src/system.rs",
    "crates/sim-mem/src/system.rs",
];

/// Tokens that mark raw-aliasing access to sharded simulation state.
const PHASE_PROTOCOL_TOKENS: &[&str] = &[
    "tile_lanes(",
    "epoch_tiles(",
    "shard_phase(",
    "epoch_shard_phase(",
    ".ptrs.get()",
    ".outs[",
];

/// Crates exempt from the wall-clock rule: `bench` measures host time
/// by design, and `sim-check`'s wedge watchdog runs host-side (its
/// *modeled* scenarios never see a clock).
const WALL_CLOCK_EXEMPT: &[&str] = &["crates/bench/", "crates/sim-check/"];

/// Replaces the contents of comments and string/char literals with
/// spaces, preserving the line structure, so rules can scan code text
/// without tripping on prose. Handles line comments, (nested) block
/// comments, string/byte-string literals with escapes, raw strings
/// `r#"…"#`, and char literals vs. lifetimes.
pub fn strip_comments_and_strings(src: &str) -> String {
    let b = src.as_bytes();
    let mut out = Vec::with_capacity(b.len());
    let mut i = 0;
    // Emits `n` bytes of masked input: newlines survive, all else
    // becomes a space.
    let mask = |out: &mut Vec<u8>, b: &[u8], from: usize, n: usize| {
        for &c in &b[from..from + n] {
            out.push(if c == b'\n' { b'\n' } else { b' ' });
        }
    };
    while i < b.len() {
        match b[i] {
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let end = src[i..].find('\n').map_or(b.len(), |p| i + p);
                mask(&mut out, b, i, end - i);
                i = end;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                // Rust block comments nest.
                let mut depth = 1;
                let mut j = i + 2;
                while j < b.len() && depth > 0 {
                    if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                mask(&mut out, b, i, j - i);
                i = j;
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let j = skip_raw_string(b, i);
                mask(&mut out, b, i, j - i);
                i = j;
            }
            b'b' if i + 1 < b.len() && b[i + 1] == b'"' => {
                let j = skip_quoted(b, i + 1, b'"');
                mask(&mut out, b, i, j - i);
                i = j;
            }
            b'"' => {
                let j = skip_quoted(b, i, b'"');
                mask(&mut out, b, i, j - i);
                i = j;
            }
            b'\'' => {
                // Char literal or lifetime? A literal closes with `'`
                // after one (possibly escaped) character.
                if let Some(j) = char_literal_end(b, i) {
                    mask(&mut out, b, i, j - i);
                    i = j;
                } else {
                    out.push(b'\'');
                    i += 1;
                }
            }
            c => {
                out.push(c);
                i += 1;
            }
        }
    }
    String::from_utf8(out).expect("masking preserves UTF-8: multibyte bytes become spaces")
}

fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, br"…", br#"…"#
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    if j >= b.len() || b[j] != b'r' {
        return false;
    }
    j += 1;
    while j < b.len() && b[j] == b'#' {
        j += 1;
    }
    j < b.len() && b[j] == b'"'
}

fn skip_raw_string(b: &[u8], i: usize) -> usize {
    let mut j = i;
    if b[j] == b'b' {
        j += 1;
    }
    j += 1; // 'r'
    let mut hashes = 0;
    while j < b.len() && b[j] == b'#' {
        hashes += 1;
        j += 1;
    }
    j += 1; // opening quote
    while j < b.len() {
        if b[j] == b'"' {
            let mut k = j + 1;
            let mut h = 0;
            while k < b.len() && b[k] == b'#' && h < hashes {
                h += 1;
                k += 1;
            }
            if h == hashes {
                return k;
            }
        }
        j += 1;
    }
    b.len()
}

fn skip_quoted(b: &[u8], open: usize, quote: u8) -> usize {
    let mut j = open + 1;
    while j < b.len() {
        match b[j] {
            b'\\' => j += 2,
            c if c == quote => return j + 1,
            _ => j += 1,
        }
    }
    b.len()
}

fn char_literal_end(b: &[u8], i: usize) -> Option<usize> {
    // `'a'` / `'\n'` / `'\u{1F600}'` — but NOT the lifetime `'a`.
    let mut j = i + 1;
    if j >= b.len() {
        return None;
    }
    if b[j] == b'\\' {
        j += 2;
        // \u{…}
        if j <= b.len() && j >= 2 && b[j - 1] == b'{' {
            while j < b.len() && b[j] != b'}' {
                j += 1;
            }
            j += 1;
        }
    } else {
        // One UTF-8 scalar.
        j += utf8_len(b[j]);
    }
    (j < b.len() && b[j] == b'\'').then_some(j + 1)
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

fn is_ident(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Whole-word occurrence check (`HashMap` must not match `FxHashMap`).
fn has_word(line: &str, word: &str) -> bool {
    let b = line.as_bytes();
    let mut start = 0;
    while let Some(pos) = line[start..].find(word) {
        let i = start + pos;
        let before_ok = i == 0 || !is_ident(b[i - 1]);
        let j = i + word.len();
        let after_ok = j >= b.len() || !is_ident(b[j]);
        if before_ok && after_ok {
            return true;
        }
        start = i + 1;
    }
    false
}

/// Is `rule` escaped for line `idx` (0-based)? The escape comment may
/// sit on the line itself or anywhere in the contiguous `//` comment
/// block directly above it (so rationales can span lines).
fn allowed(original: &[&str], idx: usize, rule: &str) -> bool {
    let tag = format!("simlint: allow({rule})");
    if original[idx].contains(&tag) {
        return true;
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = original[i].trim();
        if !t.starts_with("//") {
            return false;
        }
        if t.contains(&tag) {
            return true;
        }
    }
    false
}

/// Does the code above line `idx` vouch for an `unsafe`? Walks upward
/// through comments, attributes, and blank lines looking for `SAFETY:`
/// (blocks/impls) or a `# Safety` doc section (`unsafe fn`
/// declarations, whose obligations sit on the *caller*).
fn safety_comment_above(original: &[&str], idx: usize) -> bool {
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = original[i].trim();
        if t.contains("SAFETY:") || t.contains("# Safety") {
            return true;
        }
        let skippable = t.is_empty()
            || t.starts_with("//")
            || t.starts_with("#[")
            || t.starts_with("#![")
            || t.starts_with("*")   // inside a /* */ block
            || t.starts_with("/*");
        if !skippable {
            return false;
        }
    }
    false
}

fn path_has_prefix(file: &Path, prefix: &str) -> bool {
    file.to_string_lossy().replace('\\', "/").contains(prefix)
}

fn path_is(file: &Path, suffix: &str) -> bool {
    file.to_string_lossy().replace('\\', "/").ends_with(suffix)
}

/// Lints one file's source text. `file` is used for reporting and for
/// the per-file rule scoping (exemptions, protocol allowlist).
pub fn lint_source(file: &Path, src: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(src);
    let code: Vec<&str> = stripped.lines().collect();
    let original: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    let mut push = |line: usize, rule: &'static str, msg: String| {
        findings.push(Finding {
            file: file.to_path_buf(),
            line: line + 1,
            rule,
            msg,
        });
    };

    let wall_clock_applies = !WALL_CLOCK_EXEMPT.iter().any(|p| path_has_prefix(file, p));
    let is_protocol_file = PHASE_PROTOCOL_FILES.iter().any(|p| path_is(file, p));

    for (i, line) in code.iter().enumerate() {
        // safety-comment
        if has_word(line, "unsafe")
            && !original[i].contains("SAFETY:")
            && !safety_comment_above(&original, i)
        {
            push(
                i,
                "safety-comment",
                "`unsafe` without a `// SAFETY:` comment on or directly above it".into(),
            );
        }

        // std-hashmap
        for ty in ["HashMap", "HashSet"] {
            if has_word(line, ty) && !allowed(&original, i, "std-hashmap") {
                push(
                    i,
                    "std-hashmap",
                    format!(
                        "std {ty} randomizes iteration order; use `sim_base::fxmap` \
                         or escape with `// simlint: allow(std-hashmap)` + rationale"
                    ),
                );
                break;
            }
        }

        // wall-clock
        if wall_clock_applies {
            for tok in ["Instant::now", "SystemTime", "thread_rng"] {
                if line.contains(tok) && !allowed(&original, i, "wall-clock") {
                    push(
                        i,
                        "wall-clock",
                        format!(
                            "`{tok}` in a simulation path; simulated time is the cycle counter"
                        ),
                    );
                    break;
                }
            }
        }

        // ptr-order
        let int_cast = line.contains("as usize") || line.contains("as u64");
        let ptr_expr = line.contains("*const")
            || line.contains("*mut")
            || line.contains("as_ptr()")
            || line.contains("as_mut_ptr()");
        if int_cast && ptr_expr && !allowed(&original, i, "ptr-order") {
            push(
                i,
                "ptr-order",
                "pointer-to-integer cast: addresses vary run to run, so ordering or \
                 hashing by them is nondeterministic"
                    .into(),
            );
        }

        // phase-protocol
        if !is_protocol_file {
            for tok in PHASE_PROTOCOL_TOKENS {
                if line.contains(tok) {
                    push(
                        i,
                        "phase-protocol",
                        format!(
                            "`{tok}` is a shard-phase protocol entry point; only the \
                             protocol files themselves may touch it"
                        ),
                    );
                    break;
                }
            }
        }
    }
    findings
}

/// Recursively lints every `.rs` file under `root`, skipping `target`
/// and hidden directories. Files are visited in sorted order so output
/// is stable.
pub fn lint_workspace(root: &Path) -> std::io::Result<Vec<Finding>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    let mut findings = Vec::new();
    for f in files {
        let src = fs::read_to_string(root.join(&f))?;
        findings.extend(lint_source(&f, &src));
    }
    Ok(findings)
}

fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path.strip_prefix(root).unwrap_or(&path).to_path_buf());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lint(file: &str, src: &str) -> Vec<Finding> {
        lint_source(Path::new(file), src)
    }

    fn rules(fs: &[Finding]) -> Vec<&'static str> {
        fs.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn strips_comments_strings_and_chars_but_not_lifetimes() {
        let src = "let a = \"unsafe HashMap\"; // unsafe\nlet b: &'a str = x; let c = 'u';\n/* unsafe */ let d = r#\"unsafe\"#;\n";
        let s = strip_comments_and_strings(src);
        assert!(
            !s.contains("unsafe"),
            "literals/comments must be masked: {s}"
        );
        assert!(s.contains("&'a str"), "lifetimes must survive: {s}");
        assert_eq!(
            s.lines().count(),
            src.lines().count(),
            "line structure preserved"
        );
    }

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let f = lint("crates/x/src/a.rs", "fn f() {\n    unsafe { g() }\n}\n");
        assert_eq!(rules(&f), ["safety-comment"]);
        assert_eq!(f[0].line, 2);
    }

    #[test]
    fn safety_comment_above_or_inline_passes() {
        let above = "// SAFETY: g upholds the invariant.\nunsafe { g() }\n";
        let inline = "unsafe impl Send for X {} // SAFETY: X owns its data.\n";
        let through_attr = "// SAFETY: fine.\n#[inline]\nunsafe fn h() {}\n";
        let doc_section =
            "/// # Safety\n///\n/// Caller must not alias `p`.\npub unsafe fn h() {}\n";
        for src in [above, inline, through_attr, doc_section] {
            assert!(lint("crates/x/src/a.rs", src).is_empty(), "src: {src}");
        }
    }

    #[test]
    fn safety_comment_does_not_leak_past_code() {
        let src =
            "// SAFETY: only covers the first one.\nunsafe { g() }\nlet x = 1;\nunsafe { h() }\n";
        let f = lint("crates/x/src/a.rs", src);
        assert_eq!(rules(&f), ["safety-comment"]);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn std_hashmap_flagged_but_fxhashmap_is_not() {
        let f = lint("crates/x/src/a.rs", "use std::collections::HashMap;\n");
        assert_eq!(rules(&f), ["std-hashmap"]);
        let ok = lint(
            "crates/x/src/a.rs",
            "let m: FxHashMap<u32, u32> = FxHashMap::default();\n",
        );
        assert!(ok.is_empty(), "{ok:?}");
    }

    #[test]
    fn allow_escape_silences_a_rule_on_that_line_only() {
        let same = "let m = HashMap::new(); // simlint: allow(std-hashmap) — fixed hasher below\n";
        let above = "// simlint: allow(std-hashmap) — rationale\nlet m = HashMap::new();\n";
        let block = "// simlint: allow(std-hashmap) — a rationale\n// spanning two comment lines.\nlet m = HashMap::new();\n";
        assert!(lint("crates/x/src/a.rs", same).is_empty());
        assert!(lint("crates/x/src/a.rs", above).is_empty());
        assert!(lint("crates/x/src/a.rs", block).is_empty());
        let far = "// simlint: allow(std-hashmap)\nlet x = 1;\nlet m = HashMap::new();\n";
        assert_eq!(rules(&lint("crates/x/src/a.rs", far)), ["std-hashmap"]);
    }

    #[test]
    fn wall_clock_flagged_outside_exempt_crates() {
        let src = "let t = std::time::Instant::now();\n";
        assert_eq!(rules(&lint("crates/sim-cmp/src/a.rs", src)), ["wall-clock"]);
        assert!(lint("crates/bench/src/a.rs", src).is_empty());
        assert!(lint("crates/sim-check/src/a.rs", src).is_empty());
    }

    #[test]
    fn ptr_to_int_cast_is_flagged() {
        let src = "let k = p.as_ptr() as usize;\n";
        assert_eq!(rules(&lint("crates/x/src/a.rs", src)), ["ptr-order"]);
        let plain = "let n = len as usize;\n";
        assert!(lint("crates/x/src/a.rs", plain).is_empty());
    }

    #[test]
    fn phase_protocol_tokens_only_in_protocol_files() {
        let src = "let l = mem.tile_lanes();\n";
        assert_eq!(
            rules(&lint("crates/sim-noc/src/a.rs", src)),
            ["phase-protocol"]
        );
        assert!(lint("crates/sim-cmp/src/par.rs", src).is_empty());
        assert!(lint("crates/sim-mem/src/system.rs", src).is_empty());
    }

    #[test]
    fn tokens_inside_comments_and_strings_do_not_fire() {
        let src =
            "// mentions unsafe and HashMap and Instant::now\nlet s = \"shard_phase( HashMap\";\n";
        assert!(lint("crates/sim-cmp/src/a.rs", src).is_empty());
    }
}
