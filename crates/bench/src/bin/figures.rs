//! `figures` — regenerates the paper's tables and figures.
//!
//! Usage:
//! ```text
//! figures [--table1] [--table2] [--fig2] [--fig5] [--fig6] [--fig7]
//!         [--all] [--full] [--json FILE] [--jobs N]
//! ```
//!
//! With no selection flags, `--all` is implied. `--full` runs the larger
//! workload sizes; the default quick sizes finish in minutes. `--json`
//! additionally writes the raw experiment data as JSON. `--jobs N` sets
//! the worker-thread count for the simulation sweeps (default: all host
//! cores; the output is bit-identical for any N).

use bench::experiments as exp;
use bench::sweep::workers_from_args;
use bench::Scale;
use sim_base::json::{Json, ToJson};
use std::io::Write;

#[derive(Default)]
struct JsonOut {
    table2: Option<Vec<exp::Table2Row>>,
    fig5: Option<Vec<exp::Fig5Row>>,
    fig6_fig7: Option<Vec<exp::Fig67Row>>,
}

impl ToJson for JsonOut {
    fn to_json(&self) -> Json {
        fn rows<T: ToJson>(rows: &[T]) -> Json {
            Json::arr(rows.iter().map(ToJson::to_json))
        }
        let mut fields = Vec::new();
        if let Some(t) = &self.table2 {
            fields.push(("table2", rows(t)));
        }
        if let Some(f) = &self.fig5 {
            fields.push(("fig5", rows(f)));
        }
        if let Some(f) = &self.fig6_fig7 {
            fields.push(("fig6_fig7", rows(f)));
        }
        Json::obj(fields)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let has = |f: &str| args.iter().any(|a| a == f);
    let all = has("--all")
        || ![
            "--table1", "--table2", "--fig2", "--fig5", "--fig6", "--fig7",
        ]
        .iter()
        .any(|f| has(f));
    let scale = if has("--full") {
        Scale::Full
    } else {
        Scale::Quick
    };
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let workers = workers_from_args(&args);
    let mut json = JsonOut::default();

    println!(
        "gline-cmp evaluation harness — scale: {scale:?}, {workers} worker thread(s) \
         (use --full for larger runs, --jobs N to set workers)\n"
    );

    if all || has("--table1") {
        println!("{}", exp::table1());
    }
    if all || has("--fig2") {
        println!("{}", exp::figure2());
    }
    if all || has("--table2") {
        eprintln!("[table2] running the benchmark suite under DSW…");
        let rows = exp::table2(scale, workers);
        println!("{}", exp::render_table2(&rows));
        json.table2 = Some(rows);
    }
    if all || has("--fig5") {
        eprintln!("[fig5] sweeping core counts × barrier implementations…");
        let rows = exp::fig5(scale, workers);
        println!("{}", exp::render_fig5(&rows));
        json.fig5 = Some(rows);
    }
    if all || has("--fig6") || has("--fig7") {
        eprintln!("[fig6/fig7] running the benchmark suite under DSW and GL…");
        let rows = exp::fig6_fig7(scale, workers);
        if all || has("--fig6") {
            println!("{}", exp::render_fig6(&rows));
        }
        if all || has("--fig7") {
            println!("{}", exp::render_fig7(&rows));
        }
        json.fig6_fig7 = Some(rows);
    }

    if let Some(path) = json_path {
        let mut f = std::fs::File::create(&path).expect("create json file");
        f.write_all(json.to_json().pretty().as_bytes())
            .expect("write json");
        eprintln!("wrote {path}");
    }
}
