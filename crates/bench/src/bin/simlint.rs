//! Workspace determinism/safety linter — see `bench::lint` for the
//! rules and `DESIGN.md` §14 for the rationale.
//!
//! Usage: `cargo run -p bench --bin simlint -- [--deny] [ROOT]`
//!
//! Walks every `.rs` file under `ROOT` (default: the current
//! directory), prints findings as `file:line: [rule] message`, and
//! exits nonzero under `--deny`/`-D` when anything is found. CI runs it
//! with `--deny` as a hard gate.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut deny = false;
    let mut root = PathBuf::from(".");
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--deny" | "-D" => deny = true,
            "--help" | "-h" => {
                eprintln!("usage: simlint [--deny] [ROOT]");
                return ExitCode::SUCCESS;
            }
            other => root = PathBuf::from(other),
        }
    }

    let findings = match bench::lint::lint_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("simlint: cannot walk {}: {e}", root.display());
            return ExitCode::FAILURE;
        }
    };

    for f in &findings {
        println!("{f}");
    }
    if findings.is_empty() {
        eprintln!("simlint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "simlint: {} finding{} ({})",
            findings.len(),
            if findings.len() == 1 { "" } else { "s" },
            if deny { "denied" } else { "warnings only" }
        );
        if deny {
            ExitCode::FAILURE
        } else {
            ExitCode::SUCCESS
        }
    }
}
