//! A self-contained micro-benchmark harness with Criterion's surface.
//!
//! The container this repo builds in has no network access, so the
//! benches cannot pull in the real `criterion` crate. This module
//! implements the small slice of its API the benches use — groups,
//! [`BenchmarkId`], [`Bencher::iter`], `sample_size`, and the
//! [`criterion_group!`]/[`criterion_main!`] macros — over
//! `std::time::Instant`, so `cargo bench` keeps working unchanged.
//!
//! Per benchmark it calibrates an iteration count targeting a few
//! milliseconds per sample, takes `sample_size` timed samples, and
//! prints `min / mean / max` per-iteration times. Passing `--test` (as
//! `cargo test --benches` does) runs every benchmark body once and
//! skips measurement.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall time for one timed sample during calibration.
const TARGET_SAMPLE: Duration = Duration::from_millis(5);

/// The harness entry point; one per process, shared by every group.
pub struct Criterion {
    default_sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        let args: Vec<String> = std::env::args().skip(1).collect();
        let test_mode = args.iter().any(|a| a == "--test");
        // First free-standing arg (cargo bench passes `--bench`; skip flags).
        let filter = args.iter().find(|a| !a.starts_with("--")).cloned();
        Criterion {
            default_sample_size: 100,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            c: self,
            name: name.into(),
            sample_size: None,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let sample_size = self.default_sample_size;
        self.run_one(name.to_string(), sample_size, f);
        self
    }

    fn run_one(&mut self, name: String, sample_size: usize, mut f: impl FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        if self.test_mode {
            let mut b = Bencher {
                iters: 1,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            println!("test {name} ... ok");
            return;
        }

        // Calibrate the per-sample iteration count.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= TARGET_SAMPLE || iters >= 1 << 30 {
                break;
            }
            let grow = if b.elapsed.is_zero() {
                16
            } else {
                (TARGET_SAMPLE.as_nanos() / b.elapsed.as_nanos().max(1)).clamp(2, 16) as u64
            };
            iters = iters.saturating_mul(grow);
        }

        let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
        for _ in 0..sample_size {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.elapsed.as_nanos() as f64 / iters as f64);
        }
        samples.sort_by(|a, b| a.total_cmp(b));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        println!(
            "{name:<44} time: [{} {} {}]  ({sample_size} samples × {iters} iters)",
            fmt_ns(samples[0]),
            fmt_ns(mean),
            fmt_ns(*samples.last().unwrap()),
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.3} s", ns / 1e9)
    }
}

/// A named group; benchmarks inside it print as `group/name[/param]`.
pub struct BenchmarkGroup<'a> {
    c: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function(&mut self, name: impl Display, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let n = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_one(full, n, f);
        self
    }

    /// Runs a parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        let n = self.sample_size.unwrap_or(self.c.default_sample_size);
        self.c.run_one(full, n, |b| f(b, input));
        self
    }

    /// Ends the group (nothing to flush; kept for API parity).
    pub fn finish(self) {}
}

/// A benchmark id: a function name plus a parameter rendering.
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// An id like `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// An id that is just a parameter (`from_parameter` in Criterion).
    pub fn from_parameter(param: impl Display) -> BenchmarkId {
        BenchmarkId {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.name.is_empty() {
            write!(f, "{}", self.param)
        } else {
            write!(f, "{}/{}", self.name, self.param)
        }
    }
}

/// Passed to each benchmark body; [`iter`](Bencher::iter) times the hot
/// closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f` over this sample's iteration count.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

/// Collects benchmark functions into a group runner, like Criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::harness::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Expands to `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

pub use crate::{criterion_group, criterion_main};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(
            BenchmarkId::new("episode", "4x4").to_string(),
            "episode/4x4"
        );
        assert_eq!(BenchmarkId::from_parameter(32).to_string(), "32");
    }

    #[test]
    fn bencher_measures_something() {
        let mut b = Bencher {
            iters: 1000,
            elapsed: Duration::ZERO,
        };
        b.iter(|| std::hint::black_box(2u64 + 2));
        assert!(b.elapsed > Duration::ZERO || cfg!(miri));
    }

    #[test]
    fn formats_scale() {
        assert!(fmt_ns(12.0).ends_with("ns"));
        assert!(fmt_ns(12_000.0).ends_with("µs"));
        assert!(fmt_ns(12_000_000.0).ends_with("ms"));
        assert!(fmt_ns(12_000_000_000.0).ends_with('s'));
    }
}
