//! A dependency-free parallel sweep engine.
//!
//! The experiments in this crate are embarrassingly parallel: every
//! `(benchmark × barrier kind × core count)` point is an independent
//! simulation. [`sweep`] fans a slice of such jobs across scoped
//! `std::thread` workers pulling from a shared atomic queue, and places
//! each result back at its job's index — so the output order (and
//! therefore every rendered table, figure, and JSON file) is
//! **bit-identical** to the serial run regardless of worker count or
//! scheduling. Each simulation itself stays single-threaded and
//! deterministic; only the fan-out is concurrent.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Default worker count: the host's available parallelism (1 if
/// unknown). Shared with the simulator's sharded-tick engine so every
/// "how parallel is this host" answer in the workspace agrees.
pub fn default_workers() -> usize {
    sim_base::shard::available_workers()
}

/// Parses a `--jobs N` flag out of `args`, defaulting to
/// [`default_workers`]. `--jobs 1` forces the serial path.
pub fn workers_from_args(args: &[String]) -> usize {
    args.iter()
        .position(|a| a == "--jobs")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(default_workers)
}

/// Host-parallelism provenance for `BENCH_*.json` outputs: how many
/// cores the host advertised and how many workers the producing process
/// actually used. Benchmark JSON is meaningless for cross-host
/// comparison without this, so every writer embeds it under a `host`
/// key.
pub fn host_json(workers_used: usize) -> sim_base::json::Json {
    sim_base::json::Json::obj([
        (
            "available_cores",
            sim_base::json::Json::from(sim_base::shard::available_workers() as u64),
        ),
        (
            "workers_used",
            sim_base::json::Json::from(workers_used as u64),
        ),
    ])
}

/// Runs `run` over every job and returns the results **in job order**.
///
/// With `workers <= 1` (or a single job) this is a plain serial map —
/// the parallel path produces the same `Vec` element for element, it
/// just computes them concurrently. Worker threads claim job indices
/// from a shared atomic counter (dynamic load balancing: a slow
/// simulation does not hold up the queue) and write each result into
/// its job's dedicated slot. A panicking job propagates the panic to
/// the caller when the scope joins.
pub fn sweep<J, R, F>(jobs: &[J], workers: usize, run: F) -> Vec<R>
where
    J: Sync,
    R: Send,
    F: Fn(&J) -> R + Sync,
{
    // One clamp rule for the whole workspace: at least one worker,
    // never more than there are items to divide.
    let workers = sim_base::shard::clamp_workers(workers, jobs.len());
    if workers == 1 {
        return jobs.iter().map(&run).collect();
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let r = run(&jobs[i]);
                *slots[i].lock().expect("result slot poisoned") = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("every claimed job stores a result")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        // Skew the per-job cost so late jobs finish first under
        // parallelism; order must still match.
        let out = sweep(&jobs, 8, |&j| {
            if j < 4 {
                std::thread::sleep(std::time::Duration::from_millis(5));
            }
            j * j
        });
        assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u32> = (0..37).collect();
        let serial = sweep(&jobs, 1, |&j| j.wrapping_mul(2654435761));
        let parallel = sweep(&jobs, 5, |&j| j.wrapping_mul(2654435761));
        assert_eq!(serial, parallel);
    }

    #[test]
    fn more_workers_than_jobs() {
        let jobs = [1u8, 2, 3];
        assert_eq!(sweep(&jobs, 64, |&j| j + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_job_list() {
        let jobs: [u8; 0] = [];
        assert_eq!(sweep(&jobs, 4, |&j| j), Vec::<u8>::new());
    }

    #[test]
    fn workers_flag_parsing() {
        let args: Vec<String> = ["--jobs", "3"].iter().map(|s| s.to_string()).collect();
        assert_eq!(workers_from_args(&args), 3);
        assert_eq!(workers_from_args(&[]), default_workers());
    }
}
