//! Lockstep cross-engine validation (DESIGN.md §12).
//!
//! The replay engine's contract is *bit-identity*: replaying a recorded
//! run on any engine configuration — quiescence skipping on or off,
//! active-set scheduling on or off, any worker count — must reproduce
//! the exec-mode run exactly. This module turns "exactly" into
//! comparators that, on mismatch, pinpoint the **first divergence** as
//! a structured `(cycle, core, field)` report instead of dumping two
//! multi-kilobyte structs and leaving the diff to the reader:
//!
//! * [`compare_reports`] — field-by-field [`SystemReport`] comparison
//!   (per-core time breakdowns, traffic classes, cache counters, ...).
//! * [`compare_memory`] — architectural memory comparison over a caller
//!   -chosen address set (a report can collide while memory diverges,
//!   and vice versa).
//! * [`compare_events`] — full event-trace comparison for serially
//!   traced runs (the parallel engine is gated on disabled tracing, so
//!   event lockstep applies to the serial engines; parallel engines are
//!   held to report + memory identity).
//!
//! `tests/replay_lockstep.rs` drives these across the workload-family ×
//! scheduler-toggle × worker-count matrix. The design follows the
//! validation harness of gpucachesim (`validate/` crate): run the
//! reference and the candidate through the same observable extraction,
//! then compare structurally rather than textually.

use gline_core::BarrierHw;
use sim_base::stats::{MsgClass, TimeCat};
use sim_base::trace::{Event, TraceSink};
use sim_base::Cycle;
use sim_cmp::{System, SystemReport};
use std::fmt;

/// The first point where two runs disagree.
///
/// `cycle`/`core` are filled when the diverging observable is anchored
/// to one (an event's timestamp, a per-core counter); whole-run scalars
/// leave them `None`.
#[derive(Clone, Debug)]
pub struct Divergence {
    /// Cycle of the diverging observable, when it has one.
    pub cycle: Option<Cycle>,
    /// Core (or tile) the diverging observable belongs to, when any.
    pub core: Option<usize>,
    /// Which observable diverged, e.g. `per_core[3].time[Barrier]`.
    pub field: String,
    /// The reference run's value.
    pub expected: String,
    /// The candidate run's value.
    pub actual: String,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "first divergence")?;
        if let Some(c) = self.cycle {
            write!(f, " at cycle {c}")?;
        }
        if let Some(c) = self.core {
            write!(f, " on core {c}")?;
        }
        write!(
            f,
            ": {} — expected {}, got {}",
            self.field, self.expected, self.actual
        )
    }
}

/// Builds a [`Divergence`] from any pair of displayable values.
fn diverge<T: fmt::Debug>(
    cycle: Option<Cycle>,
    core: Option<usize>,
    field: impl Into<String>,
    expected: &T,
    actual: &T,
) -> Divergence {
    Divergence {
        cycle,
        core,
        field: field.into(),
        expected: format!("{expected:?}"),
        actual: format!("{actual:?}"),
    }
}

/// Compares two values, producing the structured divergence on mismatch.
macro_rules! check {
    ($cycle:expr, $core:expr, $field:expr, $exp:expr, $act:expr) => {
        if $exp != $act {
            return Err(diverge($cycle, $core, $field, &$exp, &$act));
        }
    };
}

/// Field-by-field [`SystemReport`] comparison with first-divergence
/// reporting. Scalar totals are checked *after* the per-core fields so
/// a per-core mismatch is attributed to its core, not to the aggregate
/// it rolls up into.
pub fn compare_reports(expected: &SystemReport, actual: &SystemReport) -> Result<(), Divergence> {
    check!(None, None, "cycles", expected.cycles, actual.cycles);
    check!(
        None,
        None,
        "per_core.len",
        expected.per_core.len(),
        actual.per_core.len()
    );
    for (i, (e, a)) in expected.per_core.iter().zip(&actual.per_core).enumerate() {
        for cat in TimeCat::ALL {
            check!(
                None,
                Some(i),
                format!("per_core[{i}].time[{}]", cat.label()),
                e[cat],
                a[cat]
            );
        }
    }
    for cat in TimeCat::ALL {
        check!(
            None,
            None,
            format!("total_time[{}]", cat.label()),
            expected.total_time[cat],
            actual.total_time[cat]
        );
    }
    for class in MsgClass::ALL {
        check!(
            None,
            None,
            format!("traffic[{}]", class.label()),
            expected.traffic[class],
            actual.traffic[class]
        );
    }
    check!(
        None,
        None,
        "flit_hops",
        expected.flit_hops,
        actual.flit_hops
    );
    check!(
        None,
        None,
        "gl_barriers",
        expected.gl_barriers,
        actual.gl_barriers
    );
    check!(
        None,
        None,
        "gl_mean_latency",
        expected.gl_mean_latency,
        actual.gl_mean_latency
    );
    check!(
        None,
        None,
        "gl_signals",
        expected.gl_signals,
        actual.gl_signals
    );
    check!(
        None,
        None,
        "instructions",
        expected.instructions,
        actual.instructions
    );
    check!(None, None, "l1_hits", expected.l1_hits, actual.l1_hits);
    check!(
        None,
        None,
        "l1_misses",
        expected.l1_misses,
        actual.l1_misses
    );
    check!(None, None, "l2_hits", expected.l2_hits, actual.l2_hits);
    check!(
        None,
        None,
        "l2_misses",
        expected.l2_misses,
        actual.l2_misses
    );
    // Backstop: `SystemReport` is `PartialEq`, so a field added later
    // without a check above still fails loudly (just less precisely).
    check!(None, None, "report (full struct)", expected, actual);
    Ok(())
}

/// Compares architectural memory word-by-word over `addrs`.
///
/// The address set is the caller's contract: for the synthetic
/// workloads, the barrier environment plus the data region (pokes and
/// everything a program can reach). Engines are compared *after* both
/// runs complete, so only final state matters.
pub fn compare_memory<B1, S1, B2, S2>(
    expected: &System<B1, S1>,
    actual: &System<B2, S2>,
    addrs: impl IntoIterator<Item = u64>,
) -> Result<(), Divergence>
where
    B1: BarrierHw,
    S1: TraceSink,
    B2: BarrierHw,
    S2: TraceSink,
{
    for addr in addrs {
        check!(
            None,
            None,
            format!("mem[{addr:#x}]"),
            expected.peek_word(addr),
            actual.peek_word(addr)
        );
    }
    Ok(())
}

/// The core (or tile) an event is anchored to, for divergence reports.
fn event_core(ev: &Event) -> Option<usize> {
    match ev {
        Event::CtrlTransition { core, .. }
        | Event::BarrierArrive { core, .. }
        | Event::BarrierRelease { core, .. }
        | Event::L1Access { core, .. }
        | Event::L1Transition { core, .. }
        | Event::Retire { core, .. }
        | Event::Stall { core, .. }
        | Event::Region { core, .. } => Some(core.0 as usize),
        Event::DirTransition { home, .. } | Event::L2Access { home, .. } => Some(home.0 as usize),
        Event::NocSend { src, .. } => Some(src.0 as usize),
        Event::NocDeliver { dst, .. } | Event::NocFlitHop { at: dst, .. } => Some(dst.0 as usize),
        Event::GlineAssert { .. }
        | Event::GlineSense { .. }
        | Event::BarrierComplete { .. }
        | Event::SwArrive { .. }
        | Event::SwRelease { .. } => None,
    }
}

/// Compares two full event traces in emission order, reporting the
/// first index where they disagree (or the first missing/extra event).
pub fn compare_events(
    expected: &[(Cycle, Event)],
    actual: &[(Cycle, Event)],
) -> Result<(), Divergence> {
    for (i, (e, a)) in expected.iter().zip(actual).enumerate() {
        if e != a {
            return Err(Divergence {
                cycle: Some(e.0),
                core: event_core(&e.1).or_else(|| event_core(&a.1)),
                field: format!("event[{i}]"),
                expected: format!("@{} {:?}", e.0, e.1),
                actual: format!("@{} {:?}", a.0, a.1),
            });
        }
    }
    check!(
        expected.last().map(|(c, _)| *c),
        None,
        "event count",
        expected.len(),
        actual.len()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_reports_pass() {
        let r = SystemReport {
            cycles: 10,
            per_core: vec![Default::default(); 2],
            total_time: Default::default(),
            traffic: Default::default(),
            flit_hops: 0,
            gl_barriers: 1,
            gl_mean_latency: 4.0,
            gl_signals: 8,
            instructions: 100,
            l1_hits: 5,
            l1_misses: 1,
            l2_hits: 1,
            l2_misses: 0,
        };
        compare_reports(&r, &r.clone()).unwrap();
    }

    #[test]
    fn per_core_mismatch_names_the_core_and_category() {
        let mut a = SystemReport {
            cycles: 10,
            per_core: vec![Default::default(); 4],
            total_time: Default::default(),
            traffic: Default::default(),
            flit_hops: 0,
            gl_barriers: 0,
            gl_mean_latency: 0.0,
            gl_signals: 0,
            instructions: 0,
            l1_hits: 0,
            l1_misses: 0,
            l2_hits: 0,
            l2_misses: 0,
        };
        let mut b = a.clone();
        a.per_core[2].add(TimeCat::Barrier, 7);
        b.per_core[2].add(TimeCat::Barrier, 9);
        let d = compare_reports(&a, &b).unwrap_err();
        assert_eq!(d.core, Some(2));
        assert!(d.field.contains("per_core[2]"), "field: {}", d.field);
        assert!(d.field.contains("Barrier"), "field: {}", d.field);
        assert_eq!(d.expected, "7");
        assert_eq!(d.actual, "9");
    }

    #[test]
    fn event_mismatch_reports_cycle_and_core() {
        use sim_base::CoreId;
        let e1 = vec![
            (
                3,
                Event::BarrierArrive {
                    ctx: 0,
                    core: CoreId(1),
                },
            ),
            (
                5,
                Event::BarrierRelease {
                    ctx: 0,
                    core: CoreId(1),
                },
            ),
        ];
        let mut e2 = e1.clone();
        e2[1] = (
            6,
            Event::BarrierRelease {
                ctx: 0,
                core: CoreId(1),
            },
        );
        let d = compare_events(&e1, &e2).unwrap_err();
        assert_eq!(d.cycle, Some(5));
        assert_eq!(d.core, Some(1));
        assert_eq!(d.field, "event[1]");
        compare_events(&e1, &e1.clone()).unwrap();
    }

    #[test]
    fn length_mismatch_is_reported() {
        let e1 = vec![(3, Event::BarrierComplete { ctx: 0, latency: 4 })];
        let d = compare_events(&e1, &[]).unwrap_err();
        assert_eq!(d.field, "event count");
    }
}
