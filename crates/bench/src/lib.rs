//! # bench — the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation
//! (§4, Tables 1–2, Figures 2 and 5–7) on the reproduction stack. The
//! [`experiments`] module is shared by the `figures` binary and the
//! Criterion benches.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod experiments;
pub mod harness;
pub mod lint;
pub mod sweep;
pub mod validate;

pub use experiments::{Scale, BENCH_CORES};
pub use sweep::sweep;
