//! Experiment definitions: one function per table/figure of the paper.
//!
//! The multi-run experiments ([`table2`], [`fig5`], [`fig6_fig7`]) take
//! a `workers` count and fan their independent simulations across host
//! cores via [`crate::sweep::sweep`]; results come back in job order,
//! so the output is bit-identical to a `workers = 1` run.

use crate::sweep::sweep;
use sim_base::config::CmpConfig;
use sim_base::json::{Json, ToJson};
use sim_base::stats::{MsgClass, TimeCat};
use sim_cmp::runtime::BarrierKind;
use sim_cmp::SystemReport;
use workloads::common::Workload;
use workloads::{em3d, livermore, ocean, synthetic, unstructured};

/// Core count used by the paper's Figure 6 / Figure 7 runs.
pub const BENCH_CORES: usize = 32;

/// How big to make the (scaled) workloads.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale runs for CI and quick reproduction.
    Quick,
    /// Larger runs, closer to the paper's inputs (slow).
    Full,
}

impl Scale {
    fn factor(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Full => 8,
        }
    }
}

/// Runs a workload to completion on `n` cores and reports.
pub fn run_workload(w: &Workload, n: usize) -> SystemReport {
    let mut sys = w.into_system(CmpConfig::icpp2010_with_cores(n));
    sys.run(20_000_000_000).expect("workload completes");
    sys.report()
}

/// A named workload factory: `(n_cores, barrier kind) → Workload`.
pub type WorkloadFactory = Box<dyn Fn(usize, BarrierKind) -> Workload>;

/// The benchmark list of Table 2 / Figures 6–7 (kernels first, then the
/// applications, matching the paper's figure order).
pub fn benchmarks(scale: Scale) -> Vec<(&'static str, WorkloadFactory)> {
    let f = scale.factor();
    vec![
        (
            "Kernel 2",
            Box::new(move |n, kind| {
                livermore::kernel2(n, kind, livermore::KernelParams::scaled(1024, 40 * f))
            }),
        ),
        (
            "Kernel 3",
            Box::new(move |n, kind| {
                livermore::kernel3(n, kind, livermore::KernelParams::scaled(1024, 40 * f))
            }),
        ),
        (
            "Kernel 6",
            Box::new(move |n, kind| {
                livermore::kernel6(n, kind, livermore::KernelParams::scaled(128, 2 * f.min(2)))
            }),
        ),
        (
            "UNSTRUCTURED",
            Box::new(move |n, kind| {
                unstructured::build(
                    n,
                    kind,
                    unstructured::UnstructuredParams::scaled(256, 768, 8 * f),
                )
            }),
        ),
        (
            "OCEAN",
            Box::new(move |n, kind| ocean::build(n, kind, ocean::OceanParams::scaled(66, 6 * f))),
        ),
        (
            "EM3D",
            Box::new(move |n, kind| em3d::build(n, kind, em3d::Em3dParams::scaled(1024, 20 * f))),
        ),
    ]
}

/// Index of the first application (earlier entries are kernels).
pub const FIRST_APP: usize = 3;

// ---------------------------------------------------------------------
// Table 1
// ---------------------------------------------------------------------

/// Renders Table 1 (the CMP baseline configuration).
pub fn table1() -> String {
    let c = CmpConfig::icpp2010();
    let mut s = String::from("Table 1. CMP baseline configuration.\n");
    let rows = [
        ("Number of cores".to_string(), format!("{}", c.num_cores())),
        (
            "Core".to_string(),
            format!(
                "{} GHz, in-order {}-way model",
                c.core.freq_ghz, c.core.issue_width
            ),
        ),
        (
            "Cache line size".to_string(),
            format!("{} Bytes", c.l1.line_bytes),
        ),
        (
            "L1 I/D-Cache".to_string(),
            format!(
                "{}KB, {}-way, {} cycle",
                c.l1.size_bytes / 1024,
                c.l1.ways,
                c.l1.total_latency()
            ),
        ),
        (
            "L2 Cache (per core)".to_string(),
            format!(
                "{}KB, {}-way, {}+{} cycles",
                c.l2.size_bytes / 1024,
                c.l2.ways,
                c.l2.hit_latency,
                c.l2.extra_data_latency
            ),
        ),
        (
            "Memory access time".to_string(),
            format!("{} cycles", c.mem.latency),
        ),
        (
            "Network configuration".to_string(),
            format!("2D-mesh ({}x{})", c.mesh.rows, c.mesh.cols),
        ),
        (
            "Link width".to_string(),
            format!("{} bytes", c.noc.link_bytes),
        ),
        (
            "G-lines per barrier".to_string(),
            format!("{}", c.glines_per_barrier()),
        ),
    ];
    for (k, v) in rows {
        s.push_str(&format!("  {k:<24} {v}\n"));
    }
    s
}

// ---------------------------------------------------------------------
// Table 2
// ---------------------------------------------------------------------

/// One Table 2 row: measured benchmark shape.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Dynamic barrier count of the run.
    pub barriers: u64,
    /// Average cycles between consecutive barriers (cycles / barriers),
    /// measured under the best software barrier (DSW), like the paper's
    /// baseline runs.
    pub barrier_period: u64,
    /// Total cycles of the run.
    pub cycles: u64,
}

impl ToJson for Table2Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("barriers", Json::from(self.barriers)),
            ("barrier_period", Json::from(self.barrier_period)),
            ("cycles", Json::from(self.cycles)),
        ])
    }
}

/// Regenerates Table 2: per-benchmark barrier counts and periods,
/// fanning the runs across `workers` threads.
pub fn table2(scale: Scale, workers: usize) -> Vec<Table2Row> {
    // Synthetic first, like the paper. Workloads are generated
    // serially (cheap); only the simulations run in parallel.
    let iters = 50 * scale.factor();
    let mut names = vec!["Synthetic"];
    let mut ws = vec![synthetic::build(BENCH_CORES, BarrierKind::Dsw, iters)];
    for (name, build) in benchmarks(scale) {
        names.push(name);
        ws.push(build(BENCH_CORES, BarrierKind::Dsw));
    }
    let reps = sweep(&ws, workers, |w| run_workload(w, BENCH_CORES));
    names
        .into_iter()
        .zip(ws.iter().zip(reps))
        .map(|(name, (w, rep))| Table2Row {
            benchmark: name.into(),
            barriers: w.total_barriers(),
            barrier_period: rep.cycles / w.total_barriers().max(1),
            cycles: rep.cycles,
        })
        .collect()
}

/// Renders Table 2 rows.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut s = String::from("Table 2. Benchmark configuration (measured on this reproduction).\n");
    s.push_str(&format!(
        "  {:<14} {:>10} {:>16} {:>12}\n",
        "Benchmark", "#Barriers", "Barrier Period", "Cycles"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:<14} {:>10} {:>16} {:>12}\n",
            r.benchmark, r.barriers, r.barrier_period, r.cycles
        ));
    }
    s
}

// ---------------------------------------------------------------------
// Figure 2
// ---------------------------------------------------------------------

/// Reproduces the Figure 2 walkthrough: a 2×2 mesh, all cores arriving
/// at cycle 0, printed cycle by cycle (bar_regs + G-line signal count).
pub fn figure2() -> String {
    use gline_core::BarrierNetwork;
    use sim_base::config::GlineConfig;
    use sim_base::{CoreId, Mesh2D};

    let mut net = BarrierNetwork::new(Mesh2D::new(2, 2), GlineConfig::default());
    for i in 0..4 {
        net.write_bar_reg(CoreId(i), 0, 1);
    }
    let mut s = String::from(
        "Figure 2. Barrier on a 2x2 mesh, all cores arrive at cycle 0.\n  cycle | bar_reg[0..4] | G-line signals this cycle | stage\n",
    );
    let stages = [
        "horizontal gather (SlaveH pulse, MasterH counts via S-CSMA)",
        "vertical gather (SlaveV pulse, MasterV counts)",
        "vertical release (MasterV drives MglineV)",
        "horizontal release (MasterH drives MglineH, bar_regs reset)",
    ];
    let mut prev_signals = 0;
    for cycle in 0..4 {
        net.tick();
        let regs: Vec<u64> = (0..4).map(|i| net.bar_reg(CoreId(i), 0)).collect();
        let sig = net.stats(0).signals;
        s.push_str(&format!(
            "  {:>5} | {:?}  | {:>2}                         | {}\n",
            cycle,
            regs,
            sig - prev_signals,
            stages[cycle as usize]
        ));
        prev_signals = sig;
    }
    assert!(net.all_released(0), "barrier must complete in 4 cycles");
    s.push_str("  => released at the end of cycle 3: 4 cycles total, as in the paper.\n");
    s
}

// ---------------------------------------------------------------------
// Figure 5
// ---------------------------------------------------------------------

/// One Figure 5 point: average cycles/barrier per implementation.
#[derive(Clone, Debug)]
pub struct Fig5Row {
    /// Core count.
    pub cores: usize,
    /// Centralized software barrier.
    pub csw: f64,
    /// Combining-tree software barrier.
    pub dsw: f64,
    /// G-line hardware barrier.
    pub gl: f64,
}

impl ToJson for Fig5Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("cores", Json::from(self.cores as u64)),
            ("csw", Json::from(self.csw)),
            ("dsw", Json::from(self.dsw)),
            ("gl", Json::from(self.gl)),
        ])
    }
}

/// Regenerates Figure 5: the synthetic benchmark (loop of 4 consecutive
/// barriers) swept over core counts × barrier kinds, fanned across
/// `workers` threads.
pub fn fig5(scale: Scale, workers: usize) -> Vec<Fig5Row> {
    let iters = 25 * scale.factor();
    const CORES: [usize; 6] = [1, 2, 4, 8, 16, 32];
    const KINDS: [BarrierKind; 3] = [BarrierKind::Csw, BarrierKind::Dsw, BarrierKind::Gl];
    let jobs: Vec<(usize, BarrierKind)> = CORES
        .iter()
        .flat_map(|&n| KINDS.iter().map(move |&k| (n, k)))
        .collect();
    let vals = sweep(&jobs, workers, |&(n, kind)| {
        let w = synthetic::build(n, kind, iters);
        let rep = run_workload(&w, n);
        synthetic::cycles_per_barrier(rep.cycles, iters)
    });
    CORES
        .iter()
        .enumerate()
        .map(|(i, &n)| Fig5Row {
            cores: n,
            csw: vals[i * 3],
            dsw: vals[i * 3 + 1],
            gl: vals[i * 3 + 2],
        })
        .collect()
}

/// Renders Figure 5 rows.
pub fn render_fig5(rows: &[Fig5Row]) -> String {
    let mut s = String::from(
        "Figure 5. Average cycles per barrier (synthetic benchmark, 4 barriers/iter).\n",
    );
    s.push_str(&format!(
        "  {:>5} {:>12} {:>12} {:>12}\n",
        "cores", "CSW", "DSW", "GL"
    ));
    for r in rows {
        s.push_str(&format!(
            "  {:>5} {:>12.1} {:>12.1} {:>12.1}\n",
            r.cores, r.csw, r.dsw, r.gl
        ));
    }
    s
}

// ---------------------------------------------------------------------
// Figures 6 and 7
// ---------------------------------------------------------------------

/// One benchmark's Figure 6 + Figure 7 data: DSW baseline and GL,
/// normalized to DSW.
#[derive(Clone, Debug)]
pub struct Fig67Row {
    /// Benchmark name.
    pub benchmark: String,
    /// Is it a kernel (vs application)?
    pub kernel: bool,
    /// Figure 6: DSW stacked bar (category, fraction-of-DSW-total).
    pub time_dsw: Vec<(String, f64)>,
    /// Figure 6: GL stacked bar, same normalization.
    pub time_gl: Vec<(String, f64)>,
    /// Normalized execution time of GL (1.0 = DSW).
    pub norm_time_gl: f64,
    /// Figure 7: DSW message classes (class, fraction-of-DSW-total).
    pub traffic_dsw: Vec<(String, f64)>,
    /// Figure 7: GL message classes, same normalization.
    pub traffic_gl: Vec<(String, f64)>,
    /// Normalized network messages of GL (1.0 = DSW).
    pub norm_traffic_gl: f64,
}

/// Renders a stacked bar (`(label, fraction)` pairs) as a JSON object.
fn bar_json(bar: &[(String, f64)]) -> Json {
    Json::obj(bar.iter().map(|(k, v)| (k.as_str(), Json::from(*v))))
}

impl ToJson for Fig67Row {
    fn to_json(&self) -> Json {
        Json::obj([
            ("benchmark", Json::from(self.benchmark.as_str())),
            ("kernel", Json::from(self.kernel)),
            ("time_dsw", bar_json(&self.time_dsw)),
            ("time_gl", bar_json(&self.time_gl)),
            ("norm_time_gl", Json::from(self.norm_time_gl)),
            ("traffic_dsw", bar_json(&self.traffic_dsw)),
            ("traffic_gl", bar_json(&self.traffic_gl)),
            ("norm_traffic_gl", Json::from(self.norm_traffic_gl)),
        ])
    }
}

/// Regenerates the data behind Figures 6 and 7 (one run per benchmark
/// per barrier implementation on the 32-core machine), fanning the
/// `benchmark × kind` runs across `workers` threads.
pub fn fig6_fig7(scale: Scale, workers: usize) -> Vec<Fig67Row> {
    let mut names = Vec::new();
    let mut ws = Vec::new();
    for (name, build) in benchmarks(scale) {
        names.push(name);
        ws.push(build(BENCH_CORES, BarrierKind::Dsw));
        ws.push(build(BENCH_CORES, BarrierKind::Gl));
    }
    let reps = sweep(&ws, workers, |w| run_workload(w, BENCH_CORES));
    let mut rows = Vec::new();
    for (i, name) in names.into_iter().enumerate() {
        let dsw = reps[i * 2].clone();
        let gl = reps[i * 2 + 1].clone();
        let bars = |rep: &SystemReport| -> Vec<(String, f64)> {
            rep.figure6_bar(&dsw)
                .iter()
                .map(|(c, v)| (c.label().to_string(), *v))
                .collect()
        };
        let traf = |rep: &SystemReport| -> Vec<(String, f64)> {
            rep.figure7_bar(&dsw)
                .iter()
                .map(|(c, v)| (c.label().to_string(), *v))
                .collect()
        };
        rows.push(Fig67Row {
            benchmark: name.into(),
            kernel: i < FIRST_APP,
            time_dsw: bars(&dsw),
            time_gl: bars(&gl),
            norm_time_gl: gl.normalized_time(&dsw),
            traffic_dsw: traf(&dsw),
            traffic_gl: traf(&gl),
            norm_traffic_gl: gl.normalized_traffic(&dsw),
        });
    }
    rows
}

/// Mean of `f` over the kernel or application subset.
fn subset_mean(rows: &[Fig67Row], kernel: bool, f: impl Fn(&Fig67Row) -> f64) -> f64 {
    let sel: Vec<f64> = rows.iter().filter(|r| r.kernel == kernel).map(f).collect();
    sel.iter().sum::<f64>() / sel.len().max(1) as f64
}

/// Renders Figure 6 (normalized execution time, stacked by category).
pub fn render_fig6(rows: &[Fig67Row]) -> String {
    let mut s =
        String::from("Figure 6. Normalized execution time over a 32-core CMP (DSW = 1.00).\n");
    s.push_str(&format!("  {:<14} {:>4}", "Benchmark", "impl"));
    for c in TimeCat::ALL {
        s.push_str(&format!(" {:>8}", c.label()));
    }
    s.push_str(&format!(" {:>8}\n", "TOTAL"));
    for r in rows {
        for (impl_name, bar, total) in [
            ("DSW", &r.time_dsw, 1.0),
            ("GL", &r.time_gl, r.norm_time_gl),
        ] {
            s.push_str(&format!("  {:<14} {:>4}", r.benchmark, impl_name));
            for (_, v) in bar {
                s.push_str(&format!(" {v:>8.3}"));
            }
            s.push_str(&format!(" {total:>8.3}\n"));
        }
    }
    let avg_k = subset_mean(rows, true, |r| r.norm_time_gl);
    let avg_a = subset_mean(rows, false, |r| r.norm_time_gl);
    s.push_str(&format!(
        "  AVG_K: GL = {:.3} of DSW (paper: 0.32, i.e. a 68% reduction)\n",
        avg_k
    ));
    s.push_str(&format!(
        "  AVG_A: GL = {:.3} of DSW (paper: 0.79, i.e. a 21% reduction)\n",
        avg_a
    ));
    s
}

/// Renders Figure 7 (normalized network messages, stacked by class).
pub fn render_fig7(rows: &[Fig67Row]) -> String {
    let mut s = String::from(
        "Figure 7. Normalized messages across the network over a 32-core CMP (DSW = 1.00).\n",
    );
    s.push_str(&format!("  {:<14} {:>4}", "Benchmark", "impl"));
    for c in MsgClass::ALL {
        s.push_str(&format!(" {:>10}", c.label()));
    }
    s.push_str(&format!(" {:>10}\n", "TOTAL"));
    for r in rows {
        for (impl_name, bar, total) in [
            ("DSW", &r.traffic_dsw, 1.0),
            ("GL", &r.traffic_gl, r.norm_traffic_gl),
        ] {
            s.push_str(&format!("  {:<14} {:>4}", r.benchmark, impl_name));
            for (_, v) in bar {
                s.push_str(&format!(" {v:>10.3}"));
            }
            s.push_str(&format!(" {total:>10.3}\n"));
        }
    }
    let avg_k = subset_mean(rows, true, |r| r.norm_traffic_gl);
    let avg_a = subset_mean(rows, false, |r| r.norm_traffic_gl);
    s.push_str(&format!(
        "  AVG_K: GL = {:.3} of DSW traffic (paper: 0.26, i.e. a 74% reduction)\n",
        avg_k
    ));
    s.push_str(&format!(
        "  AVG_A: GL = {:.3} of DSW traffic (paper: 0.82, i.e. an 18% reduction)\n",
        avg_a
    ));
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_mentions_every_parameter() {
        let t = table1();
        for needle in [
            "32",
            "3 GHz",
            "64 Bytes",
            "32KB",
            "256KB",
            "6+2",
            "400 cycles",
            "75 bytes",
        ] {
            assert!(t.contains(needle), "missing {needle} in:\n{t}");
        }
    }

    #[test]
    fn figure2_walkthrough_completes() {
        let f = figure2();
        assert!(f.contains("4 cycles total"));
        // Signal counts per cycle on the 2×2: 2, 1, 1, 2.
        assert!(f.contains("|  2 "), "{f}");
    }

    #[test]
    fn benchmark_list_shape() {
        let b = benchmarks(Scale::Quick);
        assert_eq!(b.len(), 6);
        assert_eq!(b[FIRST_APP].0, "UNSTRUCTURED");
    }
}
