//! Vector clocks for the checker's happens-before tracking.
//!
//! Every model thread carries a [`VecClock`]; synchronization objects
//! (atomics, mutexes) carry one as well. Release-flavored operations
//! publish the acting thread's clock into the object, acquire-flavored
//! operations join the object's clock into the thread — the standard
//! FastTrack-style construction, specialized to the checker's
//! sequentially-interleaved executions. Data-race detection on
//! [`RaceCell`](crate::sync::RaceCell)s compares access epochs against
//! these clocks.

/// A grow-on-demand vector clock, indexed by model-thread id.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct VecClock {
    t: Vec<u64>,
}

impl VecClock {
    /// The zero clock.
    pub(crate) fn new() -> VecClock {
        VecClock::default()
    }

    /// This clock's component for thread `tid`.
    pub(crate) fn get(&self, tid: usize) -> u64 {
        self.t.get(tid).copied().unwrap_or(0)
    }

    /// Increments thread `tid`'s own component (a new epoch).
    pub(crate) fn bump(&mut self, tid: usize) {
        if self.t.len() <= tid {
            self.t.resize(tid + 1, 0);
        }
        self.t[tid] += 1;
    }

    /// Componentwise maximum: `self := self ⊔ other`.
    pub(crate) fn join(&mut self, other: &VecClock) {
        if self.t.len() < other.t.len() {
            self.t.resize(other.t.len(), 0);
        }
        for (s, &o) in self.t.iter_mut().zip(other.t.iter()) {
            *s = (*s).max(o);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_is_componentwise_max() {
        let mut a = VecClock::new();
        a.bump(0);
        a.bump(0);
        let mut b = VecClock::new();
        b.bump(2);
        a.join(&b);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
    }

    #[test]
    fn get_out_of_range_is_zero() {
        let c = VecClock::new();
        assert_eq!(c.get(7), 0);
    }
}
