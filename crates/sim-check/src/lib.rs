//! # sim-check — in-tree concurrency model checker
//!
//! A loom-style exhaustive-interleaving explorer for the workspace's
//! sharding primitives (`DESIGN.md` §14). The workspace builds fully
//! offline, so instead of `loom` this crate carries its own explorer:
//! model threads run serialized under a replaying scheduler, every
//! synchronization operation is a scheduling point, and a depth-first
//! search with sleep-set (DPOR-family) pruning visits every
//! Mazurkiewicz trace of the model — finding deadlocks (including lost
//! wakeups), vector-clock data races, and assertion failures, each
//! reported with the exact interleaving that produced it.
//!
//! What is verified (see `tests/`):
//!
//! 1. **No data race on tile-disjoint lanes** — the shard-phase
//!    protocol models guard every shared location with a
//!    [`RaceCell`](sync::RaceCell); the only happens-before edges are
//!    the ones the real engine has (the phase barrier / epoch gate).
//! 2. **Epoch doorbell wakeups are never lost** — a lost wakeup leaves
//!    a waiter blocked forever, which the explorer reports as a
//!    deadlock; the seeded-broken [`models`] variants prove the
//!    detector sees the bug classes that matter.
//! 3. **Phase protocols linearize to the serial order** — the models
//!    merge worker outputs exactly as the engine's exchange/apply
//!    phases do and assert the result equals the serial reference.
//!
//! The models in [`models`] are line-by-line mirrors of
//! `sim_base::shard::{SpinBarrier, EpochGate}` and the
//! `CycleCtx`/`EpochCtx` protocols in `sim-cmp::par`, written against
//! the modeled primitives in [`sync`]. **When the originals change,
//! change the mirrors** — the mirror-source correspondence is part of
//! the review checklist for any `sim-base::shard`/`sim-cmp::par` PR.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

mod sched;
pub mod sync;
mod vc;

pub mod models;

pub use sched::{Explorer, Report, Violation, ViolationKind};

#[cfg(test)]
mod tests {
    use super::sync::{Mutex, RaceCell};
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn single_thread_runs_once() {
        let r = Explorer::default().check(|| {
            let c = RaceCell::new(0u64, "c");
            c.set(1);
            assert_eq!(c.get(), 1);
        });
        r.assert_ok();
        assert_eq!(r.executions, 1);
    }

    #[test]
    fn detects_plain_data_race() {
        let r = Explorer::default().check(|| {
            let c = std::sync::Arc::new(RaceCell::new(0u64, "shared"));
            let c2 = c.clone();
            let h = sync::spawn("w", move || c2.set(1));
            c.set(2);
            h.join();
        });
        let v = r.violation.expect("unsynchronized writes must race");
        assert_eq!(v.kind, ViolationKind::DataRace);
    }

    #[test]
    fn mutex_protects_cell() {
        let r = Explorer::default().check(|| {
            let m = std::sync::Arc::new(Mutex::new(0u64, "m"));
            let c = std::sync::Arc::new(RaceCell::new(0u64, "guarded"));
            let (m2, c2) = (m.clone(), c.clone());
            let h = sync::spawn("w", move || {
                let _g = m2.lock();
                c2.set(c2.get() + 1);
            });
            {
                let _g = m.lock();
                c.set(c.get() + 1);
            }
            h.join();
            let _g = m.lock();
            assert_eq!(c.get(), 2);
        });
        r.assert_ok();
        // Two interleavings: lock orders.
        assert!(r.executions >= 2, "executions={}", r.executions);
    }

    #[test]
    fn detects_abba_deadlock() {
        let r = Explorer::default().check(|| {
            let a = std::sync::Arc::new(Mutex::new((), "a"));
            let b = std::sync::Arc::new(Mutex::new((), "b"));
            let (a2, b2) = (a.clone(), b.clone());
            let h = sync::spawn("w", move || {
                let _ga = a2.lock();
                let _gb = b2.lock();
            });
            let _gb = b.lock();
            let _ga = a.lock();
            drop(_ga);
            drop(_gb);
            h.join();
        });
        let v = r.violation.expect("AB-BA must deadlock in some schedule");
        assert_eq!(v.kind, ViolationKind::Deadlock);
    }

    #[test]
    fn sleep_sets_prune_independent_ops() {
        // Two threads touching disjoint cells: all interleavings are
        // equivalent, so sleep sets should explore far fewer schedules
        // than the naive bound.
        let r = Explorer::default().check(|| {
            let x = std::sync::Arc::new(RaceCell::new(0u64, "x"));
            let y = RaceCell::new(0u64, "y");
            let x2 = x.clone();
            let h = sync::spawn("w", move || {
                x2.set(1);
                x2.set(2);
            });
            y.set(1);
            y.set(2);
            h.join();
            assert_eq!(y.get(), 2);
        });
        r.assert_ok();
        assert!(
            r.executions + r.pruned <= 16,
            "pruning ineffective: {} executed + {} pruned",
            r.executions,
            r.pruned
        );
    }

    #[test]
    fn acquire_release_edge_orders_cells() {
        // Message passing: flag=1 with Release, reader spins Acquire
        // before touching the cell — no race, both outcomes covered.
        let r = Explorer::default().check(|| {
            let flag = std::sync::Arc::new(sync::AtomicBool::new(false, "flag"));
            let data = std::sync::Arc::new(RaceCell::new(0u64, "data"));
            let (f2, d2) = (flag.clone(), data.clone());
            let h = sync::spawn("producer", move || {
                d2.set(42);
                f2.store(true, Ordering::Release);
            });
            if flag.load(Ordering::Acquire) {
                assert_eq!(data.get(), 42);
            }
            h.join();
            assert_eq!(data.get(), 42);
        });
        r.assert_ok();
    }

    #[test]
    fn relaxed_flag_does_not_order_cells() {
        // The same message-passing shape with Relaxed ordering must be
        // flagged: no happens-before edge protects the cell.
        let r = Explorer::default().check(|| {
            let flag = std::sync::Arc::new(sync::AtomicBool::new(false, "flag"));
            let data = std::sync::Arc::new(RaceCell::new(0u64, "data"));
            let (f2, d2) = (flag.clone(), data.clone());
            let h = sync::spawn("producer", move || {
                d2.set(42);
                f2.store(true, Ordering::Relaxed);
            });
            if flag.load(Ordering::Relaxed) {
                let _ = data.get();
            }
            h.join();
        });
        let v = r.violation.expect("relaxed message passing must race");
        assert_eq!(v.kind, ViolationKind::DataRace);
    }

    #[test]
    fn condvar_wakeup_is_not_lost_when_flag_set_under_lock() {
        let r = Explorer::default().check(|| {
            let m = std::sync::Arc::new(Mutex::new(false, "m"));
            let cv = std::sync::Arc::new(sync::Condvar::new("cv"));
            let (m2, cv2) = (m.clone(), cv.clone());
            let h = sync::spawn("waker", move || {
                let mut g = m2.lock();
                *g = true;
                cv2.notify_one();
            });
            let mut g = m.lock();
            while !*g {
                g = cv.wait(g);
            }
            drop(g);
            h.join();
        });
        r.assert_ok();
    }

    #[test]
    fn condvar_lost_wakeup_detected_without_lock() {
        // The waker sets the flag and notifies WITHOUT the mutex: the
        // notify can land between the waiter's check and its wait.
        let r = Explorer::default().check(|| {
            let m = std::sync::Arc::new(Mutex::new((), "m"));
            let flag = std::sync::Arc::new(sync::AtomicBool::new(false, "flag"));
            let cv = std::sync::Arc::new(sync::Condvar::new("cv"));
            let (f2, cv2) = (flag.clone(), cv.clone());
            let h = sync::spawn("waker", move || {
                f2.store(true, Ordering::Release);
                cv2.notify_one();
            });
            let mut g = m.lock();
            while !flag.load(Ordering::Acquire) {
                g = cv.wait(g);
            }
            drop(g);
            h.join();
        });
        let v = r.violation.expect("unlocked notify must lose a wakeup");
        assert_eq!(v.kind, ViolationKind::Deadlock);
    }

    #[test]
    fn preemption_bound_reports_incomplete() {
        let e = Explorer {
            preemption_bound: Some(0),
            ..Explorer::default()
        };
        let r = e.check(|| {
            let x = std::sync::Arc::new(sync::AtomicU64::new(0, "x"));
            let x2 = x.clone();
            let h = sync::spawn("w", move || {
                x2.fetch_add(1, Ordering::AcqRel);
            });
            x.fetch_add(1, Ordering::AcqRel);
            h.join();
        });
        assert!(r.violation.is_none());
        assert!(r.bound_hit, "bound 0 must restrict some decision");
    }
}
