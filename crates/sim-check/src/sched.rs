//! The interleaving explorer: serialized model threads, a DFS over
//! schedules, and sleep-set (DPOR-family) pruning.
//!
//! # Execution model
//!
//! Model threads run on real OS threads, but **exactly one runs at a
//! time**: every visible operation (atomic access, mutex lock/unlock,
//! condvar wait/notify, [`RaceCell`](crate::sync::RaceCell) access,
//! spawn/join) is a *scheduling point*. At each point the acting thread
//! declares its pending operation and hands control to the scheduler,
//! which picks the next thread to run — following the replay script of
//! the current schedule, or branching into a fresh one. Between visible
//! operations a thread runs ordinary Rust code while every other thread
//! is parked, so executions are fully deterministic and replayable.
//!
//! # Exploration
//!
//! The explorer performs a depth-first search over schedules. Each
//! decision point records the set of enabled threads; after an
//! execution completes, the deepest decision with an untried
//! alternative is advanced and the prefix replayed. Pruning uses
//! *sleep sets* (Godefroid): once a thread's continuation has been
//! fully explored from a state, that thread is put to sleep for the
//! sibling subtrees and only woken by a *dependent* operation —
//! two operations are dependent when they touch the same object and at
//! least one mutates it. Combined with branching over every enabled
//! thread this visits every Mazurkiewicz trace at least once (so every
//! reachable state, deadlock, race, and assertion failure is found)
//! while skipping schedules that only reorder independent operations.
//!
//! An optional *preemption bound* (CHESS-style) caps how many times a
//! schedule may switch away from a runnable thread; with the bound hit
//! the search is no longer exhaustive and the report says so.
//!
//! # Verdicts
//!
//! An execution ends in one of: completion, *deadlock* (live threads,
//! none enabled — this is how lost wakeups surface), *data race*
//! (vector-clock epoch violation on a `RaceCell`), *assertion panic*
//! (any panic in model code), or *step-limit exhaustion* (livelock
//! guard). The first violating schedule is reported with its full
//! interleaving trace.

use crate::vc::VecClock;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;

/// Model-thread id (0 is the scenario's root thread).
pub(crate) type Tid = usize;
/// Model-object id (atomics, mutexes, condvars, cells, thread tokens).
pub(crate) type ObjId = usize;

/// How long a parked OS thread or the harness waits before declaring
/// the checker itself wedged. Generous: this only fires on an internal
/// checker bug, never on a model deadlock (those are detected
/// logically, not by timeout).
const WEDGE_TIMEOUT: Duration = Duration::from_secs(120);

/// Visible-operation kinds, the alphabet of the dependence relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum OpKind {
    /// First scheduling point of a spawned thread (runs no user code
    /// before it).
    Start,
    /// Atomic load.
    ALoad,
    /// Atomic store.
    AStore,
    /// Atomic read-modify-write.
    ARmw,
    /// Mutex acquisition (also a woken condvar waiter's reacquire).
    Lock,
    /// Mutex release.
    Unlock,
    /// Atomic unlock-and-block on a condvar.
    CvWait,
    /// Condvar notify (one or all).
    Notify,
    /// `RaceCell` read.
    CellRead,
    /// `RaceCell` write.
    CellWrite,
    /// Join on another model thread.
    Join,
    /// A thread's final scheduling point.
    Finish,
}

impl OpKind {
    /// Read-only operations are mutually independent on the same
    /// object.
    fn is_read(self) -> bool {
        matches!(self, OpKind::ALoad | OpKind::CellRead)
    }
}

/// One visible operation: kind plus the object(s) it touches
/// (`CvWait` touches both the condvar and the guard mutex).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Op {
    pub(crate) kind: OpKind,
    pub(crate) obj: ObjId,
    pub(crate) obj2: Option<ObjId>,
}

impl Op {
    pub(crate) fn new(kind: OpKind, obj: ObjId) -> Op {
        Op {
            kind,
            obj,
            obj2: None,
        }
    }

    fn touches(&self, id: ObjId) -> bool {
        self.obj == id || self.obj2 == Some(id)
    }
}

/// The dependence relation for sleep-set pruning: two operations
/// conflict when they share an object and are not both reads.
/// Conservative over-approximation is safe (it only costs pruning).
pub(crate) fn conflicts(a: &Op, b: &Op) -> bool {
    let both_reads = a.kind.is_read() && b.kind.is_read();
    if both_reads {
        return false;
    }
    [Some(a.obj), a.obj2]
        .into_iter()
        .flatten()
        .any(|id| b.touches(id))
}

/// Model-thread lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TState {
    /// Parked at a scheduling point with a declared pending op.
    AtPoint,
    /// Holding the turn, executing user code.
    Running,
    /// Blocked on a model condvar (no pending op until notified).
    BlockedCv,
    /// User closure returned; `Finish` op executed.
    Finished,
    /// Unwound by an execution abort (or a panic already reported).
    Dead,
}

/// Per-model-thread bookkeeping.
#[derive(Debug)]
pub(crate) struct ThreadSt {
    pub(crate) state: TState,
    pub(crate) pending: Option<Op>,
    pub(crate) vc: VecClock,
    pub(crate) final_vc: Option<VecClock>,
    pub(crate) name: String,
    /// The thread's token object (spawn/join/finish dependence anchor).
    pub(crate) token: ObjId,
}

/// Kernel-side state of one model object.
#[derive(Debug)]
pub(crate) enum ObjState {
    /// An atomic cell: current value plus its release clock.
    Atomic { val: u64, vc: VecClock },
    /// A mutex: holder plus its release clock.
    Mutex { held: Option<Tid>, vc: VecClock },
    /// A condvar: blocked waiters `(tid, guard mutex)` in FIFO order.
    Condvar { waiters: Vec<(Tid, ObjId)> },
    /// A racy data cell: last-write epoch plus unordered read epochs.
    Cell {
        write: Option<(Tid, u64)>,
        reads: Vec<(Tid, u64)>,
    },
    /// A thread token (spawn/join/finish dependence anchor).
    Token,
}

/// One registered model object.
#[derive(Debug)]
pub(crate) struct Obj {
    pub(crate) state: ObjState,
    pub(crate) label: String,
}

/// Why an execution stopped.
#[derive(Debug, Clone)]
pub(crate) enum Outcome {
    /// All threads finished.
    Done,
    /// Sleep-set pruned: every continuation is covered elsewhere.
    Pruned,
    /// A violation was found; exploration stops.
    Violation(Violation),
}

/// The kind of property violation found.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ViolationKind {
    /// Live threads remain but none is enabled (includes lost wakeups:
    /// a waiter whose notify was dropped blocks forever).
    Deadlock,
    /// Unsynchronized conflicting accesses to a
    /// [`RaceCell`](crate::sync::RaceCell).
    DataRace,
    /// Model code panicked (assertion failure).
    Panic,
    /// The per-execution step budget was exhausted (livelock guard).
    StepLimit,
}

/// A property violation plus the schedule that produced it.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong.
    pub kind: ViolationKind,
    /// Human-readable detail (panic message, racing accesses, …).
    pub detail: String,
    /// The violating interleaving, one rendered line per visible op.
    pub trace: Vec<String>,
}

/// The result of an exploration.
#[derive(Debug)]
pub struct Report {
    /// Schedules actually executed.
    pub executions: u64,
    /// Schedules abandoned by sleep-set pruning.
    pub pruned: u64,
    /// The first violation found, if any.
    pub violation: Option<Violation>,
    /// True when the search space was fully explored (budget not
    /// exhausted and no preemption bound was ever hit).
    pub complete: bool,
    /// True when the preemption bound restricted at least one decision.
    pub bound_hit: bool,
}

impl Report {
    /// Panics with the violating trace unless the exploration was clean
    /// **and** complete.
    pub fn assert_ok(&self) {
        if let Some(v) = &self.violation {
            panic!(
                "sim-check violation ({:?}): {}\ntrace:\n  {}",
                v.kind,
                v.detail,
                v.trace.join("\n  ")
            );
        }
        assert!(
            self.complete,
            "sim-check exploration incomplete (executions={}, pruned={})",
            self.executions, self.pruned
        );
    }
}

/// One decision point of the current DFS path.
#[derive(Debug)]
struct Node {
    /// Threads this node branches over (enabled minus sleeping, after
    /// any preemption-bound restriction), ascending.
    options: Vec<Tid>,
    /// Pending op of each option at this node.
    ops: Vec<Op>,
    /// Options explored so far, in order; the last is in flight.
    tried: Vec<Tid>,
    /// The sleep set inherited on entry.
    sleep_in: Vec<(Tid, Op)>,
}

impl Node {
    fn op_of(&self, tid: Tid) -> Op {
        let i = self
            .options
            .iter()
            .position(|&t| t == tid)
            .expect("tried thread not among options");
        self.ops[i]
    }

    fn chosen(&self) -> Tid {
        *self.tried.last().expect("node with no choice")
    }
}

/// Exploration limits and knobs.
#[derive(Debug, Clone)]
pub struct Explorer {
    /// Hard cap on executed schedules; exceeding it makes the report
    /// incomplete rather than running forever.
    pub max_executions: u64,
    /// Per-execution visible-op budget (livelock guard).
    pub max_steps: usize,
    /// CHESS-style preemption bound; `None` explores exhaustively.
    pub preemption_bound: Option<u32>,
}

impl Default for Explorer {
    fn default() -> Explorer {
        Explorer {
            max_executions: 4_000_000,
            max_steps: 50_000,
            preemption_bound: None,
        }
    }
}

/// Per-execution mutable state.
pub(crate) struct Exec {
    pub(crate) threads: Vec<ThreadSt>,
    pub(crate) objs: Vec<Obj>,
    pub(crate) active: Option<Tid>,
    pub(crate) step: usize,
    trace: Vec<(Tid, Op)>,
    cur_sleep: Vec<(Tid, Op)>,
    preemptions: u32,
    pub(crate) outcome: Option<Outcome>,
    pub(crate) abort: bool,
    /// Model threads whose pooled OS bodies have not returned yet; the
    /// harness waits for zero before resetting for the next execution
    /// (the pool's replacement for joining per-execution handles).
    inflight: usize,
}

impl Exec {
    fn new() -> Exec {
        Exec {
            threads: Vec::new(),
            objs: Vec::new(),
            active: None,
            step: 0,
            trace: Vec::new(),
            cur_sleep: Vec::new(),
            preemptions: 0,
            outcome: None,
            abort: false,
            inflight: 0,
        }
    }

    fn enabled(&self, tid: Tid) -> bool {
        let t = &self.threads[tid];
        if t.state != TState::AtPoint {
            return false;
        }
        match t.pending.expect("AtPoint thread without pending op") {
            Op {
                kind: OpKind::Lock,
                obj,
                ..
            } => match &self.objs[obj].state {
                ObjState::Mutex { held, .. } => held.is_none(),
                _ => unreachable!("Lock on non-mutex"),
            },
            Op {
                kind: OpKind::Join,
                obj,
                ..
            } => self
                .threads
                .iter()
                .any(|t| t.token == obj && t.state == TState::Finished),
            _ => true,
        }
    }

    fn render_op(&self, tid: Tid, op: &Op) -> String {
        let name = &self.threads[tid].name;
        let obj = &self.objs[op.obj].label;
        match op.obj2 {
            Some(o2) => format!(
                "T{tid}({name}) {:?} {obj} / {}",
                op.kind, self.objs[o2].label
            ),
            None => format!("T{tid}({name}) {:?} {obj}", op.kind),
        }
    }

    fn render_trace(&self) -> Vec<String> {
        self.trace
            .iter()
            .map(|(tid, op)| self.render_op(*tid, op))
            .collect()
    }
}

/// The shared engine: one lock, one condvar, everything inside.
pub(crate) struct Engine {
    pub(crate) m: Mutex<State>,
    pub(crate) cv: Condvar,
}

/// Everything behind the engine lock.
pub(crate) struct State {
    pub(crate) exec: Exec,
    path: Vec<Node>,
    executions: u64,
    pruned: u64,
    bound_hit: bool,
    opts: Explorer,
}

thread_local! {
    static CURRENT: std::cell::RefCell<Option<(Arc<Engine>, Tid)>> =
        const { std::cell::RefCell::new(None) };
}

/// Marker payload for abort-unwinding parked threads.
pub(crate) struct Aborted;

/// The panic payload used to unwind a model thread during an abort.
pub(crate) fn abort_payload() -> Aborted {
    Aborted
}

pub(crate) fn current() -> (Arc<Engine>, Tid) {
    CURRENT.with(|c| {
        c.borrow()
            .clone()
            .expect("sim-check primitive used outside Explorer::check")
    })
}

pub(crate) fn lock_engine(engine: &Engine) -> MutexGuard<'_, State> {
    lock(engine)
}

pub(crate) fn wait_engine<'a>(
    engine: &'a Engine,
    g: MutexGuard<'a, State>,
) -> MutexGuard<'a, State> {
    wait(engine, g)
}

fn lock(engine: &Engine) -> MutexGuard<'_, State> {
    // Poisoning is expected during aborts (threads unwind while other
    // threads hold no inconsistent state); recover the guard.
    engine
        .m
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn wait<'a>(engine: &'a Engine, g: MutexGuard<'a, State>) -> MutexGuard<'a, State> {
    let (g, timeout) = engine
        .cv
        .wait_timeout(g, WEDGE_TIMEOUT)
        .unwrap_or_else(std::sync::PoisonError::into_inner);
    assert!(!timeout.timed_out(), "sim-check internal wedge (bug)");
    g
}

/// Registers a model object from the running thread; allocation order
/// is deterministic because execution is serialized.
pub(crate) fn alloc_obj(state: ObjState, label: impl Into<String>) -> ObjId {
    let (engine, _) = current();
    let mut st = lock(&engine);
    let id = st.exec.objs.len();
    st.exec.objs.push(Obj {
        state,
        label: label.into(),
    });
    id
}

/// Mutates an object's kernel state from op-execution code.
pub(crate) fn with_state<R>(f: impl FnOnce(&mut State) -> R) -> R {
    let (engine, _) = current();
    let mut st = lock(&engine);
    f(&mut st)
}

/// Raises a violation from op-execution code (e.g. a detected race),
/// then unwinds the calling thread.
pub(crate) fn raise_violation(kind: ViolationKind, detail: String) -> ! {
    let (engine, tid) = current();
    {
        let mut st = lock(&engine);
        if st.exec.outcome.is_none() {
            let trace = st.exec.render_trace();
            st.exec.outcome = Some(Outcome::Violation(Violation {
                kind,
                detail,
                trace,
            }));
        }
        st.exec.abort = true;
        st.exec.threads[tid].state = TState::Dead;
        st.exec.active = None;
        engine.cv.notify_all();
    }
    std::panic::panic_any(Aborted);
}

/// Declares `op` as the calling thread's next visible operation, hands
/// control to the scheduler, and returns once the operation has been
/// *granted* (chosen by the schedule). The caller then executes the
/// operation's semantics via [`with_state`] and continues running.
pub(crate) fn yield_op(op: Op) {
    let (engine, me) = current();
    let mut st = lock(&engine);
    if st.exec.abort {
        drop(st);
        std::panic::panic_any(Aborted);
    }
    st.exec.threads[me].pending = Some(op);
    st.exec.threads[me].state = TState::AtPoint;
    if st.exec.active == Some(me) {
        st.exec.active = None;
        schedule_next(&mut st, Some(me));
        engine.cv.notify_all();
    } else {
        // A freshly spawned thread declaring its Start op: the parent
        // holds the turn and is waiting for this declaration.
        engine.cv.notify_all();
    }
    park_for_grant(&engine, st, me);
}

/// Parks until the scheduler grants this thread's pending op (used by
/// both [`yield_op`] and the condvar-wakeup path, where the pending op
/// is installed by the notifier).
pub(crate) fn park_for_grant<'a>(engine: &'a Engine, mut st: MutexGuard<'a, State>, me: Tid) {
    loop {
        if st.exec.abort {
            drop(st);
            std::panic::panic_any(Aborted);
        }
        if st.exec.active == Some(me) {
            break;
        }
        st = wait(engine, st);
    }
    st.exec.threads[me].pending = None;
    st.exec.threads[me].state = TState::Running;
}

/// Hands the turn off without declaring a new op (the caller just
/// blocked or finished). `declarer` is `None`: switching away from a
/// blocked thread is not a preemption.
pub(crate) fn hand_off() {
    let (engine, _) = current();
    let mut st = lock(&engine);
    if st.exec.abort {
        drop(st);
        std::panic::panic_any(Aborted);
    }
    st.exec.active = None;
    schedule_next(&mut st, None);
    engine.cv.notify_all();
}

/// The scheduler: picks the next thread at a decision point. Called
/// with the lock held, `exec.active == None`.
fn schedule_next(st: &mut State, declarer: Option<Tid>) {
    debug_assert!(st.exec.active.is_none());
    if st.exec.outcome.is_some() {
        return;
    }
    let enabled: Vec<Tid> = (0..st.exec.threads.len())
        .filter(|&t| st.exec.enabled(t))
        .collect();
    if enabled.is_empty() {
        let live = st.exec.threads.iter().any(|t| {
            matches!(
                t.state,
                TState::AtPoint | TState::BlockedCv | TState::Running
            )
        });
        if live {
            let detail = st
                .exec
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| !matches!(t.state, TState::Finished | TState::Dead))
                .map(|(i, t)| format!("T{i}({}) {:?}", t.name, t.state))
                .collect::<Vec<_>>()
                .join(", ");
            let trace = st.exec.render_trace();
            st.exec.outcome = Some(Outcome::Violation(Violation {
                kind: ViolationKind::Deadlock,
                detail: format!("no enabled thread; live: {detail}"),
                trace,
            }));
            st.exec.abort = true;
        } else {
            st.exec.outcome = Some(Outcome::Done);
        }
        return;
    }

    let depth = st.exec.step;
    let chosen = if depth < st.path.len() {
        // Replay: follow the scripted choice and rebuild the sleep set.
        let node = &st.path[depth];
        let c = node.chosen();
        assert!(
            enabled.contains(&c),
            "sim-check replay divergence: T{c} not enabled (bug)"
        );
        c
    } else {
        // Fresh decision point.
        let sleeping: Vec<Tid> = st.exec.cur_sleep.iter().map(|&(t, _)| t).collect();
        let mut options: Vec<Tid> = enabled
            .iter()
            .copied()
            .filter(|t| !sleeping.contains(t))
            .collect();
        if options.is_empty() {
            // Everything enabled is asleep: all continuations are
            // covered by sibling subtrees.
            st.exec.outcome = Some(Outcome::Pruned);
            st.exec.abort = true;
            st.pruned += 1;
            return;
        }
        if let (Some(bound), Some(d)) = (st.opts.preemption_bound, declarer) {
            if st.exec.preemptions >= bound && options.contains(&d) {
                options = vec![d];
                st.bound_hit = true;
            }
        }
        let ops: Vec<Op> = options
            .iter()
            .map(|&t| st.exec.threads[t].pending.expect("enabled without pending"))
            .collect();
        let c = options[0];
        st.path.push(Node {
            options,
            ops,
            tried: vec![c],
            sleep_in: st.exec.cur_sleep.clone(),
        });
        c
    };

    // Sleep-set propagation into the chosen child: inherited sleepers
    // plus previously-explored siblings, minus anything dependent on
    // the op we are about to execute.
    let node = &st.path[depth];
    let chosen_op = node.op_of(chosen);
    let mut sleep = node.sleep_in.clone();
    for &t in &node.tried {
        if t == chosen {
            break;
        }
        sleep.push((t, node.op_of(t)));
    }
    sleep.retain(|(t, op)| *t != chosen && !conflicts(op, &chosen_op));
    st.exec.cur_sleep = sleep;

    if let Some(d) = declarer {
        if chosen != d && enabled.contains(&d) {
            st.exec.preemptions += 1;
        }
    }
    st.exec.trace.push((chosen, chosen_op));
    st.exec.step += 1;
    if st.exec.step > st.opts.max_steps {
        let trace = st.exec.render_trace();
        st.exec.outcome = Some(Outcome::Violation(Violation {
            kind: ViolationKind::StepLimit,
            detail: format!("execution exceeded {} visible ops", st.opts.max_steps),
            trace,
        }));
        st.exec.abort = true;
        return;
    }
    st.exec.active = Some(chosen);
}

/// Registers a new model thread (called by `spawn` with the turn held),
/// returning `(tid, token object id)`.
pub(crate) fn register_thread(name: String, parent: Option<Tid>) -> (Tid, ObjId) {
    let (engine, _) = current();
    let mut st = lock(&engine);
    let tid = st.exec.threads.len();
    let mut vc = match parent {
        Some(p) => {
            let pv = st.exec.threads[p].vc.clone();
            st.exec.threads[p].vc.bump(p);
            pv
        }
        None => VecClock::new(),
    };
    vc.bump(tid);
    let token = st.exec.objs.len();
    st.exec.objs.push(Obj {
        state: ObjState::Token,
        label: format!("thread:{name}"),
    });
    st.exec.threads.push(ThreadSt {
        state: TState::Running, // becomes AtPoint at its Start op
        pending: None,
        vc,
        final_vc: None,
        name,
        token,
    });
    (tid, token)
}

/// A process-global pool of reusable OS threads. Exploration runs one
/// short-lived model-thread body per model thread per execution —
/// easily millions per test — and handing a parked worker the next body
/// is an order of magnitude cheaper than a fresh `thread::spawn` each
/// time. Workers never die; a worker whose job is blocked never blocks
/// dispatch (an empty pool spawns a fresh worker).
mod pool {
    use std::sync::mpsc::{channel, Sender};
    use std::sync::Mutex;

    type Job = Box<dyn FnOnce() + Send + 'static>;

    static IDLE: Mutex<Vec<Sender<Job>>> = Mutex::new(Vec::new());

    fn idle() -> std::sync::MutexGuard<'static, Vec<Sender<Job>>> {
        IDLE.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Runs `job` on an idle pooled worker, spawning one if none is
    /// parked; the worker re-registers itself once the job returns.
    pub(super) fn run(job: Job) {
        if let Some(tx) = idle().pop() {
            tx.send(job).expect("pooled worker channel closed");
            return;
        }
        let (tx, rx) = channel::<Job>();
        tx.send(job).expect("fresh pooled worker channel");
        let tx2 = tx.clone();
        std::thread::Builder::new()
            .name("sim-check-worker".into())
            .spawn(move || loop {
                let Ok(job) = rx.recv() else { return };
                // Jobs contain their own catch_unwind (`run_thread`);
                // this one only guards the pool against a future job
                // type that leaks a panic.
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                idle().push(tx2.clone());
            })
            .expect("spawn pooled worker");
    }
}

/// Launches a model thread's body on the pool, tracked by the
/// execution's in-flight count.
pub(crate) fn dispatch_thread(
    engine: &Arc<Engine>,
    tid: Tid,
    token: ObjId,
    f: impl FnOnce() + Send + 'static,
) {
    {
        let mut st = lock(engine);
        st.exec.inflight += 1;
    }
    let eng = engine.clone();
    pool::run(Box::new(move || {
        run_thread(eng.clone(), tid, token, f);
        let mut st = lock(&eng);
        st.exec.inflight -= 1;
        eng.cv.notify_all();
    }));
}

/// The body wrapper every model OS thread runs.
pub(crate) fn run_thread(engine: Arc<Engine>, tid: Tid, token: ObjId, f: impl FnOnce()) {
    CURRENT.with(|c| *c.borrow_mut() = Some((engine.clone(), tid)));
    let result = catch_unwind(AssertUnwindSafe(|| {
        // First scheduling point: no user code before the Start grant.
        yield_op(Op::new(OpKind::Start, token));
        with_state(|st| st.exec.threads[tid].vc.bump(tid));
        f();
        // Final scheduling point: Finish, then hand off for good.
        yield_op(Op::new(OpKind::Finish, token));
        with_state(|st| {
            st.exec.threads[tid].vc.bump(tid);
            let vc = st.exec.threads[tid].vc.clone();
            st.exec.threads[tid].final_vc = Some(vc);
            st.exec.threads[tid].state = TState::Finished;
        });
        hand_off();
    }));
    match result {
        Ok(()) => {}
        Err(payload) => {
            if payload.downcast_ref::<Aborted>().is_some() {
                let mut st = lock(&engine);
                st.exec.threads[tid].state = TState::Dead;
                engine.cv.notify_all();
            } else {
                let msg = payload
                    .downcast_ref::<String>()
                    .cloned()
                    .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                    .unwrap_or_else(|| "<non-string panic payload>".to_string());
                let mut st = lock(&engine);
                if st.exec.outcome.is_none() {
                    let trace = st.exec.render_trace();
                    st.exec.outcome = Some(Outcome::Violation(Violation {
                        kind: ViolationKind::Panic,
                        detail: format!("thread T{tid} panicked: {msg}"),
                        trace,
                    }));
                }
                st.exec.abort = true;
                st.exec.threads[tid].state = TState::Dead;
                st.exec.active = None;
                engine.cv.notify_all();
            }
        }
    }
    CURRENT.with(|c| *c.borrow_mut() = None);
}

impl Explorer {
    /// Explores every schedule of `scenario` (up to the configured
    /// budget/bound). The scenario runs once per schedule as model
    /// thread 0; it creates model objects, spawns model threads, and
    /// asserts its invariants with ordinary `assert!`s.
    pub fn check(&self, scenario: impl Fn() + Send + Sync + 'static) -> Report {
        // Abort-unwinds are control flow, not failures: keep the
        // default panic hook from spamming a backtrace for every
        // pruned/aborted execution (a real model panic still prints).
        static HOOK: std::sync::Once = std::sync::Once::new();
        HOOK.call_once(|| {
            let prev = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if info.payload().downcast_ref::<Aborted>().is_none() {
                    prev(info);
                }
            }));
        });
        let engine = Arc::new(Engine {
            m: Mutex::new(State {
                exec: Exec::new(),
                path: Vec::new(),
                executions: 0,
                pruned: 0,
                bound_hit: false,
                opts: self.clone(),
            }),
            cv: Condvar::new(),
        });
        let scenario = Arc::new(scenario);
        loop {
            // Fresh execution.
            {
                let mut st = lock(&engine);
                st.exec = Exec::new();
                st.executions += 1;
            }
            let scen = scenario.clone();
            // Root-thread registration needs a thread-local context.
            CURRENT.with(|c| *c.borrow_mut() = Some((engine.clone(), usize::MAX)));
            let (tid0, token0) = register_thread("main".to_string(), None);
            CURRENT.with(|c| *c.borrow_mut() = None);
            debug_assert_eq!(tid0, 0);
            {
                let mut st = lock(&engine);
                st.exec.active = Some(tid0);
            }
            dispatch_thread(&engine, tid0, token0, move || scen());
            // Wait for the execution to settle, then for every model
            // OS body to return (completion and abort both unwind
            // everything), so the reset below cannot race a straggler.
            let mut st = lock(&engine);
            let outcome = loop {
                if let Some(o) = st.exec.outcome.clone() {
                    break o;
                }
                st = wait(&engine, st);
            };
            while st.exec.inflight != 0 {
                st = wait(&engine, st);
            }
            if let Outcome::Violation(v) = outcome {
                return Report {
                    executions: st.executions,
                    pruned: st.pruned,
                    violation: Some(v),
                    complete: false,
                    bound_hit: st.bound_hit,
                };
            }
            if st.executions >= st.opts.max_executions {
                return Report {
                    executions: st.executions,
                    pruned: st.pruned,
                    violation: None,
                    complete: false,
                    bound_hit: st.bound_hit,
                };
            }
            // Backtrack to the deepest decision with an untried option.
            let advanced = loop {
                match st.path.last_mut() {
                    None => break false,
                    Some(node) => {
                        let next = node
                            .options
                            .iter()
                            .copied()
                            .find(|t| !node.tried.contains(t));
                        match next {
                            Some(t) => {
                                node.tried.push(t);
                                break true;
                            }
                            None => {
                                st.path.pop();
                            }
                        }
                    }
                }
            };
            if !advanced {
                return Report {
                    executions: st.executions,
                    pruned: st.pruned,
                    violation: None,
                    complete: !st.bound_hit,
                    bound_hit: st.bound_hit,
                };
            }
        }
    }
}
